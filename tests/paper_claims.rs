//! End-to-end checks of the paper's headline claims, at reduced scale so
//! they run quickly in debug builds. The full-scale reproductions live in
//! `simrun`'s `experiments` binary and the bench harness.

use rmcast::{ProtocolConfig, ProtocolKind};
use simrun::scenario::{Protocol, Scenario};

fn one_seed(p: Protocol, n: u16, msg: usize) -> simrun::RunResult {
    let mut sc = Scenario::new(p, n, msg);
    sc.seeds = vec![1];
    sc.run_avg()
}

/// Figure 8's claim: TCP grows linearly with receivers, multicast stays
/// nearly flat.
#[test]
fn tcp_linear_multicast_flat() {
    let msg = 100_000;
    let tcp = |n| {
        one_seed(
            Protocol::SerialUnicast {
                segment_size: 1448,
                window: 22,
            },
            n,
            msg,
        )
        .comm_time
        .as_secs_f64()
    };
    let ack = |n| {
        one_seed(
            Protocol::Rm(ProtocolConfig::new(ProtocolKind::Ack, 50_000, 2)),
            n,
            msg,
        )
        .comm_time
        .as_secs_f64()
    };

    let (t1, t8) = (tcp(1), tcp(8));
    assert!(
        t8 / t1 > 5.0,
        "TCP should scale ~linearly: x1={t1:.4}s x8={t8:.4}s"
    );
    let (a1, a8) = (ack(1), ack(8));
    assert!(
        a8 / a1 < 1.6,
        "multicast should stay nearly flat: x1={a1:.4}s x8={a8:.4}s"
    );
    assert!(a8 < t8, "multicast must beat TCP at 8 receivers");
}

/// Figure 10's claim: window = 2 suffices for the ACK protocol; larger
/// windows add nothing.
#[test]
fn ack_window_two_is_enough() {
    let t = |w| {
        one_seed(
            Protocol::Rm(ProtocolConfig::new(ProtocolKind::Ack, 6_250, w)),
            12,
            200_000,
        )
        .comm_time
        .as_secs_f64()
    };
    let (w1, w2, w5) = (t(1), t(2), t(5));
    assert!(
        w2 < w1,
        "window 2 must beat stop-and-wait: {w2:.4} vs {w1:.4}"
    );
    assert!(
        (w5 - w2).abs() / w2 < 0.10,
        "windows beyond 2 must not help much: w2={w2:.4} w5={w5:.4}"
    );
}

/// Figure 12's claim: the best poll interval sits near (but below) the
/// window size.
#[test]
fn nak_poll_interval_optimum_near_window() {
    let t = |poll| {
        one_seed(
            Protocol::Rm(ProtocolConfig::new(
                ProtocolKind::nak_polling(poll),
                5_000,
                20,
            )),
            12,
            200_000,
        )
        .comm_time
        .as_secs_f64()
    };
    let (p1, p16, p20) = (t(1), t(16), t(20));
    assert!(p16 < p1, "poll=16 must beat per-packet polling");
    assert!(
        p16 <= p20 * 1.02,
        "poll at ~80% must not lose to poll=window"
    );
}

/// Table 3's claim: for large messages,
/// NAK >= ring >= tree >= ACK.
#[test]
fn large_message_protocol_ordering() {
    let msg = 400_000;
    let n = 20;
    let nak = one_seed(
        Protocol::Rm(ProtocolConfig::new(
            ProtocolKind::nak_polling(34),
            8_000,
            40,
        )),
        n,
        msg,
    );
    let ring = one_seed(
        Protocol::Rm(ProtocolConfig::new(ProtocolKind::Ring, 8_000, 40)),
        n,
        msg,
    );
    let tree = one_seed(
        Protocol::Rm(ProtocolConfig::new(ProtocolKind::flat_tree(4), 8_000, 20)),
        n,
        msg,
    );
    let ack = one_seed(
        Protocol::Rm(ProtocolConfig::new(ProtocolKind::Ack, 50_000, 5)),
        n,
        msg,
    );
    let (tn, tr, tt, ta) = (
        nak.throughput_mbps,
        ring.throughput_mbps,
        tree.throughput_mbps,
        ack.throughput_mbps,
    );
    // Allow ties within 3% (the paper writes ">=", not ">").
    assert!(
        tn * 1.03 >= tr,
        "NAK ({tn:.1}) must not lose to ring ({tr:.1})"
    );
    assert!(
        tr * 1.03 >= tt,
        "ring ({tr:.1}) must not lose to tree ({tt:.1})"
    );
    assert!(
        tt * 1.03 >= ta,
        "tree ({tt:.1}) must not lose to ACK ({ta:.1})"
    );
    assert!(
        tn > ta * 1.2,
        "NAK must clearly beat ACK: {tn:.1} vs {ta:.1}"
    );
}

/// Figure 20's claim: small messages suffer under tall trees (user-level
/// ack relaying), and the simpler protocols behave identically.
#[test]
fn small_messages_punish_tall_trees() {
    let t = |h| {
        one_seed(
            Protocol::Rm(ProtocolConfig::new(ProtocolKind::flat_tree(h), 8_000, 20)),
            16,
            256,
        )
        .comm_time
        .as_secs_f64()
    };
    let (h1, h16) = (t(1), t(16));
    assert!(
        h16 > h1 * 1.5,
        "a 16-deep chain must add clear latency: H1={h1:.6} H16={h16:.6}"
    );

    // ACK / NAK / ring behave the same for one-packet messages.
    let small = |kind, w| {
        one_seed(Protocol::Rm(ProtocolConfig::new(kind, 8_000, w)), 16, 256)
            .comm_time
            .as_secs_f64()
    };
    let a = small(ProtocolKind::Ack, 2);
    let k = small(ProtocolKind::nak_polling(2), 2);
    let r = small(ProtocolKind::Ring, 17);
    let spread = (a.max(k).max(r) - a.min(k).min(r)) / a;
    assert!(
        spread < 0.15,
        "one-packet messages: ACK/NAK/ring should match (ack={a:.6} nak={k:.6} ring={r:.6})"
    );
}

/// The whole pipeline is deterministic: same seed, same nanosecond.
#[test]
fn full_stack_determinism() {
    let sc = Scenario::new(
        Protocol::Rm(ProtocolConfig::new(ProtocolKind::Ring, 4_000, 12)),
        8,
        150_000,
    );
    let a = sc.run(99);
    let b = sc.run(99);
    assert_eq!(a.comm_time, b.comm_time);
    assert_eq!(a.sender_stats, b.sender_stats);
    let c = sc.run(100);
    assert_ne!(
        a.comm_time, c.comm_time,
        "different seeds should jitter timings"
    );
}

/// Reliability across the full simulated stack under loss, all protocols.
#[test]
fn reliable_under_loss_full_stack() {
    for kind in [
        ProtocolKind::Ack,
        ProtocolKind::nak_polling(8),
        ProtocolKind::Ring,
        ProtocolKind::flat_tree(3),
    ] {
        let window = if matches!(kind, ProtocolKind::Ring) {
            12
        } else {
            10
        };
        let mut sc = Scenario::new(
            Protocol::Rm(ProtocolConfig::new(kind, 4_000, window)),
            6,
            200_000,
        );
        sc.seeds = vec![5];
        sc.sim.faults.frame_loss = 0.03;
        let r = sc.run_avg();
        assert_eq!(r.deliveries, 6, "{kind:?} under loss");
        assert!(
            r.sender_stats.retx_sent > 0,
            "{kind:?}: loss at this rate should force retransmission"
        );
    }
}

/// The allocation handshake claim: "at least two round trips of messaging
/// are necessary for each data transmission" — visible as two transfers'
/// worth of packets for a tiny message.
#[test]
fn handshake_two_round_trips() {
    let r = one_seed(
        Protocol::Rm(ProtocolConfig::new(ProtocolKind::Ack, 8_000, 2)),
        4,
        100,
    );
    assert_eq!(
        r.sender_stats.data_sent, 2,
        "tiny message = 1 alloc packet + 1 data packet"
    );
    assert_eq!(
        r.sender_stats.acks_received, 8,
        "both packets acked by all 4"
    );
}
