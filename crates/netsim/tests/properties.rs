//! Property-based tests of the simulator's building blocks.

use netsim::egress::Egress;
use netsim::frame::{
    fragment_frame_bytes, fragment_payload_len, fragment_wire_bytes, n_fragments, ETH_MIN_FRAME,
    ETH_PREAMBLE_IFG, FRAG_DATA, MAX_DATAGRAM,
};
use proptest::prelude::*;
use rmwire::{Duration, Time};

proptest! {
    /// Fragment payload lengths always sum to the datagram length, every
    /// fragment fits the MTU, and only the last may be short.
    #[test]
    fn fragmentation_partition(len in 0usize..=MAX_DATAGRAM) {
        let n = n_fragments(len);
        prop_assert!(n >= 1);
        let mut sum = 0;
        for i in 0..n {
            let p = fragment_payload_len(len, i);
            prop_assert!(p <= FRAG_DATA);
            if i + 1 < n {
                prop_assert_eq!(p, FRAG_DATA, "only the tail may be short");
            }
            sum += p;
        }
        prop_assert_eq!(sum, len);
    }

    /// Frame sizes respect Ethernet's minimum and the preamble accounting.
    #[test]
    fn frame_size_bounds(len in 0usize..=MAX_DATAGRAM) {
        let n = n_fragments(len);
        for i in 0..n {
            let f = fragment_frame_bytes(len, i);
            prop_assert!(f >= ETH_MIN_FRAME);
            prop_assert!(f <= 1518, "never above the MTU frame");
            prop_assert_eq!(fragment_wire_bytes(len, i), f + ETH_PREAMBLE_IFG);
        }
    }

    /// The egress clock: departures are monotone, never earlier than
    /// enqueue + transmission time, and back-to-back when saturated.
    #[test]
    fn egress_departures_monotone(
        jobs in proptest::collection::vec((0u64..10_000, 1u64..2_000, 64usize..1_600), 1..50)
    ) {
        let mut e = Egress::new();
        let mut now = Time::ZERO;
        let mut last_done = Time::ZERO;
        for (gap_us, tx_us, bytes) in jobs {
            now += Duration::from_micros(gap_us);
            let tx = Duration::from_micros(tx_us);
            let done = e.enqueue(now, tx, bytes);
            prop_assert!(done >= now + tx, "cannot finish before serialization");
            prop_assert!(done >= last_done, "FIFO order");
            prop_assert!(
                done == now + tx || done == last_done + tx,
                "either starts immediately or right after the predecessor"
            );
            last_done = done;
        }
    }

    /// `earliest_fit` never returns a time at which the frame would still
    /// not fit, and never a time later than the full drain.
    #[test]
    fn egress_fit_is_tight(
        preload in proptest::collection::vec((1u64..500, 64usize..1_519), 0..20),
        need in 64usize..2_000,
        cap in 2_000usize..20_000,
    ) {
        let mut e = Egress::new();
        for (tx_us, bytes) in preload {
            e.enqueue(Time::ZERO, Duration::from_micros(tx_us), bytes);
        }
        let drain = e.idle_at();
        match e.earliest_fit(Time::ZERO, need, cap) {
            None => prop_assert!(need > cap),
            Some(t) => {
                prop_assert!(t <= drain, "never later than full drain");
                prop_assert!(
                    e.queued_bytes(t) + need <= cap,
                    "fit time must actually fit"
                );
            }
        }
    }
}

/// Deterministic-run property across random workloads: two simulations
/// with identical seeds produce identical traces.
mod determinism {
    use bytes::Bytes;
    use netsim::process::{Ctx, DatagramIn, Process};
    use netsim::{topology, Sim, SimConfig, UdpDest};
    use proptest::prelude::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Blast {
        dest: UdpDest,
        sizes: Vec<usize>,
    }
    impl Process for Blast {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for &s in &self.sizes {
                ctx.send(self.dest, Bytes::from(vec![1u8; s]));
            }
        }
    }
    struct Count {
        log: Rc<RefCell<Vec<u64>>>,
    }
    impl Process for Count {
        fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dg: DatagramIn) {
            self.log
                .borrow_mut()
                .push(ctx.now().as_nanos() ^ dg.payload.len() as u64);
        }
    }

    fn run(seed: u64, sizes: &[usize], n: usize) -> Vec<u64> {
        let mut sim = Sim::new(SimConfig::default(), seed);
        let hosts = topology::two_switch_cluster(&mut sim, n + 1);
        let group = sim.create_group(&hosts[1..]);
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.spawn(
            hosts[0],
            9,
            Box::new(Blast {
                dest: UdpDest::group(group, 9),
                sizes: sizes.to_vec(),
            }),
        );
        for &h in &hosts[1..] {
            sim.spawn(h, 9, Box::new(Count { log: log.clone() }));
        }
        sim.run();
        let v = log.borrow().clone();
        v
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn identical_seeds_identical_traces(
            seed in any::<u64>(),
            sizes in proptest::collection::vec(1usize..20_000, 1..8),
            n in 1usize..6,
        ) {
            let a = run(seed, &sizes, n);
            let b = run(seed, &sizes, n);
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(a.len(), sizes.len() * n, "clean network delivers everything");
        }
    }
}
