//! End-to-end tests of the simulation engine: delivery, timing,
//! determinism, loss mechanisms and both fabrics.

use bytes::Bytes;
use netsim::process::{Ctx, DatagramIn, Process};
use netsim::{topology, FabricKind, FaultParams, HostId, Sim, SimConfig, UdpDest};
use rmwire::{Duration, Time};
use std::cell::RefCell;
use std::rc::Rc;

const PORT: u16 = 7000;

/// Shared log of (time, host, payload-length) deliveries.
type Log = Rc<RefCell<Vec<(Time, HostId, usize)>>>;

/// Sends a fixed schedule of datagrams at start.
struct Blaster {
    dest: UdpDest,
    sizes: Vec<usize>,
}

impl Process for Blaster {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for &s in &self.sizes {
            ctx.send(self.dest, Bytes::from(vec![0xabu8; s]));
        }
    }
}

/// Records deliveries into a shared log.
struct Sink {
    log: Log,
}

impl Process for Sink {
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dg: DatagramIn) {
        self.log
            .borrow_mut()
            .push((ctx.now(), ctx.host(), dg.payload.len()));
    }
}

fn new_log() -> Log {
    Rc::new(RefCell::new(Vec::new()))
}

fn no_jitter() -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.host.cpu_jitter = 0.0;
    cfg
}

#[test]
fn unicast_delivers_across_one_switch() {
    let mut sim = Sim::new(no_jitter(), 7);
    let hosts = topology::single_switch(&mut sim, 2);
    let log = new_log();
    sim.spawn(
        hosts[0],
        PORT,
        Box::new(Blaster {
            dest: UdpDest::host(hosts[1], PORT),
            sizes: vec![100, 2000, 50_000],
        }),
    );
    sim.spawn(hosts[1], PORT, Box::new(Sink { log: log.clone() }));
    sim.run();

    let log = log.borrow();
    assert_eq!(log.len(), 3);
    assert_eq!(log[0].2, 100);
    assert_eq!(log[1].2, 2000);
    assert_eq!(log[2].2, 50_000);
    // In-order delivery on one path.
    assert!(log[0].0 < log[1].0 && log[1].0 < log[2].0);
    assert!(sim.trace().clean());
    assert_eq!(sim.trace().datagrams_sent, 3);
    assert_eq!(sim.trace().datagrams_delivered, 3);
}

#[test]
fn unicast_latency_matches_hand_computation() {
    // One 100-byte datagram, no jitter: the delivery timestamp must equal
    // send costs + serialization + propagation + switch latency +
    // store-and-forward + receive costs.
    let mut cfg = no_jitter();
    cfg.host.send_syscall = Duration::from_micros(10);
    cfg.host.send_per_fragment = Duration::from_micros(2);
    cfg.host.send_per_byte_ns = 10;
    cfg.host.recv_syscall = Duration::from_micros(8);
    cfg.host.recv_per_fragment = Duration::from_micros(2);
    cfg.host.recv_per_byte_ns = 10;

    let mut sim = Sim::new(cfg, 1);
    let hosts = topology::single_switch(&mut sim, 2);
    let log = new_log();
    sim.spawn(
        hosts[0],
        PORT,
        Box::new(Blaster {
            dest: UdpDest::host(hosts[1], PORT),
            sizes: vec![100],
        }),
    );
    sim.spawn(hosts[1], PORT, Box::new(Sink { log: log.clone() }));
    sim.run();

    // Send CPU: 10us + 2us + 100*10ns = 13us.
    let send_cpu = 13_000u64;
    // Frame: 100 + 28 + 18 = 146 bytes queue size, 166 wire bytes
    // = 13.28us at 100 Mbit/s.
    let tx = 13_280u64;
    let prop = 1_000u64;
    let sw_latency = 10_000u64;
    // Receive CPU charged when the process reads it: 8us + 2us + 1us = 11us.
    let recv_cpu = 11_000u64;
    let expect = send_cpu + tx + prop + sw_latency + tx + prop + recv_cpu;

    let log = log.borrow();
    assert_eq!(log.len(), 1);
    assert_eq!(log[0].0.as_nanos(), expect);
}

#[test]
fn multicast_floods_and_charges_nonmembers() {
    // 5 hosts; group = {1, 2}; host 0 multicasts. Hosts 3 and 4 see the
    // flooded frame and pay the filter cost but deliver nothing.
    let mut sim = Sim::new(no_jitter(), 3);
    let hosts = topology::single_switch(&mut sim, 5);
    let group = sim.create_group(&[hosts[1], hosts[2]]);
    let log = new_log();
    sim.spawn(
        hosts[0],
        PORT,
        Box::new(Blaster {
            dest: UdpDest::group(group, PORT),
            sizes: vec![500],
        }),
    );
    for &h in &hosts[1..] {
        sim.spawn(h, PORT, Box::new(Sink { log: log.clone() }));
    }
    sim.run();

    let log = log.borrow();
    let mut got: Vec<_> = log.iter().map(|&(_, h, _)| h).collect();
    got.sort();
    assert_eq!(got, vec![hosts[1], hosts[2]]);
    // Two non-members filtered one frame each.
    assert_eq!(sim.trace().frames_filtered, 2);
    // Flooding delivered the frame to all 4 receivers' NICs.
    assert_eq!(sim.trace().frames_received, 4);
}

#[test]
fn igmp_snooping_suppresses_flooding() {
    let mut cfg = no_jitter();
    cfg.switch.igmp_snooping = true;
    let mut sim = Sim::new(cfg, 3);
    let hosts = topology::single_switch(&mut sim, 5);
    let group = sim.create_group(&[hosts[1], hosts[2]]);
    let log = new_log();
    sim.spawn(
        hosts[0],
        PORT,
        Box::new(Blaster {
            dest: UdpDest::group(group, PORT),
            sizes: vec![500],
        }),
    );
    for &h in &hosts[1..] {
        sim.spawn(h, PORT, Box::new(Sink { log: log.clone() }));
    }
    sim.run();

    assert_eq!(log.borrow().len(), 2);
    assert_eq!(sim.trace().frames_filtered, 0);
    assert_eq!(sim.trace().frames_received, 2);
}

#[test]
fn multicast_spans_cascaded_switches() {
    let mut sim = Sim::new(no_jitter(), 9);
    let hosts = topology::two_switch_cluster(&mut sim, 31);
    let group = sim.create_group(&hosts[1..]);
    let log = new_log();
    sim.spawn(
        hosts[0],
        PORT,
        Box::new(Blaster {
            dest: UdpDest::group(group, PORT),
            sizes: vec![10_000],
        }),
    );
    for &h in &hosts[1..] {
        sim.spawn(h, PORT, Box::new(Sink { log: log.clone() }));
    }
    sim.run();

    assert_eq!(log.borrow().len(), 30);
    assert!(sim.trace().clean());
    // Receivers behind the second switch hear it strictly later than the
    // first receiver on the sender's switch.
    let log = log.borrow();
    let t_near = log
        .iter()
        .filter(|&&(_, h, _)| h.0 < 16)
        .map(|&(t, _, _)| t)
        .min()
        .unwrap();
    let t_far = log
        .iter()
        .filter(|&&(_, h, _)| h.0 >= 16)
        .map(|&(t, _, _)| t)
        .min()
        .unwrap();
    assert!(t_near < t_far);
}

#[test]
fn frame_loss_kills_whole_datagram() {
    // With 100% frame loss nothing arrives; with loss of any fragment the
    // datagram never completes reassembly.
    let mut cfg = no_jitter();
    cfg.faults = FaultParams::frame_loss(1.0);
    let mut sim = Sim::new(cfg, 5);
    let hosts = topology::single_switch(&mut sim, 2);
    let log = new_log();
    sim.spawn(
        hosts[0],
        PORT,
        Box::new(Blaster {
            dest: UdpDest::host(hosts[1], PORT),
            sizes: vec![10_000],
        }),
    );
    sim.spawn(hosts[1], PORT, Box::new(Sink { log: log.clone() }));
    sim.run();

    assert!(log.borrow().is_empty());
    assert!(sim.trace().drops_wire_fault > 0);
    assert_eq!(sim.trace().datagrams_delivered, 0);
}

#[test]
fn partial_fragment_loss_drops_datagram_via_reassembly_timeout() {
    let mut cfg = no_jitter();
    cfg.faults = FaultParams::frame_loss(0.3);
    let mut sim = Sim::new(cfg, 11);
    let hosts = topology::single_switch(&mut sim, 2);
    let log = new_log();
    // 40 datagrams of 10 KB = 7 fragments each; with 30% frame loss almost
    // every datagram loses at least one fragment.
    sim.spawn(
        hosts[0],
        PORT,
        Box::new(Blaster {
            dest: UdpDest::host(hosts[1], PORT),
            sizes: vec![10_000; 40],
        }),
    );
    sim.spawn(hosts[1], PORT, Box::new(Sink { log: log.clone() }));
    sim.run();

    let delivered = log.borrow().len() as u64;
    assert_eq!(
        delivered + sim.trace().drops_reassembly,
        40,
        "every datagram either completes or times out"
    );
    assert!(sim.trace().drops_reassembly > 0);
}

#[test]
fn socket_buffer_overflow_drops_datagrams() {
    // A slow receiver (huge per-datagram CPU cost) with a tiny socket
    // buffer must shed load.
    let mut cfg = no_jitter();
    cfg.host.recv_sockbuf = 4 * 1024;
    cfg.host.recv_syscall = Duration::from_millis(5);
    let mut sim = Sim::new(cfg, 2);
    let hosts = topology::single_switch(&mut sim, 2);
    let log = new_log();
    sim.spawn(
        hosts[0],
        PORT,
        Box::new(Blaster {
            dest: UdpDest::host(hosts[1], PORT),
            sizes: vec![1_000; 100],
        }),
    );
    sim.spawn(hosts[1], PORT, Box::new(Sink { log: log.clone() }));
    sim.run();

    assert!(sim.trace().drops_sockbuf > 0, "expected sockbuf drops");
    assert_eq!(
        log.borrow().len() as u64 + sim.trace().drops_sockbuf,
        100,
        "each datagram is either delivered or dropped at the socket"
    );
}

#[test]
fn identical_seeds_are_bit_identical_and_different_seeds_diverge() {
    fn run(seed: u64) -> (u64, Vec<(Time, HostId, usize)>) {
        let mut sim = Sim::new(SimConfig::default(), seed);
        let hosts = topology::two_switch_cluster(&mut sim, 20);
        let group = sim.create_group(&hosts[1..]);
        let log = new_log();
        sim.spawn(
            hosts[0],
            PORT,
            Box::new(Blaster {
                dest: UdpDest::group(group, PORT),
                sizes: vec![3_000; 10],
            }),
        );
        for &h in &hosts[1..] {
            sim.spawn(h, PORT, Box::new(Sink { log: log.clone() }));
        }
        sim.run();
        let out = log.borrow().clone();
        (sim.now().as_nanos(), out)
    }

    let a = run(1234);
    let b = run(1234);
    let c = run(9999);
    assert_eq!(a, b, "same seed must reproduce exactly");
    assert_ne!(
        a.1, c.1,
        "different seeds should change CPU jitter and thus timestamps"
    );
}

#[test]
fn timers_fire_and_rearm() {
    struct Ticker {
        interval: rmwire::Duration,
        fired: Rc<RefCell<Vec<Time>>>,
    }
    impl Process for Ticker {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let at = ctx.now() + self.interval;
            ctx.set_timer(at);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>) {
            self.fired.borrow_mut().push(ctx.now());
            if self.fired.borrow().len() < 3 {
                let at = ctx.now() + self.interval;
                ctx.set_timer(at);
            }
        }
    }

    let fired = Rc::new(RefCell::new(Vec::new()));
    let mut sim = Sim::new(no_jitter(), 1);
    let hosts = topology::single_switch(&mut sim, 1);
    sim.spawn(
        hosts[0],
        PORT,
        Box::new(Ticker {
            interval: Duration::from_millis(10),
            fired: fired.clone(),
        }),
    );
    sim.run();

    let fired = fired.borrow();
    assert_eq!(fired.len(), 3);
    assert_eq!(fired[0].as_nanos(), 10_000_000);
    assert_eq!(fired[1].as_nanos(), 20_000_000);
    assert_eq!(fired[2].as_nanos(), 30_000_000);
}

#[test]
fn cleared_timers_do_not_fire() {
    struct SetThenClear;
    impl Process for SetThenClear {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let at = ctx.now() + Duration::from_millis(5);
            ctx.set_timer(at);
            ctx.clear_timer();
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>) {
            panic!("cleared timer fired");
        }
    }

    let mut sim = Sim::new(no_jitter(), 1);
    let hosts = topology::single_switch(&mut sim, 1);
    sim.spawn(hosts[0], PORT, Box::new(SetThenClear));
    sim.run();
}

#[test]
fn rearming_replaces_previous_deadline() {
    struct Rearm {
        fired: Rc<RefCell<Vec<Time>>>,
    }
    impl Process for Rearm {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(ctx.now() + Duration::from_millis(5));
            // Replace with a later deadline; only the later one may fire.
            ctx.set_timer(ctx.now() + Duration::from_millis(20));
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>) {
            self.fired.borrow_mut().push(ctx.now());
        }
    }

    let fired = Rc::new(RefCell::new(Vec::new()));
    let mut sim = Sim::new(no_jitter(), 1);
    let hosts = topology::single_switch(&mut sim, 1);
    sim.spawn(
        hosts[0],
        PORT,
        Box::new(Rearm {
            fired: fired.clone(),
        }),
    );
    sim.run();

    let fired = fired.borrow();
    assert_eq!(fired.len(), 1);
    assert_eq!(fired[0].as_nanos(), 20_000_000);
}

#[test]
fn shared_bus_delivers_and_collides() {
    let cfg = SimConfig {
        fabric: FabricKind::SharedBus,
        ..no_jitter()
    };
    let mut sim = Sim::new(cfg, 17);
    let hosts = topology::shared_bus(&mut sim, 4);
    let log = new_log();
    // Three hosts blast at host 0 simultaneously: contention guaranteed.
    for &h in &hosts[1..] {
        sim.spawn(
            h,
            PORT,
            Box::new(Blaster {
                dest: UdpDest::host(hosts[0], PORT),
                sizes: vec![1_000; 20],
            }),
        );
    }
    sim.spawn(hosts[0], PORT, Box::new(Sink { log: log.clone() }));
    sim.run();

    assert_eq!(log.borrow().len(), 60, "CSMA/CD must remain reliable");
    assert!(
        sim.trace().collisions > 0,
        "contention must cause collisions"
    );
}

#[test]
fn shared_bus_multicast_reaches_all_members() {
    let cfg = SimConfig {
        fabric: FabricKind::SharedBus,
        ..no_jitter()
    };
    let mut sim = Sim::new(cfg, 21);
    let hosts = topology::shared_bus(&mut sim, 5);
    let group = sim.create_group(&hosts[1..]);
    let log = new_log();
    sim.spawn(
        hosts[0],
        PORT,
        Box::new(Blaster {
            dest: UdpDest::group(group, PORT),
            sizes: vec![2_000; 3],
        }),
    );
    for &h in &hosts[1..] {
        sim.spawn(h, PORT, Box::new(Sink { log: log.clone() }));
    }
    sim.run();

    assert_eq!(log.borrow().len(), 12);
}

#[test]
fn blocking_send_paces_a_blast_at_wire_speed() {
    // 2 MB blasted as 1472-byte datagrams through a 128 KiB send buffer:
    // the sender must finish no earlier than the wire can carry it.
    let mut sim = Sim::new(no_jitter(), 4);
    let hosts = topology::single_switch(&mut sim, 2);
    let n = 1400usize;
    let log = new_log();
    sim.spawn(
        hosts[0],
        PORT,
        Box::new(Blaster {
            dest: UdpDest::host(hosts[1], PORT),
            sizes: vec![1_472; n],
        }),
    );
    sim.spawn(hosts[1], PORT, Box::new(Sink { log: log.clone() }));
    sim.run();

    assert_eq!(log.borrow().len(), n);
    let wire_time = Duration::transmission(1538 * n, 100_000_000);
    assert!(
        sim.now().as_nanos() >= wire_time.as_nanos(),
        "finished faster than the wire allows: {} < {}",
        sim.now(),
        Time::ZERO + wire_time
    );
}

#[test]
fn run_until_respects_deadline() {
    let mut sim = Sim::new(no_jitter(), 1);
    let hosts = topology::single_switch(&mut sim, 2);
    let log = new_log();
    sim.spawn(
        hosts[0],
        PORT,
        Box::new(Blaster {
            dest: UdpDest::host(hosts[1], PORT),
            sizes: vec![100; 5],
        }),
    );
    sim.spawn(hosts[1], PORT, Box::new(Sink { log: log.clone() }));
    sim.run_until(Time::from_nanos(1));
    assert!(sim.now() <= Time::from_nanos(1));
    sim.run();
    assert_eq!(log.borrow().len(), 5);
}

#[test]
fn event_log_records_sends_deliveries_and_drops() {
    let mut cfg = no_jitter();
    cfg.faults = FaultParams::frame_loss(0.5);
    let mut sim = Sim::new(cfg, 13);
    sim.set_log_capacity(1024);
    let hosts = topology::single_switch(&mut sim, 2);
    let log = new_log();
    sim.spawn(
        hosts[0],
        PORT,
        Box::new(Blaster {
            dest: UdpDest::host(hosts[1], PORT),
            sizes: vec![5_000; 20],
        }),
    );
    sim.spawn(hosts[1], PORT, Box::new(Sink { log: log.clone() }));
    sim.run();

    use netsim::trace::LogEvent;
    let entries = &sim.event_log().entries;
    let sends = entries
        .iter()
        .filter(|(_, e)| matches!(e, LogEvent::DatagramSent { .. }))
        .count();
    let delivers = entries
        .iter()
        .filter(|(_, e)| matches!(e, LogEvent::DatagramDelivered { .. }))
        .count();
    let drops = entries
        .iter()
        .filter(|(_, e)| matches!(e, LogEvent::Drop { .. }))
        .count();
    assert_eq!(sends, 20);
    assert_eq!(delivers, log.borrow().len());
    // Datagrams that lost *some* fragments show up as reassembly-timeout
    // drops; datagrams whose every fragment died on the wire leave no
    // receiver-side record at all, so the sum is bounded, not exact.
    assert!(delivers + drops <= 20);
    assert!(drops > 0, "50% frame loss must produce datagram drops");
    // Timestamps are monotone.
    assert!(entries.windows(2).all(|w| w[0].0 <= w[1].0));
}

#[test]
fn event_log_disabled_by_default() {
    let mut sim = Sim::new(no_jitter(), 1);
    let hosts = topology::single_switch(&mut sim, 2);
    let log = new_log();
    sim.spawn(
        hosts[0],
        PORT,
        Box::new(Blaster {
            dest: UdpDest::host(hosts[1], PORT),
            sizes: vec![100],
        }),
    );
    sim.spawn(hosts[1], PORT, Box::new(Sink { log }));
    sim.run();
    assert!(sim.event_log().entries.is_empty());
}
