//! Fabric-level behaviors: switch queue congestion, CSMA/CD dynamics,
//! routing across cascades, and CPU-cost accounting.

use bytes::Bytes;
use netsim::process::{Ctx, DatagramIn, Process};
use netsim::{topology, FabricKind, HostId, Sim, SimConfig, UdpDest};
use rmwire::{Duration, Time};
use std::cell::RefCell;
use std::rc::Rc;

const PORT: u16 = 7;

struct Blast {
    dest: UdpDest,
    sizes: Vec<usize>,
}
impl Process for Blast {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for &s in &self.sizes {
            ctx.send(self.dest, Bytes::from(vec![9u8; s]));
        }
    }
}

struct Sink {
    log: Rc<RefCell<Vec<(Time, HostId, usize)>>>,
}
impl Process for Sink {
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dg: DatagramIn) {
        self.log
            .borrow_mut()
            .push((ctx.now(), ctx.host(), dg.payload.len()));
    }
}

fn no_jitter() -> SimConfig {
    let mut c = SimConfig::default();
    c.host.cpu_jitter = 0.0;
    c
}

#[test]
fn switch_output_queue_tail_drops_under_incast() {
    // Many senders blast one receiver through a tiny switch queue: the
    // shared output port must tail-drop.
    let mut cfg = no_jitter();
    cfg.switch.queue_bytes = 4 * 1024;
    let mut sim = Sim::new(cfg, 3);
    let hosts = topology::single_switch(&mut sim, 9);
    let log = Rc::new(RefCell::new(Vec::new()));
    for &h in &hosts[1..] {
        sim.spawn(
            h,
            PORT,
            Box::new(Blast {
                dest: UdpDest::host(hosts[0], PORT),
                sizes: vec![1_400; 50],
            }),
        );
    }
    sim.spawn(hosts[0], PORT, Box::new(Sink { log: log.clone() }));
    sim.run();

    assert!(
        sim.trace().drops_switch_queue > 0,
        "8-to-1 incast through a 4 KB queue must drop"
    );
    // Conservation: every datagram is delivered or accounted lost.
    let delivered = log.borrow().len() as u64;
    assert!(delivered > 0);
    assert!(delivered < 400);
}

#[test]
fn incast_is_lossless_with_big_queues() {
    let mut cfg = no_jitter();
    cfg.switch.queue_bytes = 4 * 1024 * 1024;
    let mut sim = Sim::new(cfg, 3);
    let hosts = topology::single_switch(&mut sim, 9);
    let log = Rc::new(RefCell::new(Vec::new()));
    for &h in &hosts[1..] {
        sim.spawn(
            h,
            PORT,
            Box::new(Blast {
                dest: UdpDest::host(hosts[0], PORT),
                sizes: vec![1_400; 50],
            }),
        );
    }
    sim.spawn(hosts[0], PORT, Box::new(Sink { log: log.clone() }));
    sim.run();
    assert_eq!(log.borrow().len(), 400);
    assert!(sim.trace().clean());
}

#[test]
fn cascade_unicast_latency_adds_one_store_and_forward() {
    // The same transfer across one switch vs across the inter-switch link
    // differs by exactly one store-and-forward (frame time + latency +
    // propagation), when jitter is off.
    fn one_way(n_hosts: usize, to_far: bool) -> u64 {
        let mut sim = Sim::new(no_jitter(), 1);
        let hosts = topology::two_switch_cluster(&mut sim, n_hosts);
        let dst = if to_far {
            *hosts.last().unwrap()
        } else {
            hosts[1]
        };
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.spawn(
            hosts[0],
            PORT,
            Box::new(Blast {
                dest: UdpDest::host(dst, PORT),
                sizes: vec![1_000],
            }),
        );
        for &h in &hosts[1..] {
            if h == dst {
                sim.spawn(h, PORT, Box::new(Sink { log: log.clone() }));
            }
        }
        sim.run();
        let t = log.borrow()[0].0.as_nanos();
        t
    }
    let near = one_way(18, false);
    let far = one_way(18, true);
    let cfg = no_jitter();
    // Frame: 1000 + 28 + 18 = 1046 bytes -> 1066 wire bytes at 100 Mbit/s.
    let frame_time = Duration::transmission(1_066, 100_000_000).as_nanos();
    let extra = frame_time + cfg.switch.latency.as_nanos() + cfg.link.prop_delay.as_nanos();
    assert_eq!(far - near, extra, "exactly one extra hop");
}

#[test]
fn csma_cd_backoff_resolves_heavy_contention() {
    // 10 stations, simultaneous bursts: everything must eventually get
    // through with a plausible collision count, and the medium must have
    // been serialized (total time >= total wire time).
    let cfg = SimConfig {
        fabric: FabricKind::SharedBus,
        ..no_jitter()
    };
    let mut sim = Sim::new(cfg, 77);
    let hosts = topology::shared_bus(&mut sim, 11);
    let log = Rc::new(RefCell::new(Vec::new()));
    for &h in &hosts[1..] {
        sim.spawn(
            h,
            PORT,
            Box::new(Blast {
                dest: UdpDest::host(hosts[0], PORT),
                sizes: vec![1_000; 30],
            }),
        );
    }
    sim.spawn(hosts[0], PORT, Box::new(Sink { log: log.clone() }));
    sim.run();

    // CSMA/CD may legitimately drop a frame after 16 failed attempts
    // under heavy contention; everything else must arrive.
    let delivered = log.borrow().len() as u64;
    assert_eq!(
        delivered + sim.trace().drops_collisions,
        300,
        "every frame is delivered or dropped after 16 collisions"
    );
    assert!(delivered >= 290, "excessive-collision drops must stay rare");
    assert!(sim.trace().collisions > 10, "contention must collide");
    let wire = Duration::transmission(1_066 * 300, 100_000_000);
    assert!(
        sim.now().as_nanos() > wire.as_nanos(),
        "shared medium serializes all traffic"
    );
}

#[test]
fn csma_cd_uncontended_station_transmits_immediately() {
    let cfg = SimConfig {
        fabric: FabricKind::SharedBus,
        ..no_jitter()
    };
    let mut sim = Sim::new(cfg, 1);
    let hosts = topology::shared_bus(&mut sim, 2);
    let log = Rc::new(RefCell::new(Vec::new()));
    sim.spawn(
        hosts[0],
        PORT,
        Box::new(Blast {
            dest: UdpDest::host(hosts[1], PORT),
            sizes: vec![1_000; 5],
        }),
    );
    sim.spawn(hosts[1], PORT, Box::new(Sink { log: log.clone() }));
    sim.run();
    assert_eq!(log.borrow().len(), 5);
    assert_eq!(sim.trace().collisions, 0, "no contention, no collisions");
}

#[test]
fn multicast_on_two_switch_cluster_costs_one_wire_per_segment() {
    // A multicast frame crosses each link once: total wire bytes must be
    // (number of links carrying it) x frame size, not receivers x frame.
    let mut sim = Sim::new(no_jitter(), 1);
    let hosts = topology::two_switch_cluster(&mut sim, 31);
    let group = sim.create_group(&hosts[1..]);
    let log = Rc::new(RefCell::new(Vec::new()));
    sim.spawn(
        hosts[0],
        PORT,
        Box::new(Blast {
            dest: UdpDest::group(group, PORT),
            sizes: vec![1_000],
        }),
    );
    for &h in &hosts[1..] {
        sim.spawn(h, PORT, Box::new(Sink { log: log.clone() }));
    }
    sim.run();
    assert_eq!(log.borrow().len(), 30);
    // Links carrying the frame: sender uplink + 15 receiver downlinks on
    // sw0 + inter-switch + 15 downlinks on sw1 = 32 serializations.
    let wire = sim.trace().wire_bytes_sent;
    assert_eq!(wire, 1_066 * 32, "multicast duplicates only at switches");
}

#[test]
fn unicast_conservation_under_random_loss() {
    // sent == delivered + wire-drops + reassembly-timeouts (eventually).
    let mut cfg = no_jitter();
    cfg.faults.frame_loss = 0.05;
    let mut sim = Sim::new(cfg, 9);
    let hosts = topology::single_switch(&mut sim, 2);
    let log = Rc::new(RefCell::new(Vec::new()));
    sim.spawn(
        hosts[0],
        PORT,
        Box::new(Blast {
            dest: UdpDest::host(hosts[1], PORT),
            sizes: vec![4_000; 100],
        }),
    );
    sim.spawn(hosts[1], PORT, Box::new(Sink { log: log.clone() }));
    sim.run();

    let t = sim.trace();
    let delivered = log.borrow().len() as u64;
    assert_eq!(
        delivered + t.drops_reassembly,
        100,
        "every datagram is delivered or timed out in reassembly \
         (frame drops only ever kill whole datagrams through reassembly)"
    );
    assert!(t.drops_wire_fault > 0);
}

#[test]
fn zero_length_datagrams_flow() {
    let mut sim = Sim::new(no_jitter(), 1);
    let hosts = topology::single_switch(&mut sim, 2);
    let log = Rc::new(RefCell::new(Vec::new()));
    sim.spawn(
        hosts[0],
        PORT,
        Box::new(Blast {
            dest: UdpDest::host(hosts[1], PORT),
            sizes: vec![0, 0, 0],
        }),
    );
    sim.spawn(hosts[1], PORT, Box::new(Sink { log: log.clone() }));
    sim.run();
    let log = log.borrow();
    assert_eq!(log.len(), 3);
    assert!(log.iter().all(|&(_, _, len)| len == 0));
}

#[test]
fn max_size_datagram_fragments_and_reassembles() {
    let mut sim = Sim::new(no_jitter(), 1);
    let hosts = topology::single_switch(&mut sim, 2);
    let log = Rc::new(RefCell::new(Vec::new()));
    let max = netsim::frame::MAX_DATAGRAM;
    sim.spawn(
        hosts[0],
        PORT,
        Box::new(Blast {
            dest: UdpDest::host(hosts[1], PORT),
            sizes: vec![max],
        }),
    );
    sim.spawn(hosts[1], PORT, Box::new(Sink { log: log.clone() }));
    sim.run();
    assert_eq!(log.borrow()[0].2, max);
    assert_eq!(sim.trace().frames_sent, 45);
}

#[test]
fn heterogeneous_host_params_slow_one_receiver() {
    // Two identical transfers; in the second, the receiver's CPU is 10x
    // slower. Its delivery completes later, everything else equal.
    fn run(slow: bool) -> u64 {
        let mut sim = Sim::new(no_jitter(), 1);
        let hosts = topology::single_switch(&mut sim, 2);
        if slow {
            let mut p = sim.config().host;
            p.recv_syscall = p.recv_syscall * 10;
            p.recv_per_byte_ns *= 10;
            sim.set_host_params(hosts[1], p);
        }
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.spawn(
            hosts[0],
            PORT,
            Box::new(Blast {
                dest: UdpDest::host(hosts[1], PORT),
                sizes: vec![10_000; 5],
            }),
        );
        sim.spawn(hosts[1], PORT, Box::new(Sink { log: log.clone() }));
        sim.run();
        assert_eq!(log.borrow().len(), 5);
        let t = log.borrow().last().unwrap().0.as_nanos();
        t
    }
    let fast = run(false);
    let slow = run(true);
    assert!(
        slow > fast + 1_000_000,
        "a 10x slower receiver CPU must be visibly slower: {fast} vs {slow}"
    );
}

#[test]
fn frame_duplication_produces_duplicate_datagrams() {
    // 100% duplication of single-fragment datagrams: the host reassembles
    // the first copy, then sees a fully-duplicate fragment train -- which
    // it treats as a fresh (complete) datagram with the same IP id and
    // delivers again. Protocols de-duplicate at the transfer layer; the
    // fabric's job is only to not lose anything.
    let mut cfg = no_jitter();
    cfg.faults.frame_dup = 1.0;
    let mut sim = Sim::new(cfg, 1);
    let hosts = topology::single_switch(&mut sim, 2);
    let log = Rc::new(RefCell::new(Vec::new()));
    sim.spawn(
        hosts[0],
        PORT,
        Box::new(Blast {
            dest: UdpDest::host(hosts[1], PORT),
            sizes: vec![500; 5],
        }),
    );
    sim.spawn(hosts[1], PORT, Box::new(Sink { log: log.clone() }));
    sim.run();
    assert!(
        log.borrow().len() >= 5,
        "nothing may be lost under duplication"
    );
}

#[test]
fn jumbo_frames_reduce_framing_overhead() {
    fn wire_bytes(mtu: usize) -> u64 {
        let mut cfg = no_jitter();
        cfg.link.mtu = mtu;
        let mut sim = Sim::new(cfg, 1);
        let hosts = topology::single_switch(&mut sim, 2);
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.spawn(
            hosts[0],
            PORT,
            Box::new(Blast {
                dest: UdpDest::host(hosts[1], PORT),
                sizes: vec![60_000; 5],
            }),
        );
        sim.spawn(hosts[1], PORT, Box::new(Sink { log: log.clone() }));
        sim.run();
        assert_eq!(log.borrow().len(), 5, "mtu {mtu}");
        sim.trace().wire_bytes_sent
    }
    let standard = wire_bytes(1_500);
    let jumbo = wire_bytes(9_000);
    assert!(
        jumbo < standard,
        "jumbo frames must cut per-fragment overhead: {jumbo} vs {standard}"
    );
    // 60 kB at 1500: 41 fragments of ~66 B overhead each; at 9000: 7.
    assert!(standard - jumbo > 2 * 5 * (41 - 7) * 40);
}

#[test]
fn tiny_mtu_fragments_heavily_and_still_works() {
    let mut cfg = no_jitter();
    cfg.link.mtu = 576; // the classic minimum-reassembly MTU
    let mut sim = Sim::new(cfg, 1);
    let hosts = topology::single_switch(&mut sim, 2);
    let log = Rc::new(RefCell::new(Vec::new()));
    sim.spawn(
        hosts[0],
        PORT,
        Box::new(Blast {
            dest: UdpDest::host(hosts[1], PORT),
            sizes: vec![65_507],
        }),
    );
    sim.spawn(hosts[1], PORT, Box::new(Sink { log: log.clone() }));
    sim.run();
    assert_eq!(log.borrow().len(), 1);
    assert_eq!(log.borrow()[0].2, 65_507);
    // 65507 / 548 = 120 fragments.
    assert_eq!(sim.trace().frames_sent, 120);
}

#[test]
fn slow_uplink_paces_one_host() {
    // Host 1's uplink at 10 Mbit/s: the same blast takes ~10x longer to
    // reach host 0 from h1 than from h2 (100 Mbit/s).
    let mut sim = Sim::new(no_jitter(), 1);
    let hosts = topology::single_switch(&mut sim, 3);
    let mut slow = *sim.config();
    slow.link.rate_bps = 10_000_000;
    sim.set_link_params(hosts[1], slow.link);

    let log = Rc::new(RefCell::new(Vec::new()));
    sim.spawn(
        hosts[1],
        PORT,
        Box::new(Blast {
            dest: UdpDest::host(hosts[0], PORT),
            sizes: vec![50_000],
        }),
    );
    sim.spawn(
        hosts[2],
        PORT,
        Box::new(Blast {
            dest: UdpDest::host(hosts[0], PORT),
            sizes: vec![50_000],
        }),
    );
    sim.spawn(hosts[0], PORT, Box::new(Sink { log: log.clone() }));
    sim.run();

    let log = log.borrow();
    assert_eq!(log.len(), 2);
    // Deliveries carry (time, receiving host, len); identify by order:
    // the fast host's datagram lands far earlier.
    let mut times: Vec<u64> = log.iter().map(|&(t, _, _)| t.as_nanos()).collect();
    times.sort();
    assert!(
        times[1] > times[0] * 5,
        "slow uplink must dominate: {times:?}"
    );
}

#[test]
fn slow_trunk_bottlenecks_cross_switch_traffic() {
    // Degrade the inter-switch trunk to 10 Mbit/s: multicast to receivers
    // behind the trunk crawls while same-switch receivers are unaffected.
    let mut sim = Sim::new(no_jitter(), 1);
    let hosts = topology::two_switch_cluster(&mut sim, 18);
    let mut trunk = sim.config().link;
    trunk.rate_bps = 10_000_000;
    sim.set_trunk_params(netsim::SwitchId(0), netsim::SwitchId(1), trunk);

    let group = sim.create_group(&hosts[1..]);
    let log = Rc::new(RefCell::new(Vec::new()));
    sim.spawn(
        hosts[0],
        PORT,
        Box::new(Blast {
            dest: UdpDest::group(group, PORT),
            sizes: vec![50_000],
        }),
    );
    for &h in &hosts[1..] {
        sim.spawn(h, PORT, Box::new(Sink { log: log.clone() }));
    }
    sim.run();

    let log = log.borrow();
    assert_eq!(log.len(), 17);
    let near_max = log
        .iter()
        .filter(|&&(_, h, _)| h.0 < 16)
        .map(|&(t, _, _)| t.as_nanos())
        .max()
        .unwrap();
    let far_min = log
        .iter()
        .filter(|&&(_, h, _)| h.0 >= 16)
        .map(|&(t, _, _)| t.as_nanos())
        .min()
        .unwrap();
    assert!(
        far_min > near_max + 20_000_000,
        "10 Mbit/s trunk must delay the far side by tens of ms: near={near_max} far={far_min}"
    );
}

#[test]
#[should_panic(expected = "not directly cabled")]
fn trunk_override_requires_cable() {
    let mut sim = Sim::new(no_jitter(), 1);
    let _ = topology::single_switch(&mut sim, 2);
    let sw2 = sim.add_switch();
    sim.set_trunk_params(netsim::SwitchId(0), sw2, sim.config().link);
}

#[test]
fn three_switch_chain_routes_unicast_and_multicast() {
    let mut sim = Sim::new(no_jitter(), 1);
    let hosts = topology::switch_chain(&mut sim, 9, 3);
    let group = sim.create_group(&hosts[1..]);
    let log = Rc::new(RefCell::new(Vec::new()));
    sim.spawn(
        hosts[0],
        PORT,
        Box::new(Blast {
            dest: UdpDest::group(group, PORT),
            sizes: vec![5_000; 3],
        }),
    );
    for &h in &hosts[1..] {
        sim.spawn(h, PORT, Box::new(Sink { log: log.clone() }));
    }
    sim.run();
    assert_eq!(log.borrow().len(), 24, "3 datagrams x 8 receivers");
    assert!(sim.trace().clean());
}

#[test]
fn star_of_switches_routes_across_leaves() {
    let mut sim = Sim::new(no_jitter(), 2);
    let hosts = topology::star_of_switches(&mut sim, 12, 4);
    let log = Rc::new(RefCell::new(Vec::new()));
    // Unicast from a host on leaf 0 to one on leaf 3 crosses core.
    sim.spawn(
        hosts[0],
        PORT,
        Box::new(Blast {
            dest: UdpDest::host(hosts[3], PORT),
            sizes: vec![2_000; 5],
        }),
    );
    sim.spawn(hosts[3], PORT, Box::new(Sink { log: log.clone() }));
    sim.run();
    assert_eq!(log.borrow().len(), 5);
}
