//! Fault-plan behaviors: link outages, burst loss, corruption,
//! reordering, host crash/pause — and the guarantee that an empty plan
//! changes nothing.

use bytes::Bytes;
use netsim::process::{Ctx, DatagramIn, Process};
use netsim::{topology, FaultParams, FaultPlan, HostId, Sim, SimConfig, UdpDest};
use rmwire::{Duration, Time};
use std::cell::RefCell;
use std::rc::Rc;

const PORT: u16 = 7000;

type Log = Rc<RefCell<Vec<(Time, HostId, usize)>>>;

struct Blaster {
    dest: UdpDest,
    sizes: Vec<usize>,
}

impl Process for Blaster {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for &s in &self.sizes {
            ctx.send(self.dest, Bytes::from(vec![0xabu8; s]));
        }
    }
}

struct Sink {
    log: Log,
}

impl Process for Sink {
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dg: DatagramIn) {
        self.log
            .borrow_mut()
            .push((ctx.now(), ctx.host(), dg.payload.len()));
    }
}

fn new_log() -> Log {
    Rc::new(RefCell::new(Vec::new()))
}

/// One blaster firing `n` 500-byte datagrams at a sink, with `plan`
/// installed. Returns (deliveries, sim) for inspection.
fn blast_run(plan: FaultPlan, cfg: SimConfig, n: usize, seed: u64) -> (Log, Sim) {
    let mut sim = Sim::new(cfg, seed);
    let hosts = topology::single_switch(&mut sim, 2);
    sim.set_fault_plan(plan);
    let log = new_log();
    sim.spawn(
        hosts[0],
        PORT,
        Box::new(Blaster {
            dest: UdpDest::host(hosts[1], PORT),
            sizes: vec![500; n],
        }),
    );
    sim.spawn(
        hosts[1],
        PORT,
        Box::new(Sink {
            log: Rc::clone(&log),
        }),
    );
    sim.run_until(Time::from_millis(5_000));
    (log, sim)
}

#[test]
fn empty_plan_changes_nothing() {
    // A seeded run with random faults must be bit-identical whether the
    // (empty) fault plan was installed or not: the plan may not draw
    // randomness or perturb event ordering unless a knob is enabled.
    let cfg = SimConfig {
        faults: FaultParams::new(0.05, 0.02, 0.05),
        ..SimConfig::default()
    };
    let run = |install_plan: bool| {
        let mut sim = Sim::new(cfg, 99);
        let hosts = topology::single_switch(&mut sim, 2);
        if install_plan {
            sim.set_fault_plan(FaultPlan::default());
        }
        let log = new_log();
        sim.spawn(
            hosts[0],
            PORT,
            Box::new(Blaster {
                dest: UdpDest::host(hosts[1], PORT),
                sizes: vec![900; 200],
            }),
        );
        sim.spawn(
            hosts[1],
            PORT,
            Box::new(Sink {
                log: Rc::clone(&log),
            }),
        );
        sim.run_until(Time::from_millis(5_000));
        let deliveries = log.borrow().clone();
        (deliveries, sim.trace().clone())
    };
    let (log_a, trace_a) = run(false);
    let (log_b, trace_b) = run(true);
    assert_eq!(log_a, log_b, "empty plan perturbed deliveries");
    assert_eq!(trace_a, trace_b, "empty plan perturbed counters");
}

#[test]
fn link_down_window_blackholes_the_edge() {
    // The outage covers the whole run: nothing gets through.
    let plan =
        FaultPlan::default().with_link_down(HostId(1), Time::ZERO, Time::from_millis(100_000));
    let (log, sim) = blast_run(plan, SimConfig::default(), 20, 1);
    assert_eq!(log.borrow().len(), 0);
    assert_eq!(sim.trace().drops_link_down, 20);

    // The same outage scheduled after the run is a no-op.
    let plan = FaultPlan::default().with_link_down(
        HostId(1),
        Time::from_millis(100_000),
        Time::from_millis(200_000),
    );
    let (log, sim) = blast_run(plan, SimConfig::default(), 20, 1);
    assert_eq!(log.borrow().len(), 20);
    assert_eq!(sim.trace().drops_link_down, 0);
}

#[test]
fn per_link_loss_targets_only_its_edge() {
    // Total loss on an uninvolved host's link must not affect this flow.
    let plan = FaultPlan::default().with_link_loss(HostId(0), 1.0);
    let (log, sim) = blast_run(plan, SimConfig::default(), 15, 2);
    assert_eq!(log.borrow().len(), 0, "sender edge loss kills everything");
    assert!(sim.trace().drops_wire_fault >= 15);

    let plan = FaultPlan::default().with_link_loss(HostId(1), 0.0);
    let (log, _) = blast_run(plan, SimConfig::default(), 15, 2);
    assert_eq!(log.borrow().len(), 15, "zero-probability loss is a no-op");
}

#[test]
fn burst_loss_drops_frames_in_bursts() {
    let plan = FaultPlan::default().with_burst(0.3, 8.0);
    let (log, sim) = blast_run(plan, SimConfig::default(), 300, 3);
    let delivered = log.borrow().len();
    assert!(sim.trace().drops_burst > 0, "burst channel never went bad");
    assert!(
        delivered < 300 && delivered > 0,
        "expected partial delivery, got {delivered}"
    );
}

#[test]
fn corrupt_frames_are_discarded_at_the_nic() {
    let plan = FaultPlan::default().with_corrupt(1.0);
    let (log, sim) = blast_run(plan, SimConfig::default(), 10, 4);
    assert_eq!(log.borrow().len(), 0);
    assert!(sim.trace().drops_corrupt >= 10);
}

#[test]
fn reordering_delays_but_never_loses() {
    let plan = FaultPlan::default().with_reorder(1.0, Duration::from_millis(1));
    let (log, sim) = blast_run(plan, SimConfig::default(), 25, 5);
    assert_eq!(log.borrow().len(), 25, "reordering must not lose frames");
    assert!(sim.trace().frames_reordered >= 25);
    assert_eq!(sim.trace().total_drops(), 0);
}

#[test]
fn crashed_host_goes_silent() {
    let plan = FaultPlan::default().with_crash(HostId(1), Time::ZERO);
    let (log, sim) = blast_run(plan, SimConfig::default(), 12, 6);
    assert_eq!(log.borrow().len(), 0, "a crashed host delivers nothing");
    assert!(sim.trace().drops_host_down > 0);
}

#[test]
fn paused_host_delivers_late_but_completely() {
    let pause_end = Time::from_millis(50);
    let plan = FaultPlan::default().with_pause(HostId(1), Time::ZERO, pause_end);
    let (log, sim) = blast_run(plan, SimConfig::default(), 5, 7);
    let log = log.borrow();
    assert_eq!(log.len(), 5, "a paused host catches up after resuming");
    assert!(
        log.iter().all(|&(t, _, _)| t >= pause_end),
        "deliveries during the pause: {log:?}"
    );
    assert_eq!(sim.trace().total_drops(), 0);
}

#[test]
fn chaos_runs_are_deterministic() {
    let plan = FaultPlan::default()
        .with_burst(0.2, 4.0)
        .with_reorder(0.1, Duration::from_millis(1))
        .with_corrupt(0.02)
        .with_link_loss(HostId(1), 0.05);
    let (log_a, sim_a) = blast_run(plan.clone(), SimConfig::default(), 200, 11);
    let (log_b, sim_b) = blast_run(plan, SimConfig::default(), 200, 11);
    assert_eq!(*log_a.borrow(), *log_b.borrow());
    assert_eq!(sim_a.trace(), sim_b.trace());
}

/// A blaster that sends one datagram per `interval` tick instead of all
/// at start, so faults scheduled mid-run see live traffic.
struct PacedBlaster {
    dest: UdpDest,
    interval: Duration,
    remaining: usize,
}

impl Process for PacedBlaster {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let at = ctx.now() + self.interval;
        ctx.set_timer(at);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        ctx.send(self.dest, Bytes::from(vec![0xcdu8; 400]));
        let at = ctx.now() + self.interval;
        ctx.set_timer(at);
    }
}

/// A sink that also counts `on_restart` callbacks.
struct RebootingSink {
    log: Log,
    restarts: Rc<RefCell<usize>>,
}

impl Process for RebootingSink {
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dg: DatagramIn) {
        self.log
            .borrow_mut()
            .push((ctx.now(), ctx.host(), dg.payload.len()));
    }
    fn on_restart(&mut self, _ctx: &mut Ctx<'_>) {
        *self.restarts.borrow_mut() += 1;
    }
}

#[test]
fn trunk_down_partitions_but_leaves_local_traffic() {
    // h0 and h1 on sw0, h2 on sw1; h0 multicasts to {h1, h2}. With the
    // trunk severed for the whole run, the local member keeps receiving
    // while the remote one is cut off.
    let mut sim = Sim::new(SimConfig::default(), 21);
    let sw0 = sim.add_switch();
    let sw1 = sim.add_switch();
    let hosts: Vec<HostId> = (0..3).map(|_| sim.add_host()).collect();
    sim.connect_host(hosts[0], sw0);
    sim.connect_host(hosts[1], sw0);
    sim.connect_host(hosts[2], sw1);
    sim.connect_switches(sw0, sw1);
    let group = sim.create_group(&[hosts[1], hosts[2]]);
    sim.set_fault_plan(
        FaultPlan::default().with_trunk_down(Time::ZERO, Time::from_millis(100_000)),
    );
    let log = new_log();
    sim.spawn(
        hosts[0],
        PORT,
        Box::new(Blaster {
            dest: UdpDest::group(group, PORT),
            sizes: vec![500; 10],
        }),
    );
    for &h in &hosts[1..] {
        sim.spawn(
            h,
            PORT,
            Box::new(Sink {
                log: Rc::clone(&log),
            }),
        );
    }
    sim.run_until(Time::from_millis(5_000));
    let log = log.borrow();
    assert_eq!(log.len(), 10, "local member must keep receiving");
    assert!(log.iter().all(|&(_, h, _)| h == hosts[1]));
    assert_eq!(sim.trace().drops_trunk_down, 10);
}

#[test]
fn trunk_heals_after_the_window() {
    // Paced traffic across the trunk with an outage in the middle: the
    // frames sent inside the window vanish, the rest arrive.
    let mut sim = Sim::new(SimConfig::default(), 22);
    let sw0 = sim.add_switch();
    let sw1 = sim.add_switch();
    let a = sim.add_host();
    let b = sim.add_host();
    sim.connect_host(a, sw0);
    sim.connect_host(b, sw1);
    sim.connect_switches(sw0, sw1);
    let window = (Time::from_millis(45), Time::from_millis(105));
    sim.set_fault_plan(FaultPlan::default().with_trunk_down(window.0, window.1));
    let log = new_log();
    sim.spawn(
        a,
        PORT,
        Box::new(PacedBlaster {
            dest: UdpDest::host(b, PORT),
            interval: Duration::from_millis(10),
            remaining: 20,
        }),
    );
    sim.spawn(
        b,
        PORT,
        Box::new(Sink {
            log: Rc::clone(&log),
        }),
    );
    sim.run_until(Time::from_millis(5_000));
    let log = log.borrow();
    let dropped = sim.trace().drops_trunk_down;
    assert!(dropped > 0, "no frame hit the outage window");
    assert_eq!(log.len() as u64 + dropped, 20);
    assert!(
        log.iter().all(|&(t, _, _)| t < window.0 || t >= window.1),
        "a delivery landed inside the outage: {log:?}"
    );
}

#[test]
fn crash_restart_reboots_the_host() {
    // The sink crashes mid-run and reboots: frames during the outage are
    // dropped at the dead NIC, on_restart fires once, and deliveries
    // resume after the reboot instant.
    let crash = Time::from_millis(45);
    let reboot = Time::from_millis(105);
    let plan = FaultPlan::default().with_crash_restart(HostId(1), crash, reboot);
    let mut sim = Sim::new(SimConfig::default(), 23);
    let hosts = topology::single_switch(&mut sim, 2);
    sim.set_fault_plan(plan);
    let log = new_log();
    let restarts = Rc::new(RefCell::new(0));
    sim.spawn(
        hosts[0],
        PORT,
        Box::new(PacedBlaster {
            dest: UdpDest::host(hosts[1], PORT),
            interval: Duration::from_millis(10),
            remaining: 20,
        }),
    );
    sim.spawn(
        hosts[1],
        PORT,
        Box::new(RebootingSink {
            log: Rc::clone(&log),
            restarts: Rc::clone(&restarts),
        }),
    );
    sim.run_until(Time::from_millis(5_000));
    let log = log.borrow();
    assert_eq!(*restarts.borrow(), 1, "on_restart must fire exactly once");
    assert!(sim.trace().drops_host_down > 0, "no frame hit the outage");
    assert!(
        log.iter().any(|&(t, _, _)| t < crash),
        "no delivery before the crash"
    );
    assert!(
        log.iter().any(|&(t, _, _)| t >= reboot),
        "host never delivered after rebooting"
    );
    assert!(
        log.iter().all(|&(t, _, _)| t < crash || t >= reboot),
        "a delivery landed inside the crash window: {log:?}"
    );
}

#[test]
#[should_panic(expected = "unknown h9")]
fn fault_plan_validates_hosts() {
    let mut sim = Sim::new(SimConfig::default(), 1);
    topology::single_switch(&mut sim, 2);
    sim.set_fault_plan(FaultPlan::default().with_crash(HostId(9), Time::ZERO));
}

// ---------------------------------------------------------------------
// Byzantine modes: corrupt-and-deliver, duplicate, replay, forge.
// ---------------------------------------------------------------------

type ByteLog = Rc<RefCell<Vec<(HostId, Vec<u8>)>>>;

/// A sink that records full payload bytes and the spoofable source.
struct ByteSink {
    log: ByteLog,
    srcs: Rc<RefCell<Vec<HostId>>>,
}

impl Process for ByteSink {
    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dg: DatagramIn) {
        self.log
            .borrow_mut()
            .push((ctx.host(), dg.payload.to_vec()));
        self.srcs.borrow_mut().push(dg.src_host);
    }
}

fn byte_run(plan: FaultPlan, n: usize, seed: u64) -> (ByteLog, Rc<RefCell<Vec<HostId>>>, Sim) {
    let mut sim = Sim::new(SimConfig::default(), seed);
    let hosts = topology::single_switch(&mut sim, 2);
    sim.set_fault_plan(plan);
    let log: ByteLog = Rc::new(RefCell::new(Vec::new()));
    let srcs = Rc::new(RefCell::new(Vec::new()));
    sim.spawn(
        hosts[0],
        PORT,
        Box::new(Blaster {
            dest: UdpDest::host(hosts[1], PORT),
            sizes: vec![500; n],
        }),
    );
    sim.spawn(
        hosts[1],
        PORT,
        Box::new(ByteSink {
            log: Rc::clone(&log),
            srcs: Rc::clone(&srcs),
        }),
    );
    sim.run_until(Time::from_millis(5_000));
    (log, srcs, sim)
}

#[test]
fn corrupt_deliver_flips_bytes_but_still_delivers() {
    let plan = FaultPlan::default().with_corrupt_deliver(1.0);
    let (log, _, sim) = byte_run(plan, 10, 31);
    let log = log.borrow();
    assert_eq!(log.len(), 10, "byzantine corruption must not drop");
    assert_eq!(sim.trace().byz_corrupt_delivered, 10);
    for (_, payload) in log.iter() {
        assert_eq!(payload.len(), 500, "corruption must not change length");
        assert!(
            payload.iter().any(|&b| b != 0xab),
            "every delivery must carry at least one flipped byte"
        );
    }
}

#[test]
fn duplicate_delivers_twice() {
    let plan = FaultPlan::default().with_duplicate(1.0);
    let (log, _, sim) = byte_run(plan, 10, 32);
    assert_eq!(log.borrow().len(), 20, "every datagram doubled");
    assert_eq!(sim.trace().byz_duplicates, 10);
}

#[test]
fn replay_reinjects_stale_datagrams() {
    let plan = FaultPlan::default().with_replay(0.5);
    let (log, _, sim) = byte_run(plan, 40, 33);
    let replays = sim.trace().byz_replays;
    assert!(replays > 0, "replay fault never fired");
    assert_eq!(
        log.borrow().len() as u64,
        40 + replays,
        "each replay is one extra delivery"
    );
}

#[test]
fn forged_frames_reach_the_socket_with_spoofed_source() {
    let forged = vec![0x5a; 64];
    let plan = FaultPlan::default().with_forge(
        Time::from_millis(1),
        HostId(1),
        PORT,
        HostId(0),
        forged.clone(),
    );
    let (log, srcs, sim) = byte_run(plan, 0, 34);
    let log = log.borrow();
    assert_eq!(log.len(), 1);
    assert_eq!(log[0].1, forged, "forged bytes must arrive verbatim");
    assert_eq!(srcs.borrow()[0], HostId(0), "source is spoofed");
    assert_eq!(sim.trace().byz_forged, 1);
}

#[test]
fn forged_frames_to_unbound_ports_vanish() {
    let plan = FaultPlan::default().with_forge(
        Time::from_millis(1),
        HostId(1),
        PORT + 1,
        HostId(0),
        vec![1, 2, 3],
    );
    let (log, _, sim) = byte_run(plan, 0, 35);
    assert_eq!(log.borrow().len(), 0);
    assert_eq!(sim.trace().byz_forged, 1, "injection is still counted");
}

#[test]
fn byzantine_runs_are_deterministic() {
    let plan = FaultPlan::default()
        .with_corrupt_deliver(0.3)
        .with_duplicate(0.2)
        .with_replay(0.2)
        .with_forge(
            Time::from_millis(2),
            HostId(1),
            PORT,
            HostId(0),
            vec![9; 30],
        );
    let (log_a, _, sim_a) = byte_run(plan.clone(), 100, 36);
    let (log_b, _, sim_b) = byte_run(plan, 100, 36);
    assert_eq!(
        *log_a.borrow(),
        *log_b.borrow(),
        "same seed, same byzantine stream"
    );
    assert_eq!(sim_a.trace(), sim_b.trace());
}

// ---------------------------------------------------------------------
// Overload modes: feedback storms, CPU saturation, sockbuf exhaustion.
// ---------------------------------------------------------------------

#[test]
fn feedback_storm_amplifies_deliveries() {
    let plan = FaultPlan::default().with_feedback_storm(
        HostId(1),
        Time::ZERO,
        Time::from_millis(5_000),
        3,
    );
    let (log, sim) = blast_run(plan, SimConfig::default(), 10, 41);
    assert_eq!(
        log.borrow().len(),
        40,
        "each datagram delivered once plus three amplified copies"
    );
    assert_eq!(sim.trace().storm_amplified, 30);
}

#[test]
fn feedback_storm_respects_its_window() {
    // Window closed before the run starts: nothing is amplified.
    let plan = FaultPlan::default().with_feedback_storm(
        HostId(1),
        Time::from_millis(4_000),
        Time::from_millis(4_001),
        5,
    );
    let (log, sim) = blast_run(plan, SimConfig::default(), 10, 42);
    assert_eq!(log.borrow().len(), 10);
    assert_eq!(sim.trace().storm_amplified, 0);
}

#[test]
fn sockbuf_exhaustion_drops_every_arrival_in_window() {
    let plan =
        FaultPlan::default().with_sockbuf_exhaust(HostId(1), Time::ZERO, Time::from_millis(5_000));
    let (log, sim) = blast_run(plan, SimConfig::default(), 10, 43);
    assert_eq!(log.borrow().len(), 0, "window swallows everything");
    assert_eq!(sim.trace().drops_sockbuf, 10);
}

#[test]
fn cpu_load_slows_a_host_without_losing_data() {
    let finish = |plan: FaultPlan| {
        let (log, _) = blast_run(plan, SimConfig::default(), 10, 44);
        let log = log.borrow();
        assert_eq!(log.len(), 10, "saturation must not drop datagrams");
        log.iter().map(|&(t, _, _)| t).max().unwrap()
    };
    let plain = finish(FaultPlan::default());
    let loaded = finish(FaultPlan::default().with_slow_host(HostId(1), 50.0));
    assert!(
        loaded > plain,
        "a 50x CPU factor must delay delivery ({plain:?} vs {loaded:?})"
    );
}

#[test]
fn overload_knobs_make_the_plan_non_empty() {
    let t = Time::from_millis(1);
    assert!(!FaultPlan::default()
        .with_feedback_storm(HostId(0), Time::ZERO, t, 1)
        .is_empty());
    assert!(!FaultPlan::default()
        .with_cpu_load(HostId(0), Time::ZERO, t, 2.0)
        .is_empty());
    assert!(!FaultPlan::default()
        .with_sockbuf_exhaust(HostId(0), Time::ZERO, t)
        .is_empty());
}

#[test]
#[should_panic(expected = "cpu-load factor must be >= 1")]
fn cpu_load_factor_validated() {
    let _ = FaultPlan::default().with_cpu_load(HostId(0), Time::ZERO, Time::from_millis(1), 0.5);
}
