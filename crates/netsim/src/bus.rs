//! Shared-medium CSMA/CD state (the paper's "traditional LANs use shared
//! media for communication" discussion, §3 bullet 2).
//!
//! The model is event-accurate at frame granularity: 1-persistent carrier
//! sense, a contention window equal to the propagation delay during which
//! simultaneous attempts collide, a jam period after each collision, and
//! truncated binary exponential backoff in units of the 512-bit slot time.

use crate::frame::Frame;
use crate::ids::HostId;
use rmwire::{Duration, Time};
use std::collections::VecDeque;

/// Per-bus contention state; owned by the simulator, active only under
/// [`crate::FabricKind::SharedBus`].
pub(crate) struct BusState {
    /// Medium is occupied (by a transmission or a collision jam) until
    /// this instant.
    pub busy_until: Time,
    /// Hosts that attempted transmission inside the open contention
    /// window.
    pub contenders: Vec<HostId>,
    /// When the open contention window closes (a `BusResolve` event is
    /// scheduled there), if one is open.
    pub resolve_at: Option<Time>,
    /// Per-host NIC transmit queues.
    pub txq: Vec<VecDeque<Frame>>,
    /// Per-host collision counter for the frame at the queue head.
    pub attempts: Vec<u8>,
    /// Whether a `BusAttempt` event is already scheduled per host.
    pub attempt_pending: Vec<bool>,
}

impl BusState {
    /// 512 bit times at 100 Mbit/s.
    pub const SLOT_TIME: Duration = Duration::from_nanos(5_120);
    /// Jam signal plus detection overhead after a collision.
    pub const JAM_TIME: Duration = Duration::from_nanos(5_120);
    /// Attempt limit before a frame is dropped (IEEE 802.3 gives 16).
    pub const MAX_ATTEMPTS: u8 = 16;

    pub(crate) fn new() -> Self {
        BusState {
            busy_until: Time::ZERO,
            contenders: Vec::new(),
            resolve_at: None,
            txq: Vec::new(),
            attempts: Vec::new(),
            attempt_pending: Vec::new(),
        }
    }

    /// Extend per-host vectors when the simulation adds a host.
    pub(crate) fn add_host(&mut self) {
        self.txq.push(VecDeque::new());
        self.attempts.push(0);
        self.attempt_pending.push(false);
    }

    /// The collision window: attempts closer together than this collide.
    /// Floored at one microsecond so a zero-propagation configuration
    /// still exhibits collisions.
    pub(crate) fn contention_window(&self, prop_delay: Duration) -> Duration {
        prop_delay.max(Duration::from_micros(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_vectors_grow_together() {
        let mut b = BusState::new();
        b.add_host();
        b.add_host();
        assert_eq!(b.txq.len(), 2);
        assert_eq!(b.attempts.len(), 2);
        assert_eq!(b.attempt_pending.len(), 2);
    }

    #[test]
    fn contention_window_floor() {
        let b = BusState::new();
        assert_eq!(
            b.contention_window(Duration::from_nanos(10)),
            Duration::from_micros(1)
        );
        assert_eq!(
            b.contention_window(Duration::from_micros(5)),
            Duration::from_micros(5)
        );
    }
}
