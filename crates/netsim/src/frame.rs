//! Datagrams, fragments and Ethernet framing arithmetic.
//!
//! A UDP datagram of up to [`MAX_DATAGRAM`] bytes is carried as a train of
//! IP fragments, each at most [`MTU`] bytes of IP payload. The simulator
//! never copies payload bytes per fragment: a fragment is an `Arc` to the
//! owning datagram plus an index, so multicast fan-out and switch queuing
//! are O(1) per frame.

use crate::ids::{GroupId, HostId};
use bytes::Bytes;
use rmwire::Duration;
use std::sync::Arc;

/// Ethernet MTU: maximum IP packet size per frame, in bytes.
pub const MTU: usize = 1500;
/// IPv4 header bytes per fragment.
pub const IP_HEADER: usize = 20;
/// UDP header bytes (first fragment only in real IP; we charge it on every
/// fragment's *first* slot via [`fragment_wire_bytes`]).
pub const UDP_HEADER: usize = 8;
/// Usable datagram payload per fragment at the default MTU.
pub const FRAG_DATA: usize = MTU - IP_HEADER - UDP_HEADER;

/// Usable datagram payload per fragment at a given MTU.
pub fn frag_data_for_mtu(mtu: usize) -> usize {
    assert!(mtu > IP_HEADER + UDP_HEADER, "MTU too small: {mtu}");
    mtu - IP_HEADER - UDP_HEADER
}
/// Largest UDP payload we accept (the familiar 65 507).
pub const MAX_DATAGRAM: usize = 65_535 - IP_HEADER - UDP_HEADER;

/// Ethernet MAC header + FCS bytes.
pub const ETH_HEADER_FCS: usize = 18;
/// Minimum Ethernet frame (header + payload + FCS).
pub const ETH_MIN_FRAME: usize = 64;
/// Preamble + start-frame delimiter + inter-frame gap, charged as wire time
/// but not as queue occupancy.
pub const ETH_PREAMBLE_IFG: usize = 20;

/// Destination of a UDP send: one host or one multicast group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UdpDest {
    /// Unicast to `(host, port)`.
    Host(HostId, u16),
    /// Multicast to `(group, port)`; delivered to every member that has a
    /// socket bound to `port`.
    Group(GroupId, u16),
}

impl UdpDest {
    /// Unicast constructor.
    pub fn host(h: HostId, port: u16) -> Self {
        UdpDest::Host(h, port)
    }

    /// Multicast constructor.
    pub fn group(g: GroupId, port: u16) -> Self {
        UdpDest::Group(g, port)
    }

    /// The destination port.
    pub fn port(self) -> u16 {
        match self {
            UdpDest::Host(_, p) | UdpDest::Group(_, p) => p,
        }
    }

    /// `true` for multicast destinations.
    pub fn is_multicast(self) -> bool {
        matches!(self, UdpDest::Group(..))
    }
}

/// A UDP datagram in flight.
#[derive(Debug)]
pub struct Datagram {
    /// Sending host.
    pub src_host: HostId,
    /// Sending port.
    pub src_port: u16,
    /// Destination (host or group) and port.
    pub dest: UdpDest,
    /// Application payload.
    pub payload: Bytes,
    /// Unique IP identification for reassembly.
    pub ip_id: u64,
    /// Usable payload bytes per fragment (derived from the link MTU).
    pub frag_data: usize,
}

impl Datagram {
    /// Number of fragments this datagram occupies on the wire.
    pub fn n_fragments(&self) -> usize {
        n_fragments_with(self.payload.len(), self.frag_data)
    }
}

/// Number of MTU-sized fragments needed for a `len`-byte UDP payload at
/// the default MTU. A zero-length datagram still occupies one fragment.
pub fn n_fragments(len: usize) -> usize {
    n_fragments_with(len, FRAG_DATA)
}

/// [`n_fragments`] at an explicit per-fragment payload capacity.
pub fn n_fragments_with(len: usize, frag_data: usize) -> usize {
    assert!(len <= MAX_DATAGRAM, "datagram too large: {len}");
    len.div_ceil(frag_data).max(1)
}

/// Datagram payload bytes carried by fragment `index` (default MTU).
pub fn fragment_payload_len(total: usize, index: usize) -> usize {
    fragment_payload_len_with(total, index, FRAG_DATA)
}

/// [`fragment_payload_len`] at an explicit fragment capacity.
pub fn fragment_payload_len_with(total: usize, index: usize, frag_data: usize) -> usize {
    let n = n_fragments_with(total, frag_data);
    assert!(index < n, "fragment index {index} out of {n}");
    if index + 1 < n {
        frag_data
    } else {
        total - index * frag_data
    }
}

/// Bytes of this fragment as an Ethernet frame occupying a queue
/// (header + IP + UDP + data + FCS, padded to the Ethernet minimum).
pub fn fragment_frame_bytes(total: usize, index: usize) -> usize {
    fragment_frame_bytes_with(total, index, FRAG_DATA)
}

/// [`fragment_frame_bytes`] at an explicit fragment capacity.
pub fn fragment_frame_bytes_with(total: usize, index: usize, frag_data: usize) -> usize {
    let ip_payload = IP_HEADER + UDP_HEADER + fragment_payload_len_with(total, index, frag_data);
    (ip_payload + ETH_HEADER_FCS).max(ETH_MIN_FRAME)
}

/// Bytes of this fragment as they consume wire time (adds preamble + IFG).
pub fn fragment_wire_bytes(total: usize, index: usize) -> usize {
    fragment_frame_bytes(total, index) + ETH_PREAMBLE_IFG
}

/// Wall time to serialize fragment `index` of a `total`-byte datagram at
/// `rate_bps` (default MTU).
pub fn fragment_tx_time(total: usize, index: usize, rate_bps: u64) -> Duration {
    Duration::transmission(fragment_wire_bytes(total, index), rate_bps)
}

/// One Ethernet frame: fragment `index` of the shared datagram.
#[derive(Debug, Clone)]
pub struct Frame {
    /// The datagram this frame is a fragment of.
    pub dg: Arc<Datagram>,
    /// Fragment index within the datagram.
    pub index: usize,
}

impl Frame {
    /// Queue-occupancy size of this frame in bytes.
    pub fn frame_bytes(&self) -> usize {
        fragment_frame_bytes_with(self.dg.payload.len(), self.index, self.dg.frag_data)
    }

    /// Wire-time size of this frame in bytes (preamble + IFG included).
    pub fn wire_bytes(&self) -> usize {
        self.frame_bytes() + ETH_PREAMBLE_IFG
    }

    /// Serialization time at `rate_bps`.
    pub fn tx_time(&self, rate_bps: u64) -> Duration {
        Duration::transmission(self.wire_bytes(), rate_bps)
    }

    /// `true` if this is the last fragment of its datagram.
    pub fn is_last(&self) -> bool {
        self.index + 1 == self.dg.n_fragments()
    }
}

/// Split a datagram into its fragment frames.
pub fn fragment(dg: Arc<Datagram>) -> impl Iterator<Item = Frame> {
    let n = dg.n_fragments();
    (0..n).map(move |index| Frame {
        dg: Arc::clone(&dg),
        index,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_counts() {
        assert_eq!(n_fragments(0), 1);
        assert_eq!(n_fragments(1), 1);
        assert_eq!(n_fragments(FRAG_DATA), 1);
        assert_eq!(n_fragments(FRAG_DATA + 1), 2);
        assert_eq!(n_fragments(50_000), 50_000_usize.div_ceil(FRAG_DATA));
        assert_eq!(n_fragments(MAX_DATAGRAM), 45);
    }

    #[test]
    #[should_panic(expected = "datagram too large")]
    fn oversized_rejected() {
        let _ = n_fragments(MAX_DATAGRAM + 1);
    }

    #[test]
    fn payload_split_covers_everything() {
        for total in [0usize, 1, 100, FRAG_DATA, FRAG_DATA + 1, 8000, 50_000] {
            let n = n_fragments(total);
            let sum: usize = (0..n).map(|i| fragment_payload_len(total, i)).sum();
            assert_eq!(sum, total, "total {total}");
        }
    }

    #[test]
    fn frame_sizes() {
        // Empty datagram: 18 + 28 = 46 < 64, padded.
        assert_eq!(fragment_frame_bytes(0, 0), ETH_MIN_FRAME);
        // Full fragment: 1472 + 28 + 18 = 1518.
        assert_eq!(fragment_frame_bytes(3000, 0), 1518);
        assert_eq!(fragment_wire_bytes(3000, 0), 1538);
        // 1538 bytes at 100 Mbit/s = 123.04 us.
        assert_eq!(
            fragment_tx_time(3000, 0, 100_000_000),
            Duration::from_nanos(123_040)
        );
    }

    #[test]
    fn fragment_iter_is_complete_and_cheap() {
        let dg = Arc::new(Datagram {
            src_host: HostId(0),
            src_port: 1,
            dest: UdpDest::group(GroupId(0), 2),
            payload: Bytes::from(vec![0u8; 4000]),
            ip_id: 9,
            frag_data: FRAG_DATA,
        });
        let frames: Vec<_> = fragment(Arc::clone(&dg)).collect();
        assert_eq!(frames.len(), 3);
        assert!(frames[2].is_last());
        assert!(!frames[0].is_last());
        // All share the same allocation.
        assert!(Arc::ptr_eq(&frames[0].dg, &dg));
    }

    #[test]
    fn dest_helpers() {
        let u = UdpDest::host(HostId(3), 7);
        let m = UdpDest::group(GroupId(1), 8);
        assert!(!u.is_multicast());
        assert!(m.is_multicast());
        assert_eq!(u.port(), 7);
        assert_eq!(m.port(), 8);
    }
}
