//! Typed identifiers for simulated entities.

use serde::{Deserialize, Serialize};

/// Index of a simulated host (workstation).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct HostId(pub usize);

/// Index of a simulated Ethernet switch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SwitchId(pub usize);

/// Index of a static IP-multicast group.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct GroupId(pub usize);

/// One attachment point of a link: either a host NIC or a numbered switch
/// port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortRef {
    /// A host's (single) network interface.
    Host(HostId),
    /// Port `1` of switch `0`, etc.
    Switch(SwitchId, usize),
}

impl core::fmt::Display for HostId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl core::fmt::Display for SwitchId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "sw{}", self.0)
    }
}

impl core::fmt::Display for GroupId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "g{}", self.0)
    }
}
