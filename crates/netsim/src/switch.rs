//! Store-and-forward Ethernet switch state.

use crate::config::LinkParams;
use crate::egress::Egress;
use crate::ids::PortRef;

/// One switch port: its egress queue, the device at the far end, and the
/// physical parameters of the attached cable (switch -> peer direction).
pub(crate) struct Port {
    pub peer: Option<PortRef>,
    pub egress: Egress,
    pub link: LinkParams,
}

/// All state of one simulated switch.
pub(crate) struct SwitchState {
    /// Ports in creation order.
    pub ports: Vec<Port>,
    /// `route[host.0]` = output port index toward that host (filled in by
    /// `Sim::finalize_routes`).
    pub route: Vec<usize>,
}

impl SwitchState {
    pub(crate) fn new() -> Self {
        SwitchState {
            ports: Vec::new(),
            route: Vec::new(),
        }
    }

    /// Allocate a new (unconnected) port and return its index.
    pub(crate) fn add_port(&mut self, link: LinkParams) -> usize {
        self.ports.push(Port {
            peer: None,
            egress: Egress::new(),
            link,
        });
        self.ports.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports_number_sequentially() {
        let mut s = SwitchState::new();
        assert_eq!(s.add_port(LinkParams::default()), 0);
        assert_eq!(s.add_port(LinkParams::default()), 1);
        assert!(s.ports[0].peer.is_none());
    }
}
