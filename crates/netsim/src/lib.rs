//! A deterministic discrete-event simulator of Ethernet-connected clusters.
//!
//! `netsim` reproduces the testbed of *An Empirical Study of Reliable
//! Multicast Protocols over Ethernet-Connected Networks* (ICPP 2001): a
//! cluster of workstations joined by store-and-forward Ethernet switches
//! (or, for the shared-media study, a single CSMA/CD bus), running
//! user-space processes that exchange UDP datagrams over IP multicast.
//!
//! The simulator models exactly the quantities the paper identifies as
//! performance-relevant, and nothing more:
//!
//! * **Wire serialization** at a configurable link rate (default 100 Mbit/s)
//!   including Ethernet framing overhead (preamble, header, FCS, IFG,
//!   minimum frame size).
//! * **IP fragmentation**: UDP datagrams up to 64 KiB are carried as trains
//!   of MTU-sized fragments; losing any fragment loses the datagram.
//! * **Store-and-forward switches** with finite output queues (tail drop)
//!   and MAC-table forwarding; multicast frames are flooded (the behaviour
//!   of the paper's unmanaged 3Com switches) or group-forwarded when
//!   IGMP-snooping is enabled.
//! * **A shared CSMA/CD bus** with 1-persistent carrier sense, collision
//!   detection and truncated binary exponential backoff, for studying media
//!   access contention (paper §3, second bullet).
//! * **Finite UDP socket buffers** at the receivers — the paper's dominant
//!   loss mechanism ("packets are lost mainly due to the overflow of
//!   buffers at end hosts").
//! * **A serial per-host CPU** with configurable per-syscall, per-fragment
//!   and per-byte costs: ACK-implosion, user-level ACK relaying and the
//!   user-to-protocol-buffer copy all emerge from this one mechanism.
//!
//! Determinism: all randomness flows from one seeded generator, and the
//! event queue breaks time ties by insertion order, so a run is a pure
//! function of (topology, processes, seed).
//!
//! # Example
//!
//! ```
//! use netsim::{Sim, SimConfig, topology, process::{Process, Ctx, DatagramIn}, UdpDest, HostId};
//! use bytes::Bytes;
//! use rmwire::Time;
//!
//! struct Ping;
//! struct Pong;
//! impl Process for Ping {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
//!         ctx.send(UdpDest::host(HostId(1), 9), Bytes::from_static(b"ping"));
//!     }
//!     fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dg: DatagramIn) {
//!         assert_eq!(&dg.payload[..], b"pong");
//!         ctx.stop_sim();
//!     }
//! }
//! impl Process for Pong {
//!     fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dg: DatagramIn) {
//!         ctx.send(UdpDest::host(dg.src_host, 9), Bytes::from_static(b"pong"));
//!     }
//! }
//!
//! let mut sim = Sim::new(SimConfig::default(), 42);
//! let hosts = topology::single_switch(&mut sim, 2);
//! sim.spawn(hosts[0], 9, Box::new(Ping));
//! sim.spawn(hosts[1], 9, Box::new(Pong));
//! sim.run_until(Time::from_millis(100));
//! assert!(sim.now() > Time::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bus;
pub mod config;
pub mod egress;
pub mod frame;
pub mod host;
pub mod ids;
pub mod process;
pub mod sim;
pub mod switch;
pub mod topology;
pub mod trace;

pub use config::{
    CpuLoadWindow, FabricKind, FaultParams, FaultPlan, ForgeFrame, GilbertElliott, HostFault,
    HostFaultKind, HostParams, LinkDownWindow, LinkParams, SimConfig, StormWindow, SwitchParams,
};
pub use frame::{Datagram, UdpDest, MTU};
pub use ids::{GroupId, HostId, SwitchId};
pub use sim::Sim;
pub use trace::{DropCause, TraceCounters};
