//! The discrete-event engine.

use crate::bus::BusState;
use crate::config::{FabricKind, FaultPlan, LinkParams, SimConfig};
use crate::frame::{self, Datagram, Frame, UdpDest, MAX_DATAGRAM};
use crate::host::{HostState, Reassembly, WorkItem};
use crate::ids::{GroupId, HostId, PortRef, SwitchId};
use crate::process::{Ctx, DatagramIn, Process};
use crate::switch::SwitchState;
use crate::trace::{DropCause, EventLog, LogEvent, TraceCounters};
use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rmwire::{Duration, Time};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

/// Simulator events. Arrival events carry the instant the *last bit* of a
/// frame reaches the device (store-and-forward semantics).
enum Event {
    /// Frame fully received on a switch input port.
    FrameAtSwitch {
        sw: SwitchId,
        in_port: usize,
        frame: Frame,
    },
    /// Frame fully received at a host NIC.
    FrameAtHost { host: HostId, frame: Frame },
    /// The host CPU finished its current work item (or should dispatch).
    CpuDone { host: HostId },
    /// The process timer fired (ignored when `gen` is stale).
    TimerFire { host: HostId, gen: u64 },
    /// An IP reassembly context timed out.
    ReassemblyExpire { host: HostId, key: (HostId, u64) },
    /// A crash-restarted host reboots: state is wiped and the process's
    /// `on_restart` runs.
    HostRestart { host: HostId },
    /// A host wants the shared bus (CSMA/CD fabric only).
    BusAttempt { host: HostId },
    /// End of the bus contention window: transmit or collide.
    BusResolve,
    /// A forged datagram from the fault plan arrives at a host socket.
    ForgeDeliver {
        host: HostId,
        src: HostId,
        port: u16,
        payload: Vec<u8>,
    },
}

struct HeapEntry {
    at: Time,
    seq: u64,
    ev: Event,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The simulator: topology, processes, the event queue and the clock.
///
/// Build one with [`Sim::new`], add hosts/switches/links (usually through
/// [`crate::topology`] presets), [`Sim::spawn`] processes, then
/// [`Sim::run`] or [`Sim::run_until`].
pub struct Sim {
    cfg: SimConfig,
    now: Time,
    queue: BinaryHeap<Reverse<HeapEntry>>,
    event_seq: u64,
    pub(crate) hosts: Vec<HostState>,
    host_params: Vec<crate::config::HostParams>,
    procs: Vec<Option<Box<dyn Process>>>,
    switches: Vec<SwitchState>,
    groups: Vec<Vec<HostId>>,
    rng: SmallRng,
    trace: TraceCounters,
    log: EventLog,
    trace_sink: Option<Box<dyn rmtrace::TraceSink>>,
    next_ip_id: u64,
    stop: bool,
    routes_dirty: bool,
    bus: BusState,
    fault_plan: FaultPlan,
    /// Per-host Gilbert–Elliott channel state (`true` = bad/lossy).
    burst_bad: Vec<bool>,
    /// Recently delivered datagrams the byzantine replay fault draws
    /// from; bounded at [`REPLAY_RING_CAP`]. Only populated while the
    /// replay knob is enabled.
    replay_ring: VecDeque<Arc<Datagram>>,
}

/// How many recently delivered datagrams the replay fault remembers.
const REPLAY_RING_CAP: usize = 64;

impl Sim {
    /// A new, empty simulation with the given configuration and RNG seed.
    pub fn new(cfg: SimConfig, seed: u64) -> Self {
        Sim {
            cfg,
            now: Time::ZERO,
            queue: BinaryHeap::new(),
            event_seq: 0,
            hosts: Vec::new(),
            host_params: Vec::new(),
            procs: Vec::new(),
            switches: Vec::new(),
            groups: Vec::new(),
            rng: SmallRng::seed_from_u64(seed),
            trace: TraceCounters::default(),
            log: EventLog::default(),
            trace_sink: None,
            next_ip_id: 0,
            stop: false,
            routes_dirty: true,
            bus: BusState::new(),
            fault_plan: FaultPlan::default(),
            burst_bad: Vec::new(),
            replay_ring: VecDeque::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Instrumentation counters.
    pub fn trace(&self) -> &TraceCounters {
        &self.trace
    }

    /// Enable the packet-level event log, keeping at most `capacity`
    /// entries (zero disables it; disabled by default). Keeps the *first*
    /// `capacity` events; see [`Sim::set_log_keep_last`] for the ring
    /// variant.
    pub fn set_log_capacity(&mut self, capacity: usize) {
        self.log = EventLog::with_capacity(capacity);
    }

    /// Enable the packet-level event log in ring mode: at most `capacity`
    /// entries, evicting the oldest, so the *end* of a long run survives.
    pub fn set_log_keep_last(&mut self, capacity: usize) {
        self.log = EventLog::with_ring_capacity(capacity);
    }

    /// The packet-level event log.
    pub fn event_log(&self) -> &EventLog {
        &self.log
    }

    /// Stream network drop events into a structured trace sink. Endpoints
    /// writing to the same sink through their own tracers interleave a
    /// packet's full journey (sent → dropped/delivered → acked) in one
    /// stream.
    pub fn set_trace_sink(&mut self, sink: Box<dyn rmtrace::TraceSink>) {
        self.trace_sink = Some(sink);
    }

    fn log_event(&mut self, ev: LogEvent) {
        if self.log.enabled() {
            let now = self.now.as_nanos();
            self.log.record(now, ev);
        }
    }

    /// Count a drop and, when a trace sink is attached, emit it there
    /// too. `host` is the host at (or toward) which the drop happened;
    /// fabric-level drops (switch queues, trunks) have none and are
    /// stamped `u16::MAX`.
    fn note_drop(&mut self, cause: DropCause, host: Option<HostId>) {
        self.trace.record_drop(cause);
        if let Some(sink) = &mut self.trace_sink {
            sink.emit(&rmtrace::TraceRecord {
                t_ns: self.now.as_nanos(),
                rank: host.map_or(u16::MAX, |h| h.0 as u16),
                ev: rmtrace::TraceEvent::Drop {
                    cause: cause.name(),
                },
            });
        }
    }

    /// The deterministic random generator (shared by fabric and processes).
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Install a chaos schedule (see [`FaultPlan`]). Call after the
    /// topology is built so host references can be validated. The empty
    /// plan is a strict no-op: it draws no randomness and changes no
    /// event ordering.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        let known = |h: HostId| {
            assert!(h.0 < self.hosts.len(), "fault plan references unknown {h}");
        };
        for &(h, _) in &plan.link_loss {
            known(h);
        }
        for w in &plan.link_down {
            known(w.host);
        }
        for f in &plan.host_faults {
            known(f.host);
        }
        for f in &plan.forge {
            known(f.dest);
            known(f.src);
        }
        for w in &plan.feedback_storm {
            known(w.target);
        }
        for w in &plan.cpu_load {
            known(w.host);
        }
        for &(h, _, _) in &plan.sockbuf_exhaust {
            known(h);
        }
        let restarts: Vec<_> = plan.restarts().collect();
        let forged: Vec<_> = plan.forge.clone();
        self.fault_plan = plan;
        for (host, at) in restarts {
            self.schedule(at, Event::HostRestart { host });
        }
        for f in forged {
            self.schedule(
                f.at,
                Event::ForgeDeliver {
                    host: f.dest,
                    src: f.src,
                    port: f.port,
                    payload: f.payload,
                },
            );
        }
    }

    /// The active chaos schedule.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    // ------------------------------------------------------------------
    // Topology construction
    // ------------------------------------------------------------------

    /// Add a workstation (with the configuration's default host
    /// parameters; override with [`Sim::set_host_params`]).
    pub fn add_host(&mut self) -> HostId {
        self.hosts.push(HostState::new(self.cfg.link));
        self.host_params.push(self.cfg.host);
        self.procs.push(None);
        self.burst_bad.push(false);
        self.bus.add_host();
        self.routes_dirty = true;
        HostId(self.hosts.len() - 1)
    }

    /// Add a switch (switched fabric only).
    pub fn add_switch(&mut self) -> SwitchId {
        assert_eq!(
            self.cfg.fabric,
            FabricKind::Switched,
            "switches exist only in the switched fabric"
        );
        self.switches.push(SwitchState::new());
        self.routes_dirty = true;
        SwitchId(self.switches.len() - 1)
    }

    /// Cable a host to a switch port.
    pub fn connect_host(&mut self, host: HostId, sw: SwitchId) {
        assert!(
            self.hosts[host.0].peer.is_none(),
            "{host} is already cabled"
        );
        let link = self.hosts[host.0].link;
        let port = self.switches[sw.0].add_port(link);
        self.switches[sw.0].ports[port].peer = Some(PortRef::Host(host));
        self.hosts[host.0].peer = Some(PortRef::Switch(sw, port));
        self.routes_dirty = true;
    }

    /// Override the physical parameters of one host's uplink (both
    /// directions). Call after [`Sim::connect_host`]. The MTU stays
    /// fabric-global (no path-MTU discovery is modelled).
    pub fn set_link_params(&mut self, host: HostId, params: LinkParams) {
        assert_eq!(
            params.mtu, self.cfg.link.mtu,
            "per-link MTU overrides are not supported (no path MTU discovery)"
        );
        self.hosts[host.0].link = params;
        if let Some(PortRef::Switch(sw, port)) = self.hosts[host.0].peer {
            self.switches[sw.0].ports[port].link = params;
        }
    }

    /// Override the trunk between two directly cabled switches (both
    /// directions). Panics if they are not directly cabled.
    pub fn set_trunk_params(&mut self, a: SwitchId, b: SwitchId, params: LinkParams) {
        assert_eq!(
            params.mtu, self.cfg.link.mtu,
            "per-link MTU overrides are not supported (no path MTU discovery)"
        );
        let mut found = false;
        for p in 0..self.switches[a.0].ports.len() {
            if let Some(PortRef::Switch(sw2, p2)) = self.switches[a.0].ports[p].peer {
                if sw2 == b {
                    self.switches[a.0].ports[p].link = params;
                    self.switches[b.0].ports[p2].link = params;
                    found = true;
                }
            }
        }
        assert!(found, "{a} and {b} are not directly cabled");
    }

    /// Cable two switches together.
    pub fn connect_switches(&mut self, a: SwitchId, b: SwitchId) {
        assert_ne!(a, b, "cannot cable a switch to itself");
        let pa = self.switches[a.0].add_port(self.cfg.link);
        let pb = self.switches[b.0].add_port(self.cfg.link);
        self.switches[a.0].ports[pa].peer = Some(PortRef::Switch(b, pb));
        self.switches[b.0].ports[pb].peer = Some(PortRef::Switch(a, pa));
        self.routes_dirty = true;
    }

    /// Create a static multicast group; every member host joins it.
    pub fn create_group(&mut self, members: &[HostId]) -> GroupId {
        let gid = GroupId(self.groups.len());
        for &m in members {
            self.hosts[m.0].memberships.insert(gid);
        }
        self.groups.push(members.to_vec());
        gid
    }

    /// Bind `proc` to `(host, port)` and schedule its `on_start` at time
    /// zero. Each host runs at most one process, which may bind additional
    /// ports with [`Sim::bind_port`].
    pub fn spawn(&mut self, host: HostId, port: u16, proc_: Box<dyn Process>) {
        assert!(
            self.procs[host.0].is_none(),
            "{host} already runs a process"
        );
        self.bind_port(host, port);
        self.procs[host.0] = Some(proc_);
        self.enqueue_work(host, WorkItem::Start, Time::ZERO);
    }

    /// Override one host's CPU/buffer parameters, making the cluster
    /// heterogeneous (the paper scopes itself to homogeneous clusters,
    /// §3; this knob exists to test that scoping).
    pub fn set_host_params(&mut self, host: HostId, params: crate::config::HostParams) {
        self.host_params[host.0] = params;
    }

    /// The effective parameters of one host.
    pub fn host_params(&self, host: HostId) -> &crate::config::HostParams {
        &self.host_params[host.0]
    }

    /// Total CPU time this host has spent processing work items.
    pub fn cpu_busy(&self, host: HostId) -> Duration {
        self.hosts[host.0].cpu_busy_accum
    }

    /// Bind an additional UDP port on a host.
    pub fn bind_port(&mut self, host: HostId, port: u16) {
        let prev = self.hosts[host.0].sockets.insert(port, 0);
        assert!(prev.is_none(), "{host} port {port} already bound");
    }

    // ------------------------------------------------------------------
    // Run loop
    // ------------------------------------------------------------------

    /// Run until the queue drains, a process calls
    /// [`Ctx::stop_sim`], or the clock would pass `deadline`.
    pub fn run_until(&mut self, deadline: Time) {
        if self.routes_dirty {
            self.finalize_routes();
        }
        while !self.stop {
            match self.queue.peek() {
                Some(Reverse(e)) if e.at <= deadline => {}
                _ => break,
            }
            let Reverse(entry) = self.queue.pop().expect("peeked entry");
            debug_assert!(entry.at >= self.now, "time went backwards");
            self.now = entry.at;
            let _span = rmprof::span!(rmprof::Stage::NetsimDispatch);
            self.dispatch(entry.ev);
        }
    }

    /// Run to quiescence (or until stopped).
    pub fn run(&mut self) {
        self.run_until(Time::MAX);
    }

    /// `true` once a process has requested a stop.
    pub fn stopped(&self) -> bool {
        self.stop
    }

    pub(crate) fn request_stop(&mut self) {
        self.stop = true;
    }

    fn schedule(&mut self, at: Time, ev: Event) {
        debug_assert!(at >= self.now, "scheduling into the past");
        let seq = self.event_seq;
        self.event_seq += 1;
        self.queue.push(Reverse(HeapEntry { at, seq, ev }));
    }

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::FrameAtSwitch { sw, in_port, frame } => self.frame_at_switch(sw, in_port, frame),
            Event::FrameAtHost { host, frame } => self.frame_at_host(host, frame),
            Event::CpuDone { host } => self.cpu_dispatch(host),
            Event::TimerFire { host, gen } => self.timer_fire(host, gen),
            Event::ReassemblyExpire { host, key } => {
                if self.hosts[host.0].reassembly.remove(&key).is_some() {
                    self.note_drop(DropCause::ReassemblyTimeout, Some(host));
                    self.log_event(LogEvent::Drop {
                        cause: DropCause::ReassemblyTimeout,
                    });
                }
            }
            Event::BusAttempt { host } => self.bus_attempt(host),
            Event::BusResolve => self.bus_resolve(),
            Event::HostRestart { host } => self.host_restart(host),
            Event::ForgeDeliver {
                host,
                src,
                port,
                payload,
            } => self.forge_deliver(host, src, port, payload),
        }
    }

    /// Reboot a crash-restarted host: the kernel state a real machine
    /// loses on power-cycle (socket buffers, half-reassembled datagrams,
    /// queued work, armed timers) is wiped, then the process's
    /// [`Process::on_restart`] runs as the first thing on the fresh CPU.
    fn host_restart(&mut self, host: HostId) {
        let h = &mut self.hosts[host.0];
        h.cpu_queue.clear();
        h.cpu_active = false;
        h.reassembly.clear();
        for buffered in h.sockets.values_mut() {
            *buffered = 0;
        }
        h.timer_gen += 1;
        h.timer_armed = false;
        if self.procs[host.0].is_some() {
            let at = self.now;
            self.enqueue_work(host, WorkItem::Restart, at);
        }
    }

    // ------------------------------------------------------------------
    // UDP send path
    // ------------------------------------------------------------------

    /// Charge send costs at `cursor`, fragment, and inject the datagram
    /// into the fabric. Returns the advanced CPU cursor (send-buffer
    /// blocking included).
    pub(crate) fn udp_send(
        &mut self,
        src: HostId,
        dest: UdpDest,
        payload: Bytes,
        cursor: Time,
    ) -> Time {
        assert!(
            payload.len() <= MAX_DATAGRAM,
            "datagram exceeds 64 KiB UDP limit: {}",
            payload.len()
        );
        if let UdpDest::Host(h, _) = dest {
            assert!(h.0 < self.hosts.len(), "unknown destination {h}");
            assert_ne!(h, src, "loopback sends are not modelled");
        }
        if let UdpDest::Group(g, _) = dest {
            assert!(g.0 < self.groups.len(), "unknown group {g}");
        }

        let frag_data = frame::frag_data_for_mtu(self.cfg.link.mtu);
        let n_frags = frame::n_fragments_with(payload.len(), frag_data);
        let hp = self.host_params[src.0];
        let mut cursor = cursor;
        let mut cost = hp.send_syscall + hp.send_per_fragment.saturating_mul(n_frags as u64);
        cost += Duration::from_nanos(hp.send_per_byte_ns * payload.len() as u64);
        cursor += self.jitter_for(src, cost);

        self.trace.datagrams_sent += 1;
        self.trace.payload_bytes_sent += payload.len() as u64;
        self.log_event(LogEvent::DatagramSent {
            src: src.0,
            dst: match dest {
                UdpDest::Host(h, _) => Some(h.0),
                UdpDest::Group(..) => None,
            },
            len: payload.len(),
        });

        let ip_id = self.next_ip_id;
        self.next_ip_id += 1;
        let src_port = 0; // informational; protocols identify peers by rank
        let dg = Arc::new(Datagram {
            src_host: src,
            src_port,
            dest,
            payload,
            ip_id,
            frag_data,
        });

        match self.cfg.fabric {
            FabricKind::Switched => {
                let peer = self.hosts[src.0]
                    .peer
                    .expect("host is not cabled to a switch");
                let link = self.hosts[src.0].link;
                for fr in frame::fragment(Arc::clone(&dg)) {
                    let bytes = fr.frame_bytes();
                    let fit = self.hosts[src.0]
                        .egress
                        .earliest_fit(cursor, bytes, hp.send_sockbuf)
                        .expect("frame larger than socket send buffer");
                    cursor = cursor.max(fit);
                    let tx = fr.tx_time(link.rate_bps);
                    let done = self.hosts[src.0].egress.enqueue(cursor, tx, bytes);
                    self.trace.frames_sent += 1;
                    self.trace.wire_bytes_sent += fr.wire_bytes() as u64;
                    self.emit_frame(peer, fr, done, link.prop_delay, Some(src));
                }
            }
            FabricKind::SharedBus => {
                for fr in frame::fragment(Arc::clone(&dg)) {
                    self.trace.frames_sent += 1;
                    self.bus_enqueue(src, fr, cursor);
                }
            }
        }
        cursor
    }

    /// Schedule the arrival of a frame whose last bit leaves the
    /// transmitter at `done`, applying wire faults (loss, duplication) and
    /// the chaos plan's link faults. `edge` names the host whose access
    /// link this hop traverses (`None` on switch-to-switch trunks).
    ///
    /// Every chaos-plan check is gated on its knob being enabled, so an
    /// empty plan draws no randomness — seeded runs stay bit-identical.
    fn emit_frame(
        &mut self,
        to: PortRef,
        frame: Frame,
        done: Time,
        prop_delay: Duration,
        edge: Option<HostId>,
    ) {
        let p = self.cfg.faults.frame_loss;
        if p > 0.0 && self.rng.gen::<f64>() < p {
            self.note_drop(DropCause::WireFault, edge);
            return;
        }
        let dup = self.cfg.faults.frame_dup;
        let copies = if dup > 0.0 && self.rng.gen::<f64>() < dup {
            2
        } else {
            1
        };
        if let Some(h) = edge {
            if !self.fault_plan.link_down.is_empty() && self.fault_plan.link_is_down(h, done) {
                self.note_drop(DropCause::LinkDown, Some(h));
                return;
            }
            if !self.fault_plan.link_loss.is_empty() {
                let lp = self.fault_plan.link_loss_for(h);
                if lp > 0.0 && self.rng.gen::<f64>() < lp {
                    self.note_drop(DropCause::WireFault, Some(h));
                    return;
                }
            }
            if let Some(ge) = self.fault_plan.burst {
                let r = self.rng.gen::<f64>();
                let bad = if self.burst_bad[h.0] {
                    r >= ge.p_bad_to_good()
                } else {
                    r < ge.p_good_to_bad()
                };
                self.burst_bad[h.0] = bad;
                if bad {
                    self.note_drop(DropCause::BurstLoss, Some(h));
                    return;
                }
            }
        }
        if self.fault_plan.corrupt > 0.0 && self.rng.gen::<f64>() < self.fault_plan.corrupt {
            self.note_drop(DropCause::Corrupt, edge);
            return;
        }
        let mut at = done + prop_delay;
        if self.fault_plan.reorder > 0.0 && self.rng.gen::<f64>() < self.fault_plan.reorder {
            at += self.fault_plan.reorder_delay;
            self.trace.frames_reordered += 1;
        }
        for i in 0..copies {
            // The duplicate trails its original by a microsecond.
            let at = at + Duration::from_micros(i);
            match to {
                PortRef::Host(h) => self.schedule(
                    at,
                    Event::FrameAtHost {
                        host: h,
                        frame: frame.clone(),
                    },
                ),
                PortRef::Switch(sw, in_port) => self.schedule(
                    at,
                    Event::FrameAtSwitch {
                        sw,
                        in_port,
                        frame: frame.clone(),
                    },
                ),
            }
        }
    }

    // ------------------------------------------------------------------
    // Switch forwarding
    // ------------------------------------------------------------------

    fn frame_at_switch(&mut self, sw: SwitchId, in_port: usize, frame: Frame) {
        let out_ports: Vec<usize> = match frame.dg.dest {
            UdpDest::Host(h, _) => {
                let p = self.switches[sw.0].route[h.0];
                debug_assert_ne!(p, usize::MAX, "no route from {sw} to {h}");
                if p == in_port {
                    Vec::new()
                } else {
                    vec![p]
                }
            }
            UdpDest::Group(g, _) => {
                if self.cfg.switch.igmp_snooping {
                    let mut ports: Vec<usize> = self.groups[g.0]
                        .iter()
                        .map(|m| self.switches[sw.0].route[m.0])
                        .filter(|&p| p != in_port && p != usize::MAX)
                        .collect();
                    ports.sort_unstable();
                    ports.dedup();
                    ports
                } else {
                    (0..self.switches[sw.0].ports.len())
                        .filter(|&p| p != in_port && self.switches[sw.0].ports[p].peer.is_some())
                        .collect()
                }
            }
        };

        let eligible = self.now + self.cfg.switch.latency;
        let cap = self.cfg.switch.queue_bytes;
        for p in out_ports {
            let peer = self.switches[sw.0].ports[p]
                .peer
                .expect("forwarding onto an uncabled port");
            if matches!(peer, PortRef::Switch(..))
                && !self.fault_plan.trunk_down.is_empty()
                && self.fault_plan.trunk_is_down(self.now)
            {
                self.note_drop(DropCause::TrunkDown, None);
                self.log_event(LogEvent::Drop {
                    cause: DropCause::TrunkDown,
                });
                continue;
            }
            let bytes = frame.frame_bytes();
            let port = &mut self.switches[sw.0].ports[p];
            let link = port.link;
            if port.egress.queued_bytes(eligible) + bytes > cap {
                self.note_drop(DropCause::SwitchQueueFull, None);
                continue;
            }
            let tx = frame.tx_time(link.rate_bps);
            let done = port.egress.enqueue(eligible, tx, bytes);
            let edge = match peer {
                PortRef::Host(h) => Some(h),
                PortRef::Switch(..) => None,
            };
            self.trace.wire_bytes_sent += frame.wire_bytes() as u64;
            self.emit_frame(peer, frame.clone(), done, link.prop_delay, edge);
        }
    }

    // ------------------------------------------------------------------
    // Host receive path
    // ------------------------------------------------------------------

    fn frame_at_host(&mut self, host: HostId, frame: Frame) {
        if !self.fault_plan.host_faults.is_empty() && self.fault_plan.host_crashed(host, self.now) {
            self.note_drop(DropCause::HostDown, Some(host));
            return;
        }
        self.trace.frames_received += 1;
        match frame.dg.dest {
            UdpDest::Host(h, _) => {
                if h != host {
                    // Shared-bus unicast for someone else: the NIC address
                    // filter discards it in hardware at zero host cost.
                    debug_assert_eq!(
                        self.cfg.fabric,
                        FabricKind::SharedBus,
                        "switched fabric misrouted a unicast frame"
                    );
                    return;
                }
            }
            UdpDest::Group(g, _) => {
                if !self.hosts[host.0].memberships.contains(&g) {
                    // Flooded multicast for a group we never joined: the
                    // kernel discards it, costing CPU (paper §3 bullet 1).
                    self.trace.frames_filtered += 1;
                    let at = self.now;
                    self.enqueue_work(host, WorkItem::McastFilter, at);
                    return;
                }
            }
        }

        let key = (frame.dg.src_host, frame.dg.ip_id);
        let total = frame.dg.n_fragments() as u32;
        let h = &mut self.hosts[host.0];
        let entry = h.reassembly.get_mut(&key);
        let complete = match entry {
            Some(r) => r.add(frame.index),
            None => {
                let mut r = Reassembly::new(total);
                let complete = r.add(frame.index);
                if !complete {
                    h.reassembly.insert(key, r);
                    let expire = self.now + self.host_params[host.0].reassembly_timeout;
                    self.schedule(expire, Event::ReassemblyExpire { host, key });
                }
                complete
            }
        };
        if !complete {
            return;
        }
        self.hosts[host.0].reassembly.remove(&key);

        let p = self.cfg.faults.datagram_loss;
        if p > 0.0 && self.rng.gen::<f64>() < p {
            self.note_drop(DropCause::DatagramFault, Some(host));
            return;
        }

        self.deliver_datagram(host, frame.dg);
    }

    /// Deliver a fully reassembled datagram to `host`, applying the fault
    /// plan's byzantine modes first: corrupt-and-deliver, duplication and
    /// replay of a stale recorded datagram. Every check is gated on its
    /// knob, so an empty plan draws no randomness here.
    fn deliver_datagram(&mut self, host: HostId, dg: Arc<Datagram>) {
        let mut dg = dg;
        let p = self.fault_plan.corrupt_deliver;
        if p > 0.0 && self.rng.gen::<f64>() < p {
            dg = self.corrupt_datagram(&dg);
            self.trace.byz_corrupt_delivered += 1;
        }
        let p = self.fault_plan.duplicate;
        let copies = if p > 0.0 && self.rng.gen::<f64>() < p {
            self.trace.byz_duplicates += 1;
            2
        } else {
            1
        };
        let p = self.fault_plan.replay;
        if p > 0.0 {
            if !self.replay_ring.is_empty() && self.rng.gen::<f64>() < p {
                let idx = self.rng.gen_range(0..self.replay_ring.len());
                let stale = Arc::clone(&self.replay_ring[idx]);
                self.trace.byz_replays += 1;
                self.deliver_to_socket(host, stale);
            }
            if self.replay_ring.len() >= REPLAY_RING_CAP {
                self.replay_ring.pop_front();
            }
            self.replay_ring.push_back(Arc::clone(&dg));
        }
        for _ in 0..copies {
            self.deliver_to_socket(host, Arc::clone(&dg));
        }
        // Feedback storm: deterministic window schedule, no RNG drawn.
        if !self.fault_plan.feedback_storm.is_empty() {
            let extra = self.fault_plan.storm_amplify(host, self.now);
            for _ in 0..extra {
                self.trace.storm_amplified += 1;
                self.deliver_to_socket(host, Arc::clone(&dg));
            }
        }
    }

    /// Return a copy of `dg` with 1–4 byte positions bit-flipped —
    /// byzantine corruption that passed the NIC's FCS check and reaches
    /// the protocol's decode path. Zero-length payloads pass unchanged.
    fn corrupt_datagram(&mut self, dg: &Datagram) -> Arc<Datagram> {
        let mut payload = dg.payload.to_vec();
        if !payload.is_empty() {
            let flips = self.rng.gen_range(1..=4usize).min(payload.len());
            for _ in 0..flips {
                let at = self.rng.gen_range(0..payload.len());
                let bit = self.rng.gen_range(0u8..8);
                payload[at] ^= 1 << bit;
            }
        }
        Arc::new(Datagram {
            src_host: dg.src_host,
            src_port: dg.src_port,
            dest: dg.dest,
            payload: Bytes::from(payload),
            ip_id: dg.ip_id,
            frag_data: dg.frag_data,
        })
    }

    /// The kernel socket step shared by normal, replayed and forged
    /// deliveries: buffer-space check, then a CPU work item.
    fn deliver_to_socket(&mut self, host: HostId, dg: Arc<Datagram>) {
        let port = dg.dest.port();
        let len = dg.payload.len();
        let sockbuf = self.host_params[host.0].recv_sockbuf;
        let exhausted = !self.fault_plan.sockbuf_exhaust.is_empty()
            && self.fault_plan.sockbuf_exhausted(host, self.now);
        let h = &mut self.hosts[host.0];
        let Some(buffered) = h.sockets.get_mut(&port) else {
            // No socket bound: the kernel drops it (ICMP unreachable in
            // real life); invisible to the protocols.
            return;
        };
        if exhausted || *buffered + len > sockbuf {
            self.note_drop(DropCause::SockBufFull, Some(host));
            self.log_event(LogEvent::Drop {
                cause: DropCause::SockBufFull,
            });
            return;
        }
        *buffered += len;
        let at = self.now;
        self.enqueue_work(host, WorkItem::Deliver(dg), at);
    }

    /// Inject a forged datagram (spoofed source, attacker-chosen bytes)
    /// straight into `host`'s socket, bypassing the wire entirely.
    fn forge_deliver(&mut self, host: HostId, src: HostId, port: u16, payload: Vec<u8>) {
        if !self.fault_plan.host_faults.is_empty() && self.fault_plan.host_crashed(host, self.now) {
            self.note_drop(DropCause::HostDown, Some(host));
            return;
        }
        self.trace.byz_forged += 1;
        let ip_id = self.next_ip_id;
        self.next_ip_id += 1;
        let dg = Arc::new(Datagram {
            src_host: src,
            src_port: 0,
            dest: UdpDest::Host(host, port),
            payload: Bytes::from(payload),
            ip_id,
            frag_data: frame::frag_data_for_mtu(self.cfg.link.mtu),
        });
        self.deliver_to_socket(host, dg);
    }

    // ------------------------------------------------------------------
    // Host CPU
    // ------------------------------------------------------------------

    pub(crate) fn enqueue_work(&mut self, host: HostId, item: WorkItem, at: Time) {
        let h = &mut self.hosts[host.0];
        h.cpu_queue.push_back(item);
        if !h.cpu_active {
            h.cpu_active = true;
            self.schedule(at.max(self.now), Event::CpuDone { host });
        }
    }

    fn cpu_dispatch(&mut self, host: HostId) {
        if !self.fault_plan.host_faults.is_empty() {
            if self.fault_plan.host_crashed(host, self.now) {
                // A crashed CPU never runs again: discard its queue.
                let h = &mut self.hosts[host.0];
                h.cpu_queue.clear();
                h.cpu_active = false;
                return;
            }
            if let Some(resume) = self.fault_plan.host_paused_until(host, self.now) {
                // Stalled: hold the pending work until the pause ends.
                self.schedule(resume, Event::CpuDone { host });
                return;
            }
        }
        let Some(item) = self.hosts[host.0].cpu_queue.pop_front() else {
            self.hosts[host.0].cpu_active = false;
            return;
        };
        let start = self.now;
        let end = self.run_work_item(host, item, start);
        self.hosts[host.0].cpu_busy_until = end;
        self.hosts[host.0].cpu_busy_accum += end.saturating_since(start);
        self.schedule(end, Event::CpuDone { host });
    }

    fn run_work_item(&mut self, host: HostId, item: WorkItem, start: Time) -> Time {
        match item {
            WorkItem::McastFilter => {
                let c = self.host_params[host.0].mcast_filter_cost;
                start + self.jitter_for(host, c)
            }
            WorkItem::Start => self.with_proc(host, start, |p, ctx| p.on_start(ctx)),
            WorkItem::Restart => self.with_proc(host, start, |p, ctx| p.on_restart(ctx)),
            WorkItem::Timer => self.with_proc(host, start, |p, ctx| p.on_timer(ctx)),
            WorkItem::Deliver(dg) => {
                let hp = self.host_params[host.0];
                let len = dg.payload.len();
                let n_frags = dg.n_fragments();
                // recvfrom drains the socket buffer.
                if let Some(b) = self.hosts[host.0].sockets.get_mut(&dg.dest.port()) {
                    *b = b.saturating_sub(len);
                }
                let mut cost =
                    hp.recv_syscall + hp.recv_per_fragment.saturating_mul(n_frags as u64);
                cost += Duration::from_nanos(hp.recv_per_byte_ns * len as u64);
                let start = start + self.jitter_for(host, cost);
                self.trace.datagrams_delivered += 1;
                self.log_event(LogEvent::DatagramDelivered { host: host.0, len });
                let in_dg = DatagramIn {
                    src_host: dg.src_host,
                    src_port: dg.src_port,
                    dest: dg.dest,
                    payload: dg.payload.clone(),
                };
                self.with_proc(host, start, |p, ctx| p.on_datagram(ctx, in_dg))
            }
        }
    }

    fn with_proc<F>(&mut self, host: HostId, start: Time, f: F) -> Time
    where
        F: FnOnce(&mut dyn Process, &mut Ctx<'_>),
    {
        let mut proc_ = self.procs[host.0].take().expect("no process on host");
        let mut ctx = Ctx {
            sim: self,
            host,
            cursor: start,
        };
        f(proc_.as_mut(), &mut ctx);
        let end = ctx.cursor;
        self.procs[host.0] = Some(proc_);
        end
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    pub(crate) fn set_timer(&mut self, host: HostId, at: Time) {
        let h = &mut self.hosts[host.0];
        h.timer_gen += 1;
        h.timer_armed = true;
        let gen = h.timer_gen;
        self.schedule(at, Event::TimerFire { host, gen });
    }

    pub(crate) fn clear_timer(&mut self, host: HostId) {
        let h = &mut self.hosts[host.0];
        h.timer_gen += 1;
        h.timer_armed = false;
    }

    fn timer_fire(&mut self, host: HostId, gen: u64) {
        if !self.fault_plan.host_faults.is_empty() && self.fault_plan.host_crashed(host, self.now) {
            return;
        }
        let h = &mut self.hosts[host.0];
        if h.timer_armed && h.timer_gen == gen {
            h.timer_armed = false;
            let at = self.now;
            self.enqueue_work(host, WorkItem::Timer, at);
        }
    }

    // ------------------------------------------------------------------
    // Shared bus (CSMA/CD)
    // ------------------------------------------------------------------

    fn bus_enqueue(&mut self, host: HostId, frame: Frame, at: Time) {
        assert_eq!(self.cfg.fabric, FabricKind::SharedBus);
        self.bus.txq[host.0].push_back(frame);
        if !self.bus.attempt_pending[host.0] {
            self.bus.attempt_pending[host.0] = true;
            self.schedule(at.max(self.now), Event::BusAttempt { host });
        }
    }

    fn bus_attempt(&mut self, host: HostId) {
        self.bus.attempt_pending[host.0] = false;
        if self.bus.txq[host.0].is_empty() {
            return;
        }
        if self.bus.busy_until > self.now {
            // 1-persistent carrier sense: try again the moment the medium
            // goes idle.
            self.bus.attempt_pending[host.0] = true;
            let at = self.bus.busy_until;
            self.schedule(at, Event::BusAttempt { host });
            return;
        }
        if self.bus.contenders.contains(&host) {
            return;
        }
        self.bus.contenders.push(host);
        if self.bus.resolve_at.is_none() {
            let window = self.bus.contention_window(self.cfg.link.prop_delay);
            let at = self.now + window;
            self.bus.resolve_at = Some(at);
            self.schedule(at, Event::BusResolve);
        }
    }

    fn bus_resolve(&mut self) {
        self.bus.resolve_at = None;
        let contenders = std::mem::take(&mut self.bus.contenders);
        match contenders.len() {
            0 => {}
            1 => {
                let host = contenders[0];
                let Some(frame) = self.bus.txq[host.0].pop_front() else {
                    return;
                };
                self.bus.attempts[host.0] = 0;
                let tx = frame.tx_time(self.cfg.link.rate_bps);
                let done = self.now + tx;
                self.bus.busy_until = done;
                self.trace.wire_bytes_sent += frame.wire_bytes() as u64;

                let lost = self.cfg.faults.frame_loss > 0.0
                    && self.rng.gen::<f64>() < self.cfg.faults.frame_loss;
                if lost {
                    self.note_drop(DropCause::WireFault, Some(host));
                } else {
                    let at = done + self.cfg.link.prop_delay;
                    for h in 0..self.hosts.len() {
                        if HostId(h) != host {
                            self.schedule(
                                at,
                                Event::FrameAtHost {
                                    host: HostId(h),
                                    frame: frame.clone(),
                                },
                            );
                        }
                    }
                }
                if !self.bus.txq[host.0].is_empty() {
                    self.bus.attempt_pending[host.0] = true;
                    self.schedule(done, Event::BusAttempt { host });
                }
            }
            _ => {
                // Collision: jam, then truncated binary exponential backoff.
                self.trace.collisions += 1;
                let jam_end = self.now + BusState::JAM_TIME;
                self.bus.busy_until = jam_end;
                for host in contenders {
                    self.bus.attempts[host.0] += 1;
                    if self.bus.attempts[host.0] > BusState::MAX_ATTEMPTS {
                        self.bus.txq[host.0].pop_front();
                        self.note_drop(DropCause::ExcessiveCollisions, Some(host));
                        self.bus.attempts[host.0] = 0;
                        if self.bus.txq[host.0].is_empty() {
                            continue;
                        }
                    }
                    let exp = (self.bus.attempts[host.0]).min(10);
                    let slots = self.rng.gen_range(0..(1u64 << exp));
                    let at = jam_end + BusState::SLOT_TIME.saturating_mul(slots);
                    self.bus.attempt_pending[host.0] = true;
                    self.schedule(at, Event::BusAttempt { host });
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Routing and randomness
    // ------------------------------------------------------------------

    fn finalize_routes(&mut self) {
        if self.cfg.fabric == FabricKind::Switched {
            for s in 0..self.switches.len() {
                let mut route = vec![usize::MAX; self.hosts.len()];
                for p in 0..self.switches[s].ports.len() {
                    let mut seen = vec![false; self.switches.len()];
                    seen[s] = true;
                    for h in self.reachable_hosts(SwitchId(s), p, &mut seen) {
                        assert_eq!(
                            route[h.0],
                            usize::MAX,
                            "host {h} reachable through two ports of sw{s}: topology has a loop"
                        );
                        route[h.0] = p;
                    }
                }
                self.switches[s].route = route;
            }
        }
        self.routes_dirty = false;
    }

    fn reachable_hosts(&self, sw: SwitchId, port: usize, seen: &mut [bool]) -> Vec<HostId> {
        match self.switches[sw.0].ports[port].peer {
            None => Vec::new(),
            Some(PortRef::Host(h)) => vec![h],
            Some(PortRef::Switch(s2, back)) => {
                assert!(!seen[s2.0], "switch loop detected at {s2}");
                seen[s2.0] = true;
                let mut out = Vec::new();
                for p in 0..self.switches[s2.0].ports.len() {
                    if p != back {
                        out.extend(self.reachable_hosts(s2, p, seen));
                    }
                }
                out
            }
        }
    }

    /// Apply the host's configured CPU jitter to a nominal cost.
    pub(crate) fn jitter(&mut self, host: HostId, d: Duration) -> Duration {
        self.jitter_for(host, d)
    }

    fn jitter_for(&mut self, host: HostId, d: Duration) -> Duration {
        let mut d = d;
        if !self.fault_plan.cpu_load.is_empty() {
            let f = self.fault_plan.cpu_load_factor(host, self.now);
            if f != 1.0 {
                d = Duration::from_nanos((d.as_nanos() as f64 * f).round() as u64);
            }
        }
        let j = self.host_params[host.0].cpu_jitter;
        if j == 0.0 || d == Duration::ZERO {
            return d;
        }
        let f = 1.0 + j * (self.rng.gen::<f64>() * 2.0 - 1.0);
        Duration::from_nanos((d.as_nanos() as f64 * f).round().max(0.0) as u64)
    }
}
