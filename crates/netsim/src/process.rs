//! User processes running on simulated hosts.
//!
//! A [`Process`] is an event-driven state machine: the simulator invokes it
//! when its host starts, when a datagram reaches its socket, and when its
//! timer fires. All interaction with the world goes through [`Ctx`], which
//! advances a *CPU cursor*: every charge (system call, payload copy,
//! protocol bookkeeping) pushes the cursor forward, and everything the
//! process emits takes effect at the cursor, so CPU time spent processing
//! one event delays both the packets it sends and every later event on the
//! same host.

use crate::frame::UdpDest;
use crate::ids::HostId;
use crate::sim::Sim;
use bytes::Bytes;
use rand::rngs::SmallRng;
use rmwire::{Duration, Time};

/// A datagram delivered to a process.
#[derive(Debug, Clone)]
pub struct DatagramIn {
    /// The host that sent it.
    pub src_host: HostId,
    /// The sender's source port.
    pub src_port: u16,
    /// The destination it was sent to (the local unicast address or a
    /// multicast group the host subscribes to).
    pub dest: UdpDest,
    /// Application payload.
    pub payload: Bytes,
}

/// An event-driven user process.
///
/// Default implementations ignore every event, so implementors override
/// only what they need.
pub trait Process {
    /// Called once at simulation start (time zero for the host).
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}
    /// Called when the host reboots after a scheduled
    /// [`crate::HostFaultKind::CrashRestart`] fault. All kernel state
    /// (socket buffers, reassembly, timers) has been wiped; the process
    /// instance itself persists, so implementors must reset whatever
    /// in-memory protocol state a real power-cycle would lose.
    fn on_restart(&mut self, _ctx: &mut Ctx<'_>) {}
    /// Called when a datagram has been read from the process's socket. The
    /// kernel receive costs have already been charged to the cursor.
    fn on_datagram(&mut self, _ctx: &mut Ctx<'_>, _dg: DatagramIn) {}
    /// Called when the timer armed with [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>) {}
}

/// The execution context handed to every [`Process`] callback.
pub struct Ctx<'a> {
    pub(crate) sim: &'a mut Sim,
    pub(crate) host: HostId,
    pub(crate) cursor: Time,
}

impl Ctx<'_> {
    /// Current host-local time: event start plus every charge so far.
    pub fn now(&self) -> Time {
        self.cursor
    }

    /// The host this process runs on.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Charge raw CPU time (protocol bookkeeping, user-level copies).
    pub fn charge(&mut self, d: Duration) {
        self.cursor += self.sim.jitter(self.host, d);
    }

    /// Charge one `gettimeofday` call (paper §4 *Timer management*).
    pub fn charge_clock_read(&mut self) {
        let d = self.sim.host_params(self.host).clock_read;
        self.charge(d);
    }

    /// Send a UDP datagram. Charges the send-path CPU costs, fragments the
    /// payload, and blocks (advancing the cursor) while the socket send
    /// buffer is full — exactly the pacing a user-space UDP blast sees.
    pub fn send(&mut self, dest: UdpDest, payload: Bytes) {
        self.cursor = self.sim.udp_send(self.host, dest, payload, self.cursor);
    }

    /// Arm (or re-arm) the process's single timer for absolute time `at`;
    /// any previously armed deadline is replaced.
    pub fn set_timer(&mut self, at: Time) {
        self.sim.set_timer(self.host, at.max(self.cursor));
    }

    /// Disarm the timer.
    pub fn clear_timer(&mut self) {
        self.sim.clear_timer(self.host);
    }

    /// The simulation-wide deterministic random generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.sim.rng()
    }

    /// Ask the simulator to stop after the current event.
    pub fn stop_sim(&mut self) {
        self.sim.request_stop();
    }
}
