//! Run-wide instrumentation counters.

use serde::{Deserialize, Serialize};

/// Why a frame or datagram was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DropCause {
    /// Injected wire fault lost a frame.
    WireFault,
    /// A switch output queue overflowed (tail drop).
    SwitchQueueFull,
    /// The receiving socket buffer had no room for the reassembled
    /// datagram (the paper's dominant loss mode).
    SockBufFull,
    /// An IP reassembly never completed and timed out.
    ReassemblyTimeout,
    /// Injected datagram fault at the receiving host.
    DatagramFault,
    /// CSMA/CD gave up after 16 collisions on one frame.
    ExcessiveCollisions,
    /// The frame traversed an access link inside a scheduled outage
    /// window.
    LinkDown,
    /// The Gilbert–Elliott burst-loss channel was in its bad state.
    BurstLoss,
    /// The frame was corrupted in flight and failed the NIC's FCS check.
    Corrupt,
    /// The destination host had crashed.
    HostDown,
    /// The frame needed an inter-switch trunk inside a scheduled
    /// partition window.
    TrunkDown,
}

impl DropCause {
    /// Stable name, used as the `cause` field of bridged trace records.
    pub fn name(self) -> &'static str {
        match self {
            DropCause::WireFault => "WireFault",
            DropCause::SwitchQueueFull => "SwitchQueueFull",
            DropCause::SockBufFull => "SockBufFull",
            DropCause::ReassemblyTimeout => "ReassemblyTimeout",
            DropCause::DatagramFault => "DatagramFault",
            DropCause::ExcessiveCollisions => "ExcessiveCollisions",
            DropCause::LinkDown => "LinkDown",
            DropCause::BurstLoss => "BurstLoss",
            DropCause::Corrupt => "Corrupt",
            DropCause::HostDown => "HostDown",
            DropCause::TrunkDown => "TrunkDown",
        }
    }
}

/// Aggregate counters maintained by the simulator; read them after a run
/// through [`crate::Sim::trace`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceCounters {
    /// UDP datagrams handed to the network by processes.
    pub datagrams_sent: u64,
    /// UDP datagrams delivered into a process (`on_datagram` calls).
    pub datagrams_delivered: u64,
    /// Ethernet frames that began serialization.
    pub frames_sent: u64,
    /// Frames that arrived intact at a host NIC (including frames the NIC
    /// then filtered out as not-subscribed multicast).
    pub frames_received: u64,
    /// Flooded multicast frames discarded by hosts outside the group.
    pub frames_filtered: u64,
    /// Payload bytes handed to the network by processes.
    pub payload_bytes_sent: u64,
    /// Total wire bytes serialized (framing and padding included).
    pub wire_bytes_sent: u64,
    /// Frames lost to injected wire faults.
    pub drops_wire_fault: u64,
    /// Frames tail-dropped at switch output queues.
    pub drops_switch_queue: u64,
    /// Datagrams dropped at full receive socket buffers.
    pub drops_sockbuf: u64,
    /// Datagrams abandoned by reassembly timeout.
    pub drops_reassembly: u64,
    /// Datagrams lost to injected datagram faults.
    pub drops_datagram_fault: u64,
    /// Frames abandoned after 16 CSMA/CD collisions.
    pub drops_collisions: u64,
    /// CSMA/CD collision events.
    pub collisions: u64,
    /// Frames lost inside scheduled link-down windows.
    pub drops_link_down: u64,
    /// Frames lost to the Gilbert–Elliott burst channel.
    pub drops_burst: u64,
    /// Frames corrupted in flight and discarded by the NIC.
    pub drops_corrupt: u64,
    /// Frames addressed to a crashed host.
    pub drops_host_down: u64,
    /// Frames lost crossing a partitioned inter-switch trunk.
    pub drops_trunk_down: u64,
    /// Frames delayed by the reordering fault (delivered, but late).
    pub frames_reordered: u64,
    /// Datagrams delivered with byzantine byte flips (corrupt_deliver).
    pub byz_corrupt_delivered: u64,
    /// Datagrams delivered twice by the byzantine duplicate fault.
    pub byz_duplicates: u64,
    /// Stale datagrams re-injected by the byzantine replay fault.
    pub byz_replays: u64,
    /// Forged datagrams injected from the fault plan's forge schedule.
    pub byz_forged: u64,
    /// Extra socket deliveries injected by scheduled feedback storms.
    pub storm_amplified: u64,
}

impl TraceCounters {
    /// Record one drop of the given cause.
    pub fn record_drop(&mut self, cause: DropCause) {
        match cause {
            DropCause::WireFault => self.drops_wire_fault += 1,
            DropCause::SwitchQueueFull => self.drops_switch_queue += 1,
            DropCause::SockBufFull => self.drops_sockbuf += 1,
            DropCause::ReassemblyTimeout => self.drops_reassembly += 1,
            DropCause::DatagramFault => self.drops_datagram_fault += 1,
            DropCause::ExcessiveCollisions => self.drops_collisions += 1,
            DropCause::LinkDown => self.drops_link_down += 1,
            DropCause::BurstLoss => self.drops_burst += 1,
            DropCause::Corrupt => self.drops_corrupt += 1,
            DropCause::HostDown => self.drops_host_down += 1,
            DropCause::TrunkDown => self.drops_trunk_down += 1,
        }
    }

    /// Total drops across every cause.
    pub fn total_drops(&self) -> u64 {
        self.drops_wire_fault
            + self.drops_switch_queue
            + self.drops_sockbuf
            + self.drops_reassembly
            + self.drops_datagram_fault
            + self.drops_collisions
            + self.drops_link_down
            + self.drops_burst
            + self.drops_corrupt
            + self.drops_host_down
            + self.drops_trunk_down
    }

    /// `true` when no loss of any kind occurred.
    pub fn clean(&self) -> bool {
        self.total_drops() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_recording() {
        let mut t = TraceCounters::default();
        assert!(t.clean());
        t.record_drop(DropCause::SockBufFull);
        t.record_drop(DropCause::SockBufFull);
        t.record_drop(DropCause::WireFault);
        assert_eq!(t.drops_sockbuf, 2);
        assert_eq!(t.drops_wire_fault, 1);
        assert_eq!(t.total_drops(), 3);
        assert!(!t.clean());
    }
}

/// One entry of the optional packet-level event log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogEvent {
    /// A process handed a datagram to the network.
    DatagramSent {
        /// Sending host index.
        src: usize,
        /// `None` for multicast, `Some(host)` for unicast.
        dst: Option<usize>,
        /// Payload length.
        len: usize,
    },
    /// A datagram reached a process.
    DatagramDelivered {
        /// Receiving host index.
        host: usize,
        /// Payload length.
        len: usize,
    },
    /// Something was dropped.
    Drop {
        /// Why.
        cause: DropCause,
    },
}

/// A bounded in-order log of network events with their timestamps, off by
/// default (zero capacity). Enable with [`crate::Sim::set_log_capacity`]
/// (keeps the *first* `capacity` events) or
/// [`crate::Sim::set_log_keep_last`] (ring mode: keeps the *last*
/// `capacity` events, so the end of a long run survives).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EventLog {
    capacity: usize,
    /// Ring mode: evict the oldest entry instead of dropping new ones.
    keep_last: bool,
    /// `(nanoseconds, event)` in occurrence order; recording stops at
    /// capacity (the `truncated` flag is then set) unless `keep_last`
    /// evicts from the front instead.
    pub entries: Vec<(u64, LogEvent)>,
    /// `true` when events were discarded after hitting capacity (either
    /// new events in first-N mode, or old events in ring mode).
    pub truncated: bool,
}

impl EventLog {
    /// Create with a maximum entry count, keeping the first `capacity`
    /// events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventLog {
            capacity,
            keep_last: false,
            entries: Vec::new(),
            truncated: false,
        }
    }

    /// Create in ring mode: at most `capacity` entries, evicting the
    /// oldest so the log always holds the *last* events of the run.
    pub fn with_ring_capacity(capacity: usize) -> Self {
        EventLog {
            capacity,
            keep_last: true,
            entries: Vec::new(),
            truncated: false,
        }
    }

    /// Record one event at `now_ns`. At capacity, first-N mode drops the
    /// new event; ring mode evicts the oldest (an `O(capacity)` shift —
    /// this is a debugging facility, not a hot path).
    pub fn record(&mut self, now_ns: u64, ev: LogEvent) {
        if self.entries.len() < self.capacity {
            self.entries.push((now_ns, ev));
        } else if self.capacity > 0 {
            self.truncated = true;
            if self.keep_last {
                self.entries.remove(0);
                self.entries.push((now_ns, ev));
            }
        }
    }

    /// `true` when logging is enabled.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// `true` when the log evicts oldest entries instead of dropping new
    /// ones.
    pub fn is_ring(&self) -> bool {
        self.keep_last
    }
}

#[cfg(test)]
mod log_tests {
    use super::*;

    #[test]
    fn log_respects_capacity() {
        let mut l = EventLog::with_capacity(2);
        assert!(l.enabled());
        l.record(
            1,
            LogEvent::Drop {
                cause: DropCause::WireFault,
            },
        );
        l.record(
            2,
            LogEvent::Drop {
                cause: DropCause::WireFault,
            },
        );
        l.record(
            3,
            LogEvent::Drop {
                cause: DropCause::WireFault,
            },
        );
        assert_eq!(l.entries.len(), 2);
        assert!(l.truncated);
    }

    #[test]
    fn ring_mode_keeps_the_last_entries() {
        let mut l = EventLog::with_ring_capacity(2);
        assert!(l.enabled());
        assert!(l.is_ring());
        for t in 1..=5 {
            l.record(
                t,
                LogEvent::Drop {
                    cause: DropCause::WireFault,
                },
            );
        }
        assert!(l.truncated);
        let times: Vec<u64> = l.entries.iter().map(|&(t, _)| t).collect();
        assert_eq!(times, vec![4, 5], "ring retains the end of the run");
    }

    #[test]
    fn zero_capacity_is_disabled() {
        let mut l = EventLog::default();
        assert!(!l.enabled());
        l.record(
            1,
            LogEvent::Drop {
                cause: DropCause::WireFault,
            },
        );
        assert!(l.entries.is_empty());
        assert!(!l.truncated);
    }
}
