//! Ready-made cluster topologies.

use crate::config::FabricKind;
use crate::ids::HostId;
use crate::sim::Sim;

/// `n` hosts on one switch.
pub fn single_switch(sim: &mut Sim, n: usize) -> Vec<HostId> {
    assert!(n >= 1);
    let sw = sim.add_switch();
    (0..n)
        .map(|_| {
            let h = sim.add_host();
            sim.connect_host(h, sw);
            h
        })
        .collect()
}

/// The paper's Figure 7 testbed: two cascaded switches, hosts `P0..P15` on
/// the first and the rest on the second. `P0` (index 0 of the returned
/// vector) is conventionally the sender.
///
/// With `n <= 16` only one switch is created, matching how a small subset
/// of the cluster would be cabled.
pub fn two_switch_cluster(sim: &mut Sim, n: usize) -> Vec<HostId> {
    assert!(n >= 1);
    let sw0 = sim.add_switch();
    let mut hosts = Vec::with_capacity(n);
    let first = n.min(16);
    for _ in 0..first {
        let h = sim.add_host();
        sim.connect_host(h, sw0);
        hosts.push(h);
    }
    if n > 16 {
        let sw1 = sim.add_switch();
        sim.connect_switches(sw0, sw1);
        for _ in 16..n {
            let h = sim.add_host();
            sim.connect_host(h, sw1);
            hosts.push(h);
        }
    }
    hosts
}

/// `n` hosts spread round-robin over a chain of `n_switches` cascaded
/// switches (sw0 - sw1 - ... - swK). Host 0 lands on sw0.
pub fn switch_chain(sim: &mut Sim, n: usize, n_switches: usize) -> Vec<HostId> {
    assert!(n >= 1 && n_switches >= 1);
    let switches: Vec<_> = (0..n_switches).map(|_| sim.add_switch()).collect();
    for w in switches.windows(2) {
        sim.connect_switches(w[0], w[1]);
    }
    (0..n)
        .map(|i| {
            let h = sim.add_host();
            sim.connect_host(h, switches[i % n_switches]);
            h
        })
        .collect()
}

/// `n` hosts on leaf switches hanging off one core switch (a two-tier
/// star): `n_leaves` leaf switches, hosts distributed round-robin.
pub fn star_of_switches(sim: &mut Sim, n: usize, n_leaves: usize) -> Vec<HostId> {
    assert!(n >= 1 && n_leaves >= 1);
    let core = sim.add_switch();
    let leaves: Vec<_> = (0..n_leaves)
        .map(|_| {
            let l = sim.add_switch();
            sim.connect_switches(core, l);
            l
        })
        .collect();
    (0..n)
        .map(|i| {
            let h = sim.add_host();
            sim.connect_host(h, leaves[i % n_leaves]);
            h
        })
        .collect()
}

/// `n` hosts on a single shared CSMA/CD bus. The simulation must have been
/// created with [`FabricKind::SharedBus`].
pub fn shared_bus(sim: &mut Sim, n: usize) -> Vec<HostId> {
    assert!(n >= 1);
    assert_eq!(
        sim.config().fabric,
        FabricKind::SharedBus,
        "shared_bus topology requires FabricKind::SharedBus"
    );
    (0..n).map(|_| sim.add_host()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    #[test]
    fn single_switch_shape() {
        let mut sim = Sim::new(SimConfig::default(), 1);
        let hosts = single_switch(&mut sim, 4);
        assert_eq!(hosts.len(), 4);
        assert_eq!(hosts[0], HostId(0));
    }

    #[test]
    fn two_switch_splits_at_16() {
        let mut sim = Sim::new(SimConfig::default(), 1);
        let hosts = two_switch_cluster(&mut sim, 31);
        assert_eq!(hosts.len(), 31);

        let mut small = Sim::new(SimConfig::default(), 1);
        let hosts = two_switch_cluster(&mut small, 8);
        assert_eq!(hosts.len(), 8);
    }

    #[test]
    fn switch_chain_and_star_build() {
        let mut sim = Sim::new(SimConfig::default(), 1);
        let hosts = switch_chain(&mut sim, 9, 3);
        assert_eq!(hosts.len(), 9);

        let mut sim2 = Sim::new(SimConfig::default(), 1);
        let hosts = star_of_switches(&mut sim2, 12, 4);
        assert_eq!(hosts.len(), 12);
    }

    #[test]
    fn shared_bus_builds() {
        let cfg = SimConfig {
            fabric: FabricKind::SharedBus,
            ..SimConfig::default()
        };
        let mut sim = Sim::new(cfg, 1);
        let hosts = shared_bus(&mut sim, 5);
        assert_eq!(hosts.len(), 5);
    }

    #[test]
    #[should_panic(expected = "requires FabricKind::SharedBus")]
    fn shared_bus_rejects_switched_config() {
        let mut sim = Sim::new(SimConfig::default(), 1);
        let _ = shared_bus(&mut sim, 2);
    }
}
