//! The virtual egress clock: a deterministic model of a FIFO transmit
//! queue draining onto a dedicated full-duplex link.
//!
//! Because each transmitter (host NIC or switch output port) owns its link
//! direction exclusively, its drain schedule is a pure function of what was
//! enqueued: frame `k` finishes at `max(enqueue_k, done_{k-1}) + tx_k`.
//! This lets the simulator compute every frame's departure instant at
//! enqueue time — no per-frame "transmission complete" events are needed —
//! while still modelling queue occupancy exactly for tail-drop and
//! blocking-send decisions.

use rmwire::{Duration, Time};
use std::collections::VecDeque;

/// A FIFO transmit queue with a virtual drain clock.
///
/// ```
/// use netsim::egress::Egress;
/// use rmwire::{Duration, Time};
///
/// let mut e = Egress::new();
/// let d1 = e.enqueue(Time::ZERO, Duration::from_micros(120), 1518);
/// let d2 = e.enqueue(Time::ZERO, Duration::from_micros(120), 1518);
/// assert_eq!(d2 - d1, Duration::from_micros(120), "back-to-back frames");
/// ```
#[derive(Debug, Default)]
pub struct Egress {
    /// When the last enqueued frame finishes serializing.
    clock: Time,
    /// `(done_instant, frame_bytes)` of frames not yet known-drained.
    inflight: VecDeque<(Time, usize)>,
}

impl Egress {
    /// An idle egress.
    pub fn new() -> Self {
        Egress::default()
    }

    /// Drop bookkeeping for frames that finished before `now`.
    fn prune(&mut self, now: Time) {
        while let Some(&(done, _)) = self.inflight.front() {
            if done <= now {
                self.inflight.pop_front();
            } else {
                break;
            }
        }
    }

    /// Bytes occupying the queue at `now` (frames not yet fully
    /// serialized, the one on the wire included).
    pub fn queued_bytes(&mut self, now: Time) -> usize {
        self.prune(now);
        self.inflight.iter().map(|&(_, b)| b).sum()
    }

    /// Unconditionally enqueue a frame at `now`; returns the instant its
    /// last bit leaves the transmitter.
    pub fn enqueue(&mut self, now: Time, tx_time: Duration, frame_bytes: usize) -> Time {
        self.prune(now);
        let start = self.clock.max(now);
        let done = start + tx_time;
        self.clock = done;
        self.inflight.push_back((done, frame_bytes));
        done
    }

    /// The earliest instant `t >= now` at which enqueuing `need` more bytes
    /// would keep occupancy within `cap`. Returns `now` when there is room
    /// already. `None` if `need` alone exceeds `cap` (it can never fit).
    pub fn earliest_fit(&mut self, now: Time, need: usize, cap: usize) -> Option<Time> {
        if need > cap {
            return None;
        }
        self.prune(now);
        let mut occupied: usize = self.inflight.iter().map(|&(_, b)| b).sum();
        if occupied + need <= cap {
            return Some(now);
        }
        for &(done, bytes) in self.inflight.iter() {
            occupied -= bytes;
            if occupied + need <= cap {
                return Some(done);
            }
        }
        unreachable!("draining everything always makes room (need <= cap)");
    }

    /// When the transmitter becomes idle given everything enqueued so far.
    pub fn idle_at(&self) -> Time {
        self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const US: u64 = 1_000;

    fn t(us: u64) -> Time {
        Time::from_nanos(us * US)
    }
    fn d(us: u64) -> Duration {
        Duration::from_nanos(us * US)
    }

    #[test]
    fn back_to_back_serialization() {
        let mut e = Egress::new();
        let d1 = e.enqueue(t(0), d(120), 1518);
        let d2 = e.enqueue(t(0), d(120), 1518);
        assert_eq!(d1, t(120));
        assert_eq!(d2, t(240));
        // A frame enqueued after the queue drained starts immediately.
        let d3 = e.enqueue(t(500), d(120), 1518);
        assert_eq!(d3, t(620));
    }

    #[test]
    fn occupancy_tracks_drain() {
        let mut e = Egress::new();
        e.enqueue(t(0), d(100), 1000);
        e.enqueue(t(0), d(100), 1000);
        assert_eq!(e.queued_bytes(t(0)), 2000);
        assert_eq!(e.queued_bytes(t(100)), 1000);
        assert_eq!(e.queued_bytes(t(150)), 1000);
        assert_eq!(e.queued_bytes(t(200)), 0);
    }

    #[test]
    fn earliest_fit_blocks_until_drain() {
        let mut e = Egress::new();
        e.enqueue(t(0), d(100), 1000);
        e.enqueue(t(0), d(100), 1000);
        // Capacity 2500: 2000 queued; a 1000-byte frame fits once the first
        // frame drains at t=100.
        assert_eq!(e.earliest_fit(t(0), 1000, 2500), Some(t(100)));
        // Already fits.
        assert_eq!(e.earliest_fit(t(0), 500, 2500), Some(t(0)));
        // Can never fit.
        assert_eq!(e.earliest_fit(t(0), 3000, 2500), None);
        // Needs a full drain.
        assert_eq!(e.earliest_fit(t(0), 2500, 2500), Some(t(200)));
    }

    #[test]
    fn idle_at_advances() {
        let mut e = Egress::new();
        assert_eq!(e.idle_at(), Time::ZERO);
        e.enqueue(t(10), d(5), 64);
        assert_eq!(e.idle_at(), t(15));
    }
}
