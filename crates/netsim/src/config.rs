//! Simulation parameters.
//!
//! Defaults reproduce the paper's testbed: 100 Mbit/s switched Ethernet,
//! Pentium III 650 MHz class end hosts running a user-space UDP protocol
//! stack on Linux 2.2. The calibration rationale for each constant lives in
//! `simrun::calibration` and EXPERIMENTS.md.

use crate::ids::HostId;
use rmwire::{Duration, Time};
use serde::{Deserialize, Serialize};

fn assert_prob(p: f64) {
    assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
}

/// Physical-layer parameters of a point-to-point full-duplex link (or of
/// the shared bus when [`FabricKind::SharedBus`] is selected).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Raw signalling rate in bits per second.
    pub rate_bps: u64,
    /// One-way propagation delay.
    pub prop_delay: Duration,
    /// Maximum IP packet size per Ethernet frame (1500 standard; 9000 for
    /// jumbo frames).
    pub mtu: usize,
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams {
            // 100BASE-TX, a few tens of metres of cable plus PHY latency.
            rate_bps: 100_000_000,
            prop_delay: Duration::from_micros(1),
            mtu: 1500,
        }
    }
}

/// Parameters of a store-and-forward Ethernet switch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchParams {
    /// Forwarding latency added after a frame is fully received, before it
    /// is eligible for transmission on the output port.
    pub latency: Duration,
    /// Capacity of each output-port queue in bytes; a frame that does not
    /// fit is tail-dropped.
    pub queue_bytes: usize,
    /// When `true` the switch forwards multicast frames only toward group
    /// members (IGMP snooping); when `false` it floods them on every port
    /// except the ingress, like the paper's unmanaged 3Com switches.
    pub igmp_snooping: bool,
}

impl Default for SwitchParams {
    fn default() -> Self {
        SwitchParams {
            latency: Duration::from_micros(10),
            queue_bytes: 256 * 1024,
            igmp_snooping: false,
        }
    }
}

/// Per-host parameters: the CPU cost model and kernel buffer sizes.
///
/// The CPU is modelled as a serial resource; every datagram sent or
/// received charges it. All costs are multiplied by `(1 ± jitter)` with a
/// deterministic seeded jitter to model the paper's observation that
/// "communication in Ethernet can sometimes be quite random".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostParams {
    /// Fixed cost of a `sendto` system call (user/kernel crossing,
    /// socket lookup, header construction).
    pub send_syscall: Duration,
    /// Kernel cost per transmitted fragment (skb handling, driver ring).
    pub send_per_fragment: Duration,
    /// Kernel copy cost per transmitted byte (user buffer into kernel).
    pub send_per_byte_ns: u64,
    /// Fixed cost of a `recvfrom` system call returning one datagram.
    pub recv_syscall: Duration,
    /// Kernel cost per received fragment (interrupt, IP input, reassembly).
    pub recv_per_fragment: Duration,
    /// Kernel copy cost per received byte (kernel buffer into user).
    pub recv_per_byte_ns: u64,
    /// Kernel cost to discard one flooded multicast frame the host did not
    /// subscribe to (the paper's "extra CPU overhead for unintended
    /// receivers"). NIC-level perfect filtering sets this to zero.
    pub mcast_filter_cost: Duration,
    /// Cost of reading the clock (`gettimeofday`), charged through
    /// [`crate::process::Ctx::charge_clock_read`].
    pub clock_read: Duration,
    /// UDP receive socket buffer in bytes; a fully reassembled datagram
    /// that does not fit is dropped (the paper's dominant loss mode).
    pub recv_sockbuf: usize,
    /// Bytes the NIC transmit path will queue before `sendto` blocks.
    pub send_sockbuf: usize,
    /// Relative jitter applied to every CPU charge, e.g. `0.05` for ±5 %.
    pub cpu_jitter: f64,
    /// Timeout after which an incomplete IP reassembly is discarded.
    pub reassembly_timeout: Duration,
}

impl Default for HostParams {
    fn default() -> Self {
        HostParams {
            send_syscall: Duration::from_micros(18),
            send_per_fragment: Duration::from_micros(3),
            send_per_byte_ns: 10,
            recv_syscall: Duration::from_micros(40),
            recv_per_fragment: Duration::from_micros(3),
            recv_per_byte_ns: 10,
            mcast_filter_cost: Duration::from_micros(2),
            clock_read: Duration::from_nanos(700),
            recv_sockbuf: 256 * 1024,
            send_sockbuf: 32 * 1024,
            cpu_jitter: 0.04,
            reassembly_timeout: Duration::from_millis(500),
        }
    }
}

/// Fault injection knobs. All default to a perfectly clean network, the
/// paper's observation for wired LANs ("the transmission error rate is very
/// low ... errors almost never happen").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultParams {
    /// Probability that any individual frame is lost on the wire.
    pub frame_loss: f64,
    /// Probability that a reassembled datagram is dropped at the receiving
    /// host (models NIC/driver drops beyond socket-buffer overflow).
    pub datagram_loss: f64,
    /// Probability that a frame is duplicated on the wire (switch or
    /// driver retransmit artifacts; protocols must tolerate duplicates).
    pub frame_dup: f64,
}

impl FaultParams {
    /// Clean-network preset (no injected loss).
    pub const NONE: FaultParams = FaultParams {
        frame_loss: 0.0,
        datagram_loss: 0.0,
        frame_dup: 0.0,
    };

    /// Uniform frame-loss preset.
    pub fn frame_loss(p: f64) -> Self {
        FaultParams::new(p, 0.0, 0.0)
    }

    /// Uniform datagram-loss preset (drops at the receiving host after
    /// reassembly).
    pub fn datagram_loss(p: f64) -> Self {
        FaultParams::new(0.0, p, 0.0)
    }

    /// Uniform frame-duplication preset.
    pub fn frame_dup(p: f64) -> Self {
        FaultParams::new(0.0, 0.0, p)
    }

    /// Combined preset; every probability is validated to `[0, 1]`.
    pub fn new(frame_loss: f64, datagram_loss: f64, frame_dup: f64) -> Self {
        assert_prob(frame_loss);
        assert_prob(datagram_loss);
        assert_prob(frame_dup);
        FaultParams {
            frame_loss,
            datagram_loss,
            frame_dup,
        }
    }
}

/// A two-state Gilbert–Elliott burst-loss channel: the link alternates
/// between a good state (no loss) and a bad state (every frame lost), with
/// geometric sojourn times chosen so the long-run loss rate is `avg_loss`
/// and the mean burst length is `mean_burst_len` frames. One independent
/// channel runs per host access link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GilbertElliott {
    /// Long-run fraction of frames lost, in `(0, 1)`.
    pub avg_loss: f64,
    /// Mean number of consecutive frames lost per bad-state visit (>= 1).
    pub mean_burst_len: f64,
}

impl GilbertElliott {
    /// Validated constructor.
    pub fn new(avg_loss: f64, mean_burst_len: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&avg_loss) && avg_loss > 0.0,
            "avg_loss must be in (0, 1): {avg_loss}"
        );
        assert!(
            mean_burst_len >= 1.0 && mean_burst_len.is_finite(),
            "mean_burst_len must be >= 1: {mean_burst_len}"
        );
        GilbertElliott {
            avg_loss,
            mean_burst_len,
        }
    }

    /// Per-frame probability of leaving the bad state.
    pub(crate) fn p_bad_to_good(&self) -> f64 {
        1.0 / self.mean_burst_len
    }

    /// Per-frame probability of entering the bad state, derived from the
    /// stationary distribution: `pi_bad = p_gb / (p_gb + p_bg) = avg_loss`.
    pub(crate) fn p_good_to_bad(&self) -> f64 {
        self.avg_loss * self.p_bad_to_good() / (1.0 - self.avg_loss)
    }
}

/// A scheduled window during which one host's access link drops every
/// frame in both directions (cable pull / port flap).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkDownWindow {
    /// The host whose uplink goes dark.
    pub host: HostId,
    /// First instant of the outage.
    pub from: Time,
    /// First instant the link works again.
    pub until: Time,
}

/// What happens to a host at a scheduled instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum HostFaultKind {
    /// The host halts permanently: its CPU stops, pending work is
    /// discarded and every frame addressed to it vanishes.
    Crash,
    /// The host's CPU stalls until `until` (GC pause, overload, swap
    /// storm); frames keep arriving into its socket buffers meanwhile.
    Pause {
        /// When the CPU resumes.
        until: Time,
    },
    /// The host halts at `at` like [`HostFaultKind::Crash`], loses all
    /// state (socket buffers, reassembly, timers), then reboots at `until`
    /// with a fresh process ([`crate::process::Process::on_restart`]).
    CrashRestart {
        /// When the host comes back up.
        until: Time,
    },
}

/// One scheduled host fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostFault {
    /// The afflicted host.
    pub host: HostId,
    /// When the fault strikes.
    pub at: Time,
    /// What it does.
    pub kind: HostFaultKind,
}

/// A scheduled feedback-storm window: every datagram arriving at `target`
/// over `[from, until)` is delivered `amplify` extra times into its
/// socket. Aimed at a protocol's sender host — which receives only
/// control traffic — this reproduces an ACK/NAK implosion: one loss event
/// fanned out into a flood of duplicate feedback.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StormWindow {
    /// The host whose inbound datagrams are amplified.
    pub target: HostId,
    /// First instant of the storm.
    pub from: Time,
    /// First instant delivery is normal again.
    pub until: Time,
    /// Extra copies delivered per datagram (>= 1).
    pub amplify: u32,
}

/// A scheduled CPU-saturation window: every CPU charge on `host` over
/// `[from, until)` is multiplied by `factor` (>= 1). Models a receiver
/// starved by a co-resident workload — it stays correct but falls behind,
/// the trigger condition for sender-side slow-receiver quarantine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuLoadWindow {
    /// The saturated host.
    pub host: HostId,
    /// First instant of the load.
    pub from: Time,
    /// First instant the CPU runs at full speed again.
    pub until: Time,
    /// Multiplier applied to every CPU charge (>= 1).
    pub factor: f64,
}

/// A frame synthesized by an attacker and injected straight into one
/// host's receive path at a scheduled instant. The payload bytes are
/// attacker-chosen, so any rank/type/sequence combination can be forged —
/// including valid-looking control packets the protocol never sent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForgeFrame {
    /// When the forged frame arrives.
    pub at: Time,
    /// The host whose socket receives it.
    pub dest: HostId,
    /// Destination UDP port (must match a bound socket to be seen).
    pub port: u16,
    /// The spoofed source host.
    pub src: HostId,
    /// The raw datagram bytes, exactly as the process will receive them.
    pub payload: Vec<u8>,
}

/// A deterministic, seeded chaos schedule layered over [`FaultParams`]:
/// per-link loss, burst loss, reordering, corruption, link outages and
/// host crash/pause faults. Installed on a simulation with
/// [`crate::Sim::set_fault_plan`]; the default (empty) plan injects
/// nothing and consumes no randomness, so runs stay bit-identical to a
/// plan-free simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultPlan {
    /// `(host, p)`: uniform frame loss on that host's access link (both
    /// directions), on top of the global `FaultParams::frame_loss`.
    pub link_loss: Vec<(HostId, f64)>,
    /// Burst-loss channel applied on every host access link.
    pub burst: Option<GilbertElliott>,
    /// Probability that a frame is held back and arrives late — after
    /// frames sent behind it (out-of-order delivery).
    pub reorder: f64,
    /// How long a reordered frame is held beyond its normal arrival.
    pub reorder_delay: Duration,
    /// Probability that a frame is corrupted in flight; the receiving NIC
    /// discards it on the FCS check.
    pub corrupt: f64,
    /// Scheduled link outages.
    pub link_down: Vec<LinkDownWindow>,
    /// Scheduled host crashes and pauses.
    pub host_faults: Vec<HostFault>,
    /// Scheduled inter-switch trunk outages `[from, until)`. While a
    /// window is open every frame crossing a switch-to-switch link is
    /// dropped, partitioning the hosts into per-switch islands; access
    /// links keep working, so hosts on each side still talk locally.
    pub trunk_down: Vec<(Time, Time)>,
    /// Byzantine corruption: probability that a reassembled datagram is
    /// *delivered* with 1–4 flipped bytes instead of being FCS-dropped
    /// like [`FaultPlan::corrupt`]. The corrupted bytes reach the
    /// protocol's decode path, exercising its integrity defences.
    pub corrupt_deliver: f64,
    /// Probability that a reassembled datagram is delivered twice to the
    /// destination process (beyond wire-level `frame_dup`).
    pub duplicate: f64,
    /// Replay attack: probability that, alongside a normal delivery, a
    /// stale previously-delivered datagram is re-injected into the same
    /// host's socket. The simulator keeps a bounded ring of recent
    /// datagrams to replay from.
    pub replay: f64,
    /// Forged frames injected at scheduled instants.
    pub forge: Vec<ForgeFrame>,
    /// Scheduled feedback storms (control-traffic amplification at one
    /// host, typically the sender).
    pub feedback_storm: Vec<StormWindow>,
    /// Scheduled per-host CPU saturation windows.
    pub cpu_load: Vec<CpuLoadWindow>,
    /// `(host, from, until)`: while a window is open every datagram
    /// arriving at `host` is dropped as if its receive socket buffer were
    /// full (counted under [`crate::DropCause::SockBufFull`]).
    pub sockbuf_exhaust: Vec<(HostId, Time, Time)>,
}

impl FaultPlan {
    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.link_loss.is_empty()
            && self.burst.is_none()
            && self.reorder == 0.0
            && self.corrupt == 0.0
            && self.link_down.is_empty()
            && self.host_faults.is_empty()
            && self.trunk_down.is_empty()
            && self.corrupt_deliver == 0.0
            && self.duplicate == 0.0
            && self.replay == 0.0
            && self.forge.is_empty()
            && self.feedback_storm.is_empty()
            && self.cpu_load.is_empty()
            && self.sockbuf_exhaust.is_empty()
    }

    /// Add uniform loss on `host`'s access link.
    pub fn with_link_loss(mut self, host: HostId, p: f64) -> Self {
        assert_prob(p);
        self.link_loss.push((host, p));
        self
    }

    /// Install a Gilbert–Elliott burst-loss channel on every access link.
    pub fn with_burst(mut self, avg_loss: f64, mean_burst_len: f64) -> Self {
        self.burst = Some(GilbertElliott::new(avg_loss, mean_burst_len));
        self
    }

    /// Delay each frame with probability `p` by `delay` (reordering it
    /// past frames sent behind it).
    pub fn with_reorder(mut self, p: f64, delay: Duration) -> Self {
        assert_prob(p);
        assert!(delay > Duration::ZERO, "reorder delay must be positive");
        self.reorder = p;
        self.reorder_delay = delay;
        self
    }

    /// Corrupt each frame with probability `p` (dropped at the NIC).
    pub fn with_corrupt(mut self, p: f64) -> Self {
        assert_prob(p);
        self.corrupt = p;
        self
    }

    /// Take `host`'s access link down over `[from, until)`.
    pub fn with_link_down(mut self, host: HostId, from: Time, until: Time) -> Self {
        assert!(from < until, "empty link-down window");
        self.link_down.push(LinkDownWindow { host, from, until });
        self
    }

    /// Crash `host` permanently at `at`.
    pub fn with_crash(mut self, host: HostId, at: Time) -> Self {
        self.host_faults.push(HostFault {
            host,
            at,
            kind: HostFaultKind::Crash,
        });
        self
    }

    /// Crash `host` at `at` and reboot it (state wiped) at `until`.
    pub fn with_crash_restart(mut self, host: HostId, at: Time, until: Time) -> Self {
        assert!(at < until, "empty crash-restart window");
        self.host_faults.push(HostFault {
            host,
            at,
            kind: HostFaultKind::CrashRestart { until },
        });
        self
    }

    /// Sever every inter-switch trunk over `[from, until)`.
    pub fn with_trunk_down(mut self, from: Time, until: Time) -> Self {
        assert!(from < until, "empty trunk-down window");
        self.trunk_down.push((from, until));
        self
    }

    /// Deliver each datagram corrupted (bytes flipped, not dropped) with
    /// probability `p`.
    pub fn with_corrupt_deliver(mut self, p: f64) -> Self {
        assert_prob(p);
        self.corrupt_deliver = p;
        self
    }

    /// Deliver each datagram twice with probability `p`.
    pub fn with_duplicate(mut self, p: f64) -> Self {
        assert_prob(p);
        self.duplicate = p;
        self
    }

    /// Re-inject a stale recorded datagram alongside a delivery with
    /// probability `p`.
    pub fn with_replay(mut self, p: f64) -> Self {
        assert_prob(p);
        self.replay = p;
        self
    }

    /// Inject a forged datagram (spoofed source `src`, attacker-chosen
    /// `payload`) into `dest`'s socket on `port` at `at`.
    pub fn with_forge(
        mut self,
        at: Time,
        dest: HostId,
        port: u16,
        src: HostId,
        payload: Vec<u8>,
    ) -> Self {
        self.forge.push(ForgeFrame {
            at,
            dest,
            port,
            src,
            payload,
        });
        self
    }

    /// Amplify every datagram arriving at `target` over `[from, until)`
    /// by `amplify` extra socket deliveries (an ACK/NAK implosion when
    /// aimed at a sender host).
    pub fn with_feedback_storm(
        mut self,
        target: HostId,
        from: Time,
        until: Time,
        amplify: u32,
    ) -> Self {
        assert!(from < until, "empty feedback-storm window");
        assert!(amplify >= 1, "storm amplification must be >= 1");
        self.feedback_storm.push(StormWindow {
            target,
            from,
            until,
            amplify,
        });
        self
    }

    /// Multiply every CPU charge on `host` by `factor` over `[from,
    /// until)`.
    pub fn with_cpu_load(mut self, host: HostId, from: Time, until: Time, factor: f64) -> Self {
        assert!(from < until, "empty cpu-load window");
        assert!(
            factor >= 1.0 && factor.is_finite(),
            "cpu-load factor must be >= 1: {factor}"
        );
        self.cpu_load.push(CpuLoadWindow {
            host,
            from,
            until,
            factor,
        });
        self
    }

    /// Run `host` `factor`× slower for the whole simulation — the
    /// canonical slow-receiver setup for quarantine experiments.
    pub fn with_slow_host(self, host: HostId, factor: f64) -> Self {
        self.with_cpu_load(host, Time::ZERO, Time::MAX, factor)
    }

    /// Drop every datagram arriving at `host` over `[from, until)` as a
    /// socket-buffer-full loss.
    pub fn with_sockbuf_exhaust(mut self, host: HostId, from: Time, until: Time) -> Self {
        assert!(from < until, "empty sockbuf-exhaust window");
        self.sockbuf_exhaust.push((host, from, until));
        self
    }

    /// Stall `host`'s CPU over `[from, until)`.
    pub fn with_pause(mut self, host: HostId, from: Time, until: Time) -> Self {
        assert!(from < until, "empty pause window");
        self.host_faults.push(HostFault {
            host,
            at: from,
            kind: HostFaultKind::Pause { until },
        });
        self
    }

    /// Uniform loss configured for `host`'s access link (sum of entries).
    pub(crate) fn link_loss_for(&self, host: HostId) -> f64 {
        self.link_loss
            .iter()
            .filter(|&&(h, _)| h == host)
            .map(|&(_, p)| p)
            .sum::<f64>()
            .min(1.0)
    }

    /// Is `host`'s access link scheduled down at `now`?
    pub(crate) fn link_is_down(&self, host: HostId, now: Time) -> bool {
        self.link_down
            .iter()
            .any(|w| w.host == host && w.from <= now && now < w.until)
    }

    /// Has `host` crashed by `now`? Permanent crashes count forever;
    /// crash-restart windows count only until the reboot instant.
    pub(crate) fn host_crashed(&self, host: HostId, now: Time) -> bool {
        self.host_faults.iter().any(|f| {
            f.host == host
                && f.at <= now
                && match f.kind {
                    HostFaultKind::Crash => true,
                    HostFaultKind::CrashRestart { until } => now < until,
                    HostFaultKind::Pause { .. } => false,
                }
        })
    }

    /// Every `(host, reboot_instant)` pair in the plan, for scheduling
    /// restart events when the plan is installed.
    pub(crate) fn restarts(&self) -> impl Iterator<Item = (HostId, Time)> + '_ {
        self.host_faults.iter().filter_map(|f| match f.kind {
            HostFaultKind::CrashRestart { until } => Some((f.host, until)),
            _ => None,
        })
    }

    /// Are the inter-switch trunks scheduled down at `now`?
    pub(crate) fn trunk_is_down(&self, now: Time) -> bool {
        self.trunk_down
            .iter()
            .any(|&(from, until)| from <= now && now < until)
    }

    /// Extra socket deliveries owed to `host` at `now` (sum over open
    /// storm windows).
    pub(crate) fn storm_amplify(&self, host: HostId, now: Time) -> u64 {
        self.feedback_storm
            .iter()
            .filter(|w| w.target == host && w.from <= now && now < w.until)
            .map(|w| u64::from(w.amplify))
            .sum()
    }

    /// Combined CPU-charge multiplier for `host` at `now` (product over
    /// open load windows; `1.0` outside every window).
    pub(crate) fn cpu_load_factor(&self, host: HostId, now: Time) -> f64 {
        self.cpu_load
            .iter()
            .filter(|w| w.host == host && w.from <= now && now < w.until)
            .map(|w| w.factor)
            .product()
    }

    /// Is `host`'s receive socket buffer scheduled exhausted at `now`?
    pub(crate) fn sockbuf_exhausted(&self, host: HostId, now: Time) -> bool {
        self.sockbuf_exhaust
            .iter()
            .any(|&(h, from, until)| h == host && from <= now && now < until)
    }

    /// The instant `host`'s CPU next runs again, when paused at `now`.
    pub(crate) fn host_paused_until(&self, host: HostId, now: Time) -> Option<Time> {
        self.host_faults
            .iter()
            .filter_map(|f| match f.kind {
                HostFaultKind::Pause { until } if f.host == host && f.at <= now && now < until => {
                    Some(until)
                }
                _ => None,
            })
            .max()
    }
}

/// Which layer-2 fabric connects the hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FabricKind {
    /// Full-duplex store-and-forward switches (the paper's testbed).
    #[default]
    Switched,
    /// A single half-duplex CSMA/CD bus shared by every host (the paper's
    /// "traditional LANs use shared media" discussion).
    SharedBus,
}

/// Top-level simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SimConfig {
    /// Link parameters applied to every link.
    pub link: LinkParams,
    /// Switch parameters applied to every switch.
    pub switch: SwitchParams,
    /// Host parameters applied to every host.
    pub host: HostParams,
    /// Fault injection.
    pub faults: FaultParams,
    /// Fabric selection.
    pub fabric: FabricKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_testbed() {
        let c = SimConfig::default();
        assert_eq!(c.link.rate_bps, 100_000_000);
        assert_eq!(c.fabric, FabricKind::Switched);
        assert!(!c.switch.igmp_snooping);
        assert_eq!(c.faults, FaultParams::NONE);
    }

    #[test]
    fn fault_presets() {
        let f = FaultParams::frame_loss(0.01);
        assert_eq!(f.frame_loss, 0.01);
        assert_eq!(f.datagram_loss, 0.0);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn fault_probability_validated() {
        let _ = FaultParams::frame_loss(1.5);
    }

    #[test]
    fn fault_combined_builder() {
        let f = FaultParams::new(0.01, 0.02, 0.03);
        assert_eq!(f.frame_loss, 0.01);
        assert_eq!(f.datagram_loss, 0.02);
        assert_eq!(f.frame_dup, 0.03);
        assert_eq!(FaultParams::datagram_loss(0.1).datagram_loss, 0.1);
        assert_eq!(FaultParams::frame_dup(0.1).frame_dup, 0.1);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn dup_probability_validated() {
        let _ = FaultParams::frame_dup(-0.1);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn datagram_probability_validated() {
        let _ = FaultParams::datagram_loss(2.0);
    }

    #[test]
    fn gilbert_elliott_transition_rates() {
        let ge = GilbertElliott::new(0.05, 4.0);
        let p_bg = ge.p_bad_to_good();
        let p_gb = ge.p_good_to_bad();
        assert!((p_bg - 0.25).abs() < 1e-12);
        // Stationary bad-state probability equals the target loss rate.
        let pi_bad = p_gb / (p_gb + p_bg);
        assert!((pi_bad - 0.05).abs() < 1e-12);
    }

    #[test]
    fn fault_plan_schedules() {
        let h = HostId(3);
        let plan = FaultPlan::default()
            .with_link_loss(h, 0.02)
            .with_link_down(h, Time::from_millis(10), Time::from_millis(20))
            .with_crash(HostId(1), Time::from_millis(5))
            .with_pause(HostId(2), Time::from_millis(1), Time::from_millis(2));
        assert!(!plan.is_empty());
        assert_eq!(plan.link_loss_for(h), 0.02);
        assert_eq!(plan.link_loss_for(HostId(0)), 0.0);
        assert!(!plan.link_is_down(h, Time::from_millis(9)));
        assert!(plan.link_is_down(h, Time::from_millis(10)));
        assert!(plan.link_is_down(h, Time::from_millis(19)));
        assert!(!plan.link_is_down(h, Time::from_millis(20)));
        assert!(!plan.host_crashed(HostId(1), Time::from_millis(4)));
        assert!(plan.host_crashed(HostId(1), Time::from_millis(5)));
        assert_eq!(
            plan.host_paused_until(HostId(2), Time::from_millis(1)),
            Some(Time::from_millis(2))
        );
        assert_eq!(
            plan.host_paused_until(HostId(2), Time::from_millis(2)),
            None
        );
        assert!(FaultPlan::default().is_empty());
    }

    #[test]
    fn crash_restart_and_trunk_windows() {
        let plan = FaultPlan::default()
            .with_crash_restart(HostId(4), Time::from_millis(10), Time::from_millis(30))
            .with_trunk_down(Time::from_millis(50), Time::from_millis(80));
        assert!(!plan.is_empty());
        // Crashed only inside [at, until); alive again after reboot.
        assert!(!plan.host_crashed(HostId(4), Time::from_millis(9)));
        assert!(plan.host_crashed(HostId(4), Time::from_millis(10)));
        assert!(plan.host_crashed(HostId(4), Time::from_millis(29)));
        assert!(!plan.host_crashed(HostId(4), Time::from_millis(30)));
        assert_eq!(
            plan.restarts().collect::<Vec<_>>(),
            vec![(HostId(4), Time::from_millis(30))]
        );
        assert!(!plan.trunk_is_down(Time::from_millis(49)));
        assert!(plan.trunk_is_down(Time::from_millis(50)));
        assert!(plan.trunk_is_down(Time::from_millis(79)));
        assert!(!plan.trunk_is_down(Time::from_millis(80)));
    }

    #[test]
    fn byzantine_knobs_make_the_plan_non_empty() {
        assert!(!FaultPlan::default().with_corrupt_deliver(0.1).is_empty());
        assert!(!FaultPlan::default().with_duplicate(0.1).is_empty());
        assert!(!FaultPlan::default().with_replay(0.1).is_empty());
        let plan = FaultPlan::default().with_forge(
            Time::from_millis(1),
            HostId(0),
            7000,
            HostId(1),
            vec![0xde, 0xad],
        );
        assert!(!plan.is_empty());
        assert_eq!(plan.forge.len(), 1);
        assert_eq!(plan.forge[0].payload, vec![0xde, 0xad]);
        // Zeroed knobs keep the plan empty (determinism contract).
        assert!(FaultPlan::default()
            .with_corrupt_deliver(0.0)
            .with_duplicate(0.0)
            .with_replay(0.0)
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn byzantine_probability_validated() {
        let _ = FaultPlan::default().with_corrupt_deliver(1.5);
    }

    #[test]
    #[should_panic(expected = "empty trunk-down window")]
    fn trunk_down_window_validated() {
        let t = Time::from_millis(5);
        let _ = FaultPlan::default().with_trunk_down(t, t);
    }

    #[test]
    #[should_panic(expected = "empty link-down window")]
    fn link_down_window_validated() {
        let t = Time::from_millis(5);
        let _ = FaultPlan::default().with_link_down(HostId(0), t, t);
    }
}
