//! Simulation parameters.
//!
//! Defaults reproduce the paper's testbed: 100 Mbit/s switched Ethernet,
//! Pentium III 650 MHz class end hosts running a user-space UDP protocol
//! stack on Linux 2.2. The calibration rationale for each constant lives in
//! `simrun::calibration` and EXPERIMENTS.md.

use rmwire::Duration;
use serde::{Deserialize, Serialize};

/// Physical-layer parameters of a point-to-point full-duplex link (or of
/// the shared bus when [`FabricKind::SharedBus`] is selected).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Raw signalling rate in bits per second.
    pub rate_bps: u64,
    /// One-way propagation delay.
    pub prop_delay: Duration,
    /// Maximum IP packet size per Ethernet frame (1500 standard; 9000 for
    /// jumbo frames).
    pub mtu: usize,
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams {
            // 100BASE-TX, a few tens of metres of cable plus PHY latency.
            rate_bps: 100_000_000,
            prop_delay: Duration::from_micros(1),
            mtu: 1500,
        }
    }
}

/// Parameters of a store-and-forward Ethernet switch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchParams {
    /// Forwarding latency added after a frame is fully received, before it
    /// is eligible for transmission on the output port.
    pub latency: Duration,
    /// Capacity of each output-port queue in bytes; a frame that does not
    /// fit is tail-dropped.
    pub queue_bytes: usize,
    /// When `true` the switch forwards multicast frames only toward group
    /// members (IGMP snooping); when `false` it floods them on every port
    /// except the ingress, like the paper's unmanaged 3Com switches.
    pub igmp_snooping: bool,
}

impl Default for SwitchParams {
    fn default() -> Self {
        SwitchParams {
            latency: Duration::from_micros(10),
            queue_bytes: 256 * 1024,
            igmp_snooping: false,
        }
    }
}

/// Per-host parameters: the CPU cost model and kernel buffer sizes.
///
/// The CPU is modelled as a serial resource; every datagram sent or
/// received charges it. All costs are multiplied by `(1 ± jitter)` with a
/// deterministic seeded jitter to model the paper's observation that
/// "communication in Ethernet can sometimes be quite random".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostParams {
    /// Fixed cost of a `sendto` system call (user/kernel crossing,
    /// socket lookup, header construction).
    pub send_syscall: Duration,
    /// Kernel cost per transmitted fragment (skb handling, driver ring).
    pub send_per_fragment: Duration,
    /// Kernel copy cost per transmitted byte (user buffer into kernel).
    pub send_per_byte_ns: u64,
    /// Fixed cost of a `recvfrom` system call returning one datagram.
    pub recv_syscall: Duration,
    /// Kernel cost per received fragment (interrupt, IP input, reassembly).
    pub recv_per_fragment: Duration,
    /// Kernel copy cost per received byte (kernel buffer into user).
    pub recv_per_byte_ns: u64,
    /// Kernel cost to discard one flooded multicast frame the host did not
    /// subscribe to (the paper's "extra CPU overhead for unintended
    /// receivers"). NIC-level perfect filtering sets this to zero.
    pub mcast_filter_cost: Duration,
    /// Cost of reading the clock (`gettimeofday`), charged through
    /// [`crate::process::Ctx::charge_clock_read`].
    pub clock_read: Duration,
    /// UDP receive socket buffer in bytes; a fully reassembled datagram
    /// that does not fit is dropped (the paper's dominant loss mode).
    pub recv_sockbuf: usize,
    /// Bytes the NIC transmit path will queue before `sendto` blocks.
    pub send_sockbuf: usize,
    /// Relative jitter applied to every CPU charge, e.g. `0.05` for ±5 %.
    pub cpu_jitter: f64,
    /// Timeout after which an incomplete IP reassembly is discarded.
    pub reassembly_timeout: Duration,
}

impl Default for HostParams {
    fn default() -> Self {
        HostParams {
            send_syscall: Duration::from_micros(18),
            send_per_fragment: Duration::from_micros(3),
            send_per_byte_ns: 10,
            recv_syscall: Duration::from_micros(40),
            recv_per_fragment: Duration::from_micros(3),
            recv_per_byte_ns: 10,
            mcast_filter_cost: Duration::from_micros(2),
            clock_read: Duration::from_nanos(700),
            recv_sockbuf: 256 * 1024,
            send_sockbuf: 32 * 1024,
            cpu_jitter: 0.04,
            reassembly_timeout: Duration::from_millis(500),
        }
    }
}

/// Fault injection knobs. All default to a perfectly clean network, the
/// paper's observation for wired LANs ("the transmission error rate is very
/// low ... errors almost never happen").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultParams {
    /// Probability that any individual frame is lost on the wire.
    pub frame_loss: f64,
    /// Probability that a reassembled datagram is dropped at the receiving
    /// host (models NIC/driver drops beyond socket-buffer overflow).
    pub datagram_loss: f64,
    /// Probability that a frame is duplicated on the wire (switch or
    /// driver retransmit artifacts; protocols must tolerate duplicates).
    pub frame_dup: f64,
}

impl FaultParams {
    /// Clean-network preset (no injected loss).
    pub const NONE: FaultParams = FaultParams {
        frame_loss: 0.0,
        datagram_loss: 0.0,
        frame_dup: 0.0,
    };

    /// Uniform frame-loss preset.
    pub fn frame_loss(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        FaultParams {
            frame_loss: p,
            datagram_loss: 0.0,
            frame_dup: 0.0,
        }
    }
}

/// Which layer-2 fabric connects the hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FabricKind {
    /// Full-duplex store-and-forward switches (the paper's testbed).
    #[default]
    Switched,
    /// A single half-duplex CSMA/CD bus shared by every host (the paper's
    /// "traditional LANs use shared media" discussion).
    SharedBus,
}

/// Top-level simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SimConfig {
    /// Link parameters applied to every link.
    pub link: LinkParams,
    /// Switch parameters applied to every switch.
    pub switch: SwitchParams,
    /// Host parameters applied to every host.
    pub host: HostParams,
    /// Fault injection.
    pub faults: FaultParams,
    /// Fabric selection.
    pub fabric: FabricKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_testbed() {
        let c = SimConfig::default();
        assert_eq!(c.link.rate_bps, 100_000_000);
        assert_eq!(c.fabric, FabricKind::Switched);
        assert!(!c.switch.igmp_snooping);
        assert_eq!(c.faults, FaultParams::NONE);
    }

    #[test]
    fn fault_presets() {
        let f = FaultParams::frame_loss(0.01);
        assert_eq!(f.frame_loss, 0.01);
        assert_eq!(f.datagram_loss, 0.0);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn fault_probability_validated() {
        let _ = FaultParams::frame_loss(1.5);
    }
}
