//! Per-host simulation state: NIC, sockets, IP reassembly, serial CPU.

use crate::config::LinkParams;
use crate::egress::Egress;
use crate::frame::Datagram;
use crate::ids::{GroupId, HostId, PortRef};
use rmwire::Time;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Work queued for a host's serial CPU.
#[derive(Debug)]
pub(crate) enum WorkItem {
    /// Run the process's `on_start`.
    Start,
    /// Run the process's `on_restart` after a crash-restart reboot.
    Restart,
    /// Deliver a reassembled datagram (kernel receive costs charged when
    /// the item runs — that is when `recvfrom` happens).
    Deliver(Arc<Datagram>),
    /// Run the process's `on_timer`.
    Timer,
    /// Discard a flooded multicast frame the host does not subscribe to;
    /// charges `mcast_filter_cost` and invokes nothing.
    McastFilter,
}

/// In-progress IP reassembly of one datagram.
#[derive(Debug)]
pub(crate) struct Reassembly {
    /// Bitmap of received fragment indices (64 KiB datagrams need 45 bits
    /// at the standard MTU, more with small MTUs).
    pub have: Vec<u64>,
    /// Number of distinct fragments received.
    pub count: u32,
    /// Total fragments expected.
    pub total: u32,
}

impl Reassembly {
    pub(crate) fn new(total: u32) -> Self {
        assert!(total >= 1, "a datagram has at least one fragment");
        Reassembly {
            have: vec![0; (total as usize).div_ceil(64)],
            count: 0,
            total,
        }
    }

    /// Record fragment `index`; returns `true` when the datagram is now
    /// complete.
    pub(crate) fn add(&mut self, index: usize) -> bool {
        let word = index / 64;
        let bit = 1u64 << (index % 64);
        if self.have[word] & bit == 0 {
            self.have[word] |= bit;
            self.count += 1;
        }
        self.count == self.total
    }
}

/// All state of one simulated host.
pub(crate) struct HostState {
    /// NIC transmit queue onto the host's uplink.
    pub egress: Egress,
    /// Physical parameters of the uplink (host -> switch direction).
    pub link: LinkParams,
    /// The far end of the uplink (switched fabric only).
    pub peer: Option<PortRef>,
    /// Multicast groups this host has joined.
    pub memberships: HashSet<GroupId>,
    /// Receive-buffer occupancy per bound UDP port.
    pub sockets: HashMap<u16, usize>,
    /// IP reassembly contexts keyed by (source host, IP id).
    pub reassembly: HashMap<(HostId, u64), Reassembly>,
    /// Serial-CPU work queue.
    pub cpu_queue: VecDeque<WorkItem>,
    /// `true` while a `CpuDone` event is pending for this host.
    pub cpu_active: bool,
    /// Timer arming generation; a fire event with a stale generation is
    /// ignored.
    pub timer_gen: u64,
    /// Whether the current generation is armed.
    pub timer_armed: bool,
    /// When the host's CPU most recently became (or will become) idle;
    /// used only for reporting.
    pub cpu_busy_until: Time,
    /// Total CPU time consumed by work items (for utilization reports).
    pub cpu_busy_accum: rmwire::Duration,
}

impl HostState {
    pub(crate) fn new(link: LinkParams) -> Self {
        HostState {
            egress: Egress::new(),
            link,
            peer: None,
            memberships: HashSet::new(),
            sockets: HashMap::new(),
            reassembly: HashMap::new(),
            cpu_queue: VecDeque::new(),
            cpu_active: false,
            timer_gen: 0,
            timer_armed: false,
            cpu_busy_until: Time::ZERO,
            cpu_busy_accum: rmwire::Duration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reassembly_completes_once_all_fragments_seen() {
        let mut r = Reassembly::new(3);
        assert!(!r.add(0));
        assert!(!r.add(2));
        // Duplicate fragment does not complete it.
        assert!(!r.add(2));
        assert!(r.add(1));
        assert_eq!(r.count, 3);
    }

    #[test]
    fn reassembly_handles_many_fragments() {
        let mut r = Reassembly::new(120);
        for i in 0..119 {
            assert!(!r.add(i));
        }
        assert!(r.add(119));
    }

    #[test]
    fn socket_bookkeeping() {
        let mut h = HostState::new(LinkParams::default());
        assert!(!h.sockets.contains_key(&9));
        h.sockets.insert(9, 0);
        assert!(h.sockets.contains_key(&9));
    }
}
