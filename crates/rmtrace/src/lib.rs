//! Structured observability for the reliable-multicast stack.
//!
//! This crate is the shared tracing substrate used by every backend
//! (`netsim`, `udprun`, the in-process loopback): typed protocol events,
//! pluggable sinks, fixed-bucket log-scale histograms, and a bounded
//! flight recorder that captures the last moments before a failure.
//!
//! It has **zero dependencies** (not even on the workspace's wire crate):
//! events carry raw nanosecond timestamps and integer ranks, and all
//! serialization is hand-rolled JSON Lines so traces can be written and
//! read back without any serde machinery.
//!
//! The design contract that matters most: tracing must never perturb the
//! protocol. A [`Tracer`] with no sink and no flight recorder reduces
//! every hook to a single branch on two `Option`s, draws no randomness,
//! allocates nothing, and leaves deterministic runs byte-identical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod event;
pub mod flight;
pub mod hist;
pub mod json;
pub mod sink;

pub use event::{TraceEvent, TraceRecord};
pub use flight::{FlightDump, FlightRecorder};
pub use hist::Histogram;
pub use json::{parse_jsonl, JsonValue, ParsedRecord};
pub use sink::{JsonlSink, MemorySink, NullSink, TraceSink};

use std::fmt;

/// The per-endpoint tracing handle embedded in protocol engines.
///
/// Owns an optional [`TraceSink`] (live export) and an optional
/// [`FlightRecorder`] (bounded ring of recent events, dumped on failure).
/// With both absent — the default — [`Tracer::emit`] is a no-op behind a
/// single branch, so untraced runs pay nothing.
pub struct Tracer {
    rank: u16,
    sink: Option<Box<dyn TraceSink>>,
    flight: Option<FlightRecorder>,
}

impl Tracer {
    /// A disabled tracer for endpoint `rank` (0 = sender).
    pub fn off(rank: u16) -> Self {
        Tracer {
            rank,
            sink: None,
            flight: None,
        }
    }

    /// Attach a sink; every subsequent [`Tracer::emit`] forwards to it.
    pub fn set_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Keep the last `cap` events in a ring for post-mortem dumps.
    /// `cap == 0` disables the recorder.
    pub fn enable_flight_recorder(&mut self, cap: usize) {
        self.flight = if cap == 0 {
            None
        } else {
            Some(FlightRecorder::new(cap))
        };
    }

    /// `true` if any sink or flight recorder is attached.
    #[inline]
    pub fn active(&self) -> bool {
        self.sink.is_some() || self.flight.is_some()
    }

    /// The endpoint rank this tracer stamps on records.
    pub fn rank(&self) -> u16 {
        self.rank
    }

    /// Record `ev` at `t_ns` nanoseconds. No-op when inactive.
    #[inline]
    pub fn emit(&mut self, t_ns: u64, ev: TraceEvent) {
        if self.sink.is_none() && self.flight.is_none() {
            return;
        }
        self.emit_slow(t_ns, ev);
    }

    #[cold]
    fn emit_slow(&mut self, t_ns: u64, ev: TraceEvent) {
        let rec = TraceRecord {
            t_ns,
            rank: self.rank,
            ev,
        };
        if let Some(f) = &mut self.flight {
            f.record(rec.clone());
        }
        if let Some(s) = &mut self.sink {
            s.emit(&rec);
        }
    }

    /// Snapshot the flight recorder into a [`FlightDump`], if one is
    /// enabled and non-empty. `counters` carries the endpoint's counter
    /// snapshot (name, value); `reason` says what tripped the dump.
    pub fn flight_dump(
        &self,
        t_ns: u64,
        reason: &str,
        counters: Vec<(String, u64)>,
    ) -> Option<FlightDump> {
        let f = self.flight.as_ref()?;
        if f.is_empty() {
            return None;
        }
        Some(f.dump(t_ns, self.rank, reason, counters))
    }

    /// Flush the attached sink, if any (JSONL writers buffer).
    pub fn flush(&mut self) {
        if let Some(s) = &mut self.sink {
            s.flush();
        }
    }
}

/// Cloning a [`Tracer`] produces a *detached* handle: the rank and any
/// flight-recorder ring carry over, but the sink does not (sinks are
/// exclusive streams — two endpoints writing interleaved records through
/// one handle would corrupt per-endpoint ordering). The model checker
/// relies on this to fork whole endpoints cheaply; forked endpoints that
/// want live export must call [`Tracer::set_sink`] again.
impl Clone for Tracer {
    fn clone(&self) -> Self {
        Tracer {
            rank: self.rank,
            sink: None,
            flight: self.flight.clone(),
        }
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("rank", &self.rank)
            .field("sink", &self.sink.as_ref().map(|_| "…"))
            .field("flight", &self.flight)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let mut t = Tracer::off(3);
        assert!(!t.active());
        t.emit(5, TraceEvent::EpochChange { epoch: 1 });
        assert!(t.flight_dump(9, "x", Vec::new()).is_none());
    }

    #[test]
    fn sink_and_flight_both_see_events() {
        let mem = MemorySink::new();
        let mut t = Tracer::off(1);
        t.set_sink(Box::new(mem.clone()));
        t.enable_flight_recorder(2);
        for i in 0..4 {
            t.emit(i, TraceEvent::EpochChange { epoch: i as u32 });
        }
        assert_eq!(mem.records().len(), 4);
        let dump = t.flight_dump(10, "test", vec![("x".into(), 7)]).unwrap();
        // Ring kept only the last two.
        assert_eq!(dump.events.len(), 2);
        assert_eq!(dump.events[0].t_ns, 2);
        assert_eq!(dump.reason, "test");
        assert_eq!(dump.counters, vec![("x".to_string(), 7)]);
    }
}
