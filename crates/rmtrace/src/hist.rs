//! A fixed-bucket log-scale histogram for latency-style quantities.
//!
//! Values land in power-of-two buckets (`v` in `[2^(i-1), 2^i)` → bucket
//! `i`), so recording is two instructions and the memory footprint is a
//! fixed 64-slot array — no allocation, no configuration, and merging two
//! histograms is elementwise addition. Quantiles are resolved to a bucket
//! upper bound (≤ 2× relative error), with exact min/max/count/sum kept
//! alongside.

/// Number of power-of-two buckets (fixed; also the histogram's memory
/// footprint in `u64`s). Exposed so external accumulators — notably the
/// `rmprof` lock-free registry, which keeps one atomic counter per bucket
/// — can mirror the exact bucket layout and rebuild a [`Histogram`] via
/// [`Histogram::from_parts`].
pub const BUCKETS: usize = 64;

/// Log₂-bucketed histogram of `u64` samples (typically nanoseconds, but
/// any unit works — window-occupancy gauges use packet counts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Bucket index a value lands in: 0 → bucket 0; `v` in `[2^(i-1), 2^i)` →
/// bucket `i`; huge values clamp to the last bucket. Public for external
/// accumulators that share the layout (see [`BUCKETS`]).
pub fn bucket_of(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

fn bucket_upper(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild a histogram from externally accumulated parts: per-bucket
    /// counts in this type's exact layout (see [`bucket_of`]), the exact
    /// sample sum, and exact min/max. The total count is derived from the
    /// buckets; `min` of `u64::MAX` with zero samples means "empty" and
    /// normalizes to the default. This is how the `rmprof` atomic
    /// registry converts its lock-free counters into a mergeable,
    /// quantile-capable histogram.
    pub fn from_parts(counts: [u64; BUCKETS], sum: u128, min: u64, max: u64) -> Self {
        let count: u64 = counts.iter().sum();
        if count == 0 {
            return Histogram::default();
        }
        Histogram {
            counts,
            count,
            sum,
            min,
            max,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact sum of all samples (0 when empty). For latency histograms
    /// this is the total time spent in the measured section — the
    /// numerator of a share-of-wall computation.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0..=1.0`), resolved to the containing
    /// bucket's upper bound and clamped to the exact max. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return bucket_upper(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Median (bucket-resolved).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile (bucket-resolved).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile (bucket-resolved).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Fold `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// `"p50=1.0ms p90=2.1ms p99=4.2ms max=8.4ms (n=123)"` — values
    /// formatted as durations in the most readable unit.
    pub fn summary_ns(&self) -> String {
        if self.count == 0 {
            return "n=0".to_string();
        }
        format!(
            "p50={} p90={} p99={} max={} (n={})",
            fmt_ns(self.p50()),
            fmt_ns(self.p90()),
            fmt_ns(self.p99()),
            fmt_ns(self.max()),
            self.count
        )
    }
}

/// Render a nanosecond quantity with a readable unit (`1.5us`, `2.3ms`,
/// `4.0s`).
pub fn fmt_ns(ns: u64) -> String {
    let v = ns as f64;
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", v / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", v / 1e6)
    } else {
        format!("{:.2}s", v / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.summary_ns(), "n=0");
    }

    #[test]
    fn quantiles_bracket_the_distribution() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1µs .. 1ms
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.min(), 1000);
        // Bucket-resolved quantiles overestimate by at most 2x.
        let p50 = h.p50();
        assert!((500_000..=1_048_575).contains(&p50), "p50={p50}");
        assert!(h.p99() >= h.p90() && h.p90() >= h.p50());
        assert!(h.p99() <= h.max());
    }

    #[test]
    fn merge_matches_single_histogram() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [5u64, 100, 10_000, 7] {
            a.record(v);
            all.record(v);
        }
        for v in [1u64, 1_000_000] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn extreme_values_do_not_panic() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn from_parts_round_trips_recorded_histograms() {
        let mut h = Histogram::new();
        for v in [3u64, 900, 70_000, 70_001, u64::MAX] {
            h.record(v);
        }
        let mut counts = [0u64; BUCKETS];
        let mut sum = 0u128;
        for v in [3u64, 900, 70_000, 70_001, u64::MAX] {
            counts[bucket_of(v)] += 1;
            sum += v as u128;
        }
        let rebuilt = Histogram::from_parts(counts, sum, 3, u64::MAX);
        assert_eq!(rebuilt, h);
        // Empty parts normalize to the canonical empty histogram.
        assert_eq!(
            Histogram::from_parts([0; BUCKETS], 0, u64::MAX, 0),
            Histogram::new()
        );
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_300_000), "2.3ms");
        assert_eq!(fmt_ns(4_000_000_000), "4.00s");
    }
}
