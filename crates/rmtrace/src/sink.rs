//! Trace sinks: where emitted records go.
//!
//! Sinks are `Send` so the same sink type works under the single-threaded
//! simulator and across `udprun`'s per-node threads. Shared sinks
//! ([`MemorySink`], [`JsonlSink`]) are cheap `Arc` handles: clone one per
//! endpoint and they interleave into a single stream.

use crate::event::TraceRecord;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Destination for trace records.
pub trait TraceSink: Send {
    /// Consume one record.
    fn emit(&mut self, rec: &TraceRecord);
    /// Flush any buffering (no-op by default).
    fn flush(&mut self) {}
}

/// The zero-cost default: discards everything.
///
/// Endpoints never reach a sink call when no sink is attached, so this
/// type exists mostly to make "tracing off" spellable where a sink value
/// is required.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline]
    fn emit(&mut self, _rec: &TraceRecord) {}
}

/// Collects records in memory behind a shared handle.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    records: Arc<Mutex<Vec<TraceRecord>>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of everything recorded so far.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.records.lock().expect("memory sink poisoned").clone()
    }

    /// Drain the records, leaving the sink empty.
    pub fn take(&self) -> Vec<TraceRecord> {
        std::mem::take(&mut *self.records.lock().expect("memory sink poisoned"))
    }
}

impl TraceSink for MemorySink {
    fn emit(&mut self, rec: &TraceRecord) {
        self.records
            .lock()
            .expect("memory sink poisoned")
            .push(rec.clone());
    }
}

/// Writes one JSON object per line to a shared writer.
///
/// Records from different endpoints interleave in emission order; under
/// the deterministic simulator that order is itself deterministic, so the
/// file is byte-stable across identical runs.
#[derive(Clone)]
pub struct JsonlSink {
    out: Arc<Mutex<Box<dyn Write + Send>>>,
}

impl JsonlSink {
    /// Wrap an arbitrary writer.
    pub fn new(w: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            out: Arc::new(Mutex::new(w)),
        }
    }

    /// Create (truncate) `path` and write buffered JSONL to it.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let f = File::create(path)?;
        Ok(Self::new(Box::new(BufWriter::new(f))))
    }
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl TraceSink for JsonlSink {
    fn emit(&mut self, rec: &TraceRecord) {
        let mut w = self.out.lock().expect("jsonl sink poisoned");
        let _ = w.write_all(rec.to_json().as_bytes());
        let _ = w.write_all(b"\n");
    }

    fn flush(&mut self) {
        let _ = self.out.lock().expect("jsonl sink poisoned").flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    #[test]
    fn memory_sink_shares_across_clones() {
        let a = MemorySink::new();
        let mut b = a.clone();
        b.emit(&TraceRecord {
            t_ns: 1,
            rank: 0,
            ev: TraceEvent::EpochChange { epoch: 2 },
        });
        assert_eq!(a.records().len(), 1);
        assert_eq!(a.take().len(), 1);
        assert!(a.records().is_empty());
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut s = JsonlSink::new(Box::new(Shared(Arc::clone(&buf))));
        s.emit(&TraceRecord {
            t_ns: 3,
            rank: 1,
            ev: TraceEvent::Drop { cause: "Corrupt" },
        });
        s.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(
            text,
            "{\"t\":3,\"rank\":1,\"ev\":\"Drop\",\"cause\":\"Corrupt\"}\n"
        );
    }
}
