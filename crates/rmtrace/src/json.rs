//! A minimal JSONL reader for the traces this crate writes.
//!
//! The workspace's serde is a deliberately inert shim, so the report
//! tooling parses trace files with this ~hundred-line scanner instead. It
//! handles exactly the subset the emitter produces — one flat object per
//! line whose values are unsigned integers, strings, or booleans — and
//! rejects anything else loudly rather than guessing.

use std::collections::HashMap;

/// A parsed JSON scalar.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// An unsigned integer (all numbers the emitter writes).
    Num(u64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
}

/// One parsed trace line: the common stamps plus every other field.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedRecord {
    /// Nanosecond timestamp (`t`).
    pub t_ns: u64,
    /// Endpoint rank (`rank`).
    pub rank: u16,
    /// Event-type name (`ev`).
    pub ev: String,
    /// Remaining event-specific fields.
    pub fields: HashMap<String, JsonValue>,
}

impl ParsedRecord {
    /// Integer field accessor (0 when absent — callers check `ev` first).
    pub fn num(&self, key: &str) -> u64 {
        match self.fields.get(key) {
            Some(JsonValue::Num(n)) => *n,
            _ => 0,
        }
    }

    /// String field accessor (empty when absent).
    pub fn str(&self, key: &str) -> &str {
        match self.fields.get(key) {
            Some(JsonValue::Str(s)) => s,
            _ => "",
        }
    }
}

/// Parse a whole JSONL document, skipping blank lines. Returns
/// `Err(line_number, message)` on the first malformed line (1-based).
pub fn parse_jsonl(text: &str) -> Result<Vec<ParsedRecord>, (usize, String)> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let obj = parse_object(line).map_err(|e| (i + 1, e))?;
        out.push(to_record(obj).map_err(|e| (i + 1, e))?);
    }
    Ok(out)
}

fn to_record(mut obj: HashMap<String, JsonValue>) -> Result<ParsedRecord, String> {
    let t_ns = match obj.remove("t") {
        Some(JsonValue::Num(n)) => n,
        _ => return Err("missing numeric \"t\"".into()),
    };
    let rank = match obj.remove("rank") {
        Some(JsonValue::Num(n)) => n as u16,
        _ => return Err("missing numeric \"rank\"".into()),
    };
    let ev = match obj.remove("ev") {
        Some(JsonValue::Str(s)) => s,
        _ => return Err("missing string \"ev\"".into()),
    };
    Ok(ParsedRecord {
        t_ns,
        rank,
        ev,
        fields: obj,
    })
}

fn parse_object(s: &str) -> Result<HashMap<String, JsonValue>, String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    p.expect(b'{')?;
    let mut map = HashMap::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.next();
        return Ok(map);
    }
    loop {
        p.skip_ws();
        let key = p.string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        let val = p.value()?;
        map.insert(key, val);
        p.skip_ws();
        match p.next() {
            Some(b',') => continue,
            Some(b'}') => break,
            _ => return Err("expected ',' or '}'".into()),
        }
    }
    p.skip_ws();
    if p.i != b.len() {
        return Err("trailing garbage after object".into());
    }
    Ok(map)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.i += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.next() == Some(c) {
            Ok(())
        } else {
            Err(format!("expected {:?}", c as char))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.i;
        while let Some(c) = self.peek() {
            if c == b'\\' {
                return Err("escape sequences unsupported".into());
            }
            if c == b'"' {
                let s = std::str::from_utf8(&self.b[start..self.i])
                    .map_err(|_| "invalid utf8".to_string())?
                    .to_string();
                self.i += 1;
                return Ok(s);
            }
            self.i += 1;
        }
        Err("unterminated string".into())
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => {
                self.keyword("true")?;
                Ok(JsonValue::Bool(true))
            }
            Some(b'f') => {
                self.keyword("false")?;
                Ok(JsonValue::Bool(false))
            }
            Some(c) if c.is_ascii_digit() => {
                let start = self.i;
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.i += 1;
                }
                let txt = std::str::from_utf8(&self.b[start..self.i]).unwrap();
                txt.parse::<u64>()
                    .map(JsonValue::Num)
                    .map_err(|e| format!("bad number {txt:?}: {e}"))
            }
            other => Err(format!("unexpected value start {other:?}")),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(kw.as_bytes()) {
            self.i += kw.len();
            Ok(())
        } else {
            Err(format!("expected {kw}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{TraceEvent, TraceRecord};

    #[test]
    fn round_trips_emitted_records() {
        let recs = [
            TraceRecord {
                t_ns: 10,
                rank: 0,
                ev: TraceEvent::DataSent {
                    transfer: 3,
                    seq: 1,
                },
            },
            TraceRecord {
                t_ns: 20,
                rank: 2,
                ev: TraceEvent::Drop { cause: "WireFault" },
            },
            TraceRecord {
                t_ns: 30,
                rank: 0,
                ev: TraceEvent::AckReceived {
                    from: 2,
                    transfer: 3,
                    next: 2,
                },
            },
        ];
        let text: String = recs.iter().map(|r| r.to_json() + "\n").collect();
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].ev, "DataSent");
        assert_eq!(parsed[0].num("transfer"), 3);
        assert_eq!(parsed[1].str("cause"), "WireFault");
        assert_eq!(parsed[2].rank, 0);
        assert_eq!(parsed[2].num("from"), 2);
    }

    #[test]
    fn rejects_garbage_with_line_number() {
        let err = parse_jsonl("{\"t\":1,\"rank\":0,\"ev\":\"X\"}\nnot json\n").unwrap_err();
        assert_eq!(err.0, 2);
    }

    #[test]
    fn skips_blank_lines() {
        let parsed = parse_jsonl("\n{\"t\":1,\"rank\":0,\"ev\":\"X\"}\n\n").unwrap();
        assert_eq!(parsed.len(), 1);
    }
}
