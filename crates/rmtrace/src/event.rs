//! The event taxonomy: everything a protocol endpoint or the network can
//! tell the trace about one packet's journey.
//!
//! Events are deliberately small and integer-only (the one exception is
//! the network drop cause, a `&'static str` bridged from the simulator's
//! `DropCause` names) so emitting one never allocates.

use std::fmt::Write as _;

/// A typed protocol event. Sequence-carrying variants identify a packet
/// by `(transfer, seq)`; `transfer` is the engine's transfer id (even =
/// allocation handshake, odd = data phase; message id = `transfer / 2`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// Sender put a fresh data packet on the wire.
    DataSent {
        /// Transfer id.
        transfer: u32,
        /// Packet sequence number within the transfer.
        seq: u32,
    },
    /// Sender retransmitted a packet (timeout- or NAK-driven).
    Retransmit {
        /// Transfer id.
        transfer: u32,
        /// Packet sequence number within the transfer.
        seq: u32,
        /// How many times this packet has now been retransmitted.
        nth: u32,
    },
    /// Receiver accepted a data packet into its assembly buffer.
    DataRecv {
        /// Transfer id.
        transfer: u32,
        /// Packet sequence number within the transfer.
        seq: u32,
    },
    /// Receiver discarded a data packet (duplicate or out of window).
    DataDiscarded {
        /// Transfer id.
        transfer: u32,
        /// Packet sequence number within the transfer.
        seq: u32,
    },
    /// Receiver completed a transfer and handed the message to the app.
    Delivered {
        /// Transfer id.
        transfer: u32,
        /// Message id (`transfer / 2`).
        msg_id: u64,
    },
    /// Receiver emitted an acknowledgment.
    AckSent {
        /// Transfer id.
        transfer: u32,
        /// Cumulative next-expected sequence number.
        next: u32,
    },
    /// Sender (or tree parent) processed an acknowledgment.
    AckReceived {
        /// Acknowledging peer's rank.
        from: u16,
        /// Transfer id.
        transfer: u32,
        /// Cumulative next-expected sequence number acknowledged.
        next: u32,
    },
    /// Receiver emitted a negative acknowledgment for a gap.
    NakSent {
        /// Transfer id.
        transfer: u32,
        /// First missing sequence number.
        seq: u32,
    },
    /// Sender processed a negative acknowledgment.
    NakReceived {
        /// Complaining peer's rank.
        from: u16,
        /// Transfer id.
        transfer: u32,
        /// First missing sequence number.
        seq: u32,
    },
    /// A retransmission timer fired at the sender.
    TimeoutFired {
        /// Transfer id.
        transfer: u32,
        /// Consecutive timeouts on this transfer (backoff streak).
        streak: u32,
        /// The RTO in force when the timer fired, in nanoseconds.
        rto_ns: u64,
    },
    /// The send window filled while payload remained (flow-control stall).
    /// Emitted on the transition into the stalled state, not per attempt.
    WindowStall {
        /// Transfer id.
        transfer: u32,
        /// First unreleased sequence number at the stall.
        base: u32,
    },
    /// The release tracker advanced: every packet below `base` left the
    /// window and its buffer was freed.
    WindowRelease {
        /// Transfer id.
        transfer: u32,
        /// New first unreleased sequence number.
        base: u32,
    },
    /// A peer was evicted from its acknowledgment obligation.
    Evicted {
        /// The evicted peer's rank.
        peer: u16,
        /// Transfer id the eviction happened during.
        transfer: u32,
    },
    /// The membership epoch changed.
    EpochChange {
        /// The new epoch.
        epoch: u32,
    },
    /// AIMD multiplicatively shrank the sender's window cap on a
    /// congestion signal (timeout or loss-indicating NAK).
    WindowShrink {
        /// Transfer id.
        transfer: u32,
        /// The new window cap in packets.
        cap: u32,
    },
    /// AIMD additively grew the sender's window cap on acknowledged
    /// progress.
    WindowGrow {
        /// Transfer id.
        transfer: u32,
        /// The new window cap in packets.
        cap: u32,
    },
    /// Feedback-storm pacing began shedding control packets (emitted on
    /// the edge into the shedding state, not per shed packet).
    StormSuppressed {
        /// Transfer id the shed packet targeted.
        transfer: u32,
    },
    /// A lagging receiver was moved into slow-receiver quarantine: it no
    /// longer blocks the window and is served catch-up retransmissions at
    /// a bounded rate.
    QuarantineEnter {
        /// The quarantined peer's rank.
        peer: u16,
        /// Transfer id whose stall triggered the quarantine.
        transfer: u32,
    },
    /// A quarantined receiver left quarantine: caught up and rejoined at a
    /// message boundary (`caught_up == 1`) or was handed to the liveness
    /// path after exhausting its catch-up budget (`caught_up == 0`).
    QuarantineExit {
        /// The peer's rank.
        peer: u16,
        /// Transfer id at the exit.
        transfer: u32,
        /// `1` on rejoin, `0` on budget exhaustion.
        caught_up: u32,
    },
    /// The sender signalled backpressure to the application
    /// (`congested` is `1` on the stall edge, `0` on recovery).
    Backpressure {
        /// Transfer id.
        transfer: u32,
        /// New congestion state (1 = congested, 0 = cleared).
        congested: u32,
    },
    /// The fec sender multicast a reactive coded REPAIR block (the XOR of
    /// `coded` packets, batching disjoint per-receiver losses).
    RepairSent {
        /// Transfer id.
        transfer: u32,
        /// First (lowest) sequence number in the coded block.
        base: u32,
        /// How many packets the block codes together.
        coded: u32,
        /// The block's generation counter (replay gate on receivers).
        generation: u32,
    },
    /// The fec sender multicast a proactive PARITY block (unsolicited XOR
    /// over the last `parity_every` data packets).
    ParitySent {
        /// Transfer id.
        transfer: u32,
        /// First (lowest) sequence number in the coded block.
        base: u32,
        /// How many packets the block codes together.
        coded: u32,
    },
    /// A receiver reconstructed a missing data packet from a coded block
    /// plus its held packets.
    RepairDecoded {
        /// Transfer id.
        transfer: u32,
        /// The sequence number decoded back into existence.
        seq: u32,
    },
    /// The network dropped a datagram (bridged from the simulator's
    /// `DropCause`; rank is the host where the drop happened).
    Drop {
        /// Stable drop-cause name (e.g. `"BurstLoss"`).
        cause: &'static str,
    },
}

impl TraceEvent {
    /// Stable event-type name used as the JSON `ev` field.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::DataSent { .. } => "DataSent",
            TraceEvent::Retransmit { .. } => "Retransmit",
            TraceEvent::DataRecv { .. } => "DataRecv",
            TraceEvent::DataDiscarded { .. } => "DataDiscarded",
            TraceEvent::Delivered { .. } => "Delivered",
            TraceEvent::AckSent { .. } => "AckSent",
            TraceEvent::AckReceived { .. } => "AckReceived",
            TraceEvent::NakSent { .. } => "NakSent",
            TraceEvent::NakReceived { .. } => "NakReceived",
            TraceEvent::TimeoutFired { .. } => "TimeoutFired",
            TraceEvent::WindowStall { .. } => "WindowStall",
            TraceEvent::WindowRelease { .. } => "WindowRelease",
            TraceEvent::Evicted { .. } => "Evicted",
            TraceEvent::EpochChange { .. } => "EpochChange",
            TraceEvent::WindowShrink { .. } => "WindowShrink",
            TraceEvent::WindowGrow { .. } => "WindowGrow",
            TraceEvent::StormSuppressed { .. } => "StormSuppressed",
            TraceEvent::QuarantineEnter { .. } => "QuarantineEnter",
            TraceEvent::QuarantineExit { .. } => "QuarantineExit",
            TraceEvent::Backpressure { .. } => "Backpressure",
            TraceEvent::RepairSent { .. } => "RepairSent",
            TraceEvent::ParitySent { .. } => "ParitySent",
            TraceEvent::RepairDecoded { .. } => "RepairDecoded",
            TraceEvent::Drop { .. } => "Drop",
        }
    }
}

/// One trace record: an event stamped with time and endpoint rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Nanoseconds since the run's origin (virtual time under the
    /// simulator, wall clock since a shared epoch over real sockets).
    pub t_ns: u64,
    /// Emitting endpoint's rank (0 = sender) or simulator host id.
    pub rank: u16,
    /// The event.
    pub ev: TraceEvent,
}

impl TraceRecord {
    /// Encode as one JSON object (no trailing newline). The field order
    /// is fixed so identical runs produce byte-identical traces.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "{{\"t\":{},\"rank\":{},\"ev\":\"{}\"",
            self.t_ns,
            self.rank,
            self.ev.name()
        );
        match &self.ev {
            TraceEvent::DataSent { transfer, seq } => {
                let _ = write!(s, ",\"transfer\":{transfer},\"seq\":{seq}");
            }
            TraceEvent::Retransmit { transfer, seq, nth } => {
                let _ = write!(s, ",\"transfer\":{transfer},\"seq\":{seq},\"nth\":{nth}");
            }
            TraceEvent::DataRecv { transfer, seq }
            | TraceEvent::DataDiscarded { transfer, seq } => {
                let _ = write!(s, ",\"transfer\":{transfer},\"seq\":{seq}");
            }
            TraceEvent::Delivered { transfer, msg_id } => {
                let _ = write!(s, ",\"transfer\":{transfer},\"msg_id\":{msg_id}");
            }
            TraceEvent::AckSent { transfer, next } => {
                let _ = write!(s, ",\"transfer\":{transfer},\"next\":{next}");
            }
            TraceEvent::AckReceived {
                from,
                transfer,
                next,
            } => {
                let _ = write!(
                    s,
                    ",\"from\":{from},\"transfer\":{transfer},\"next\":{next}"
                );
            }
            TraceEvent::NakSent { transfer, seq } => {
                let _ = write!(s, ",\"transfer\":{transfer},\"seq\":{seq}");
            }
            TraceEvent::NakReceived {
                from,
                transfer,
                seq,
            } => {
                let _ = write!(s, ",\"from\":{from},\"transfer\":{transfer},\"seq\":{seq}");
            }
            TraceEvent::TimeoutFired {
                transfer,
                streak,
                rto_ns,
            } => {
                let _ = write!(
                    s,
                    ",\"transfer\":{transfer},\"streak\":{streak},\"rto_ns\":{rto_ns}"
                );
            }
            TraceEvent::WindowStall { transfer, base }
            | TraceEvent::WindowRelease { transfer, base } => {
                let _ = write!(s, ",\"transfer\":{transfer},\"base\":{base}");
            }
            TraceEvent::Evicted { peer, transfer } => {
                let _ = write!(s, ",\"peer\":{peer},\"transfer\":{transfer}");
            }
            TraceEvent::EpochChange { epoch } => {
                let _ = write!(s, ",\"epoch\":{epoch}");
            }
            TraceEvent::WindowShrink { transfer, cap }
            | TraceEvent::WindowGrow { transfer, cap } => {
                let _ = write!(s, ",\"transfer\":{transfer},\"cap\":{cap}");
            }
            TraceEvent::StormSuppressed { transfer } => {
                let _ = write!(s, ",\"transfer\":{transfer}");
            }
            TraceEvent::QuarantineEnter { peer, transfer } => {
                let _ = write!(s, ",\"peer\":{peer},\"transfer\":{transfer}");
            }
            TraceEvent::QuarantineExit {
                peer,
                transfer,
                caught_up,
            } => {
                let _ = write!(
                    s,
                    ",\"peer\":{peer},\"transfer\":{transfer},\"caught_up\":{caught_up}"
                );
            }
            TraceEvent::Backpressure {
                transfer,
                congested,
            } => {
                let _ = write!(s, ",\"transfer\":{transfer},\"congested\":{congested}");
            }
            TraceEvent::RepairSent {
                transfer,
                base,
                coded,
                generation,
            } => {
                let _ = write!(
                    s,
                    ",\"transfer\":{transfer},\"base\":{base},\"coded\":{coded},\"generation\":{generation}"
                );
            }
            TraceEvent::ParitySent {
                transfer,
                base,
                coded,
            } => {
                let _ = write!(
                    s,
                    ",\"transfer\":{transfer},\"base\":{base},\"coded\":{coded}"
                );
            }
            TraceEvent::RepairDecoded { transfer, seq } => {
                let _ = write!(s, ",\"transfer\":{transfer},\"seq\":{seq}");
            }
            TraceEvent::Drop { cause } => {
                let _ = write!(s, ",\"cause\":\"{cause}\"");
            }
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let r = TraceRecord {
            t_ns: 1500,
            rank: 2,
            ev: TraceEvent::Retransmit {
                transfer: 3,
                seq: 7,
                nth: 1,
            },
        };
        assert_eq!(
            r.to_json(),
            "{\"t\":1500,\"rank\":2,\"ev\":\"Retransmit\",\"transfer\":3,\"seq\":7,\"nth\":1}"
        );
        let d = TraceRecord {
            t_ns: 0,
            rank: 5,
            ev: TraceEvent::Drop { cause: "BurstLoss" },
        };
        assert_eq!(
            d.to_json(),
            "{\"t\":0,\"rank\":5,\"ev\":\"Drop\",\"cause\":\"BurstLoss\"}"
        );
    }

    #[test]
    fn fec_event_json_shape_is_stable() {
        let r = TraceRecord {
            t_ns: 7,
            rank: 0,
            ev: TraceEvent::RepairSent {
                transfer: 1,
                base: 4,
                coded: 3,
                generation: 2,
            },
        };
        assert_eq!(
            r.to_json(),
            "{\"t\":7,\"rank\":0,\"ev\":\"RepairSent\",\"transfer\":1,\"base\":4,\"coded\":3,\"generation\":2}"
        );
        let p = TraceRecord {
            t_ns: 8,
            rank: 0,
            ev: TraceEvent::ParitySent {
                transfer: 1,
                base: 0,
                coded: 8,
            },
        };
        assert_eq!(
            p.to_json(),
            "{\"t\":8,\"rank\":0,\"ev\":\"ParitySent\",\"transfer\":1,\"base\":0,\"coded\":8}"
        );
        let d = TraceRecord {
            t_ns: 9,
            rank: 3,
            ev: TraceEvent::RepairDecoded {
                transfer: 1,
                seq: 5,
            },
        };
        assert_eq!(
            d.to_json(),
            "{\"t\":9,\"rank\":3,\"ev\":\"RepairDecoded\",\"transfer\":1,\"seq\":5}"
        );
    }

    #[test]
    fn overload_event_json_shape_is_stable() {
        let w = TraceRecord {
            t_ns: 9,
            rank: 0,
            ev: TraceEvent::WindowShrink {
                transfer: 1,
                cap: 4,
            },
        };
        assert_eq!(
            w.to_json(),
            "{\"t\":9,\"rank\":0,\"ev\":\"WindowShrink\",\"transfer\":1,\"cap\":4}"
        );
        let q = TraceRecord {
            t_ns: 10,
            rank: 0,
            ev: TraceEvent::QuarantineExit {
                peer: 3,
                transfer: 1,
                caught_up: 1,
            },
        };
        assert_eq!(
            q.to_json(),
            "{\"t\":10,\"rank\":0,\"ev\":\"QuarantineExit\",\"peer\":3,\"transfer\":1,\"caught_up\":1}"
        );
        let b = TraceRecord {
            t_ns: 11,
            rank: 0,
            ev: TraceEvent::Backpressure {
                transfer: 1,
                congested: 1,
            },
        };
        assert_eq!(
            b.to_json(),
            "{\"t\":11,\"rank\":0,\"ev\":\"Backpressure\",\"transfer\":1,\"congested\":1}"
        );
    }
}
