//! The event taxonomy: everything a protocol endpoint or the network can
//! tell the trace about one packet's journey.
//!
//! Events are deliberately small and integer-only (the one exception is
//! the network drop cause, a `&'static str` bridged from the simulator's
//! `DropCause` names) so emitting one never allocates.

use std::fmt::Write as _;

/// A typed protocol event. Sequence-carrying variants identify a packet
/// by `(transfer, seq)`; `transfer` is the engine's transfer id (even =
/// allocation handshake, odd = data phase; message id = `transfer / 2`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// Sender put a fresh data packet on the wire.
    DataSent {
        /// Transfer id.
        transfer: u32,
        /// Packet sequence number within the transfer.
        seq: u32,
    },
    /// Sender retransmitted a packet (timeout- or NAK-driven).
    Retransmit {
        /// Transfer id.
        transfer: u32,
        /// Packet sequence number within the transfer.
        seq: u32,
        /// How many times this packet has now been retransmitted.
        nth: u32,
    },
    /// Receiver accepted a data packet into its assembly buffer.
    DataRecv {
        /// Transfer id.
        transfer: u32,
        /// Packet sequence number within the transfer.
        seq: u32,
    },
    /// Receiver discarded a data packet (duplicate or out of window).
    DataDiscarded {
        /// Transfer id.
        transfer: u32,
        /// Packet sequence number within the transfer.
        seq: u32,
    },
    /// Receiver completed a transfer and handed the message to the app.
    Delivered {
        /// Transfer id.
        transfer: u32,
        /// Message id (`transfer / 2`).
        msg_id: u64,
    },
    /// Receiver emitted an acknowledgment.
    AckSent {
        /// Transfer id.
        transfer: u32,
        /// Cumulative next-expected sequence number.
        next: u32,
    },
    /// Sender (or tree parent) processed an acknowledgment.
    AckReceived {
        /// Acknowledging peer's rank.
        from: u16,
        /// Transfer id.
        transfer: u32,
        /// Cumulative next-expected sequence number acknowledged.
        next: u32,
    },
    /// Receiver emitted a negative acknowledgment for a gap.
    NakSent {
        /// Transfer id.
        transfer: u32,
        /// First missing sequence number.
        seq: u32,
    },
    /// Sender processed a negative acknowledgment.
    NakReceived {
        /// Complaining peer's rank.
        from: u16,
        /// Transfer id.
        transfer: u32,
        /// First missing sequence number.
        seq: u32,
    },
    /// A retransmission timer fired at the sender.
    TimeoutFired {
        /// Transfer id.
        transfer: u32,
        /// Consecutive timeouts on this transfer (backoff streak).
        streak: u32,
        /// The RTO in force when the timer fired, in nanoseconds.
        rto_ns: u64,
    },
    /// The send window filled while payload remained (flow-control stall).
    /// Emitted on the transition into the stalled state, not per attempt.
    WindowStall {
        /// Transfer id.
        transfer: u32,
        /// First unreleased sequence number at the stall.
        base: u32,
    },
    /// The release tracker advanced: every packet below `base` left the
    /// window and its buffer was freed.
    WindowRelease {
        /// Transfer id.
        transfer: u32,
        /// New first unreleased sequence number.
        base: u32,
    },
    /// A peer was evicted from its acknowledgment obligation.
    Evicted {
        /// The evicted peer's rank.
        peer: u16,
        /// Transfer id the eviction happened during.
        transfer: u32,
    },
    /// The membership epoch changed.
    EpochChange {
        /// The new epoch.
        epoch: u32,
    },
    /// The network dropped a datagram (bridged from the simulator's
    /// `DropCause`; rank is the host where the drop happened).
    Drop {
        /// Stable drop-cause name (e.g. `"BurstLoss"`).
        cause: &'static str,
    },
}

impl TraceEvent {
    /// Stable event-type name used as the JSON `ev` field.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::DataSent { .. } => "DataSent",
            TraceEvent::Retransmit { .. } => "Retransmit",
            TraceEvent::DataRecv { .. } => "DataRecv",
            TraceEvent::DataDiscarded { .. } => "DataDiscarded",
            TraceEvent::Delivered { .. } => "Delivered",
            TraceEvent::AckSent { .. } => "AckSent",
            TraceEvent::AckReceived { .. } => "AckReceived",
            TraceEvent::NakSent { .. } => "NakSent",
            TraceEvent::NakReceived { .. } => "NakReceived",
            TraceEvent::TimeoutFired { .. } => "TimeoutFired",
            TraceEvent::WindowStall { .. } => "WindowStall",
            TraceEvent::WindowRelease { .. } => "WindowRelease",
            TraceEvent::Evicted { .. } => "Evicted",
            TraceEvent::EpochChange { .. } => "EpochChange",
            TraceEvent::Drop { .. } => "Drop",
        }
    }
}

/// One trace record: an event stamped with time and endpoint rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Nanoseconds since the run's origin (virtual time under the
    /// simulator, wall clock since a shared epoch over real sockets).
    pub t_ns: u64,
    /// Emitting endpoint's rank (0 = sender) or simulator host id.
    pub rank: u16,
    /// The event.
    pub ev: TraceEvent,
}

impl TraceRecord {
    /// Encode as one JSON object (no trailing newline). The field order
    /// is fixed so identical runs produce byte-identical traces.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "{{\"t\":{},\"rank\":{},\"ev\":\"{}\"",
            self.t_ns,
            self.rank,
            self.ev.name()
        );
        match &self.ev {
            TraceEvent::DataSent { transfer, seq } => {
                let _ = write!(s, ",\"transfer\":{transfer},\"seq\":{seq}");
            }
            TraceEvent::Retransmit { transfer, seq, nth } => {
                let _ = write!(s, ",\"transfer\":{transfer},\"seq\":{seq},\"nth\":{nth}");
            }
            TraceEvent::DataRecv { transfer, seq }
            | TraceEvent::DataDiscarded { transfer, seq } => {
                let _ = write!(s, ",\"transfer\":{transfer},\"seq\":{seq}");
            }
            TraceEvent::Delivered { transfer, msg_id } => {
                let _ = write!(s, ",\"transfer\":{transfer},\"msg_id\":{msg_id}");
            }
            TraceEvent::AckSent { transfer, next } => {
                let _ = write!(s, ",\"transfer\":{transfer},\"next\":{next}");
            }
            TraceEvent::AckReceived {
                from,
                transfer,
                next,
            } => {
                let _ = write!(
                    s,
                    ",\"from\":{from},\"transfer\":{transfer},\"next\":{next}"
                );
            }
            TraceEvent::NakSent { transfer, seq } => {
                let _ = write!(s, ",\"transfer\":{transfer},\"seq\":{seq}");
            }
            TraceEvent::NakReceived {
                from,
                transfer,
                seq,
            } => {
                let _ = write!(s, ",\"from\":{from},\"transfer\":{transfer},\"seq\":{seq}");
            }
            TraceEvent::TimeoutFired {
                transfer,
                streak,
                rto_ns,
            } => {
                let _ = write!(
                    s,
                    ",\"transfer\":{transfer},\"streak\":{streak},\"rto_ns\":{rto_ns}"
                );
            }
            TraceEvent::WindowStall { transfer, base }
            | TraceEvent::WindowRelease { transfer, base } => {
                let _ = write!(s, ",\"transfer\":{transfer},\"base\":{base}");
            }
            TraceEvent::Evicted { peer, transfer } => {
                let _ = write!(s, ",\"peer\":{peer},\"transfer\":{transfer}");
            }
            TraceEvent::EpochChange { epoch } => {
                let _ = write!(s, ",\"epoch\":{epoch}");
            }
            TraceEvent::Drop { cause } => {
                let _ = write!(s, ",\"cause\":\"{cause}\"");
            }
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let r = TraceRecord {
            t_ns: 1500,
            rank: 2,
            ev: TraceEvent::Retransmit {
                transfer: 3,
                seq: 7,
                nth: 1,
            },
        };
        assert_eq!(
            r.to_json(),
            "{\"t\":1500,\"rank\":2,\"ev\":\"Retransmit\",\"transfer\":3,\"seq\":7,\"nth\":1}"
        );
        let d = TraceRecord {
            t_ns: 0,
            rank: 5,
            ev: TraceEvent::Drop { cause: "BurstLoss" },
        };
        assert_eq!(
            d.to_json(),
            "{\"t\":0,\"rank\":5,\"ev\":\"Drop\",\"cause\":\"BurstLoss\"}"
        );
    }
}
