//! The flight recorder: a bounded ring of the most recent trace events,
//! snapshotted into a [`FlightDump`] at the moment an endpoint gives up
//! on a message or trips a liveness bound.
//!
//! The point is post-mortem causality: a chaos soak that fails after
//! minutes of simulated traffic should leave behind the last N events and
//! the counter snapshot that explain *what the endpoint saw* right before
//! the failure, without paying for a full trace of the whole run.

use crate::event::TraceRecord;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Bounded ring buffer of recent [`TraceRecord`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecorder {
    cap: usize,
    buf: VecDeque<TraceRecord>,
}

impl FlightRecorder {
    /// Keep the last `cap` events (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        FlightRecorder {
            cap: cap.max(1),
            // Preallocate, but cap the upfront reservation for absurd caps.
            buf: VecDeque::with_capacity(cap.clamp(1, 1024)),
        }
    }

    /// Append, evicting the oldest event when full.
    pub fn record(&mut self, rec: TraceRecord) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(rec);
    }

    /// `true` when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of retained events (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Snapshot the ring (oldest first) with context.
    pub fn dump(
        &self,
        t_ns: u64,
        rank: u16,
        reason: &str,
        counters: Vec<(String, u64)>,
    ) -> FlightDump {
        FlightDump {
            t_ns,
            rank,
            reason: reason.to_string(),
            counters,
            events: self.buf.iter().cloned().collect(),
        }
    }
}

/// Everything captured at the moment of a failure: the last events, the
/// endpoint's full counter snapshot, and why the dump was taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightDump {
    /// When the dump was taken (nanoseconds on the run's timeline).
    pub t_ns: u64,
    /// The dumping endpoint's rank (0 = sender).
    pub rank: u16,
    /// What tripped the dump (e.g. `"message 3 failed: RetryLimit"`).
    pub reason: String,
    /// Counter snapshot as `(name, value)` pairs, every `Stats` field.
    pub counters: Vec<(String, u64)>,
    /// The retained events, oldest first.
    pub events: Vec<TraceRecord>,
}

impl FlightDump {
    /// Render as a multi-line human-readable block.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "=== flight recorder dump: rank {} at {}ns — {} ===",
            self.rank, self.t_ns, self.reason
        );
        let _ = writeln!(s, "counters:");
        for (name, v) in &self.counters {
            if *v != 0 {
                let _ = writeln!(s, "  {name} = {v}");
            }
        }
        let _ = writeln!(s, "last {} events:", self.events.len());
        for e in &self.events {
            let _ = writeln!(s, "  {}", e.to_json());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn rec(t: u64) -> TraceRecord {
        TraceRecord {
            t_ns: t,
            rank: 0,
            ev: TraceEvent::DataSent {
                transfer: 1,
                seq: t as u32,
            },
        }
    }

    #[test]
    fn ring_keeps_only_the_tail() {
        let mut f = FlightRecorder::new(3);
        for t in 0..10 {
            f.record(rec(t));
        }
        let d = f.dump(99, 4, "why", vec![("timeouts".into(), 2)]);
        assert_eq!(d.events.len(), 3);
        assert_eq!(d.events[0].t_ns, 7);
        assert_eq!(d.events[2].t_ns, 9);
        let text = d.render();
        assert!(text.contains("rank 4"));
        assert!(text.contains("why"));
        assert!(text.contains("timeouts = 2"));
    }
}
