//! Cross-protocol correctness: every protocol family must deliver every
//! message, byte-identical and in order, to every receiver — on a clean
//! network and under heavy loss — across a grid of packet sizes, window
//! sizes and group sizes.

use bytes::Bytes;
use rmcast::loopback::Loopback;
use rmcast::{ProtocolConfig, ProtocolKind, TreeShape, WindowDiscipline};

/// A deterministic, content-checkable payload.
fn payload(len: usize, tag: u8) -> Bytes {
    Bytes::from(
        (0..len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(tag))
            .collect::<Vec<u8>>(),
    )
}

fn protocols_for(n: u16) -> Vec<ProtocolKind> {
    let mut v = vec![
        ProtocolKind::Ack,
        ProtocolKind::nak_polling(4),
        ProtocolKind::NakPolling {
            poll_interval: 4,
            receiver_multicast_nak: true,
        },
        ProtocolKind::Ring,
        ProtocolKind::Tree {
            shape: TreeShape::Binary,
        },
        ProtocolKind::fec(4),
    ];
    for h in [1usize, 2, n as usize] {
        if h <= n as usize {
            v.push(ProtocolKind::flat_tree(h));
        }
    }
    v
}

fn config_for(kind: ProtocolKind, n: u16, packet_size: usize, window: usize) -> ProtocolConfig {
    let mut cfg = ProtocolConfig::new(kind, packet_size, window);
    // The ring protocol needs window > N; poll interval must fit.
    if matches!(kind, ProtocolKind::Ring) {
        cfg.window = cfg.window.max(n as usize + 2);
    }
    if let ProtocolKind::NakPolling { poll_interval, .. } = kind {
        cfg.window = cfg.window.max(poll_interval);
    }
    cfg
}

fn check_delivery(kind: ProtocolKind, n: u16, msg_len: usize, loss: f64, seed: u64) {
    let cfg = config_for(kind, n, 700, 6);
    let mut net = Loopback::new(cfg, n, seed);
    if loss > 0.0 {
        net = net.with_loss(loss);
    }
    let msg = payload(msg_len, seed as u8);
    net.send_message(msg.clone());
    let out = net.run();
    assert_eq!(
        out.len(),
        n as usize,
        "{kind:?} n={n} len={msg_len} loss={loss}: wrong delivery count"
    );
    for d in &out {
        assert_eq!(d, &msg, "{kind:?}: corrupted delivery");
    }
    assert_eq!(net.sent, vec![0], "{kind:?}: sender must report completion");
}

#[test]
fn all_protocols_deliver_on_clean_network() {
    for n in [1u16, 3, 8] {
        for kind in protocols_for(n) {
            for msg_len in [0usize, 1, 699, 700, 701, 10_000] {
                check_delivery(kind, n, msg_len, 0.0, 11);
            }
        }
    }
}

#[test]
fn all_protocols_survive_10pct_loss() {
    for n in [2u16, 5] {
        for kind in protocols_for(n) {
            check_delivery(kind, n, 20_000, 0.10, 1234);
        }
    }
}

#[test]
fn all_protocols_survive_30pct_loss() {
    for kind in protocols_for(3) {
        check_delivery(kind, 3, 8_000, 0.30, 77);
    }
}

#[test]
fn clean_runs_send_exactly_k_data_packets() {
    // With no loss there must be no retransmissions in any protocol.
    for kind in protocols_for(6) {
        let cfg = config_for(kind, 6, 500, 8);
        let mut net = Loopback::new(cfg, 6, 5);
        net.send_message(payload(5_000, 1));
        let _ = net.run();
        let s = net.sender_stats();
        // 10 data packets + 1 alloc packet.
        assert_eq!(s.data_sent, 11, "{kind:?}");
        assert_eq!(s.retx_sent, 0, "{kind:?}: clean run retransmitted");
        assert_eq!(s.timeouts, 0, "{kind:?}: clean run timed out");
        assert_eq!(s.naks_received, 0, "{kind:?}");
    }
}

#[test]
fn table2_control_packet_counts_on_clean_network() {
    // Paper Table 2: ACKs the sender processes per data packet.
    let n = 6u16;
    let k = 20u64; // data packets
    let msg = payload(20 * 500, 2);

    // ACK-based: N acks per data packet (alloc included: (k+1) * N).
    let mut net = Loopback::new(config_for(ProtocolKind::Ack, n, 500, 4), n, 3);
    net.send_message(msg.clone());
    net.run();
    assert_eq!(net.sender_stats().acks_received, (k + 1) * n as u64);

    // NAK with polling i=5: k/i polls (+ last +- rounding) each acked by N;
    // alloc acked by N.
    let mut net = Loopback::new(config_for(ProtocolKind::nak_polling(5), n, 500, 10), n, 3);
    net.send_message(msg.clone());
    net.run();
    let polls = k.div_ceil(5); // seqs 4, 9, 14, 19 (19 is also LAST)
    assert_eq!(net.sender_stats().acks_received, (polls + 1) * n as u64);

    // Ring: one ack per data packet, except the last which everyone acks;
    // the alloc is a 1-packet transfer acked by everyone.
    let mut net = Loopback::new(config_for(ProtocolKind::Ring, n, 500, 10), n, 3);
    net.send_message(msg.clone());
    net.run();
    assert_eq!(
        net.sender_stats().acks_received,
        (k - 1) + n as u64 + n as u64
    );

    // Flat tree H=3 over 6 receivers: 2 roots -> 2 acks per data packet at
    // the sender.
    let mut net = Loopback::new(config_for(ProtocolKind::flat_tree(3), n, 500, 4), n, 3);
    net.send_message(msg);
    net.run();
    let roots = 2u64;
    assert_eq!(net.sender_stats().acks_received, (k + 1) * roots);
}

#[test]
fn multiple_messages_in_order() {
    for kind in [
        ProtocolKind::Ack,
        ProtocolKind::nak_polling(3),
        ProtocolKind::Ring,
        ProtocolKind::flat_tree(2),
    ] {
        let cfg = config_for(kind, 4, 300, 6);
        let mut net = Loopback::new(cfg, 4, 9);
        let msgs: Vec<Bytes> = (0..5).map(|i| payload(1000 + i * 137, i as u8)).collect();
        for m in &msgs {
            net.send_message(m.clone());
        }
        net.run();
        assert_eq!(net.sent, vec![0, 1, 2, 3, 4], "{kind:?}");
        // Each receiver got all messages, in order.
        for r in 0..4usize {
            let got: Vec<_> = net
                .deliveries
                .iter()
                .filter(|(i, _, _)| *i == r)
                .map(|(_, id, d)| (*id, d.clone()))
                .collect();
            assert_eq!(got.len(), 5, "{kind:?} receiver {r}");
            for (i, (id, d)) in got.iter().enumerate() {
                assert_eq!(*id as usize, i, "{kind:?}: out-of-order delivery");
                assert_eq!(d, &msgs[i], "{kind:?}: wrong payload");
            }
        }
    }
}

#[test]
fn multiple_messages_under_loss() {
    let cfg = config_for(ProtocolKind::nak_polling(4), 3, 400, 8);
    let mut net = Loopback::new(cfg, 3, 21).with_loss(0.15);
    let msgs: Vec<Bytes> = (0..3).map(|i| payload(3_000, i as u8)).collect();
    for m in &msgs {
        net.send_message(m.clone());
    }
    net.run();
    assert_eq!(net.sent.len(), 3);
    assert_eq!(net.deliveries.len(), 9);
}

#[test]
fn selective_repeat_delivers_under_loss() {
    for kind in [ProtocolKind::Ack, ProtocolKind::nak_polling(4)] {
        let mut cfg = config_for(kind, 3, 700, 8);
        cfg.discipline = WindowDiscipline::SelectiveRepeat;
        let mut net = Loopback::new(cfg, 3, 55).with_loss(0.2);
        let msg = payload(15_000, 4);
        net.send_message(msg.clone());
        let out = net.run();
        assert_eq!(out.len(), 3, "{kind:?}");
        assert!(out.iter().all(|d| d == &msg), "{kind:?}");
    }
}

#[test]
fn selective_repeat_retransmits_less_than_gbn_under_loss() {
    fn retx(discipline: WindowDiscipline) -> u64 {
        let mut cfg = ProtocolConfig::new(ProtocolKind::Ack, 500, 16);
        cfg.discipline = discipline;
        let mut net = Loopback::new(cfg, 2, 42).with_loss(0.15);
        net.send_message(payload(60_000, 5));
        net.run();
        net.sender_stats().retx_sent
    }
    let gbn = retx(WindowDiscipline::GoBackN);
    let sr = retx(WindowDiscipline::SelectiveRepeat);
    assert!(
        sr < gbn,
        "selective repeat ({sr}) should retransmit less than Go-Back-N ({gbn})"
    );
}

#[test]
fn ack_protocol_equals_flat_tree_height_one() {
    // The paper: "the ACK-based protocol is a special case of the
    // tree-based protocols, a flat tree with H = 1". Identical control
    // traffic in identical scenarios.
    let run = |kind: ProtocolKind| {
        let cfg = config_for(kind, 5, 600, 4);
        let mut net = Loopback::new(cfg, 5, 13);
        net.send_message(payload(9_000, 6));
        net.run();
        (
            net.sender_stats().acks_received,
            net.sender_stats().data_sent,
        )
    };
    assert_eq!(run(ProtocolKind::Ack), run(ProtocolKind::flat_tree(1)));
}

#[test]
fn tree_chain_sequentializes_acks() {
    // In a single chain (H = N), the sender sees exactly one aggregated
    // ack source.
    let n = 6u16;
    let cfg = config_for(ProtocolKind::flat_tree(6), n, 500, 4);
    let mut net = Loopback::new(cfg, n, 17);
    net.send_message(payload(4_000, 7));
    net.run();
    // 8 data + 1 alloc packets, one root: sender processes exactly 9 acks
    // ... but intermediate progress acks can add a few; at most one per
    // packet per hop is an upper bound. The *lower* bound is k+1.
    let acks = net.sender_stats().acks_received;
    assert!(
        acks >= 9,
        "aggregation must still confirm everything: {acks}"
    );
    // Each receiver sent acks only to its parent; total receiver acks is
    // bounded by hops * packets.
    let total_recv_acks: u64 = (0..6).map(|i| net.receiver_stats(i).acks_sent).sum();
    assert!(total_recv_acks >= acks);
}

#[test]
fn ring_token_rotation_spreads_acks_evenly() {
    let n = 4u16;
    let cfg = config_for(ProtocolKind::Ring, n, 250, 8);
    let mut net = Loopback::new(cfg, n, 19);
    // 16 data packets: each receiver tokens 4 of them.
    net.send_message(payload(4_000, 8));
    net.run();
    for i in 0..4usize {
        let acks = net.receiver_stats(i).acks_sent;
        // 4 token acks (one of which may be the LAST) + alloc ack
        // + possibly the all-ack of LAST.
        assert!(
            (5..=7).contains(&acks),
            "receiver {i} sent {acks} acks; rotation should spread them"
        );
    }
}

#[test]
fn zero_and_tiny_messages() {
    for kind in protocols_for(4) {
        let cfg = config_for(kind, 4, 500, 6);
        let mut net = Loopback::new(cfg, 4, 23);
        net.send_message(Bytes::new());
        net.send_message(payload(1, 1));
        net.run();
        assert_eq!(net.sent, vec![0, 1], "{kind:?}");
        let empties = net.deliveries.iter().filter(|(_, id, _)| *id == 0).count();
        let ones = net.deliveries.iter().filter(|(_, id, _)| *id == 1).count();
        assert_eq!((empties, ones), (4, 4), "{kind:?}");
    }
}

#[test]
fn handshake_costs_one_extra_transfer() {
    // With the handshake, a 1-packet message takes 2 transfers (2 packets);
    // without, 1 packet.
    let mut with = ProtocolConfig::new(ProtocolKind::Ack, 500, 4);
    with.handshake = true;
    let mut without = with;
    without.handshake = false;

    let mut a = Loopback::new(with, 2, 1);
    a.send_message(payload(100, 1));
    a.run();
    assert_eq!(a.sender_stats().data_sent, 2);

    let mut b = Loopback::new(without, 2, 1);
    b.send_message(payload(100, 1));
    b.run();
    assert_eq!(b.sender_stats().data_sent, 1);
}

#[test]
fn peak_buffer_accounting_tracks_window() {
    let mut cfg = ProtocolConfig::new(ProtocolKind::Ack, 1_000, 4);
    cfg.handshake = false;
    let mut net = Loopback::new(cfg, 1, 1);
    net.send_message(payload(20_000, 9));
    net.run();
    let peak = net.sender_stats().peak_buffer_bytes;
    assert_eq!(peak, 4_000, "window of 4 x 1000-byte packets");
    // Receiver pins the whole message only when preallocated; dynamic
    // assembly grows to the message size.
    let mut cfg2 = cfg;
    cfg2.handshake = true;
    let mut net2 = Loopback::new(cfg2, 1, 1);
    net2.send_message(payload(20_000, 9));
    net2.run();
    assert_eq!(net2.receiver_stats(0).peak_buffer_bytes, 20_000);
}

#[test]
fn fec_repairs_fewer_transmissions_than_nak_under_loss() {
    // The tentpole claim at unit scale: with disjoint losses across the
    // group, one coded repair heals what plain NAK answers with several
    // retransmissions. Same seed, same loss process, same window.
    fn recovery_tx(kind: ProtocolKind) -> (u64, u64, Vec<Bytes>) {
        let cfg = config_for(kind, 8, 700, 8);
        let mut net = Loopback::new(cfg, 8, 4242).with_loss(0.08);
        let msg = payload(120_000, 5);
        net.send_message(msg.clone());
        let out = net.run();
        let s = net.sender_stats();
        (s.retx_sent, s.repairs_sent, out)
    }
    let (nak_retx, nak_repairs, nak_out) = recovery_tx(ProtocolKind::nak_polling(4));
    let (fec_retx, fec_repairs, fec_out) = recovery_tx(ProtocolKind::fec(4));
    assert_eq!(nak_out.len(), 8);
    assert_eq!(fec_out.len(), 8);
    assert_eq!(nak_repairs, 0, "the nak family never codes");
    assert!(fec_repairs > 0, "losses at 8% must exercise coded repair");
    assert!(
        fec_retx + fec_repairs < nak_retx,
        "fec recovery transmissions ({fec_retx} retx + {fec_repairs} repairs) \
         must undercut nak ({nak_retx} retx)"
    );
}

#[test]
fn fec_proactive_parity_heals_without_feedback() {
    // Proactive parity rides along every `parity_every` packets and lets a
    // receiver heal a single loss before any NAK round trip happens.
    let cfg = config_for(ProtocolKind::fec(4), 4, 700, 8);
    let mut net = Loopback::new(cfg, 4, 7).with_loss(0.05);
    let msg = payload(60_000, 6);
    net.send_message(msg.clone());
    let out = net.run();
    assert_eq!(out.len(), 4);
    assert!(out.iter().all(|d| d == &msg));
    let s = net.sender_stats();
    assert!(s.parity_sent > 0, "parity must flow on a lossy run");
    let decoded: u64 = (0..4).map(|i| net.receiver_stats(i).repairs_decoded).sum();
    assert!(decoded > 0, "at least one loss must heal by decoding");
}

#[test]
fn fec_exactly_once_when_repair_races_native_delivery() {
    // A decoded packet and its late native copy must not double-deliver:
    // duplicates collapse in the assembler, deliveries stay exactly N.
    let cfg = config_for(ProtocolKind::fec(4), 6, 700, 8);
    let mut net = Loopback::new(cfg, 6, 31).with_loss(0.15).with_reorder(0.2);
    let msg = payload(40_000, 7);
    net.send_message(msg.clone());
    let out = net.run();
    assert_eq!(out.len(), 6, "exactly one delivery per receiver");
    assert!(out.iter().all(|d| d == &msg), "byte-identical under races");
}

#[test]
fn all_protocols_survive_reordering() {
    for kind in protocols_for(4) {
        let cfg = config_for(kind, 4, 700, 8);
        let msg = payload(15_000, 3);
        let mut net = Loopback::new(cfg, 4, 321).with_reorder(0.15);
        net.send_message(msg.clone());
        let out = net.run();
        assert_eq!(out.len(), 4, "{kind:?} under reordering");
        assert!(out.iter().all(|d| d == &msg), "{kind:?}");
    }
}

#[test]
fn all_protocols_survive_loss_plus_reordering() {
    for kind in protocols_for(3) {
        let cfg = config_for(kind, 3, 700, 8);
        let msg = payload(10_000, 4);
        let mut net = Loopback::new(cfg, 3, 99).with_loss(0.1).with_reorder(0.1);
        net.send_message(msg.clone());
        let out = net.run();
        assert_eq!(out.len(), 3, "{kind:?} under loss + reordering");
        assert!(out.iter().all(|d| d == &msg), "{kind:?}");
    }
}
