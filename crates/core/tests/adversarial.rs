//! Hardening: endpoints must never panic or corrupt state when fed
//! arbitrary, hostile, or nonsensical (but well-formed) packets.

use bytes::Bytes;
use proptest::prelude::*;
use rmcast::packet;
use rmcast::{
    Endpoint, GroupSpec, ProtocolConfig, ProtocolKind, Rank, Receiver, Sender, SeqNo, Time,
};
use rmwire::PacketFlags;

fn drain<E: Endpoint>(e: &mut E) {
    while e.poll_transmit().is_some() {}
    while e.poll_event().is_some() {}
}

/// A structured-but-arbitrary packet generator: valid encodings with
/// arbitrary field values.
fn arb_packet() -> impl Strategy<Value = Bytes> {
    let flags = 0u8..16;
    prop_oneof![
        // Data with arbitrary transfer/seq/flags/payload.
        (
            any::<u16>(),
            any::<u32>(),
            any::<u32>(),
            flags.clone(),
            proptest::collection::vec(any::<u8>(), 0..200)
        )
            .prop_map(|(rank, transfer, seq, fl, body)| {
                packet::encode_data(
                    Rank(rank),
                    transfer,
                    SeqNo(seq),
                    PacketFlags::from_bits(fl & 0x07).unwrap(), // not ALLOC
                    &body,
                )
            }),
        // Alloc with arbitrary size claims.
        (
            any::<u16>(),
            any::<u32>(),
            any::<u64>(),
            any::<u32>(),
            1u32..65_000
        )
            .prop_map(|(rank, transfer, msg_len, data_transfer, ps)| {
                packet::encode_alloc(
                    Rank(rank),
                    transfer,
                    PacketFlags::LAST,
                    rmwire::AllocBody {
                        // Stay under the receiver's hostile-allocation cap
                        // so these packets exercise the *accept* path; the
                        // over-cap rejection has its own test (integrity.rs).
                        msg_len: msg_len % 1_000_000,
                        data_transfer,
                        packet_size: ps,
                    },
                )
            }),
        // Acks and naks with arbitrary values.
        (any::<u16>(), any::<u32>(), any::<u32>()).prop_map(|(r, t, ne)| packet::encode_ack(
            Rank(r),
            t,
            SeqNo(ne)
        )),
        (any::<u16>(), any::<u32>(), any::<u32>()).prop_map(|(r, t, e)| packet::encode_nak(
            Rank(r),
            t,
            SeqNo(e)
        )),
        // Raw garbage.
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Bytes::from),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The sender survives any packet stream.
    #[test]
    fn sender_never_panics(
        packets in proptest::collection::vec(arb_packet(), 1..40),
        kind in 0usize..4,
    ) {
        let kind = [
            ProtocolKind::Ack,
            ProtocolKind::nak_polling(3),
            ProtocolKind::Ring,
            ProtocolKind::flat_tree(2),
        ][kind];
        let mut cfg = ProtocolConfig::new(kind, 500, 8);
        if matches!(kind, ProtocolKind::Ring) {
            cfg.window = 6;
        }
        let mut s = Sender::new(cfg, GroupSpec::new(4));
        s.send_message(Time::ZERO, Bytes::from(vec![1u8; 2_000]));
        drain(&mut s);
        for (i, p) in packets.iter().enumerate() {
            s.handle_datagram(Time::from_micros(i as u64), p);
            drain(&mut s);
        }
        // Timers still sane.
        if let Some(d) = s.poll_timeout() {
            s.handle_timeout(d);
        }
        drain(&mut s);
    }

    /// The receiver survives any packet stream.
    #[test]
    fn receiver_never_panics(
        packets in proptest::collection::vec(arb_packet(), 1..40),
        kind in 0usize..4,
        rank in 1u16..=4,
    ) {
        let kind = [
            ProtocolKind::Ack,
            ProtocolKind::nak_polling(3),
            ProtocolKind::Ring,
            ProtocolKind::flat_tree(2),
        ][kind];
        let mut cfg = ProtocolConfig::new(kind, 500, 8);
        if matches!(kind, ProtocolKind::Ring) {
            cfg.window = 6;
        }
        let mut r = Receiver::new(cfg, GroupSpec::new(4), Rank(rank), 7);
        for (i, p) in packets.iter().enumerate() {
            r.handle_datagram(Time::from_micros(i as u64), p);
            drain(&mut r);
        }
        if let Some(d) = r.poll_timeout() {
            r.handle_timeout(d);
        }
        drain(&mut r);
    }

    /// Hostile interference does not break a legitimate transfer: inject
    /// arbitrary packets into every endpoint mid-transfer and the message
    /// still arrives intact everywhere.
    ///
    /// One caveat is inherent to the paper's protocol (no authentication):
    /// a forged ACK claiming receipt can complete the sender spuriously,
    /// and forged data with the right transfer id can corrupt a payload.
    /// We therefore restrict injected data/acks to *foreign* transfer ids,
    /// which the protocol must ignore — trust-boundary enforcement beyond
    /// that is out of scope for a LAN protocol of this era.
    #[test]
    fn interference_does_not_corrupt_delivery(
        noise in proptest::collection::vec(arb_packet(), 0..30),
        targets in proptest::collection::vec(0usize..3, 0..30),
        seed in any::<u64>(),
    ) {
        use rmcast::loopback::Loopback;
        let cfg = ProtocolConfig::new(ProtocolKind::Ack, 500, 8);
        let mut net = Loopback::new(cfg, 2, seed);
        let msg = Bytes::from((0..3_000u32).map(|i| i as u8).collect::<Vec<_>>());
        net.send_message(msg.clone());
        for (p, t) in noise.iter().zip(targets.iter()) {
            // Steer clear of the live transfer ids 0 and 1 (see above).
            if let Ok(pkt) = rmcast::packet::Packet::parse(p) {
                if pkt.header().transfer < 100 {
                    continue;
                }
            }
            let target = match t {
                0 => None,
                i => Some(i - 1),
            };
            net.inject(target, p);
        }
        let out = net.run();
        prop_assert_eq!(out.len(), 2);
        for d in out {
            prop_assert_eq!(&d, &msg);
        }
    }
}
