//! Focused receiver-side paths: selective repeat, deep binary-tree
//! aggregation, ring transfers shorter than the group, and accounting.

use bytes::Bytes;
use rmcast::packet::{self, Packet};
use rmcast::{
    Dest, Endpoint, GroupSpec, ProtocolConfig, ProtocolKind, Receiver, SeqNo, Time, TreeShape,
    WindowDiscipline,
};
use rmwire::{PacketFlags, Rank};

fn data(transfer: u32, seq: u32, flags: PacketFlags, chunk: &[u8]) -> Bytes {
    packet::encode_data(Rank::SENDER, transfer, SeqNo(seq), flags, chunk)
}

fn drain_acks(r: &mut Receiver) -> Vec<(Dest, u32, u32)> {
    std::iter::from_fn(|| r.poll_transmit())
        .filter_map(|t| match Packet::parse(&t.payload).unwrap() {
            Packet::Ack { header, body, .. } => {
                Some((t.dest, header.transfer, body.next_expected.0))
            }
            _ => None,
        })
        .collect()
}

fn drain_naks(r: &mut Receiver) -> Vec<u32> {
    std::iter::from_fn(|| r.poll_transmit())
        .filter_map(|t| match Packet::parse(&t.payload).unwrap() {
            Packet::Nak { body, .. } => Some(body.expected.0),
            _ => None,
        })
        .collect()
}

fn no_handshake(kind: ProtocolKind) -> ProtocolConfig {
    let mut c = ProtocolConfig::new(kind, 100, 8);
    c.handshake = false;
    c
}

#[test]
fn sr_receiver_buffers_and_jumps() {
    let mut c = no_handshake(ProtocolKind::Ack);
    c.discipline = WindowDiscipline::SelectiveRepeat;
    // SR needs the handshake for pre-allocation.
    c.handshake = true;
    let mut r = Receiver::new(c, GroupSpec::new(1), Rank(1), 1);
    let alloc = packet::encode_alloc(
        Rank::SENDER,
        0,
        PacketFlags::LAST,
        rmwire::AllocBody {
            msg_len: 300,
            data_transfer: 1,
            packet_size: 100,
        },
    );
    r.handle_datagram(Time::ZERO, &alloc);
    let _ = drain_acks(&mut r);

    // Out of order: 2 arrives first, buffered; cumulative ack stays at 0.
    r.handle_datagram(Time::ZERO, &data(1, 2, PacketFlags::LAST, &[2u8; 100]));
    let acks = drain_acks(&mut r);
    assert_eq!(acks, vec![(Dest::Sender, 1, 0)], "cumulative ack unmoved");
    // 0 arrives: prefix advances to 1.
    r.handle_datagram(Time::ZERO, &data(1, 0, PacketFlags::EMPTY, &[0u8; 100]));
    assert_eq!(drain_acks(&mut r), vec![(Dest::Sender, 1, 1)]);
    // 1 arrives: prefix jumps over the buffered packet 2 to 3.
    r.handle_datagram(Time::ZERO, &data(1, 1, PacketFlags::EMPTY, &[1u8; 100]));
    assert_eq!(drain_acks(&mut r), vec![(Dest::Sender, 1, 3)]);
    match r.poll_event().unwrap() {
        rmcast::AppEvent::MessageDelivered { data, .. } => {
            assert_eq!(&data[..100], &[0u8; 100][..]);
            assert_eq!(&data[100..200], &[1u8; 100][..]);
            assert_eq!(&data[200..], &[2u8; 100][..]);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn binary_tree_three_levels_aggregate() {
    // 7 receivers: 1 <- {2,3}, 2 <- {4,5}, 3 <- {6,7}.
    let kind = ProtocolKind::Tree {
        shape: TreeShape::Binary,
    };
    let g = GroupSpec::new(7);
    let mk = |rank: u16| Receiver::new(no_handshake(kind), g, Rank(rank), 5);
    let mut root = mk(1);
    let mut mid = mk(2);
    let mut leaf = mk(4);

    let pkt = data(1, 0, PacketFlags::LAST, b"zz");
    // Leaf 4 gets the data and immediately reports to its parent 2.
    leaf.handle_datagram(Time::ZERO, &pkt);
    let a = drain_acks(&mut leaf);
    assert_eq!(a, vec![(Dest::Rank(Rank(2)), 1, 1)]);

    // Node 2 has the data but only one child's report: stays quiet.
    mid.handle_datagram(Time::ZERO, &pkt);
    mid.handle_datagram(Time::ZERO, &packet::encode_ack(Rank(4), 1, SeqNo(1)));
    assert!(
        drain_acks(&mut mid).is_empty(),
        "child 5 has not reported yet"
    );
    // Child 5 reports: node 2 forwards the aggregate to the root.
    mid.handle_datagram(Time::ZERO, &packet::encode_ack(Rank(5), 1, SeqNo(1)));
    assert_eq!(drain_acks(&mut mid), vec![(Dest::Rank(Rank(1)), 1, 1)]);

    // Root needs its own copy plus both subtrees.
    root.handle_datagram(Time::ZERO, &pkt);
    root.handle_datagram(Time::ZERO, &packet::encode_ack(Rank(2), 1, SeqNo(1)));
    assert!(drain_acks(&mut root).is_empty(), "subtree 3 missing");
    root.handle_datagram(Time::ZERO, &packet::encode_ack(Rank(3), 1, SeqNo(1)));
    assert_eq!(
        drain_acks(&mut root),
        vec![(Dest::Sender, 1, 1)],
        "root reports to the sender only when the whole tree has it"
    );
}

#[test]
fn tree_aggregate_is_monotone_and_deduplicated() {
    let kind = ProtocolKind::flat_tree(2);
    let g = GroupSpec::new(2); // chain 1 <- 2
    let mut head = Receiver::new(no_handshake(kind), g, Rank(1), 3);

    // Child reports 2, then (stale) 1: only one upward ack, at 2... but
    // the head's own progress limits the aggregate first.
    head.handle_datagram(Time::ZERO, &data(1, 0, PacketFlags::EMPTY, b"aa"));
    head.handle_datagram(Time::ZERO, &packet::encode_ack(Rank(2), 1, SeqNo(2)));
    assert_eq!(drain_acks(&mut head), vec![(Dest::Sender, 1, 1)]);
    // Stale child ack: no new upward traffic.
    head.handle_datagram(Time::ZERO, &packet::encode_ack(Rank(2), 1, SeqNo(1)));
    assert!(drain_acks(&mut head).is_empty());
    // Own progress catches up: aggregate becomes 2.
    head.handle_datagram(Time::ZERO, &data(1, 1, PacketFlags::LAST, b"bb"));
    assert_eq!(drain_acks(&mut head), vec![(Dest::Sender, 1, 2)]);
}

#[test]
fn ring_transfer_shorter_than_group() {
    // 5 receivers, 2 packets: ranks 1 and 2 ack their tokens; everyone
    // acks the LAST packet.
    let mut c = no_handshake(ProtocolKind::Ring);
    c.window = 7;
    let g = GroupSpec::new(5);
    for rank in 1..=5u16 {
        let mut r = Receiver::new(c, g, Rank(rank), 9);
        r.handle_datagram(Time::ZERO, &data(1, 0, PacketFlags::EMPTY, b"aa"));
        r.handle_datagram(Time::ZERO, &data(1, 1, PacketFlags::LAST, b"bb"));
        let acks = drain_acks(&mut r);
        let expected: Vec<(Dest, u32, u32)> = match rank {
            1 => vec![(Dest::Sender, 1, 1), (Dest::Sender, 1, 2)], // token 0 + LAST
            2 => vec![(Dest::Sender, 1, 2)],                       // token 1 == LAST
            _ => vec![(Dest::Sender, 1, 2)],                       // LAST only
        };
        assert_eq!(acks, expected, "rank {rank}");
    }
}

#[test]
fn nak_mode_acks_retransmissions() {
    let mut r = Receiver::new(
        no_handshake(ProtocolKind::nak_polling(4)),
        GroupSpec::new(1),
        Rank(1),
        1,
    );
    r.handle_datagram(Time::ZERO, &data(1, 0, PacketFlags::EMPTY, b"aa"));
    assert!(drain_acks(&mut r).is_empty(), "not polled");
    // A retransmission of the same packet is acknowledged (stall
    // recovery).
    r.handle_datagram(Time::ZERO, &data(1, 0, PacketFlags::RETX, b"aa"));
    assert_eq!(drain_acks(&mut r), vec![(Dest::Sender, 1, 1)]);
}

#[test]
fn gap_then_recovery_naks_once_per_suppression_window() {
    let mut c = no_handshake(ProtocolKind::Ack);
    c.nak_suppress = rmcast::Duration::from_millis(4);
    let mut r = Receiver::new(c, GroupSpec::new(1), Rank(1), 1);
    // Lost packet 0; packets 1..5 arrive over 2 ms: exactly one NAK.
    for (i, t_us) in [(1u32, 0u64), (2, 500), (3, 1_000), (4, 1_500), (5, 2_000)] {
        r.handle_datagram(
            Time::from_micros(t_us),
            &data(1, i, PacketFlags::EMPTY, b"xx"),
        );
    }
    assert_eq!(drain_naks(&mut r), vec![0]);
    assert_eq!(r.stats().naks_suppressed, 4);
    // After the suppression window, another gap packet re-naks.
    r.handle_datagram(
        Time::from_micros(5_000),
        &data(1, 6, PacketFlags::EMPTY, b"xx"),
    );
    assert_eq!(drain_naks(&mut r), vec![0]);
}

#[test]
fn stats_account_for_everything() {
    let mut r = Receiver::new(
        no_handshake(ProtocolKind::Ack),
        GroupSpec::new(1),
        Rank(1),
        1,
    );
    r.handle_datagram(Time::ZERO, &data(1, 0, PacketFlags::EMPTY, b"aa"));
    r.handle_datagram(Time::ZERO, &data(1, 0, PacketFlags::EMPTY, b"aa")); // dup
    r.handle_datagram(Time::ZERO, &data(1, 1, PacketFlags::LAST, b"bb"));
    r.handle_datagram(Time::ZERO, &[0xff, 0xff]); // garbage
    let s = r.stats();
    assert_eq!(s.data_received, 3);
    assert_eq!(s.data_discarded, 1);
    assert_eq!(s.decode_errors, 1);
    assert_eq!(s.acks_sent, 3);
    assert_eq!(s.messages_completed, 1);
}

#[test]
fn foreign_transfer_ids_do_not_confuse_state() {
    // Two interleaved transfers (which the sender never does, but the
    // receiver must tolerate): both complete independently.
    let mut r = Receiver::new(
        no_handshake(ProtocolKind::Ack),
        GroupSpec::new(1),
        Rank(1),
        1,
    );
    r.handle_datagram(Time::ZERO, &data(1, 0, PacketFlags::EMPTY, b"aa"));
    r.handle_datagram(Time::ZERO, &data(3, 0, PacketFlags::EMPTY, b"cc"));
    r.handle_datagram(Time::ZERO, &data(1, 1, PacketFlags::LAST, b"bb"));
    r.handle_datagram(Time::ZERO, &data(3, 1, PacketFlags::LAST, b"dd"));
    let mut got = Vec::new();
    while let Some(e) = r.poll_event() {
        if let rmcast::AppEvent::MessageDelivered { msg_id, data } = e {
            got.push((msg_id, data));
        }
    }
    assert_eq!(got.len(), 2);
    assert_eq!(&got[0].1[..], b"aabb");
    assert_eq!(&got[1].1[..], b"ccdd");
}
