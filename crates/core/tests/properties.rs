//! Property-based tests: reliability and wire-format invariants must hold
//! for *arbitrary* message sizes, protocol parameters and loss patterns.

use bytes::{Bytes, BytesMut};
use proptest::prelude::*;
use rmcast::loopback::Loopback;
use rmcast::{ProtocolConfig, ProtocolKind, TreeShape, WindowDiscipline};
use rmwire::{Header, PacketFlags, PacketType, Rank, SeqNo};

fn arb_kind() -> impl Strategy<Value = ProtocolKind> {
    prop_oneof![
        Just(ProtocolKind::Ack),
        (1usize..=8).prop_map(ProtocolKind::nak_polling),
        (1usize..=8).prop_map(|i| ProtocolKind::NakPolling {
            poll_interval: i,
            receiver_multicast_nak: true
        }),
        Just(ProtocolKind::Ring),
        (1usize..=6).prop_map(ProtocolKind::flat_tree),
        Just(ProtocolKind::Tree {
            shape: TreeShape::Binary
        }),
        (
            1usize..=8,
            prop_oneof![Just(0usize), 2usize..=16],
            1usize..=64,
        )
            .prop_map(|(poll_interval, parity_every, max_coded)| {
                ProtocolKind::Fec {
                    poll_interval,
                    parity_every,
                    max_coded,
                }
            }),
    ]
}

fn build_config(
    kind: ProtocolKind,
    n: u16,
    packet_size: usize,
    window: usize,
    sr: bool,
) -> ProtocolConfig {
    let mut kind = kind;
    // Clamp the tree height into the group.
    if let ProtocolKind::Tree {
        shape: TreeShape::Flat { height },
    } = kind
    {
        kind = ProtocolKind::flat_tree(height.min(n as usize));
    }
    let mut cfg = ProtocolConfig::new(kind, packet_size, window);
    if matches!(kind, ProtocolKind::Ring) {
        cfg.window = cfg.window.max(n as usize + 1 + 1);
    }
    if let ProtocolKind::NakPolling { poll_interval, .. }
    | ProtocolKind::Fec { poll_interval, .. } = kind
    {
        cfg.window = cfg.window.max(poll_interval);
    }
    if sr {
        cfg.discipline = WindowDiscipline::SelectiveRepeat;
    }
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every protocol delivers every byte to every receiver, clean network.
    #[test]
    fn reliable_delivery_clean(
        kind in arb_kind(),
        n in 1u16..8,
        packet_size in 1usize..2000,
        window in 1usize..12,
        msg_len in 0usize..6000,
        seed in 0u64..u64::MAX,
    ) {
        let cfg = build_config(kind, n, packet_size, window, false);
        let mut net = Loopback::new(cfg, n, seed);
        let msg = Bytes::from((0..msg_len).map(|i| i as u8).collect::<Vec<_>>());
        net.send_message(msg.clone());
        let out = net.run();
        prop_assert_eq!(out.len(), n as usize);
        for d in out {
            prop_assert_eq!(&d, &msg);
        }
    }

    /// ... and under random per-datagram loss.
    #[test]
    fn reliable_delivery_lossy(
        kind in arb_kind(),
        n in 1u16..5,
        loss in 0.01f64..0.35,
        msg_len in 1usize..4000,
        sr in any::<bool>(),
        seed in 0u64..u64::MAX,
    ) {
        let cfg = build_config(kind, n, 512, 8, sr);
        let mut net = Loopback::new(cfg, n, seed).with_loss(loss);
        let msg = Bytes::from((0..msg_len).map(|i| (i * 7) as u8).collect::<Vec<_>>());
        net.send_message(msg.clone());
        let out = net.run();
        prop_assert_eq!(out.len(), n as usize);
        for d in out {
            prop_assert_eq!(&d, &msg);
        }
    }

    /// Exactly-once delivery under datagram duplication: every protocol,
    /// arbitrary duplication rates, no receiver ever sees a message twice.
    #[test]
    fn exactly_once_under_duplication(
        kind in arb_kind(),
        n in 1u16..5,
        dup in 0.05f64..0.6,
        msg_len in 1usize..4000,
        seed in 0u64..u64::MAX,
    ) {
        let cfg = build_config(kind, n, 512, 8, false);
        let mut net = Loopback::new(cfg, n, seed).with_dup(dup);
        let msg = Bytes::from((0..msg_len).map(|i| (i * 13) as u8).collect::<Vec<_>>());
        net.send_message(msg.clone());
        let out = net.run();
        // Exactly one delivery per receiver — duplicates must be absorbed.
        prop_assert_eq!(out.len(), n as usize);
        for d in out {
            prop_assert_eq!(&d, &msg);
        }
        for i in 0..n as usize {
            let delivered = net.deliveries.iter().filter(|(r, _, _)| *r == i).count();
            prop_assert_eq!(delivered, 1, "receiver {} saw {} deliveries", i, delivered);
        }
    }

    /// ... and under duplication combined with loss (retransmissions then
    /// also arrive twice).
    #[test]
    fn exactly_once_under_duplication_and_loss(
        kind in arb_kind(),
        n in 1u16..4,
        dup in 0.05f64..0.4,
        loss in 0.01f64..0.2,
        msg_len in 1usize..3000,
        seed in 0u64..u64::MAX,
    ) {
        let cfg = build_config(kind, n, 512, 8, false);
        let mut net = Loopback::new(cfg, n, seed).with_dup(dup).with_loss(loss);
        let msg = Bytes::from((0..msg_len).map(|i| (i * 31) as u8).collect::<Vec<_>>());
        net.send_message(msg.clone());
        let out = net.run();
        prop_assert_eq!(out.len(), n as usize);
        for d in out {
            prop_assert_eq!(&d, &msg);
        }
    }

    /// Clean runs never retransmit, for any parameters.
    #[test]
    fn clean_runs_never_retransmit(
        kind in arb_kind(),
        n in 1u16..8,
        msg_len in 0usize..5000,
        seed in 0u64..u64::MAX,
    ) {
        let cfg = build_config(kind, n, 700, 9, false);
        let mut net = Loopback::new(cfg, n, seed);
        net.send_message(Bytes::from(vec![1u8; msg_len]));
        net.run();
        prop_assert_eq!(net.sender_stats().retx_sent, 0);
        prop_assert_eq!(net.sender_stats().timeouts, 0);
    }

    /// Header encoding round-trips for arbitrary field values.
    #[test]
    fn header_round_trip(
        ptype in 1u8..=3,
        flags in 0u8..16,
        rank in any::<u16>(),
        transfer in any::<u32>(),
        seq in any::<u32>(),
    ) {
        let h = Header {
            ptype: match ptype {
                1 => PacketType::Data,
                2 => PacketType::Ack,
                _ => PacketType::Nak,
            },
            flags: PacketFlags::from_bits(flags).unwrap(),
            src_rank: Rank(rank),
            transfer,
            seq: SeqNo(seq),
        };
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        let mut b = buf.freeze();
        prop_assert_eq!(Header::decode(&mut b).unwrap(), h);
    }

    /// Arbitrary bytes never panic the packet parser.
    #[test]
    fn parser_never_panics(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = rmcast::packet::Packet::parse(&data);
    }

    /// Sequence-number window arithmetic: `in_window` agrees with the
    /// offset definition for arbitrary bases.
    #[test]
    fn seq_window_membership(lo in any::<u32>(), off in any::<u32>(), len in 0u32..1_000_000) {
        let s = SeqNo(lo).add(off);
        let member = s.in_window(SeqNo(lo), len);
        prop_assert_eq!(member, off < len);
    }

    /// `precedes` is asymmetric for distinct values within half the space.
    #[test]
    fn seq_precedes_asymmetric(a in any::<u32>(), d in 1u32..(1 << 31)) {
        let x = SeqNo(a);
        let y = x.add(d);
        prop_assert!(x.precedes(y));
        prop_assert!(!y.precedes(x));
        prop_assert_eq!(x.distance_to(y), d as i32);
    }
}

mod membership_churn {
    use super::*;
    use rmcast::MembershipConfig;

    /// All four families (plus the multicast-NAK ablation), membership on.
    fn arb_family() -> impl Strategy<Value = ProtocolKind> {
        prop_oneof![
            Just(ProtocolKind::Ack),
            (2usize..=6).prop_map(ProtocolKind::nak_polling),
            (2usize..=6).prop_map(|i| ProtocolKind::NakPolling {
                poll_interval: i,
                receiver_multicast_nak: true
            }),
            Just(ProtocolKind::Ring),
            (2usize..=4).prop_map(ProtocolKind::flat_tree),
            Just(ProtocolKind::Tree {
                shape: TreeShape::Binary
            }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Crash, eviction and rejoin under loss: the sender completes
        /// every message, and every member alive at the end observed
        /// exactly-once, in-order delivery of the messages sent while it
        /// was a member.
        #[test]
        fn exactly_once_under_churn(
            kind in arb_family(),
            n in 2u16..6,
            loss in 0.0f64..0.08,
            msg_len in 1usize..3000,
            seed in 0u64..u64::MAX,
        ) {
            let mut cfg = build_config(kind, n, 512, 8, false);
            cfg.membership = MembershipConfig::enabled();
            if matches!(kind, ProtocolKind::Tree { .. }) {
                // Far above the RTO so lossy-but-alive children are never
                // spuriously evicted by their chain parent.
                cfg.liveness.child_evict_timeout =
                    Some(rmwire::Duration::from_millis(2_000));
            }
            // Rank n has no tree children in either shape, so its death
            // never strands a subtree's ack path.
            let victim = n as usize - 1;
            let mut net = Loopback::new(cfg, n, seed).with_loss(loss);

            net.send_message(Bytes::from(vec![1u8; msg_len]));
            net.run();
            net.kill_receiver(victim);
            net.send_message(Bytes::from(vec![2u8; msg_len]));
            net.run();
            net.rejoin_receiver(victim);
            net.run(); // completes the JOIN -> WELCOME -> SYNC handshake
            net.send_message(Bytes::from(vec![3u8; msg_len]));
            net.run();

            prop_assert_eq!(&net.sent, &vec![0u64, 1, 2]);
            // Somebody evicted the crashed receiver: the sender's failure
            // detector / straggler eviction, or (tree) its parent node.
            let evictions = net.sender_stats().evictions
                + (0..n as usize)
                    .map(|i| net.receiver_stats(i).evictions)
                    .sum::<u64>();
            prop_assert!(evictions >= 1, "nobody evicted the crashed receiver");
            // A lost SYNC re-runs admission, so joins can exceed one.
            prop_assert!(net.sender_stats().joins >= 1, "rejoin never admitted");
            for i in 0..n as usize {
                let ids: Vec<u64> = net
                    .deliveries
                    .iter()
                    .filter(|(r, _, _)| *r == i)
                    .map(|&(_, id, _)| id)
                    .collect();
                let expect: Vec<u64> =
                    if i == victim { vec![0, 2] } else { vec![0, 1, 2] };
                prop_assert_eq!(
                    ids,
                    expect,
                    "receiver {} ledger (kind {:?} n {} loss {} len {} seed {})",
                    i, kind, n, loss, msg_len, seed
                );
            }
        }
    }
}

mod overload_invariants {
    use proptest::prelude::*;
    use rmcast::overload::MAX_LOAD_LEVEL;
    use rmcast::{AimdWindow, DupNakFilter, LoadScaler, TokenBucket};
    use rmwire::{Duration, Time};
    use std::collections::HashSet;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The AIMD cap never leaves `[floor, ceiling]` under arbitrary
        /// interleavings of congestion and progress; congestion never grows
        /// it, progress never shrinks it, growth is at most one packet per
        /// acked packet, and the returned `changed` flag is truthful.
        #[test]
        fn aimd_cap_always_bracketed(
            floor in 1usize..64,
            spread_init in 0usize..64,
            spread_ceil in 0usize..64,
            ops in proptest::collection::vec((any::<bool>(), 0usize..512), 0..256),
        ) {
            let initial = floor + spread_init;
            let ceiling = initial + spread_ceil;
            let mut w = AimdWindow::new(initial, floor, ceiling);
            for (congest, acked) in ops {
                let before = w.cap();
                let changed = if congest {
                    w.on_congestion()
                } else {
                    w.on_progress(acked)
                };
                prop_assert!(
                    (floor..=ceiling).contains(&w.cap()),
                    "cap {} left [{floor}, {ceiling}]", w.cap()
                );
                if congest {
                    prop_assert!(w.cap() <= before, "congestion grew the cap");
                    prop_assert!(
                        w.cap() >= before / 2,
                        "decrease steeper than multiplicative halving"
                    );
                } else {
                    prop_assert!(w.cap() >= before, "progress shrank the cap");
                    prop_assert!(
                        w.cap() - before <= acked,
                        "additive increase outpaced acked packets"
                    );
                }
                prop_assert_eq!(changed, w.cap() != before);
            }
        }

        /// Recovering from the floor to any target cap costs at least one
        /// full window of acknowledged packets per step: additive increase
        /// is genuinely gradual, never a jump.
        #[test]
        fn aimd_recovery_is_gradual(
            floor in 1usize..32,
            spread in 1usize..64,
            acked in 1usize..10_000,
        ) {
            let ceiling = floor + spread;
            let mut w = AimdWindow::new(floor, floor, ceiling);
            w.on_progress(acked);
            // Growing from `floor` to `cap` consumes at least
            // floor + (floor+1) + ... + (cap-1) credits.
            let mut cost = 0usize;
            for step in floor..w.cap() {
                cost += step;
            }
            prop_assert!(cost <= acked, "cap {} reached too cheaply", w.cap());
        }

        /// Over any span the bucket never grants more than its burst plus
        /// the refill the elapsed time paid for: a feedback storm costs
        /// bounded processing regardless of its arrival pattern.
        #[test]
        fn token_bucket_grants_at_most_burst_plus_rate(
            rate in 1u64..100_000,
            burst in 0u32..256,
            deltas in proptest::collection::vec(0u64..10_000_000u64, 1..128),
        ) {
            let mut b = TokenBucket::new(rate, burst);
            let mut now = Time::ZERO;
            let mut granted: u128 = 0;
            for d in deltas {
                now += Duration::from_nanos(d);
                while b.take(now) {
                    granted += 1;
                }
            }
            let budget =
                burst as u128 + (now.as_nanos() as u128 * rate as u128) / 1_000_000_000 + 1;
            prop_assert!(granted <= budget, "granted {granted} > budget {budget}");
        }

        /// A NAK for a never-before-seen `(transfer, seq)` is never
        /// collapsed: the filter sheds only genuine duplicates.
        #[test]
        fn dup_nak_filter_never_collapses_fresh_naks(
            window_ms in 1u64..50,
            naks in proptest::collection::vec((0u64..4, 0u64..32, 0u64..100), 1..200),
        ) {
            let mut f = DupNakFilter::new(Duration::from_millis(window_ms));
            let mut seen = HashSet::new();
            let mut now = Time::ZERO;
            for (transfer, seq, advance_us) in naks {
                now += Duration::from_micros(advance_us);
                let dup = f.is_dup(transfer, seq, now);
                if seen.insert((transfer, seq)) {
                    prop_assert!(!dup, "fresh NAK ({transfer}, {seq}) collapsed");
                }
                if !dup {
                    // A passed NAK re-asked at the same instant is a dup.
                    prop_assert!(f.is_dup(transfer, seq, now));
                }
            }
        }

        /// The load level stays in `[1, MAX_LOAD_LEVEL]` and the scaled
        /// suppression interval is exactly the base times the level, for
        /// any feedback arrival pattern.
        #[test]
        fn load_scaler_level_is_clamped(
            threshold in 1u32..64,
            events in proptest::collection::vec(0u64..30_000u64, 0..300),
            base_us in 1u64..10_000,
        ) {
            let mut s = LoadScaler::new(threshold);
            let mut now = Time::ZERO;
            for advance_us in events {
                now += Duration::from_micros(advance_us);
                s.note(now);
                let level = s.level(now);
                prop_assert!((1..=MAX_LOAD_LEVEL).contains(&level));
                let base = Duration::from_micros(base_us);
                prop_assert_eq!(
                    s.scale(base, now).as_nanos(),
                    base.as_nanos() * level as u64
                );
            }
        }
    }
}

mod tree_invariants {
    use proptest::prelude::*;
    use rmcast::tree::TreeTopology;
    use rmcast::TreeShape;
    use rmwire::{GroupSpec, Rank};

    proptest! {
        /// Every receiver appears in exactly one subtree; parent/child
        /// links agree; depth is bounded by the configured height.
        #[test]
        fn flat_tree_structure(n in 1u16..64, h in 1usize..64) {
            let h = h.min(n as usize);
            let g = GroupSpec::new(n);
            let t = TreeTopology::new(g, TreeShape::Flat { height: h });

            // Roots' subtrees partition the group.
            let covered: usize = t.roots().iter().map(|&r| t.subtree_size(r)).sum();
            prop_assert_eq!(covered, n as usize);
            prop_assert_eq!(t.roots().len(), (n as usize).div_ceil(h));
            prop_assert!(t.max_depth() <= h);

            for r in g.receivers() {
                let links = t.links(r);
                // Parent lists r among its children, and vice versa.
                if let Some(p) = links.parent {
                    prop_assert!(t.links(p).children.contains(&r));
                } else {
                    prop_assert!(t.roots().contains(&r));
                }
                for &c in &links.children {
                    prop_assert_eq!(t.links(c).parent, Some(r));
                }
                // Flat chains: at most one child.
                prop_assert!(links.children.len() <= 1);
            }
        }

        /// Binary tree: heap-shaped, single root, every node linked
        /// consistently.
        #[test]
        fn binary_tree_structure(n in 1u16..64) {
            let g = GroupSpec::new(n);
            let t = TreeTopology::new(g, TreeShape::Binary);
            prop_assert_eq!(t.roots(), &[Rank(1)]);
            prop_assert_eq!(t.subtree_size(Rank(1)), n as usize);
            for r in g.receivers() {
                let links = t.links(r);
                if r.0 >= 2 {
                    prop_assert_eq!(links.parent, Some(Rank(r.0 / 2)));
                }
                prop_assert!(links.children.len() <= 2);
                for &c in &links.children {
                    prop_assert!(c.0 == r.0 * 2 || c.0 == r.0 * 2 + 1);
                }
            }
            // Depth is logarithmic.
            let depth = t.max_depth();
            prop_assert!(1usize << (depth - 1) <= n as usize);
        }
    }
}

mod fec_coding {
    use super::*;
    use rmcast::fec::{greedy_blocks, xor_chunks};
    use std::collections::BTreeMap;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The greedy batcher never codes two packets lost by the same
        /// receiver into one block (that receiver could decode neither),
        /// covers every pending sequence exactly once, and emits only
        /// canonical in-span bitmaps.
        #[test]
        fn greedy_blocks_keep_loss_sets_disjoint(
            pending in proptest::collection::vec((0u32..200, 1u64..(1 << 8)), 0..40)
                .prop_map(|v| v.into_iter().collect::<BTreeMap<u32, u64>>()),
            max_coded in 1usize..=64,
        ) {
            let blocks = greedy_blocks(&pending, max_coded);
            let mut covered: BTreeMap<u32, u32> = BTreeMap::new();
            for &(base, bitmap) in &blocks {
                prop_assert!(bitmap & 1 == 1, "bitmap must be canonical (bit 0 set)");
                let seqs: Vec<u32> = (0..64u32)
                    .filter(|i| bitmap & (1u64 << i) != 0)
                    .map(|i| base + i)
                    .collect();
                prop_assert!(seqs.len() <= max_coded, "block exceeds max_coded");
                // Loss sets pairwise disjoint: the union never overlaps the
                // next member's losers.
                let mut union = 0u64;
                for &s in &seqs {
                    let losers = pending[&s];
                    prop_assert_eq!(
                        losers & union, 0,
                        "sequence {} shares a loser with an earlier block member", s
                    );
                    union |= losers;
                    *covered.entry(s).or_insert(0) += 1;
                }
            }
            // Exactly-once cover of the pending set.
            prop_assert_eq!(covered.len(), pending.len());
            prop_assert!(covered.values().all(|&c| c == 1));
            prop_assert!(covered.keys().all(|s| pending.contains_key(s)));
        }

        /// XOR decode is bit-exact: for any message, packet size and coded
        /// set, the block XORed with all-but-one chunk reproduces the
        /// missing chunk byte-for-byte (zero-padded to the block length).
        #[test]
        fn xor_decode_is_bit_exact(
            msg in proptest::collection::vec(any::<u8>(), 0..5000),
            packet_size in 1usize..700,
            picks in proptest::collection::vec(0u32..64, 1..16)
                .prop_map(|v| v.into_iter().collect::<std::collections::BTreeSet<u32>>()),
            miss_pick in 0usize..16,
        ) {
            let seqs: Vec<u32> = picks.into_iter().collect();
            let missing = seqs[miss_pick % seqs.len()];
            let block = xor_chunks(&msg, packet_size, seqs.iter().copied());
            // Receiver side: XOR the block with every *held* chunk.
            let mut acc = block.clone();
            for &s in seqs.iter().filter(|&&s| s != missing) {
                let start = (s as usize).saturating_mul(packet_size);
                let chunk = if start < msg.len() {
                    &msg[start..(start + packet_size).min(msg.len())]
                } else {
                    &[][..]
                };
                for (a, b) in acc.iter_mut().zip(chunk) {
                    *a ^= b;
                }
            }
            // The decoded prefix is exactly the missing chunk...
            let start = (missing as usize).saturating_mul(packet_size);
            let want = if start < msg.len() {
                &msg[start..(start + packet_size).min(msg.len())]
            } else {
                &[][..]
            };
            prop_assert_eq!(&acc[..want.len()], want, "decoded bytes differ");
            // ...and everything past it is the XOR's zero padding.
            prop_assert!(acc[want.len()..].iter().all(|&b| b == 0));
        }
    }
}
