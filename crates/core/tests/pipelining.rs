//! Handshake pipelining: the next message's allocation round trip runs
//! concurrently with the current data transfer.

use bytes::Bytes;
use rmcast::loopback::Loopback;
use rmcast::packet::Packet;
use rmcast::{Endpoint, GroupSpec, ProtocolConfig, ProtocolKind, Sender, Time};

fn payload(len: usize, tag: u8) -> Bytes {
    Bytes::from((0..len).map(|i| (i as u8) ^ tag).collect::<Vec<u8>>())
}

fn cfg(pipeline: bool) -> ProtocolConfig {
    let mut c = ProtocolConfig::new(ProtocolKind::nak_polling(8), 1_000, 10);
    c.pipeline_handshake = pipeline;
    c
}

#[test]
fn pipelined_sender_interleaves_alloc_with_data() {
    // With pipelining, the transmit stream contains the NEXT message's
    // alloc packet (transfer 2) before the CURRENT data transfer
    // (transfer 1) has finished.
    let mut s = Sender::new(cfg(true), GroupSpec::new(1));
    s.send_message(Time::ZERO, payload(5_000, 1));
    s.send_message(Time::ZERO, payload(5_000, 2));

    // Complete the first alloc (transfer 0).
    let mut seen_transfers = Vec::new();
    let mut drain = |s: &mut Sender| {
        while let Some(t) = s.poll_transmit() {
            seen_transfers.push(Packet::parse(&t.payload).unwrap().header().transfer);
        }
    };
    drain(&mut s);
    s.handle_datagram(
        Time::ZERO,
        &rmcast::packet::encode_ack(rmwire::Rank(1), 0, rmwire::SeqNo(1)),
    );
    drain(&mut s);

    assert!(
        seen_transfers.contains(&1),
        "data of message 0 flowing: {seen_transfers:?}"
    );
    assert!(
        seen_transfers.contains(&2),
        "alloc of message 1 must be pipelined alongside: {seen_transfers:?}"
    );
}

#[test]
fn unpipelined_sender_strictly_serializes() {
    let mut s = Sender::new(cfg(false), GroupSpec::new(1));
    s.send_message(Time::ZERO, payload(5_000, 1));
    s.send_message(Time::ZERO, payload(5_000, 2));
    let mut seen = Vec::new();
    s.handle_datagram(
        Time::ZERO,
        &rmcast::packet::encode_ack(rmwire::Rank(1), 0, rmwire::SeqNo(1)),
    );
    while let Some(t) = s.poll_transmit() {
        seen.push(Packet::parse(&t.payload).unwrap().header().transfer);
    }
    assert!(
        !seen.contains(&2),
        "without pipelining message 1's alloc must wait: {seen:?}"
    );
}

#[test]
fn pipelining_preserves_order_and_content() {
    for loss in [0.0, 0.15] {
        let mut net = Loopback::new(cfg(true), 4, 77);
        if loss > 0.0 {
            net = net.with_loss(loss);
        }
        let msgs: Vec<Bytes> = (0..6).map(|i| payload(4_000 + i * 333, i as u8)).collect();
        for m in &msgs {
            net.send_message(m.clone());
        }
        net.run();
        assert_eq!(net.sent, vec![0, 1, 2, 3, 4, 5], "loss={loss}");
        for r in 0..4usize {
            let got: Vec<_> = net.deliveries.iter().filter(|(i, _, _)| *i == r).collect();
            assert_eq!(got.len(), 6, "loss={loss} receiver {r}");
            for (i, (_, id, d)) in got.iter().enumerate() {
                assert_eq!(*id as usize, i, "in-order delivery");
                assert_eq!(d, &msgs[i], "content intact");
            }
        }
    }
}

#[test]
fn pipelining_saves_a_round_trip_per_message() {
    // The loopback clock does not advance on clean runs (timing studies
    // live in simrun), so assert the protocol invariant here: pipelining
    // changes *when* packets flow, not how many.
    let run = |pipeline: bool| {
        let mut net = Loopback::new(cfg(pipeline), 2, 3);
        for i in 0..4 {
            net.send_message(payload(3_000, i));
        }
        net.run();
        (
            net.sender_stats().data_sent,
            net.sender_stats().retx_sent,
            net.deliveries.len(),
        )
    };
    let a = run(false);
    let b = run(true);
    assert_eq!(a, b, "pipelining changes timing, not traffic");
}

#[test]
fn pipelined_sender_is_idle_after_everything() {
    let mut net = Loopback::new(cfg(true), 3, 5);
    for i in 0..3 {
        net.send_message(payload(2_000, i));
    }
    net.run();
    assert_eq!(net.deliveries.len(), 9);
}
