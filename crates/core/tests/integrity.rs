//! Payload-integrity end-to-end: with `ProtocolConfig::integrity` every
//! packet carries a CRC-32C trailer, and corrupted bytes reaching the
//! decode path (the loopback's byzantine corruption fault, unlike loss
//! which models FCS drops) are detected, counted and dropped — delivery
//! stays exactly-once and bit-intact for every protocol family.

use bytes::Bytes;
use rmcast::loopback::Loopback;
use rmcast::packet;
use rmcast::{ProtocolConfig, ProtocolKind};
use rmwire::{PacketFlags, Rank, SeqNo};

fn payload(len: usize, tag: u8) -> Bytes {
    Bytes::from(
        (0..len)
            .map(|i| (i as u8).wrapping_mul(37).wrapping_add(tag))
            .collect::<Vec<u8>>(),
    )
}

fn families(n: u16) -> Vec<ProtocolKind> {
    vec![
        ProtocolKind::Ack,
        ProtocolKind::nak_polling(4),
        ProtocolKind::Ring,
        ProtocolKind::flat_tree((n as usize).div_ceil(2)),
    ]
}

fn integrity_cfg(kind: ProtocolKind, n: u16) -> ProtocolConfig {
    let mut cfg = ProtocolConfig::new(kind, 700, 6);
    if matches!(kind, ProtocolKind::Ring) {
        cfg.window = n as usize + 2;
    }
    cfg.integrity = true;
    cfg
}

#[test]
fn all_families_bit_intact_under_corruption() {
    let n = 4u16;
    for kind in families(n) {
        let cfg = integrity_cfg(kind, n);
        let mut net = Loopback::new(cfg, n, 0xC0FFEE)
            .with_loss(0.05)
            .with_corrupt(0.10);
        let msg = payload(20_000, 7);
        net.send_message(msg.clone());
        let out = net.run();
        assert_eq!(out.len(), n as usize, "{kind:?}: wrong delivery count");
        for d in &out {
            assert_eq!(d, &msg, "{kind:?}: delivered bytes not bit-intact");
        }
        // The corruption fault fired on a 20 kB message split into ~30
        // packets with p=0.10 per copy: the integrity check must have
        // caught flips somewhere in the group. (Flips hitting the header
        // can surface as malformed instead — count both.)
        let caught: u64 = (0..n as usize)
            .map(|i| {
                let s = net.receiver_stats(i);
                s.integrity_fail + s.malformed_rx
            })
            .sum::<u64>()
            + net.sender_stats().integrity_fail
            + net.sender_stats().malformed_rx;
        assert!(caught > 0, "{kind:?}: no corrupted packet was ever caught");
    }
}

#[test]
fn unsealed_packets_rejected_under_integrity() {
    // An attacker replaying legacy (unsealed) encodings into an
    // integrity-enforcing group gets counted and dropped.
    let cfg = integrity_cfg(ProtocolKind::Ack, 2);
    let mut net = Loopback::new(cfg, 2, 42);
    let forged = packet::encode_data(Rank(0), 0, SeqNo(0), PacketFlags::LAST, b"evil");
    net.inject(Some(0), &forged);
    assert_eq!(net.receiver_stats(0).integrity_fail, 1);
    assert_eq!(net.receiver_stats(0).decode_errors, 1);
    // A forged unsealed ACK at the sender likewise.
    let ack = packet::encode_ack(Rank(1), 0, SeqNo(5));
    net.inject(None, &ack);
    assert_eq!(net.sender_stats().integrity_fail, 1);
    // The group still works afterwards.
    let msg = payload(3_000, 1);
    net.send_message(msg.clone());
    let out = net.run();
    assert_eq!(out.len(), 2);
    assert!(out.iter().all(|d| d == &msg));
}

#[test]
fn garbage_counted_as_malformed() {
    // Without integrity enforcement, structural garbage lands in
    // malformed_rx (the strict-decode audits).
    let cfg = ProtocolConfig::new(ProtocolKind::Ack, 700, 6);
    let mut net = Loopback::new(cfg, 1, 7);
    net.inject(Some(0), &[0x0bu8; 40]); // bad packet type, no CKSUM bit
    net.inject(Some(0), &[1u8, 2, 3]); // runt
    let mut trailing = packet::encode_join(Rank(1), 0).to_vec();
    trailing.push(0xee); // trailing garbage
    net.inject(Some(0), &trailing);
    assert_eq!(net.receiver_stats(0).malformed_rx, 3);
    assert_eq!(net.receiver_stats(0).decode_errors, 3);
    assert_eq!(net.receiver_stats(0).integrity_fail, 0);

    // With enforcement, garbage that happens to carry the CKSUM bit is an
    // integrity failure (its trailer cannot match); a runt stays malformed.
    let cfg = integrity_cfg(ProtocolKind::Ack, 1);
    let mut net = Loopback::new(cfg, 1, 7);
    net.inject(Some(0), &[0xffu8; 40]); // flag byte carries CKSUM
    net.inject(Some(0), &[1u8, 2, 3]);
    assert_eq!(net.receiver_stats(0).integrity_fail, 1);
    assert_eq!(net.receiver_stats(0).malformed_rx, 1);
    assert_eq!(net.receiver_stats(0).decode_errors, 2);
}

#[test]
fn hostile_alloc_claims_are_capped() {
    use rmwire::AllocBody;
    // A forged ALLOC claiming a multi-exabyte message must never size a
    // buffer: the claim is counted as malformed and the announced data
    // transfer stays unsized (so its data is discarded, not allocated).
    let cfg = ProtocolConfig::new(ProtocolKind::Ack, 700, 6);
    let mut net = Loopback::new(cfg, 1, 3);
    let evil = packet::encode_alloc(
        Rank(0),
        2,
        PacketFlags::EMPTY,
        AllocBody {
            msg_len: u64::MAX,
            data_transfer: 3,
            packet_size: 700,
        },
    );
    net.inject(Some(0), &evil);
    assert_eq!(net.receiver_stats(0).malformed_rx, 1);

    // A modest msg_len hiding an absurd packet count (tiny packet_size)
    // is equally rejected — it would inflate the receive bitmap instead.
    let sly = packet::encode_alloc(
        Rank(0),
        4,
        PacketFlags::EMPTY,
        AllocBody {
            msg_len: 1 << 27,
            data_transfer: 5,
            packet_size: 1,
        },
    );
    net.inject(Some(0), &sly);
    assert_eq!(net.receiver_stats(0).malformed_rx, 2);

    // Data for the poisoned transfers cannot be sized: discarded without
    // ever allocating (buffer gauge stays at zero).
    for transfer in [3u32, 5] {
        let chunk = packet::encode_data(Rank(0), transfer, SeqNo(0), PacketFlags::EMPTY, b"x");
        net.inject(Some(0), &chunk);
    }
    assert_eq!(net.receiver_stats(0).peak_buffer_bytes, 0);
}

#[test]
fn membership_with_integrity_survives_corruption() {
    use rmcast::MembershipConfig;
    let mut cfg = integrity_cfg(ProtocolKind::Ack, 3);
    cfg.membership = MembershipConfig::enabled();
    let mut net = Loopback::new(cfg, 3, 99).with_corrupt(0.05);
    for round in 0u8..3 {
        let msg = payload(5_000, round);
        net.send_message(msg.clone());
        let out = net.run();
        assert_eq!(out.len(), 3, "round {round}");
        assert!(out.iter().all(|d| d == &msg), "round {round}: bytes differ");
    }
}
