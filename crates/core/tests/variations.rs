//! The protocol variations the paper discusses beyond its main
//! implementation: unicast retransmission, rate-based flow control, and
//! receiver-driven retransmission timers.

use bytes::Bytes;
use rmcast::loopback::Loopback;
use rmcast::{Duration, ProtocolConfig, ProtocolKind};

fn payload(len: usize) -> Bytes {
    Bytes::from((0..len).map(|i| (i % 255) as u8).collect::<Vec<u8>>())
}

#[test]
fn unicast_retx_still_reliable_under_loss() {
    let mut cfg = ProtocolConfig::new(ProtocolKind::Ack, 500, 8);
    cfg.unicast_retx_on_nak = true;
    let msg = payload(20_000);
    let mut net = Loopback::new(cfg, 4, 31).with_loss(0.15);
    net.send_message(msg.clone());
    let out = net.run();
    assert_eq!(out.len(), 4);
    assert!(out.iter().all(|d| d == &msg));
    assert!(net.sender_stats().retx_sent > 0);
}

#[test]
fn unicast_retx_setting_changes_nothing_on_clean_runs() {
    let run = |unicast| {
        let mut cfg = ProtocolConfig::new(ProtocolKind::Ack, 500, 4);
        cfg.unicast_retx_on_nak = unicast;
        let mut net = Loopback::new(cfg, 4, 5);
        net.send_message(payload(5_000));
        net.run();
        (net.sender_stats().data_sent, net.sender_stats().retx_sent)
    };
    assert_eq!(run(false), run(true), "no NAKs, no difference");
}

#[test]
fn rate_pacing_slows_the_sender_in_virtual_time() {
    let run = |rate| {
        let mut cfg = ProtocolConfig::new(ProtocolKind::nak_polling(8), 1_000, 10);
        cfg.rate_limit_bytes_per_sec = rate;
        let mut net = Loopback::new(cfg, 2, 9);
        net.send_message(payload(100_000));
        let out = net.run();
        assert_eq!(out.len(), 2);
        net.now()
    };
    let unpaced = run(None);
    // 1 MB/s pacing for a 100 kB message: at least ~0.1 s of virtual time.
    let paced = run(Some(1_000_000));
    assert!(
        paced.as_nanos() >= 90_000_000,
        "pacing must stretch the transfer: {paced}"
    );
    assert!(paced > unpaced);
}

#[test]
fn rate_pacing_remains_reliable_under_loss() {
    let mut cfg = ProtocolConfig::new(ProtocolKind::Ack, 1_000, 8);
    cfg.rate_limit_bytes_per_sec = Some(10_000_000);
    let msg = payload(30_000);
    let mut net = Loopback::new(cfg, 3, 77).with_loss(0.1);
    net.send_message(msg.clone());
    let out = net.run();
    assert_eq!(out.len(), 3);
    assert!(out.iter().all(|d| d == &msg));
}

#[test]
fn receiver_nak_timer_recovers_lost_last_packet_fast() {
    // With the NAK-polling protocol, a lost LAST packet is normally
    // recovered only by the sender's RTO. A receiver-driven timer NAKs
    // earlier. We verify the mechanism fires by checking receivers send
    // NAKs under loss even when no later packet reveals the gap.
    let mut cfg = ProtocolConfig::new(ProtocolKind::nak_polling(4), 2_000, 8);
    cfg.receiver_nak_timer = Some(Duration::from_millis(10));
    let msg = payload(16_000);
    let mut net = Loopback::new(cfg, 3, 1234).with_loss(0.25);
    net.send_message(msg.clone());
    let out = net.run();
    assert_eq!(out.len(), 3);
    assert!(out.iter().all(|d| d == &msg));
    let receiver_naks: u64 = (0..3).map(|i| net.receiver_stats(i).naks_sent).sum();
    assert!(receiver_naks > 0, "stall timer should produce NAKs");
}

#[test]
fn receiver_nak_timer_is_silent_on_clean_runs() {
    let mut cfg = ProtocolConfig::new(ProtocolKind::nak_polling(4), 2_000, 8);
    cfg.receiver_nak_timer = Some(Duration::from_millis(10));
    let mut net = Loopback::new(cfg, 3, 2);
    net.send_message(payload(16_000));
    net.run();
    for i in 0..3 {
        assert_eq!(
            net.receiver_stats(i).naks_sent,
            0,
            "no stall, no receiver-driven NAKs"
        );
    }
}

#[test]
#[should_panic(expected = "rate limit must be positive")]
fn zero_rate_rejected() {
    let mut cfg = ProtocolConfig::new(ProtocolKind::Ack, 500, 4);
    cfg.rate_limit_bytes_per_sec = Some(0);
    cfg.validate(2);
}

#[test]
#[should_panic(expected = "receiver NAK timer")]
fn stall_timer_shorter_than_suppression_rejected() {
    let mut cfg = ProtocolConfig::new(ProtocolKind::Ack, 500, 4);
    cfg.receiver_nak_timer = Some(Duration::from_nanos(1));
    cfg.validate(2);
}

#[test]
fn variations_compose() {
    // All three at once, under loss, still reliable.
    let mut cfg = ProtocolConfig::new(ProtocolKind::nak_polling(6), 1_000, 12);
    cfg.unicast_retx_on_nak = true;
    cfg.rate_limit_bytes_per_sec = Some(20_000_000);
    cfg.receiver_nak_timer = Some(Duration::from_millis(15));
    let msg = payload(40_000);
    let mut net = Loopback::new(cfg, 4, 55).with_loss(0.12);
    net.send_message(msg.clone());
    let out = net.run();
    assert_eq!(out.len(), 4);
    assert!(out.iter().all(|d| d == &msg));
}
