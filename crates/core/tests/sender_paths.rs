//! Focused sender-side paths: pacing deadlines, selective-repeat
//! retransmission, destination selection, and timer interactions.

use bytes::Bytes;
use rmcast::packet::{self, Packet};
use rmcast::{
    Dest, Endpoint, GroupSpec, ProtocolConfig, ProtocolKind, Sender, SeqNo, Time, WindowDiscipline,
};
use rmwire::{PacketFlags, Rank};

fn no_handshake(kind: ProtocolKind) -> ProtocolConfig {
    let mut c = ProtocolConfig::new(kind, 100, 4);
    c.handshake = false;
    c
}

fn drain(s: &mut Sender) -> Vec<rmcast::Transmit> {
    std::iter::from_fn(|| s.poll_transmit()).collect()
}

fn ack(s: &mut Sender, now: Time, rank: u16, transfer: u32, ne: u32) {
    s.handle_datagram(now, &packet::encode_ack(Rank(rank), transfer, SeqNo(ne)));
}

#[test]
fn pacing_gates_fresh_packets_and_sets_timer() {
    let mut c = no_handshake(ProtocolKind::nak_polling(4));
    c.window = 10;
    // 100-byte packets at 100 kB/s: one packet per millisecond.
    c.rate_limit_bytes_per_sec = Some(100_000);
    let mut s = Sender::new(c, GroupSpec::new(1));
    s.send_message(Time::ZERO, Bytes::from(vec![1u8; 1_000]));
    assert_eq!(drain(&mut s).len(), 1, "pacer admits one packet at t=0");
    let deadline = s.poll_timeout().expect("pacing deadline armed");
    assert_eq!(deadline.as_nanos(), 1_000_000, "next packet at +1 ms");
    // Firing the timer releases exactly the next packet.
    s.handle_timeout(deadline);
    assert_eq!(drain(&mut s).len(), 1);
    // And the gate moved again.
    assert_eq!(s.poll_timeout().unwrap().as_nanos(), 2_000_000);
}

#[test]
fn pacing_does_not_interfere_once_window_is_full() {
    let mut c = no_handshake(ProtocolKind::Ack);
    c.window = 2;
    c.rate_limit_bytes_per_sec = Some(100_000_000); // 1 us per 100-byte packet
    let mut s = Sender::new(c, GroupSpec::new(1));
    s.send_message(Time::ZERO, Bytes::from(vec![1u8; 1_000]));
    // Even a fast pacer admits only one packet at t=0.
    assert_eq!(drain(&mut s).len(), 1);
    let gate = s.poll_timeout().unwrap();
    assert_eq!(gate.as_nanos(), 1_000, "pacing wake-up at +1 us");
    s.handle_timeout(gate);
    assert_eq!(drain(&mut s).len(), 1, "second packet fills the window");
    // Window is now the limiter: the armed timer is the retransmission
    // deadline, not a pacing wake-up.
    let t = s.poll_timeout().unwrap();
    assert_eq!(t, Time::ZERO + c.rto);
}

#[test]
fn sr_nak_retransmits_exactly_one_packet() {
    let mut c = no_handshake(ProtocolKind::Ack);
    c.discipline = WindowDiscipline::SelectiveRepeat;
    c.window = 4;
    let mut s = Sender::new(c, GroupSpec::new(1));
    s.send_message(Time::ZERO, Bytes::from(vec![1u8; 400]));
    assert_eq!(drain(&mut s).len(), 4);
    let nak = packet::encode_nak(Rank(1), 1, SeqNo(2));
    s.handle_datagram(Time::from_millis(20), &nak);
    let retx = drain(&mut s);
    assert_eq!(retx.len(), 1, "selective repeat resends only the NAKed seq");
    match Packet::parse(&retx[0].payload).unwrap() {
        Packet::Data { header, .. } => {
            assert_eq!(header.seq, SeqNo(2));
            assert!(header.flags.contains(PacketFlags::RETX));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn sr_timeout_retransmits_every_expired_packet() {
    let mut c = no_handshake(ProtocolKind::Ack);
    c.discipline = WindowDiscipline::SelectiveRepeat;
    c.window = 4;
    let mut s = Sender::new(c, GroupSpec::new(1));
    s.send_message(Time::ZERO, Bytes::from(vec![1u8; 400]));
    let _ = drain(&mut s);
    // Partial coverage: packets 0-1 acked, 2-3 outstanding.
    ack(&mut s, Time::ZERO, 1, 1, 2);
    let deadline = s.poll_timeout().unwrap();
    s.handle_timeout(deadline);
    let retx = drain(&mut s);
    let seqs: Vec<u32> = retx
        .iter()
        .map(|t| Packet::parse(&t.payload).unwrap().header().seq.0)
        .collect();
    assert_eq!(seqs, vec![2, 3], "all expired outstanding packets resent");
}

#[test]
fn unicast_retx_goes_to_the_naker_only() {
    let mut c = no_handshake(ProtocolKind::Ack);
    c.unicast_retx_on_nak = true;
    let mut s = Sender::new(c, GroupSpec::new(3));
    s.send_message(Time::ZERO, Bytes::from(vec![1u8; 200]));
    let fresh = drain(&mut s);
    assert!(fresh.iter().all(|t| t.dest == Dest::Receivers));
    let nak = packet::encode_nak(Rank(2), 1, SeqNo(0));
    s.handle_datagram(Time::from_millis(20), &nak);
    let retx = drain(&mut s);
    assert!(!retx.is_empty());
    assert!(
        retx.iter().all(|t| t.dest == Dest::Rank(Rank(2))),
        "retransmissions go to the NAKing rank"
    );
}

#[test]
fn timeout_retx_stays_multicast_even_with_unicast_option() {
    let mut c = no_handshake(ProtocolKind::Ack);
    c.unicast_retx_on_nak = true;
    let mut s = Sender::new(c, GroupSpec::new(3));
    s.send_message(Time::ZERO, Bytes::from(vec![1u8; 200]));
    let _ = drain(&mut s);
    let deadline = s.poll_timeout().unwrap();
    s.handle_timeout(deadline);
    let retx = drain(&mut s);
    assert!(!retx.is_empty());
    assert!(
        retx.iter().all(|t| t.dest == Dest::Receivers),
        "the sender cannot know who timed out; timeouts multicast"
    );
}

#[test]
fn ring_sender_ignores_acks_from_outside_and_releases_by_revolution() {
    let mut c = ProtocolConfig::new(ProtocolKind::Ring, 100, 6);
    c.handshake = false;
    let mut s = Sender::new(c, GroupSpec::new(4));
    s.send_message(Time::ZERO, Bytes::from(vec![1u8; 1_200])); // 12 packets
    assert_eq!(drain(&mut s).len(), 6);
    // Token acks 0..4 from the right receivers: prefix 5, release 1.
    for (rank, ne) in [(1u16, 1u32), (2, 2), (3, 3), (4, 4), (1, 5)] {
        ack(&mut s, Time::ZERO, rank, 1, ne);
    }
    assert_eq!(drain(&mut s).len(), 1, "released 5 - 4 = 1 packet");
    assert_eq!(s.stats().acks_received, 5);
}

#[test]
fn sender_survives_ack_flood_from_unknown_ranks() {
    let mut s = Sender::new(no_handshake(ProtocolKind::Ack), GroupSpec::new(2));
    s.send_message(Time::ZERO, Bytes::from(vec![1u8; 100]));
    let _ = drain(&mut s);
    for r in 3..100u16 {
        ack(&mut s, Time::ZERO, r, 1, 1);
    }
    assert!(
        s.poll_event().is_none(),
        "out-of-group acks must not complete"
    );
    ack(&mut s, Time::ZERO, 1, 1, 1);
    ack(&mut s, Time::ZERO, 2, 1, 1);
    assert!(s.poll_event().is_some());
}

#[test]
fn sender_idles_between_queued_messages_never() {
    // Submitting three messages yields continuous transfers with strictly
    // increasing transfer ids and no idle gaps.
    let mut s = Sender::new(no_handshake(ProtocolKind::Ack), GroupSpec::new(1));
    for i in 0..3 {
        s.send_message(Time::ZERO, Bytes::from(vec![i as u8; 100]));
    }
    let mut transfers_seen = Vec::new();
    for _ in 0..3 {
        let out = drain(&mut s);
        assert_eq!(out.len(), 1);
        let t = Packet::parse(&out[0].payload).unwrap().header().transfer;
        transfers_seen.push(t);
        ack(&mut s, Time::ZERO, 1, t, 1);
    }
    assert_eq!(transfers_seen, vec![1, 3, 5]);
    assert!(s.is_idle());
}

#[test]
fn stats_copy_accounting_excludes_retransmissions() {
    let mut c = no_handshake(ProtocolKind::Ack);
    c.window = 2;
    let mut s = Sender::new(c, GroupSpec::new(1));
    s.send_message(Time::ZERO, Bytes::from(vec![1u8; 200]));
    let _ = drain(&mut s);
    let d = s.poll_timeout().unwrap();
    s.handle_timeout(d);
    let retx = drain(&mut s);
    assert_eq!(retx.len(), 2);
    assert!(retx.iter().all(|t| t.copied == 0), "no fresh copy on retx");
    assert_eq!(s.stats().user_copy_bytes, 200, "copied once, on first send");
}
