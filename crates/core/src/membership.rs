//! Dynamic membership support: the heartbeat failure detector and the
//! adaptive round-trip-time estimator.
//!
//! The paper's protocols fix the receiver set before each message; this
//! module supplies the two pure state machines PR 2 layers on top so the
//! set can change at message boundaries:
//!
//! * [`FailureDetector`] — per-receiver liveness scoring driven by the
//!   sender's heartbeat schedule. A member that misses
//!   `suspect_misses` consecutive heartbeats is *suspected* (counted in
//!   stats, no action); at `evict_misses` it is reported for eviction.
//!   Any current-epoch traffic from the member resets its score. This
//!   replaces raw consecutive-retry counters as the eviction trigger when
//!   membership is enabled.
//! * [`RttEstimator`] — Jacobson/Karels smoothed RTT (`SRTT + 4·RTTVAR`,
//!   gains 1/8 and 1/4). The caller enforces Karn's rule by sampling only
//!   packets that were never retransmitted.
//!
//! Both are plain data: no clocks, no I/O, usable identically by the
//! simulator-driven and the real-socket backends.

use rmwire::Duration;

/// What the failure detector concluded about one member after a missed
/// heartbeat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LivenessVerdict {
    /// Still within the suspect threshold.
    Alive,
    /// Crossed `suspect_misses` (first time only; later misses inside the
    /// suspect band report `Alive` so stats count each suspicion once).
    NewlySuspected,
    /// Crossed `evict_misses`: the caller should evict the member.
    Evict,
}

/// Per-member heartbeat-miss scoring.
#[derive(Debug, Clone)]
pub struct FailureDetector {
    suspect_misses: u32,
    evict_misses: u32,
    misses: Vec<u32>,
    suspected: Vec<bool>,
}

impl FailureDetector {
    /// A detector over `n` members with the given thresholds
    /// (`1 <= suspect <= evict`, enforced by `ProtocolConfig::validate`).
    pub fn new(n: usize, suspect_misses: u32, evict_misses: u32) -> Self {
        FailureDetector {
            suspect_misses,
            evict_misses,
            misses: vec![0; n],
            suspected: vec![false; n],
        }
    }

    /// Record proof of life for member `idx` (current-epoch ACK/NAK,
    /// heartbeat reply, or join).
    pub fn note_alive(&mut self, idx: usize) {
        self.misses[idx] = 0;
        self.suspected[idx] = false;
    }

    /// Record one missed heartbeat for member `idx` and report the
    /// resulting verdict.
    pub fn record_miss(&mut self, idx: usize) -> LivenessVerdict {
        self.misses[idx] = self.misses[idx].saturating_add(1);
        if self.misses[idx] >= self.evict_misses {
            LivenessVerdict::Evict
        } else if self.misses[idx] >= self.suspect_misses && !self.suspected[idx] {
            self.suspected[idx] = true;
            LivenessVerdict::NewlySuspected
        } else {
            LivenessVerdict::Alive
        }
    }

    /// Is `idx` currently in the suspect band?
    pub fn is_suspected(&self, idx: usize) -> bool {
        self.suspected[idx]
    }

    /// Forget all state for `idx` (after eviction or readmission).
    pub fn reset(&mut self, idx: usize) {
        self.note_alive(idx);
    }
}

/// Jacobson/Karels RTT estimation, nanosecond arithmetic throughout.
#[derive(Debug, Clone, Copy, Default)]
pub struct RttEstimator {
    /// Smoothed RTT in nanoseconds; `None` until the first sample.
    srtt: Option<u64>,
    /// Mean deviation in nanoseconds.
    rttvar: u64,
}

impl RttEstimator {
    /// Fold in one round-trip sample. Callers must only pass samples from
    /// packets that were never retransmitted (Karn's rule) — a
    /// retransmitted packet's ACK is ambiguous about which transmission it
    /// answers.
    pub fn sample(&mut self, rtt: Duration) {
        let r = rtt.as_nanos();
        match self.srtt {
            None => {
                self.srtt = Some(r);
                self.rttvar = r / 2;
            }
            Some(s) => {
                let err = s.abs_diff(r);
                self.rttvar = (3 * self.rttvar + err) / 4;
                self.srtt = Some((7 * s + r) / 8);
            }
        }
    }

    /// The current estimate `SRTT + 4·RTTVAR`, or `None` before any
    /// sample.
    pub fn rto(&self) -> Option<Duration> {
        self.srtt
            .map(|s| Duration::from_nanos(s.saturating_add(4 * self.rttvar)))
    }

    /// Has at least one sample been folded in?
    pub fn has_sample(&self) -> bool {
        self.srtt.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detector_suspects_then_evicts() {
        let mut d = FailureDetector::new(2, 2, 4);
        assert_eq!(d.record_miss(0), LivenessVerdict::Alive);
        assert_eq!(d.record_miss(0), LivenessVerdict::NewlySuspected);
        assert!(d.is_suspected(0));
        // Second miss inside the suspect band is not re-reported.
        assert_eq!(d.record_miss(0), LivenessVerdict::Alive);
        assert_eq!(d.record_miss(0), LivenessVerdict::Evict);
        // The other member is untouched.
        assert!(!d.is_suspected(1));
    }

    #[test]
    fn proof_of_life_resets_score() {
        let mut d = FailureDetector::new(1, 2, 3);
        d.record_miss(0);
        d.record_miss(0);
        assert!(d.is_suspected(0));
        d.note_alive(0);
        assert!(!d.is_suspected(0));
        assert_eq!(d.record_miss(0), LivenessVerdict::Alive);
    }

    #[test]
    fn rtt_first_sample_initialises() {
        let mut e = RttEstimator::default();
        assert!(!e.has_sample());
        assert_eq!(e.rto(), None);
        e.sample(Duration::from_millis(10));
        // srtt = 10ms, rttvar = 5ms, rto = 10 + 4*5 = 30ms.
        assert_eq!(e.rto(), Some(Duration::from_millis(30)));
    }

    #[test]
    fn rtt_smooths_toward_stable_samples() {
        let mut e = RttEstimator::default();
        for _ in 0..100 {
            e.sample(Duration::from_millis(10));
        }
        // With zero variance the estimate converges to SRTT itself.
        let rto = e.rto().unwrap();
        assert!(
            rto >= Duration::from_millis(10) && rto < Duration::from_millis(12),
            "converged RTO was {rto}"
        );
    }

    #[test]
    fn rtt_spike_inflates_variance() {
        let mut e = RttEstimator::default();
        for _ in 0..50 {
            e.sample(Duration::from_millis(10));
        }
        let before = e.rto().unwrap();
        e.sample(Duration::from_millis(100));
        assert!(e.rto().unwrap() > before, "spike must raise the estimate");
    }
}
