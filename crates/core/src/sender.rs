//! The multicast sender engine.
//!
//! One [`Sender`] implements all four protocol families; they differ only
//! in which acknowledgments receivers produce (receiver side) and in the
//! release rule that converts acknowledgments into freed buffers (the
//! [`crate::coverage`] trackers). Everything else — window flow control,
//! Go-Back-N retransmission, sender-driven timers, retransmission
//! suppression, the allocation handshake — is shared, exactly as in the
//! paper's implementation (§4).

use crate::config::{ProtocolConfig, ProtocolKind, WindowDiscipline};
use crate::coverage::{PerSourceCoverage, RingTracker};
use crate::endpoint::{AppEvent, Dest, Endpoint, Transmit};
use crate::error::SessionError;
use crate::fec::{self, FecState};
use crate::membership::{FailureDetector, LivenessVerdict, RttEstimator};
use crate::overload::{AimdWindow, DupNakFilter, LoadScaler, TokenBucket};
use crate::packet::{self, Packet};
use crate::stats::Stats;
use crate::telemetry::SenderTelemetry;
use crate::tree::TreeTopology;
use crate::window::SendWindow;
use bytes::Bytes;
use rmtrace::{TraceEvent, Tracer};
use rmwire::{
    AllocBody, Duration, GroupSpec, PacketFlags, Rank, RepairBody, SeqNo, SyncBody, Time,
};
use std::collections::VecDeque;

/// Release-rule state, per transfer.
#[derive(Clone)]
enum Release {
    /// Minimum over per-source cumulative acknowledgments (ACK, NAK,
    /// tree). `src_of_rank[receiver_index]` maps an acknowledging rank to
    /// its source slot; `None` for ranks whose ACKs the sender never sees
    /// (non-root tree nodes).
    PerSource {
        cov: PerSourceCoverage,
        src_of_rank: Vec<Option<usize>>,
        /// Inverse of `src_of_rank`: the rank behind each source slot
        /// (needed to name evicted peers).
        rank_of_src: Vec<Rank>,
    },
    /// The ring rule.
    Ring(RingTracker),
}

impl Release {
    fn update(&mut self, rank: Rank, next_expected: u32) -> Option<u32> {
        match self {
            Release::PerSource {
                cov, src_of_rank, ..
            } => src_of_rank[rank.receiver_index()].map(|idx| cov.update(idx, next_expected)),
            Release::Ring(r) => Some(r.update(rank, next_expected)),
        }
    }

    /// Current releasable prefix without recording anything.
    fn released(&self) -> u32 {
        match self {
            Release::PerSource { cov, .. } => cov.released(),
            Release::Ring(r) => r.released(),
        }
    }

    /// Acknowledgment sources still part of the proof obligation.
    fn n_active(&self) -> usize {
        match self {
            Release::PerSource { cov, .. } => cov.n_active(),
            Release::Ring(r) => r.n_active(),
        }
    }

    /// The ranks currently gating the release — eviction candidates when
    /// the transfer stalls.
    fn laggard_ranks(&self) -> Vec<Rank> {
        match self {
            Release::PerSource {
                cov, rank_of_src, ..
            } => cov.laggards().into_iter().map(|i| rank_of_src[i]).collect(),
            Release::Ring(r) => r
                .laggards()
                .into_iter()
                .map(Rank::from_receiver_index)
                .collect(),
        }
    }

    /// Remove `rank` from the proof obligation (no-op for ranks that were
    /// never acknowledgment sources, e.g. non-root tree nodes).
    fn evict_rank(&mut self, rank: Rank) {
        match self {
            Release::PerSource {
                cov, src_of_rank, ..
            } => {
                if let Some(idx) = src_of_rank[rank.receiver_index()] {
                    cov.evict(idx);
                }
            }
            Release::Ring(r) => r.evict(rank.receiver_index()),
        }
    }
}

/// What the active transfer carries.
#[derive(Clone)]
enum Payload {
    Alloc(AllocBody),
    Data(Bytes),
}

/// One in-flight transfer (the allocation round trip or the data).
#[derive(Clone)]
struct Transfer {
    id: u32,
    payload: Payload,
    win: SendWindow,
    release: Release,
    /// Consecutive retransmission timeouts without window progress
    /// (liveness bound; reset whenever the window base advances).
    streak: u32,
    /// Effective RTO, grown by `LivenessConfig::rto_backoff` on each
    /// consecutive timeout and reset on progress.
    cur_rto: Duration,
    /// `true` while the window is full with payload remaining — edge
    /// detector so `WindowStall` traces once per stall, not per attempt.
    stalled: bool,
}

/// Which half of the message the active transfer is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Alloc,
    Data,
}

/// Which in-flight transfer an operation addresses: the current message's,
/// or the next message's pipelined allocation round trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Which {
    Cur,
    Staged,
}

/// Per-receiver slow-receiver quarantine state: the rank no longer gates
/// the window; it is served catch-up retransmissions from `horizon` at a
/// bounded rate until it catches up (rejoin at the message boundary) or
/// its budget runs out (liveness path).
#[derive(Clone)]
struct QuarState {
    /// The quarantined transfer.
    transfer: u32,
    /// Highest next-expected sequence the rank has acknowledged.
    horizon: u32,
    /// When the next catch-up batch may go out.
    next_catchup: Time,
    /// Catch-up rounds already spent (bounded by `quarantine_budget`).
    rounds: u32,
}

/// Packets unicast per catch-up round to one quarantined receiver.
const CATCHUP_BATCH: u32 = 4;

/// The next message, staged while the current one is still transferring
/// (handshake pipelining).
#[derive(Clone)]
struct Staged {
    msg_id: u64,
    data: Bytes,
    /// The allocation transfer; `None` once every receiver acknowledged it.
    alloc: Option<Transfer>,
}

/// The sender endpoint (rank 0) of a reliable multicast group.
///
/// Cloning forks the entire protocol state (the `rmcheck explore` model
/// checker branches worlds this way); the clone's tracer comes back
/// *detached* — see [`rmtrace::Tracer`]'s `Clone` contract.
#[derive(Clone)]
pub struct Sender {
    cfg: ProtocolConfig,
    group: GroupSpec,
    tree: Option<TreeTopology>,
    stats: Stats,
    out: VecDeque<Transmit>,
    events: VecDeque<AppEvent>,
    queue: VecDeque<(u64, Bytes)>,
    /// `(msg_id, payload, phase)` of the message being transferred.
    cur: Option<(u64, Bytes, Phase)>,
    next_msg_id: u64,
    transfer: Option<Transfer>,
    /// Next message's pipelined allocation (when `pipeline_handshake`).
    staged: Option<Staged>,
    /// Rate pacing: the instant the next fresh data packet may enter the
    /// window (rate-based flow control option).
    pace_gate: Time,
    /// Receivers evicted by the liveness bound, by receiver index. Sticky
    /// across transfers: a dead receiver never gates a later message.
    evicted: Vec<bool>,
    /// Membership epoch. `0` while membership is disabled; starts at `1`
    /// and bumps on every membership change (eviction, leave, admission)
    /// otherwise.
    epoch: u32,
    /// Heartbeat-driven failure detector (present only with membership).
    detector: Option<FailureDetector>,
    /// Next heartbeat announce / detector tick. Armed only while the
    /// sender is busy, so an idle group stays silent.
    hb_deadline: Option<Time>,
    /// Ranks awaiting admission at the next message boundary.
    pending_joins: Vec<Rank>,
    /// Tree mode, by receiver index: rejoined receivers acting as detached
    /// roots (they report straight to the sender instead of re-entering
    /// their original ack chain).
    detached: Vec<bool>,
    /// Jacobson/Karels RTT estimator, fed only when `cfg.adaptive_rto`.
    rtt: RttEstimator,
    /// AIMD window adaptation (present when `overload.aimd`).
    aimd: Option<AimdWindow>,
    /// Token-bucket pacing of ACK/NAK processing (`overload.feedback_rate`).
    feedback_bucket: Option<TokenBucket>,
    /// Duplicate-NAK collapse (`overload.nak_collapse`).
    dup_naks: Option<DupNakFilter>,
    /// Load-aware suppression scaling (`overload.load_scaling`).
    load: Option<LoadScaler>,
    /// Slow-receiver quarantine state, by receiver index.
    quar: Vec<Option<QuarState>>,
    /// Coding buffer and parity accumulator (present only for the fec
    /// family).
    fec: Option<FecState>,
    /// Edge detector for [`AppEvent::Backpressure`].
    backpressured: bool,
    /// Edge detector for the `StormSuppressed` trace event.
    storm_shedding: bool,
    /// Trace sink + flight recorder handle (inert by default).
    tracer: Tracer,
    /// Latency/occupancy distributions, always maintained.
    telem: SenderTelemetry,
    /// Timestamp of the most recent driver call, for trace emission from
    /// paths that do not carry `now` (membership admissions, data emits).
    now_cache: Time,
}

impl Sender {
    /// Build a sender for `group` with the given configuration
    /// (validated here).
    pub fn new(cfg: ProtocolConfig, group: GroupSpec) -> Self {
        cfg.validate(group.n_receivers as usize);
        let tree = match cfg.kind {
            ProtocolKind::Tree { shape } => Some(TreeTopology::new(group, shape)),
            _ => None,
        };
        let n = group.n_receivers as usize;
        let (epoch, detector) = if cfg.membership.enabled {
            let m = cfg.membership;
            (
                1,
                Some(FailureDetector::new(n, m.suspect_misses, m.evict_misses)),
            )
        } else {
            (0, None)
        };
        Sender {
            cfg,
            group,
            tree,
            stats: Stats::default(),
            out: VecDeque::new(),
            events: VecDeque::new(),
            queue: VecDeque::new(),
            cur: None,
            next_msg_id: 0,
            transfer: None,
            staged: None,
            pace_gate: Time::ZERO,
            evicted: vec![false; n],
            epoch,
            detector,
            hb_deadline: None,
            pending_joins: Vec::new(),
            detached: vec![false; n],
            rtt: RttEstimator::default(),
            aimd: cfg.overload.aimd.then(|| {
                AimdWindow::new(
                    cfg.window,
                    cfg.overload.aimd_floor,
                    cfg.overload.aimd_ceiling,
                )
            }),
            feedback_bucket: (cfg.overload.feedback_rate > 0)
                .then(|| TokenBucket::new(cfg.overload.feedback_rate, cfg.overload.feedback_burst)),
            dup_naks: cfg
                .overload
                .nak_collapse
                .then(|| DupNakFilter::new(cfg.retx_suppress)),
            load: cfg.overload.load_scaling.then(|| LoadScaler::new(32)),
            quar: vec![None; n],
            fec: matches!(cfg.kind, ProtocolKind::Fec { .. }).then(FecState::new),
            backpressured: false,
            storm_shedding: false,
            tracer: Tracer::off(Rank::SENDER.0),
            telem: SenderTelemetry::default(),
            now_cache: Time::ZERO,
        }
    }

    /// Latency/occupancy distributions maintained by this sender.
    pub fn telemetry(&self) -> &SenderTelemetry {
        &self.telem
    }

    /// The current membership epoch (`0` when membership is disabled).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The configuration this sender runs.
    pub fn config(&self) -> &ProtocolConfig {
        &self.cfg
    }

    /// Queue a message for reliable multicast; transfers run strictly in
    /// submission order. Returns the message id.
    pub fn send_message(&mut self, now: Time, data: Bytes) -> u64 {
        self.now_cache = self.now_cache.max(now);
        let id = self.next_msg_id;
        self.next_msg_id += 1;
        self.queue.push_back((id, data));
        self.start_next(now);
        self.maybe_stage_next(now);
        #[cfg(debug_assertions)]
        self.debug_audit();
        id
    }

    /// Messages accepted but not yet fully acknowledged.
    pub fn in_flight(&self) -> usize {
        self.queue.len() + usize::from(self.cur.is_some()) + usize::from(self.staged.is_some())
    }

    fn start_next(&mut self, now: Time) {
        if self.cur.is_some() || self.transfer.is_some() {
            return;
        }
        let Some((msg_id, data)) = self.queue.pop_front() else {
            return;
        };
        if self.cfg.handshake {
            let alloc = AllocBody {
                msg_len: data.len() as u64,
                data_transfer: Self::data_transfer_id(msg_id),
                packet_size: self.cfg.packet_size as u32,
            };
            self.cur = Some((msg_id, data, Phase::Alloc));
            self.begin_transfer(
                now,
                Self::alloc_transfer_id(msg_id),
                Payload::Alloc(alloc),
                1,
            );
        } else {
            let k = Self::packet_count(data.len(), self.cfg.packet_size);
            self.cur = Some((msg_id, data.clone(), Phase::Data));
            self.begin_transfer(now, Self::data_transfer_id(msg_id), Payload::Data(data), k);
        }
    }

    /// Transfer id of message `m`'s allocation round trip.
    pub fn alloc_transfer_id(msg_id: u64) -> u32 {
        (msg_id as u32) * 2
    }

    /// Transfer id of message `m`'s data.
    pub fn data_transfer_id(msg_id: u64) -> u32 {
        (msg_id as u32) * 2 + 1
    }

    /// Packets needed for a `len`-byte message at `packet_size`.
    pub fn packet_count(len: usize, packet_size: usize) -> u32 {
        (len.div_ceil(packet_size)).max(1) as u32
    }

    fn make_transfer(&self, id: u32, payload: Payload, k: u32) -> Transfer {
        let release = self.make_release(k);
        // The AIMD cap survives across transfers: congestion memory is a
        // property of the path, not of one message.
        let cap = self
            .aimd
            .as_ref()
            .map_or(self.cfg.window, AimdWindow::cap)
            .max(1) as u32;
        let win = SendWindow::new(k, cap);
        Transfer {
            id,
            payload,
            win,
            release,
            streak: 0,
            cur_rto: self.base_rto(),
            stalled: false,
        }
    }

    fn begin_transfer(&mut self, now: Time, id: u32, payload: Payload, k: u32) {
        if let Some(f) = self.fec.as_mut() {
            // Only a data transfer is codable; stale losses and parity
            // runs from the previous transfer can never flush.
            match payload {
                Payload::Data(_) => f.bind(id),
                Payload::Alloc(_) => f.unbind(),
            }
        }
        self.transfer = Some(self.make_transfer(id, payload, k));
        if self.cfg.membership.enabled && self.hb_deadline.is_none() {
            // Going busy: start the heartbeat schedule with an immediate
            // announce so receivers can prove liveness before the first
            // detector tick.
            self.announce();
            self.hb_deadline = Some(now + self.cfg.membership.heartbeat_interval);
        }
        self.pump(now);
    }

    /// The base retransmission timeout: the adaptive Jacobson/Karels
    /// estimate clamped to `[2·retx_suppress, liveness.rto_max]` once a
    /// sample exists, otherwise the configured fixed `rto`.
    fn base_rto(&self) -> Duration {
        if self.cfg.adaptive_rto {
            if let Some(est) = self.rtt.rto() {
                let floor = self.cfg.retx_suppress.saturating_mul(2);
                let ceil = self.cfg.liveness.rto_max;
                let ns = est.as_nanos().clamp(floor.as_nanos(), ceil.as_nanos());
                return Duration::from_nanos(ns);
            }
        }
        self.cfg.rto
    }

    /// Handshake pipelining: launch the next queued message's allocation
    /// round trip while the current message's data transfer runs.
    fn maybe_stage_next(&mut self, now: Time) {
        if !(self.cfg.pipeline_handshake && self.cfg.handshake) {
            return;
        }
        if self.staged.is_some() || !matches!(self.cur, Some((_, _, Phase::Data))) {
            return;
        }
        let Some((msg_id, data)) = self.queue.pop_front() else {
            return;
        };
        let alloc = AllocBody {
            msg_len: data.len() as u64,
            data_transfer: Self::data_transfer_id(msg_id),
            packet_size: self.cfg.packet_size as u32,
        };
        let t = self.make_transfer(Self::alloc_transfer_id(msg_id), Payload::Alloc(alloc), 1);
        self.staged = Some(Staged {
            msg_id,
            data,
            alloc: Some(t),
        });
        self.pump(now);
    }

    fn tref(&self, which: Which) -> Option<&Transfer> {
        match which {
            Which::Cur => self.transfer.as_ref(),
            Which::Staged => self.staged.as_ref().and_then(|s| s.alloc.as_ref()),
        }
    }

    fn tmut(&mut self, which: Which) -> Option<&mut Transfer> {
        match which {
            Which::Cur => self.transfer.as_mut(),
            Which::Staged => self.staged.as_mut().and_then(|s| s.alloc.as_mut()),
        }
    }

    /// Which in-flight transfer has this id, if any.
    fn which_by_id(&self, id: u32) -> Option<Which> {
        if self.transfer.as_ref().is_some_and(|t| t.id == id) {
            Some(Which::Cur)
        } else if self
            .staged
            .as_ref()
            .and_then(|s| s.alloc.as_ref())
            .is_some_and(|t| t.id == id)
        {
            Some(Which::Staged)
        } else {
            None
        }
    }

    fn make_release(&self, k: u32) -> Release {
        let n = self.group.n_receivers as usize;
        let mut release = match self.cfg.kind {
            ProtocolKind::Ack | ProtocolKind::NakPolling { .. } | ProtocolKind::Fec { .. } => {
                Release::PerSource {
                    cov: PerSourceCoverage::new(n),
                    src_of_rank: (0..n).map(Some).collect(),
                    rank_of_src: (0..n).map(Rank::from_receiver_index).collect(),
                }
            }
            ProtocolKind::Ring => Release::Ring(RingTracker::new(k, n as u32)),
            ProtocolKind::Tree { .. } => {
                let tree = self.tree.as_ref().expect("tree topology built in new()");
                let mut src_of_rank = vec![None; n];
                let mut rank_of_src = Vec::with_capacity(tree.roots().len());
                for &root in tree.roots() {
                    src_of_rank[root.receiver_index()] = Some(rank_of_src.len());
                    rank_of_src.push(root);
                }
                // Rejoined receivers act as detached roots: the sender
                // hears their acknowledgments directly, since their old
                // chain may have routed around them while they were gone.
                for idx in (0..n).filter(|&i| self.detached[i]) {
                    if src_of_rank[idx].is_none() {
                        src_of_rank[idx] = Some(rank_of_src.len());
                        rank_of_src.push(Rank::from_receiver_index(idx));
                    }
                }
                Release::PerSource {
                    cov: PerSourceCoverage::new(rank_of_src.len()),
                    src_of_rank,
                    rank_of_src,
                }
            }
        };
        // Previously evicted receivers stay out of the proof obligation:
        // a dead peer must not stall every subsequent message anew.
        for idx in (0..n).filter(|&i| self.evicted[i]) {
            release.evict_rank(Rank::from_receiver_index(idx));
        }
        release
    }

    /// Fill the window with fresh packets (respecting the rate pacer when
    /// rate-based flow control is enabled).
    fn pump(&mut self, now: Time) {
        let rate = self.cfg.rate_limit_bytes_per_sec;
        let mut stall = None;
        while let Some(t) = self.transfer.as_mut() {
            if !t.win.can_send() {
                // Edge-detect a flow-control stall: the window is full
                // while payload remains unsent.
                if t.win.next() < t.win.k() && !t.stalled {
                    t.stalled = true;
                    stall = Some((t.id, t.win.base()));
                }
                break;
            }
            if rate.is_some() && self.pace_gate > now {
                break;
            }
            let seq = t.win.mark_sent(now);
            if let Some(r) = rate {
                let bytes = self.cfg.packet_size as u64;
                let ns = bytes.saturating_mul(1_000_000_000) / r;
                let base = self.pace_gate.max(now);
                self.pace_gate = base + Duration::from_nanos(ns);
            }
            self.emit_data(Which::Cur, seq, false);
            self.fec_fresh(now, seq);
        }
        // The staged allocation round trip is one tiny packet: exempt from
        // pacing, never window-limited beyond its single slot.
        while let Some(t) = self.tmut(Which::Staged) {
            if !t.win.can_send() {
                break;
            }
            let seq = t.win.mark_sent(now);
            self.emit_data(Which::Staged, seq, false);
        }
        if let Some((transfer, base)) = stall {
            self.tracer
                .emit(now.as_nanos(), TraceEvent::WindowStall { transfer, base });
            // Stalling on an AIMD-shrunk window is backpressure the
            // application should hear about (edge-triggered).
            if !self.backpressured
                && self
                    .aimd
                    .as_ref()
                    .is_some_and(|a| a.cap() < self.cfg.window)
            {
                self.backpressured = true;
                self.stats.backpressure_signals += 1;
                let msg_id = self.cur.as_ref().map(|&(id, _, _)| id).unwrap_or_default();
                self.events.push_back(AppEvent::Backpressure {
                    msg_id,
                    congested: true,
                });
                self.tracer.emit(
                    now.as_nanos(),
                    TraceEvent::Backpressure {
                        transfer,
                        congested: 1,
                    },
                );
            }
        }
        if let Some(t) = &self.transfer {
            self.stats
                .sample_buffer(t.win.buffered_bytes(self.cfg.packet_size));
            self.telem.window_occupancy.record(t.win.occupancy() as u64);
        }
    }

    /// The pacing deadline, when the pacer is what is holding the window
    /// back.
    fn pace_deadline(&self) -> Option<Time> {
        self.cfg.rate_limit_bytes_per_sec?;
        let t = self.transfer.as_ref()?;
        if t.win.can_send() {
            Some(self.pace_gate)
        } else {
            None
        }
    }

    /// Encode and queue data packet `seq` of a transfer, multicast to the
    /// group.
    fn emit_data(&mut self, which: Which, seq: u32, retx: bool) {
        self.emit_data_to(which, seq, retx, Dest::Receivers);
    }

    /// Encode and queue data packet `seq` toward an explicit destination
    /// (unicast retransmission option).
    fn emit_data_to(&mut self, which: Which, seq: u32, retx: bool, dest: Dest) {
        let (tid, k, payload_src) = {
            let t = self.tref(which).expect("active transfer");
            let src = match &t.payload {
                Payload::Alloc(b) => Err(*b),
                Payload::Data(m) => Ok(m.clone()),
            };
            (t.id, t.win.k(), src)
        };
        let mut flags = PacketFlags::EMPTY;
        if seq + 1 == k {
            flags |= PacketFlags::LAST;
        }
        if retx {
            flags |= PacketFlags::RETX;
        }
        if let ProtocolKind::NakPolling { poll_interval, .. }
        | ProtocolKind::Fec { poll_interval, .. } = self.cfg.kind
        {
            let i = poll_interval as u32;
            if seq % i == i - 1 || seq + 1 == k {
                flags |= PacketFlags::POLL;
            }
        } else {
            // The other protocols acknowledge by their own rules; POLL is
            // set for uniformity on the final packet (harmless elsewhere).
            if seq + 1 == k {
                flags |= PacketFlags::POLL;
            }
        }

        let is_data = payload_src.is_ok();
        let (payload, copied) = match payload_src {
            Err(body) => (packet::encode_alloc(Rank::SENDER, tid, flags, body), 0usize),
            Ok(msg) => {
                let ps = self.cfg.packet_size;
                let start = seq as usize * ps;
                let end = (start + ps).min(msg.len());
                let chunk = if start < msg.len() {
                    &msg[start..end]
                } else {
                    &[][..]
                };
                let copied = if self.cfg.charge_copy && !retx {
                    chunk.len()
                } else {
                    0
                };
                (
                    packet::encode_data(Rank::SENDER, tid, SeqNo(seq), flags, chunk),
                    copied,
                )
            }
        };

        if retx {
            self.stats.retx_sent += 1;
            if self.tracer.active() {
                let nth = self
                    .tref(which)
                    .and_then(|t| t.win.slot(seq))
                    .map_or(0, |s| s.retx);
                self.tracer.emit(
                    self.now_cache.as_nanos(),
                    TraceEvent::Retransmit {
                        transfer: tid,
                        seq,
                        nth,
                    },
                );
            }
        } else {
            self.stats.data_sent += 1;
            if is_data {
                self.stats.payload_bytes_sent += (payload.len() - rmwire::HEADER_LEN) as u64;
                self.stats.user_copy_bytes += copied as u64;
            }
            self.tracer.emit(
                self.now_cache.as_nanos(),
                TraceEvent::DataSent { transfer: tid, seq },
            );
        }
        self.out.push_back(Transmit {
            dest,
            payload,
            copied,
        });
    }

    /// Membership gate for incoming ACK/NAK/heartbeat traffic. Returns
    /// `false` when the packet must not touch window state: it carried a
    /// stale epoch, or it came from an evicted member. Either way the
    /// member's reappearance is treated as an implicit rejoin request —
    /// the partition-heal path, where a member dropped by the failure
    /// detector never learned it was evicted and just keeps talking.
    fn accept_member_traffic(&mut self, rank: Rank, epoch: Option<u32>) -> bool {
        if !self.cfg.membership.enabled {
            return true;
        }
        let idx = rank.receiver_index();
        if let Some(e) = epoch {
            if e != self.epoch {
                self.stats.stale_epoch_discarded += 1;
                if self.evicted[idx] {
                    self.request_rejoin(rank);
                }
                return false;
            }
        }
        if self.evicted[idx] {
            // Current-epoch traffic from a non-member (it adopted the epoch
            // from a heartbeat announce): still requires readmission.
            self.request_rejoin(rank);
            return false;
        }
        if let Some(d) = self.detector.as_mut() {
            d.note_alive(idx);
        }
        true
    }

    /// Queue an evicted member for readmission; admit on the spot if the
    /// sender sits at a message boundary.
    fn request_rejoin(&mut self, rank: Rank) {
        if !self.pending_joins.contains(&rank) {
            self.pending_joins.push(rank);
        }
        self.try_admit();
    }

    fn on_ack(
        &mut self,
        now: Time,
        rank: Rank,
        transfer_id: u32,
        next_expected: u32,
        epoch: Option<u32>,
    ) {
        let _span = rmprof::span!(rmprof::Stage::SenderWindow);
        self.stats.acks_received += 1;
        if rank.is_sender() || !self.group.contains(rank) {
            return;
        }
        if !self.accept_member_traffic(rank, epoch) {
            return;
        }
        let Some(which) = self.which_by_id(transfer_id) else {
            return;
        };
        if let Some(l) = self.load.as_mut() {
            l.note(now);
        }
        // A quarantined peer's ACK only advances its catch-up horizon; it
        // is no longer part of the release obligation.
        if self.quar_note_horizon(rank, transfer_id, next_expected) {
            self.maybe_finish_quarantined(now);
            return;
        }
        // Feedback-storm pacing: shed excess control traffic before it
        // reaches window bookkeeping. Completion-critical ACKs (those
        // covering a whole transfer) are always admitted.
        let completion = self.tref(which).is_some_and(|t| next_expected >= t.win.k());
        if !completion && self.shed_feedback(now, transfer_id) {
            self.stats.acks_shed += 1;
            return;
        }
        self.tracer.emit(
            now.as_nanos(),
            TraceEvent::AckReceived {
                from: rank.0,
                transfer: transfer_id,
                next: next_expected,
            },
        );
        if next_expected > 0 {
            // Sample the round trip of the newest packet this ACK covers,
            // honouring Karn's rule: a retransmitted packet's ACK is
            // ambiguous about which transmission it answers. The sample
            // always feeds the telemetry histogram; it adjusts the RTO
            // only under `adaptive_rto`.
            if let Some(slot) = self.tref(which).and_then(|t| t.win.slot(next_expected - 1)) {
                if slot.retx == 0 {
                    let sample = now.saturating_since(slot.last_tx);
                    self.telem.ack_rtt_ns.record(sample.as_nanos());
                    if self.cfg.adaptive_rto {
                        self.rtt.sample(sample);
                    }
                }
            }
        }
        let base_rto = self.base_rto();
        let t = self.tmut(which).expect("transfer exists");
        if let Some(released) = t.release.update(rank, next_expected.min(t.win.k())) {
            let before = t.win.base();
            t.win.release(released);
            let progressed = t.win.base() > before;
            if progressed {
                // Window progress: the liveness bound starts over.
                t.streak = 0;
                t.cur_rto = base_rto;
                t.stalled = false;
            }
            let (tid, new_base, occ, done) =
                (t.id, t.win.base(), t.win.occupancy(), t.win.all_released());
            if progressed {
                self.tracer.emit(
                    now.as_nanos(),
                    TraceEvent::WindowRelease {
                        transfer: tid,
                        base: new_base,
                    },
                );
                self.telem.window_occupancy.record(occ as u64);
                if which == Which::Cur {
                    // Acknowledged progress is the AIMD growth signal.
                    self.aimd_progress(now, tid, new_base - before);
                }
            }
            if done {
                match which {
                    Which::Cur => {
                        // Completion may still be gated on a quarantined
                        // receiver's catch-up (buffers hold the payload it
                        // is still owed).
                        if !self.quarantine_blocks_completion() {
                            self.finish_transfer(now);
                        }
                    }
                    Which::Staged => {
                        // The pipelined allocation completed: the data
                        // transfer starts when the current message ends.
                        self.staged.as_mut().expect("staged exists").alloc = None;
                    }
                }
            } else {
                self.pump(now);
            }
        }
    }

    fn on_nak(
        &mut self,
        now: Time,
        rank: Rank,
        transfer_id: u32,
        expected: u32,
        epoch: Option<u32>,
    ) {
        let _span = rmprof::span!(rmprof::Stage::SenderWindow);
        self.stats.naks_received += 1;
        if rank.is_sender() || !self.group.contains(rank) {
            return;
        }
        if !self.accept_member_traffic(rank, epoch) {
            return;
        }
        let Some(which) = self.which_by_id(transfer_id) else {
            return;
        };
        if let Some(l) = self.load.as_mut() {
            l.note(now);
        }
        // A quarantined peer's NAK carries its catch-up horizon (it holds
        // everything below `expected`); the catch-up path serves it.
        if self.quar_note_horizon(rank, transfer_id, expected) {
            return;
        }
        if self.shed_feedback(now, transfer_id) {
            self.stats.naks_shed += 1;
            return;
        }
        // Aggregated-duplicate collapse: a storm of NAKs for the same
        // packet triggers one retransmission decision, not hundreds.
        if let Some(f) = self.dup_naks.as_mut() {
            if f.is_dup(transfer_id as u64, expected as u64, now) {
                self.stats.naks_collapsed += 1;
                return;
            }
        }
        self.tracer.emit(
            now.as_nanos(),
            TraceEvent::NakReceived {
                from: rank.0,
                transfer: transfer_id,
                seq: expected,
            },
        );
        if which == Which::Cur {
            // A fresh (non-duplicate) NAK is a loss signal.
            self.aimd_congestion(now, transfer_id);
        }
        // The fec family aggregates NAKs into coded repairs instead of
        // answering each one; anything the coding buffer cannot take
        // (allocation round trip, receiver index beyond the loser bitmask,
        // buffer full) falls through to a plain retransmission.
        if matches!(self.cfg.kind, ProtocolKind::Fec { .. })
            && self.fec_buffer_nak(now, rank, which, transfer_id, expected)
        {
            return;
        }
        let dest = if self.cfg.unicast_retx_on_nak {
            Dest::Rank(rank)
        } else {
            Dest::Receivers
        };
        match self.cfg.discipline {
            WindowDiscipline::GoBackN => self.retransmit_from_to(which, now, expected, dest),
            WindowDiscipline::SelectiveRepeat => self.retransmit_one_to(which, now, expected, dest),
        }
    }

    /// Go-Back-N: retransmit everything outstanding from `from`, subject
    /// to per-packet suppression (multicast).
    fn retransmit_from(&mut self, which: Which, now: Time, from: u32) {
        self.retransmit_from_to(which, now, from, Dest::Receivers);
    }

    fn retransmit_from_to(&mut self, which: Which, now: Time, from: u32, dest: Dest) {
        let suppress = self.effective_retx_suppress(now);
        let mut to_send = Vec::new();
        let mut suppressed = 0u64;
        {
            let Some(t) = self.tmut(which) else {
                return;
            };
            let lo = from.max(t.win.base());
            let hi = t.win.next();
            for seq in lo..hi {
                let slot = t.win.slot_mut(seq).expect("outstanding slot");
                if now.saturating_since(slot.last_tx).as_nanos() >= suppress.as_nanos() {
                    slot.last_tx = now;
                    slot.retx += 1;
                    to_send.push(seq);
                } else {
                    suppressed += 1;
                }
            }
        }
        self.stats.retx_suppressed += suppressed;
        for seq in to_send {
            self.emit_data_to(which, seq, true, dest);
        }
    }

    fn retransmit_one(&mut self, which: Which, now: Time, seq: u32) {
        self.retransmit_one_to(which, now, seq, Dest::Receivers);
    }

    fn retransmit_one_to(&mut self, which: Which, now: Time, seq: u32, dest: Dest) {
        let suppress = self.effective_retx_suppress(now);
        let send = {
            let Some(t) = self.tmut(which) else {
                return;
            };
            let Some(slot) = t.win.slot_mut(seq) else {
                return;
            };
            if now.saturating_since(slot.last_tx).as_nanos() >= suppress.as_nanos() {
                slot.last_tx = now;
                slot.retx += 1;
                true
            } else {
                false
            }
        };
        if send {
            self.emit_data_to(which, seq, true, dest);
        } else {
            self.stats.retx_suppressed += 1;
        }
    }

    /// Try to absorb a NAK into the fec coding buffer. Returns `true`
    /// when buffered — the flush timer will answer it (and every other
    /// loss gathered in the aggregation window) with coded repairs.
    /// Returns `false` for anything the buffer cannot take: an
    /// allocation round trip, a receiver index beyond the 64-bit loser
    /// bitmask, a sequence with no live window slot, or a full buffer —
    /// the caller then falls back to plain retransmission, which is
    /// always correct.
    fn fec_buffer_nak(
        &mut self,
        now: Time,
        rank: Rank,
        which: Which,
        transfer_id: u32,
        seq: u32,
    ) -> bool {
        if which != Which::Cur {
            return false;
        }
        let codable = self.transfer.as_ref().is_some_and(|t| {
            t.id == transfer_id
                && matches!(t.payload, Payload::Data(_))
                && t.win.slot(seq).is_some()
        });
        if !codable {
            return false;
        }
        let deadline = now + self.cfg.retx_suppress;
        let idx = rank.receiver_index();
        let buffered = self
            .fec
            .as_mut()
            .is_some_and(|f| f.buffer_nak(transfer_id, seq, idx, deadline));
        if buffered {
            self.stats.naks_coded += 1;
        }
        buffered
    }

    /// Flush the fec aggregation buffer when its deadline is due: prune
    /// losses whose window slots have since been released, partition the
    /// rest into decodable blocks ([`fec::greedy_blocks`]) and multicast
    /// one coded REPAIR per block.
    fn fec_flush(&mut self, now: Time) {
        let ProtocolKind::Fec { max_coded, .. } = self.cfg.kind else {
            return;
        };
        let due = self
            .fec
            .as_ref()
            .and_then(|f| f.deadline())
            .is_some_and(|d| d <= now);
        if !due {
            return;
        }
        let bound = match (self.fec.as_ref().and_then(|f| f.transfer()), &self.transfer) {
            (Some(fid), Some(t)) if t.id == fid => match &t.payload {
                Payload::Data(m) => Some((fid, m.clone())),
                Payload::Alloc(_) => None,
            },
            _ => None,
        };
        let Some((tid, msg)) = bound else {
            // The bound transfer ended while the timer ran; nothing owed.
            if let Some(f) = self.fec.as_mut() {
                f.unbind();
            }
            return;
        };
        // Span opens once the flush is real work (past the cheap gates),
        // so idle timer polls do not flood the fec.encode histogram.
        let _span = rmprof::span!(rmprof::Stage::FecEncode);
        if let (Some(f), Some(t)) = (self.fec.as_mut(), self.transfer.as_ref()) {
            f.prune_pending(|s| t.win.slot(s).is_some());
        }
        let blocks = match self.fec.as_mut() {
            Some(f) => f.flush(tid, max_coded),
            None => return,
        };
        for (base, bitmap, generation) in blocks {
            let body = RepairBody {
                base_seq: base,
                generation,
                bitmap,
            };
            let xor = fec::xor_chunks(&msg, self.cfg.packet_size, body.seqs());
            // Coded slots count as retransmitted: the shared suppression
            // clock keeps a straggler NAK from triggering a plain retx of
            // a packet the repair just healed.
            if let Some(t) = self.transfer.as_mut() {
                for s in body.seqs() {
                    if let Some(slot) = t.win.slot_mut(s) {
                        slot.last_tx = now;
                        slot.retx += 1;
                    }
                }
            }
            self.stats.repairs_sent += 1;
            self.tracer.emit(
                now.as_nanos(),
                TraceEvent::RepairSent {
                    transfer: tid,
                    base,
                    coded: body.coded_count(),
                    generation,
                },
            );
            self.out.push_back(Transmit {
                dest: Dest::Receivers,
                payload: packet::encode_repair(Rank::SENDER, tid, body, &xor),
                copied: 0,
            });
        }
    }

    /// Note a fresh data packet entering the wire; when it completes a
    /// run of `parity_every` consecutive sequences, multicast the
    /// proactive PARITY block over the run (heals any single loss in the
    /// run with no feedback round trip).
    fn fec_fresh(&mut self, now: Time, seq: u32) {
        let ProtocolKind::Fec { parity_every, .. } = self.cfg.kind else {
            return;
        };
        let Some((tid, msg)) = self.transfer.as_ref().and_then(|t| match &t.payload {
            Payload::Data(m) => Some((t.id, m.clone())),
            Payload::Alloc(_) => None,
        }) else {
            return;
        };
        let Some((base, generation)) = self
            .fec
            .as_mut()
            .and_then(|f| f.note_fresh(tid, seq, parity_every as u32))
        else {
            return;
        };
        // Past the gates: a parity run is complete and the XOR is owed.
        let _prof = rmprof::span!(rmprof::Stage::FecEncode);
        let span = parity_every as u32;
        let bitmap = if span >= 64 {
            u64::MAX
        } else {
            (1u64 << span) - 1
        };
        let body = RepairBody {
            base_seq: base,
            generation,
            bitmap,
        };
        let xor = fec::xor_chunks(&msg, self.cfg.packet_size, body.seqs());
        self.stats.parity_sent += 1;
        self.tracer.emit(
            now.as_nanos(),
            TraceEvent::ParitySent {
                transfer: tid,
                base,
                coded: body.coded_count(),
            },
        );
        self.out.push_back(Transmit {
            dest: Dest::Receivers,
            payload: packet::encode_parity(Rank::SENDER, tid, body, &xor),
            copied: 0,
        });
    }

    fn finish_transfer(&mut self, now: Time) {
        let t = self.transfer.take().expect("finishing without a transfer");
        let (msg_id, data, phase) = self.cur.take().expect("transfer without a message");
        match phase {
            Phase::Alloc => {
                let k = Self::packet_count(data.len(), self.cfg.packet_size);
                self.cur = Some((msg_id, data.clone(), Phase::Data));
                self.begin_transfer(now, t.id + 1, Payload::Data(data), k);
                // Data is now flowing: the next message's allocation may
                // ride alongside it.
                self.maybe_stage_next(now);
            }
            Phase::Data => {
                self.stats.messages_completed += 1;
                self.events.push_back(AppEvent::MessageSent { msg_id });
                // Message boundary: quarantined receivers (all caught up,
                // by the completion gate) rejoin the proof obligation, and
                // any backpressure edge is cleared.
                self.quarantine_boundary(now);
                self.clear_backpressure(now, msg_id);
                self.advance_after_current(now);
            }
        }
    }

    /// The current message is done (completed or abandoned): promote the
    /// pipelined next message, or start one from the queue.
    fn advance_after_current(&mut self, now: Time) {
        debug_assert!(self.cur.is_none() && self.transfer.is_none());
        // The finished (or abandoned) message's coding state is moot; the
        // next data transfer re-binds in `begin_transfer`.
        if let Some(f) = self.fec.as_mut() {
            f.unbind();
        }
        // Message boundary: admit pending joiners before the next message's
        // proof obligation is built (no-op while a staged allocation is
        // still in flight — its release was built on the old membership).
        self.try_admit();
        if let Some(st) = self.staged.take() {
            // Promote the pipelined next message.
            match st.alloc {
                None => {
                    // Its allocation already completed: straight to data.
                    let k = Self::packet_count(st.data.len(), self.cfg.packet_size);
                    self.cur = Some((st.msg_id, st.data.clone(), Phase::Data));
                    self.begin_transfer(
                        now,
                        Self::data_transfer_id(st.msg_id),
                        Payload::Data(st.data),
                        k,
                    );
                }
                Some(alloc) => {
                    // Allocation still in flight: it becomes the current
                    // transfer, window state intact.
                    self.cur = Some((st.msg_id, st.data, Phase::Alloc));
                    self.transfer = Some(alloc);
                }
            }
        } else {
            self.start_next(now);
        }
        self.maybe_stage_next(now);
    }

    /// The liveness bound tripped on a transfer: evict the stragglers
    /// gating it (when configured) or abandon the message with a typed
    /// error. Either way the sender keeps making progress.
    fn give_up(&mut self, which: Which, now: Time) {
        let liveness = self.cfg.liveness;
        let (tid, streak) = {
            let t = self.tref(which).expect("transfer exists");
            (t.id, t.streak)
        };
        if !liveness.evict_stragglers {
            self.fail_message(
                which,
                now,
                SessionError::RetryLimitExceeded {
                    transfer: tid,
                    timeouts: streak,
                },
            );
            return;
        }
        let t = self.tref(which).expect("transfer exists");
        let laggards = t.release.laggard_ranks();
        if laggards.is_empty() || laggards.len() >= t.release.n_active() {
            // Nobody identifiable to blame, or eviction would empty the
            // group: nothing left to deliver to.
            self.fail_message(
                which,
                now,
                SessionError::AllReceiversEvicted { transfer: tid },
            );
            return;
        }
        let msg_id = match which {
            Which::Cur => self.cur.as_ref().map(|&(id, _, _)| id).unwrap_or_default(),
            Which::Staged => self.staged.as_ref().expect("staged exists").msg_id,
        };
        for rank in laggards {
            let idx = rank.receiver_index();
            self.evicted[idx] = true;
            self.detached[idx] = false;
            if let Some(d) = self.detector.as_mut() {
                d.reset(idx);
            }
            self.stats.evictions += 1;
            self.tracer.emit(
                now.as_nanos(),
                TraceEvent::Evicted {
                    peer: rank.0,
                    transfer: tid,
                },
            );
            self.events
                .push_back(AppEvent::ReceiverEvicted { msg_id, rank });
            // Both in-flight transfers wait on the same receiver set; the
            // dead peer must gate neither.
            for w in [Which::Cur, Which::Staged] {
                if let Some(t) = self.tmut(w) {
                    t.release.evict_rank(rank);
                }
            }
        }
        if self.cfg.membership.enabled {
            self.epoch += 1;
            self.emit_epoch_change();
            self.announce();
        }
        self.settle(now);
    }

    /// Trace the membership epoch taking a new value.
    fn emit_epoch_change(&mut self) {
        self.tracer.emit(
            self.now_cache.as_nanos(),
            TraceEvent::EpochChange { epoch: self.epoch },
        );
    }

    /// Multicast a heartbeat announce carrying the current epoch.
    fn announce(&mut self) {
        self.stats.heartbeats_sent += 1;
        self.out.push_back(Transmit {
            dest: Dest::Receivers,
            payload: packet::encode_heartbeat(Rank::SENDER, self.epoch),
            copied: 0,
        });
    }

    /// Remove `rank` from in-flight proof obligations, unless it is the
    /// sole remaining acknowledgment source (an empty obligation cannot
    /// release anything; the bounded-retry path resolves that stall).
    fn drop_from_releases(&mut self, rank: Rank) {
        for w in [Which::Cur, Which::Staged] {
            if let Some(t) = self.tmut(w) {
                if t.release.n_active() > 1 {
                    t.release.evict_rank(rank);
                }
            }
        }
    }

    /// Sticky-evict `rank` (detector verdict or voluntary leave). The
    /// caller bumps the epoch once per batch and settles afterwards.
    fn remove_member(&mut self, rank: Rank) {
        let idx = rank.receiver_index();
        debug_assert!(!self.evicted[idx]);
        self.evicted[idx] = true;
        self.detached[idx] = false;
        if let Some(d) = self.detector.as_mut() {
            d.reset(idx);
        }
        if let Some(q) = self.quar[idx].take() {
            // A quarantined peer resolved through the liveness path.
            self.stats.quarantine_evicted += 1;
            self.tracer.emit(
                self.now_cache.as_nanos(),
                TraceEvent::QuarantineExit {
                    peer: rank.0,
                    transfer: q.transfer,
                    caught_up: 0,
                },
            );
        }
        self.stats.evictions += 1;
        let msg_id = self
            .cur
            .as_ref()
            .map(|&(id, _, _)| id)
            .unwrap_or(self.next_msg_id);
        let tid = self.transfer.as_ref().map(|t| t.id).unwrap_or_default();
        self.tracer.emit(
            self.now_cache.as_nanos(),
            TraceEvent::Evicted {
                peer: rank.0,
                transfer: tid,
            },
        );
        self.events
            .push_back(AppEvent::ReceiverEvicted { msg_id, rank });
        self.drop_from_releases(rank);
    }

    /// One heartbeat period elapsed: announce, charge every active member
    /// one miss, and evict those past the threshold.
    fn heartbeat_tick(&mut self, now: Time) {
        let busy = self.cur.is_some()
            || self.transfer.is_some()
            || self.staged.is_some()
            || !self.queue.is_empty();
        if !busy {
            // An idle group stays silent so drivers reach quiescence.
            self.hb_deadline = None;
            return;
        }
        self.announce();
        let n = self.group.n_receivers as usize;
        let mut to_evict = Vec::new();
        if let Some(d) = self.detector.as_mut() {
            for idx in 0..n {
                if self.evicted[idx] {
                    continue;
                }
                match d.record_miss(idx) {
                    LivenessVerdict::Alive => {}
                    LivenessVerdict::NewlySuspected => self.stats.suspects += 1,
                    LivenessVerdict::Evict => to_evict.push(idx),
                }
            }
        }
        // Never evict the last live member: with nobody left there is no
        // one to deliver to, and the bounded-retry path reports that
        // failure with a typed error instead.
        let live = (0..n).filter(|&i| !self.evicted[i]).count();
        if to_evict.len() >= live {
            to_evict.truncate(live - 1);
        }
        if !to_evict.is_empty() {
            for idx in to_evict {
                self.remove_member(Rank::from_receiver_index(idx));
            }
            self.epoch += 1;
            self.emit_epoch_change();
            self.announce();
            self.settle(now);
        }
        self.hb_deadline = Some(now + self.cfg.membership.heartbeat_interval);
    }

    /// Admission request (first join or rejoin after eviction/restart).
    fn on_join(&mut self, now: Time, rank: Rank) {
        if !self.cfg.membership.enabled || rank.is_sender() || !self.group.contains(rank) {
            return;
        }
        // Immediate WELCOME so the joiner stops re-sending JOINs; the
        // binding SYNC follows at the next message boundary.
        self.out.push_back(Transmit {
            dest: Dest::Rank(rank),
            payload: packet::encode_welcome(Rank::SENDER, self.epoch),
            copied: 0,
        });
        let idx = rank.receiver_index();
        if let Some(d) = self.detector.as_mut() {
            d.reset(idx);
        }
        if !self.evicted[idx] {
            // A member we believed active announces a (re)start: its old
            // acknowledgment state is gone, so stop waiting for it on
            // in-flight transfers. This is pending-admission state, not a
            // failure — no ReceiverEvicted event, no epoch bump yet.
            self.evicted[idx] = true;
            self.detached[idx] = false;
            // A restart wipes its receive state; any quarantine catch-up
            // aimed at the old incarnation is moot.
            self.quar[idx] = None;
            self.drop_from_releases(rank);
            if !self.pending_joins.contains(&rank) {
                self.pending_joins.push(rank);
            }
            self.settle(now);
        } else if !self.pending_joins.contains(&rank) {
            self.pending_joins.push(rank);
        }
        self.try_admit();
    }

    /// Voluntary departure: sticky eviction with an immediate epoch bump.
    fn on_leave(&mut self, now: Time, rank: Rank) {
        if !self.cfg.membership.enabled || rank.is_sender() || !self.group.contains(rank) {
            return;
        }
        self.pending_joins.retain(|&r| r != rank);
        if self.evicted[rank.receiver_index()] {
            return;
        }
        self.remove_member(rank);
        self.epoch += 1;
        self.emit_epoch_change();
        self.announce();
        self.settle(now);
    }

    /// A receiver's heartbeat reply: proof of life (or an implicit rejoin
    /// request when it comes from a non-member).
    fn on_heartbeat(&mut self, rank: Rank, epoch: u32) {
        self.stats.heartbeats_received += 1;
        if !self.cfg.membership.enabled || rank.is_sender() || !self.group.contains(rank) {
            return;
        }
        let _ = self.accept_member_traffic(rank, Some(epoch));
    }

    /// Admit every pending joiner, provided the sender sits at a message
    /// boundary (nothing current, nothing staged): clear their evicted
    /// bits, bump the epoch once for the batch, and hand each joiner a
    /// SYNC naming the first message it is responsible for.
    fn try_admit(&mut self) {
        if self.pending_joins.is_empty()
            || self.cur.is_some()
            || self.transfer.is_some()
            || self.staged.is_some()
        {
            return;
        }
        let joiners = std::mem::take(&mut self.pending_joins);
        let next_msg = self
            .queue
            .front()
            .map(|&(id, _)| id)
            .unwrap_or(self.next_msg_id);
        let next_transfer = Self::alloc_transfer_id(next_msg);
        let is_tree = matches!(self.cfg.kind, ProtocolKind::Tree { .. });
        self.epoch += 1;
        self.emit_epoch_change();
        for rank in joiners {
            let idx = rank.receiver_index();
            self.evicted[idx] = false;
            if let Some(d) = self.detector.as_mut() {
                d.reset(idx);
            }
            let mut flags = 0;
            if is_tree {
                let already_root = self
                    .tree
                    .as_ref()
                    .is_some_and(|t| t.roots().contains(&rank));
                if !already_root {
                    // The joiner's old chain position is gone (its parent
                    // may have routed around it): it re-enters as a
                    // detached root reporting straight to the sender.
                    self.detached[idx] = true;
                }
                if self.detached[idx] {
                    flags |= SyncBody::DETACHED_ROOT;
                }
            }
            self.stats.joins += 1;
            self.out.push_back(Transmit {
                dest: Dest::Rank(rank),
                payload: packet::encode_sync(
                    Rank::SENDER,
                    SyncBody {
                        epoch: self.epoch,
                        next_msg,
                        next_transfer,
                        flags,
                    },
                ),
                copied: 0,
            });
            self.events.push_back(AppEvent::ReceiverJoined {
                rank,
                epoch: self.epoch,
            });
        }
        self.announce();
    }

    /// Re-evaluate both in-flight transfers against their (possibly just
    /// shrunk) proof obligations: release what the survivors cover,
    /// finish what is fully released, refill the window.
    fn settle(&mut self, now: Time) {
        let base_rto = self.base_rto();
        // Staged first: `finish_transfer` on the current message promotes
        // the staged one and expects its completion already recorded.
        if let Some(t) = self.tmut(Which::Staged) {
            let released = t.release.released().min(t.win.k());
            let before = t.win.base();
            t.win.release(released);
            if t.win.base() > before {
                t.streak = 0;
                t.cur_rto = base_rto;
            }
            if t.win.all_released() {
                self.staged.as_mut().expect("staged exists").alloc = None;
            }
        }
        if let Some(t) = self.transfer.as_mut() {
            let released = t.release.released().min(t.win.k());
            let before = t.win.base();
            t.win.release(released);
            if t.win.base() > before {
                t.streak = 0;
                t.cur_rto = base_rto;
                t.stalled = false;
                let (tid, new_base) = (t.id, t.win.base());
                self.tracer.emit(
                    now.as_nanos(),
                    TraceEvent::WindowRelease {
                        transfer: tid,
                        base: new_base,
                    },
                );
            }
            if self.transfer.as_ref().is_some_and(|t| t.win.all_released())
                && !self.quarantine_blocks_completion()
            {
                self.finish_transfer(now);
            } else {
                self.pump(now);
            }
        }
    }

    /// Abandon a message with a typed error and move on to the next.
    fn fail_message(&mut self, which: Which, now: Time, error: SessionError) {
        self.stats.messages_failed += 1;
        if let Some(dump) = self.tracer.flight_dump(
            now.as_nanos(),
            &format!("sender abandoned message: {error:?}"),
            self.stats.snapshot(),
        ) {
            self.events.push_back(AppEvent::FlightRecorderDump { dump });
        }
        match which {
            Which::Cur => {
                self.transfer = None;
                let (msg_id, _, _) = self.cur.take().expect("transfer without a message");
                self.events
                    .push_back(AppEvent::MessageFailed { msg_id, error });
                self.quarantine_boundary(now);
                self.clear_backpressure(now, msg_id);
                self.advance_after_current(now);
            }
            Which::Staged => {
                let st = self.staged.take().expect("staged exists");
                self.events.push_back(AppEvent::MessageFailed {
                    msg_id: st.msg_id,
                    error,
                });
                self.maybe_stage_next(now);
            }
        }
    }

    // ------------------------------------------------------------------
    // Overload robustness (AIMD, storm shedding, quarantine)
    // ------------------------------------------------------------------

    /// Feedback-pacing admission: `true` means shed this control packet.
    /// Emits the `StormSuppressed` edge on entry into the shedding state.
    fn shed_feedback(&mut self, now: Time, transfer_id: u32) -> bool {
        let Some(b) = self.feedback_bucket.as_mut() else {
            return false;
        };
        if b.take(now) {
            self.storm_shedding = false;
            return false;
        }
        if !self.storm_shedding {
            self.storm_shedding = true;
            self.tracer.emit(
                now.as_nanos(),
                TraceEvent::StormSuppressed {
                    transfer: transfer_id,
                },
            );
        }
        true
    }

    /// Multiplicative decrease on a congestion signal (retransmission
    /// timeout or fresh NAK), re-applying the cap to the data window.
    fn aimd_congestion(&mut self, now: Time, transfer_id: u32) {
        let Some(a) = self.aimd.as_mut() else { return };
        let changed = a.on_congestion();
        let cap = a.cap() as u32;
        if changed {
            self.stats.window_shrinks += 1;
            self.tracer.emit(
                now.as_nanos(),
                TraceEvent::WindowShrink {
                    transfer: transfer_id,
                    cap,
                },
            );
        }
        self.apply_aimd_cap();
    }

    /// Additive increase on acknowledged progress, re-applying the cap.
    fn aimd_progress(&mut self, now: Time, transfer_id: u32, acked: u32) {
        let Some(a) = self.aimd.as_mut() else { return };
        let changed = a.on_progress(acked as usize);
        let cap = a.cap();
        if changed {
            self.stats.window_grows += 1;
            self.tracer.emit(
                now.as_nanos(),
                TraceEvent::WindowGrow {
                    transfer: transfer_id,
                    cap: cap as u32,
                },
            );
        }
        if self.backpressured && cap >= self.cfg.window {
            // The window recovered its configured size: senders may resume.
            let msg_id = self.cur.as_ref().map(|&(id, _, _)| id).unwrap_or_default();
            self.clear_backpressure(now, msg_id);
        }
        self.apply_aimd_cap();
    }

    /// Push the current AIMD cap into the in-flight data window. The
    /// window clamps to its occupancy, so a shrink takes full effect as
    /// in-flight packets drain; calling this after releases re-tightens.
    fn apply_aimd_cap(&mut self) {
        let Some(cap) = self.aimd.as_ref().map(|a| a.cap().max(1) as u32) else {
            return;
        };
        if let Some(t) = self.transfer.as_mut() {
            t.win.set_cap(cap);
        }
    }

    /// Clear the backpressure edge, if set (recovery or message boundary).
    fn clear_backpressure(&mut self, now: Time, msg_id: u64) {
        if !self.backpressured {
            return;
        }
        self.backpressured = false;
        self.stats.backpressure_signals += 1;
        let tid = self.transfer.as_ref().map(|t| t.id).unwrap_or_default();
        self.events.push_back(AppEvent::Backpressure {
            msg_id,
            congested: false,
        });
        self.tracer.emit(
            now.as_nanos(),
            TraceEvent::Backpressure {
                transfer: tid,
                congested: 0,
            },
        );
    }

    /// `retx_suppress` scaled by observed feedback load (identity when
    /// load scaling is disabled).
    fn effective_retx_suppress(&mut self, now: Time) -> Duration {
        match self.load.as_mut() {
            Some(l) => l.scale(self.cfg.retx_suppress, now),
            None => self.cfg.retx_suppress,
        }
    }

    /// Note a quarantined peer's acknowledgment horizon (both its ACK
    /// `next_expected` and its NAK `expected` mean "I hold everything
    /// below this"). Returns `true` when the packet came from a
    /// quarantined peer — callers stop there, since the peer is no longer
    /// part of any release obligation.
    fn quar_note_horizon(&mut self, rank: Rank, transfer_id: u32, below: u32) -> bool {
        let Some(q) = self.quar[rank.receiver_index()].as_mut() else {
            return false;
        };
        if q.transfer == transfer_id {
            q.horizon = q.horizon.max(below);
        }
        true
    }

    /// True while the current transfer is fully released by the live set
    /// but a quarantined receiver still lacks packets: completion (and
    /// with it, buffer reuse) waits for its catch-up or budget exhaustion.
    fn quarantine_blocks_completion(&self) -> bool {
        let Some(t) = self.transfer.as_ref() else {
            return false;
        };
        let (tid, k) = (t.id, t.win.k());
        self.quar
            .iter()
            .flatten()
            .any(|q| q.transfer == tid && q.horizon < k)
    }

    /// Finish the current transfer if a quarantined peer's catch-up just
    /// removed the last obstacle to completion.
    fn maybe_finish_quarantined(&mut self, now: Time) {
        if self.transfer.as_ref().is_some_and(|t| t.win.all_released())
            && !self.quarantine_blocks_completion()
        {
            self.finish_transfer(now);
        }
    }

    /// Move the laggards gating the current data transfer into quarantine
    /// once its stall streak reaches `quarantine_after`: they stop gating
    /// the window and are served bounded catch-up retransmissions off the
    /// critical path instead. Returns `true` when anyone moved (the
    /// release was re-settled; skip this round's group retransmission).
    fn maybe_quarantine(&mut self, now: Time) -> bool {
        let Some(after) = self.cfg.overload.quarantine_after else {
            return false;
        };
        // Only a data transfer has payload worth catching up on; an alloc
        // round trip resolves through the liveness path.
        if !matches!(self.cur, Some((_, _, Phase::Data))) {
            return false;
        }
        let Some(t) = self.transfer.as_ref() else {
            return false;
        };
        if t.streak < after {
            return false;
        }
        let laggards = t.release.laggard_ranks();
        if laggards.is_empty() || laggards.len() >= t.release.n_active() {
            // Nobody identifiable, or quarantining would empty the proof
            // obligation: let the liveness path resolve the stall.
            return false;
        }
        let tid = t.id;
        let horizon = t.release.released().min(t.win.k());
        let interval = self.cfg.overload.catchup_interval;
        let mut any = false;
        for rank in laggards {
            let idx = rank.receiver_index();
            if self.quar[idx].is_some() {
                continue;
            }
            self.quar[idx] = Some(QuarState {
                transfer: tid,
                horizon,
                next_catchup: now + interval,
                rounds: 0,
            });
            any = true;
            self.stats.quarantine_entered += 1;
            self.tracer.emit(
                now.as_nanos(),
                TraceEvent::QuarantineEnter {
                    peer: rank.0,
                    transfer: tid,
                },
            );
            // Off the critical path: neither in-flight transfer waits on
            // it any longer (non-sticky — it is still a member).
            self.drop_from_releases(rank);
        }
        if !any {
            return false;
        }
        let base_rto = self.base_rto();
        if let Some(t) = self.transfer.as_mut() {
            t.streak = 0;
            t.cur_rto = base_rto;
        }
        self.settle(now);
        true
    }

    /// Serve one due catch-up round per quarantined receiver: a small
    /// unicast batch of retransmissions from its horizon, spaced
    /// `catchup_interval` apart, for at most `quarantine_budget` rounds
    /// before the liveness path takes over.
    fn quarantine_catchup(&mut self, now: Time) {
        let interval = self.cfg.overload.catchup_interval;
        let budget = self.cfg.overload.quarantine_budget;
        for idx in 0..self.quar.len() {
            // Re-fetch per iteration: a budget-exhaustion resolution may
            // fail the message and change the in-flight transfer.
            let Some((tid, next)) = self.transfer.as_ref().map(|t| (t.id, t.win.next())) else {
                return;
            };
            let Some(q) = self.quar[idx].as_ref() else {
                continue;
            };
            if q.transfer != tid || q.next_catchup > now {
                continue;
            }
            if q.rounds >= budget {
                self.quarantine_give_up(now, Rank::from_receiver_index(idx));
                continue;
            }
            let from = q.horizon;
            let to = from.saturating_add(CATCHUP_BATCH).min(next);
            let rank = Rank::from_receiver_index(idx);
            for seq in from..to {
                self.emit_data_to(Which::Cur, seq, true, Dest::Rank(rank));
                self.stats.catchup_retx_sent += 1;
            }
            let q = self.quar[idx].as_mut().expect("quarantine entry");
            if to > from {
                q.rounds += 1;
            }
            q.next_catchup = now + interval;
        }
    }

    /// A quarantined receiver exhausted its catch-up budget: resolve it
    /// through the liveness path — sticky eviction when configured,
    /// otherwise the message fails with a typed error.
    fn quarantine_give_up(&mut self, now: Time, rank: Rank) {
        let idx = rank.receiver_index();
        let Some(q) = self.quar[idx].take() else {
            return;
        };
        self.stats.quarantine_evicted += 1;
        self.tracer.emit(
            now.as_nanos(),
            TraceEvent::QuarantineExit {
                peer: rank.0,
                transfer: q.transfer,
                caught_up: 0,
            },
        );
        if self.cfg.liveness.evict_stragglers {
            self.remove_member(rank);
            if self.cfg.membership.enabled {
                self.epoch += 1;
                self.emit_epoch_change();
                self.announce();
            }
            self.settle(now);
        } else {
            self.fail_message(
                Which::Cur,
                now,
                SessionError::RetryLimitExceeded {
                    transfer: q.transfer,
                    timeouts: q.rounds,
                },
            );
        }
    }

    /// Message boundary: every quarantined receiver has (by the
    /// completion gate) caught up — clear the quarantine so the next
    /// message's release obligation includes it again.
    fn quarantine_boundary(&mut self, now: Time) {
        for idx in 0..self.quar.len() {
            let Some(q) = self.quar[idx].take() else {
                continue;
            };
            self.stats.quarantine_rejoined += 1;
            self.tracer.emit(
                now.as_nanos(),
                TraceEvent::QuarantineExit {
                    peer: Rank::from_receiver_index(idx).0,
                    transfer: q.transfer,
                    caught_up: 1,
                },
            );
        }
    }

    /// Earliest due catch-up round across quarantined receivers.
    fn quarantine_deadline(&self) -> Option<Time> {
        let tid = self.transfer.as_ref()?.id;
        self.quar
            .iter()
            .flatten()
            .filter(|q| q.transfer == tid)
            .map(|q| q.next_catchup)
            .min()
    }
}

impl Sender {
    /// Audit every sender-side invariant (`S1`…`S6` in
    /// [`crate::invariants`]) against the current state, recomputing the
    /// release rules from first principles. Cheap enough to run per
    /// driver call; under `debug_assertions` the engine does exactly that.
    pub fn audit(&self) -> Result<(), Vec<crate::invariants::Violation>> {
        use crate::invariants::Audit;
        let mut a = Audit::new();
        if let Some(tree) = &self.tree {
            a.check("S5", tree.check());
        }
        for (which, label) in [(Which::Cur, "current"), (Which::Staged, "staged")] {
            let Some(t) = self.tref(which) else { continue };
            let id = t.id;
            a.check(
                "S1",
                t.win
                    .check()
                    .map_err(|e| format!("{label} transfer {id}: {e}")),
            );
            let released = t.release.released();
            a.require("S2", t.win.base() <= released, || {
                format!(
                    "{label} transfer {id}: window base {} outruns acknowledgment \
                     coverage {released} — a buffer was freed before every receiver \
                     provably held it",
                    t.win.base()
                )
            });
            let tracker = match &t.release {
                Release::PerSource { cov, .. } => cov.check(),
                Release::Ring(r) => r.check(),
            };
            a.check(
                "S3",
                tracker.map_err(|e| format!("{label} transfer {id}: {e}")),
            );
            a.require("S4", t.release.n_active() >= 1, || {
                format!("{label} transfer {id}: every acknowledgment source evicted")
            });
        }
        a.require("S6", self.transfer.is_none() || self.cur.is_some(), || {
            "active transfer without a current message".into()
        });
        if let (Some(t), Some((msg_id, _, phase))) = (self.transfer.as_ref(), self.cur.as_ref()) {
            let expect = match phase {
                Phase::Alloc => Self::alloc_transfer_id(*msg_id),
                Phase::Data => Self::data_transfer_id(*msg_id),
            };
            a.require("S6", t.id == expect, || {
                format!(
                    "message {msg_id} in phase {phase:?} runs transfer {} (expected {expect})",
                    t.id
                )
            });
            if matches!(phase, Phase::Alloc) {
                a.require("S6", t.win.k() == 1, || {
                    format!("allocation transfer {} spans {} packets", t.id, t.win.k())
                });
            }
        }
        if let Some(st) = &self.staged {
            if let Some(t) = &st.alloc {
                a.require(
                    "S6",
                    t.id == Self::alloc_transfer_id(st.msg_id) && t.win.k() == 1,
                    || {
                        format!(
                            "staged allocation for message {} runs transfer {} over {} packets",
                            st.msg_id,
                            t.id,
                            t.win.k()
                        )
                    },
                );
            }
        }
        for (idx, q) in self.quar.iter().enumerate() {
            if q.is_some() {
                a.require("S7", !self.evicted[idx], || {
                    format!("receiver index {idx} both quarantined and sticky-evicted")
                });
            }
        }
        a.require(
            "S8",
            self.fec.is_some() == matches!(self.cfg.kind, ProtocolKind::Fec { .. }),
            || "coding state present iff the fec family is configured".into(),
        );
        if let Some(f) = &self.fec {
            a.require("S8", f.pending_len() == 0 || f.deadline().is_some(), || {
                format!(
                    "{} buffered losses with no flush deadline armed",
                    f.pending_len()
                )
            });
            a.require(
                "S8",
                f.transfer().is_some() || (f.pending_len() == 0 && f.parity_run().is_none()),
                || "unbound coding state holds losses or an open parity run".into(),
            );
            if let Some(fid) = f.transfer() {
                a.require("S8", fid % 2 == 1, || {
                    format!("coding state bound to transfer {fid}, which is not a data transfer")
                });
            }
        }
        a.finish()
    }

    /// Hash the protocol-logical state into `h`: everything that shapes
    /// future behavior *except* clocks, retry streaks, counters and
    /// telemetry. `rmcheck explore` merges interleavings whose digests
    /// converge, which is sound exactly because the model configurations
    /// zero the time-sensitive knobs (suppression windows, backoff).
    pub fn hash_protocol_state(&self, h: &mut dyn std::hash::Hasher) {
        fn hash_release(h: &mut dyn std::hash::Hasher, r: &Release) {
            match r {
                Release::PerSource { cov, .. } => {
                    h.write_u8(1);
                    let (cov, evicted) = cov.state();
                    for &c in cov {
                        h.write_u32(c);
                    }
                    for &e in evicted {
                        h.write_u8(e as u8);
                    }
                }
                Release::Ring(r) => {
                    h.write_u8(2);
                    let (cov, prefix, evicted) = r.state();
                    for &c in cov {
                        h.write_u32(c);
                    }
                    h.write_u32(prefix);
                    for &e in evicted {
                        h.write_u8(e as u8);
                    }
                }
            }
        }
        fn hash_transfer(h: &mut dyn std::hash::Hasher, t: &Transfer) {
            h.write_u32(t.id);
            h.write_u32(t.win.k());
            h.write_u32(t.win.base());
            h.write_u32(t.win.next());
            hash_release(h, &t.release);
        }
        h.write_u64(self.next_msg_id);
        h.write_usize(self.queue.len());
        match &self.cur {
            None => h.write_u8(0),
            Some((msg_id, _, phase)) => {
                h.write_u8(1);
                h.write_u64(*msg_id);
                h.write_u8(matches!(phase, Phase::Data) as u8);
            }
        }
        match &self.transfer {
            None => h.write_u8(0),
            Some(t) => {
                h.write_u8(1);
                hash_transfer(h, t);
            }
        }
        match &self.staged {
            None => h.write_u8(0),
            Some(st) => {
                h.write_u8(1);
                h.write_u64(st.msg_id);
                match &st.alloc {
                    None => h.write_u8(0),
                    Some(t) => {
                        h.write_u8(1);
                        hash_transfer(h, t);
                    }
                }
            }
        }
        for &e in &self.evicted {
            h.write_u8(e as u8);
        }
        for &d in &self.detached {
            h.write_u8(d as u8);
        }
        match &self.aimd {
            None => h.write_u8(0),
            Some(a) => {
                h.write_u8(1);
                a.digest_into(h);
            }
        }
        for q in &self.quar {
            match q {
                None => h.write_u8(0),
                Some(q) => {
                    h.write_u8(1);
                    h.write_u32(q.transfer);
                    h.write_u32(q.horizon);
                    h.write_u32(q.rounds);
                }
            }
        }
        h.write_u32(self.epoch);
        h.write_usize(self.pending_joins.len());
        for r in &self.pending_joins {
            h.write_u16(r.0);
        }
        h.write_u8(self.hb_deadline.is_some() as u8);
        match &self.fec {
            None => h.write_u8(0),
            Some(f) => {
                h.write_u8(1);
                match f.transfer() {
                    None => h.write_u8(0),
                    Some(id) => {
                        h.write_u8(1);
                        h.write_u32(id);
                    }
                }
                h.write_u32(f.generation());
                h.write_u8(f.deadline().is_some() as u8);
                h.write_usize(f.pending_len());
                for (&s, &losers) in f.pending() {
                    h.write_u32(s);
                    h.write_u64(losers);
                }
                match f.parity_run() {
                    None => h.write_u8(0),
                    Some((base, count)) => {
                        h.write_u8(1);
                        h.write_u32(base);
                        h.write_u32(count);
                    }
                }
            }
        }
        h.write_usize(self.out.len());
        h.write_usize(self.events.len());
    }

    /// Panic on any violated invariant. Compiled only under
    /// `debug_assertions`, so every debug-profile test (sim, chaos, fuzz,
    /// soak) doubles as an invariant audit while release figures stay
    /// byte-identical.
    #[cfg(debug_assertions)]
    fn debug_audit(&self) {
        if let Err(v) = self.audit() {
            panic!(
                "sender invariant violation: {}",
                crate::invariants::render(&v)
            );
        }
    }
}

impl Endpoint for Sender {
    fn handle_datagram(&mut self, now: Time, datagram: &[u8]) {
        self.now_cache = self.now_cache.max(now);
        let pkt = match Packet::parse_checked(datagram, self.cfg.integrity) {
            Ok(p) => p,
            Err(e) => {
                self.stats.decode_errors += 1;
                let cause = match e {
                    rmwire::WireError::ChecksumMismatch { .. }
                    | rmwire::WireError::ChecksumMissing => {
                        self.stats.integrity_fail += 1;
                        "IntegrityFail"
                    }
                    _ => {
                        self.stats.malformed_rx += 1;
                        "MalformedRx"
                    }
                };
                self.tracer.emit(now.as_nanos(), TraceEvent::Drop { cause });
                return;
            }
        };
        match pkt {
            Packet::Ack {
                header,
                body,
                epoch,
            } => self.on_ack(
                now,
                header.src_rank,
                header.transfer,
                body.next_expected.0,
                epoch,
            ),
            Packet::Nak {
                header,
                body,
                epoch,
            } => self.on_nak(
                now,
                header.src_rank,
                header.transfer,
                body.expected.0,
                epoch,
            ),
            Packet::Join { header, .. } => self.on_join(now, header.src_rank),
            Packet::Leave { header, .. } => self.on_leave(now, header.src_rank),
            Packet::Heartbeat { header, body } => self.on_heartbeat(header.src_rank, body.epoch),
            Packet::Data { .. }
            | Packet::Alloc { .. }
            | Packet::Welcome { .. }
            | Packet::Sync { .. }
            | Packet::Repair { .. }
            | Packet::Parity { .. } => {
                // Data (or echoed sender-side control) flowing toward the
                // sender is not expected; ignore.
                self.stats.data_discarded += 1;
            }
        }
        #[cfg(debug_assertions)]
        self.debug_audit();
    }

    fn handle_timeout(&mut self, now: Time) {
        self.now_cache = self.now_cache.max(now);
        // Pacing wake-up: just refill the window.
        if self.pace_deadline().is_some_and(|d| d <= now) {
            self.pump(now);
        }
        // Heartbeat schedule: announce, score misses, evict the silent.
        if self.hb_deadline.is_some_and(|d| d <= now) {
            self.heartbeat_tick(now);
        }
        // Quarantined receivers: serve any due catch-up rounds.
        self.quarantine_catchup(now);
        // The fec aggregation window: flush coded repairs when due.
        self.fec_flush(now);
        let liveness = self.cfg.liveness;
        for which in [Which::Cur, Which::Staged] {
            let Some(t) = self.tref(which) else { continue };
            let deadline = t.win.earliest_deadline(t.cur_rto);
            if deadline.is_none_or(|d| d > now) {
                continue;
            }
            self.stats.timeouts += 1;
            let (tid, streak, rto) = {
                let t = self.tmut(which).expect("transfer exists");
                t.streak += 1;
                (t.id, t.streak, t.cur_rto)
            };
            self.telem.rto_at_fire_ns.record(rto.as_nanos());
            self.tracer.emit(
                now.as_nanos(),
                TraceEvent::TimeoutFired {
                    transfer: tid,
                    streak,
                    rto_ns: rto.as_nanos(),
                },
            );
            if which == Which::Cur {
                // A retransmission timeout is a congestion signal.
                self.aimd_congestion(now, tid);
                if self.maybe_quarantine(now) {
                    // The laggards gating the window moved to quarantine
                    // and the release re-settled; no group retransmission
                    // this round.
                    continue;
                }
            }
            if liveness.max_retx.is_some_and(|m| streak > m) {
                // The retry budget is spent: resolve the stall instead of
                // retransmitting into the void forever.
                self.give_up(which, now);
                continue;
            }
            match self.cfg.discipline {
                WindowDiscipline::GoBackN => {
                    let t = self.tref(which).expect("transfer exists");
                    let base = t.win.base();
                    self.retransmit_from(which, now, base);
                }
                WindowDiscipline::SelectiveRepeat => {
                    // Per-packet timers: every expired outstanding packet
                    // is retransmitted individually.
                    let t = self.tref(which).expect("transfer exists");
                    for seq in t.win.expired(now, rto) {
                        self.retransmit_one(which, now, seq);
                    }
                }
            }
            // Exponential backoff: each consecutive timeout stretches the
            // effective RTO up to the ceiling (progress resets it).
            if liveness.rto_backoff > 1.0 {
                let ceil_ns = liveness.rto_max.as_nanos().max(self.cfg.rto.as_nanos());
                if let Some(t) = self.tmut(which) {
                    let next_ns = (rto.as_nanos() as f64 * liveness.rto_backoff) as u64;
                    t.cur_rto = Duration::from_nanos(next_ns.min(ceil_ns));
                }
            }
        }
        #[cfg(debug_assertions)]
        self.debug_audit();
    }

    fn poll_timeout(&self) -> Option<Time> {
        [
            self.transfer
                .as_ref()
                .and_then(|t| t.win.earliest_deadline(t.cur_rto)),
            self.tref(Which::Staged)
                .and_then(|t| t.win.earliest_deadline(t.cur_rto)),
            self.pace_deadline(),
            self.hb_deadline,
            self.quarantine_deadline(),
            self.fec.as_ref().and_then(|f| f.deadline()),
        ]
        .into_iter()
        .flatten()
        .min()
    }

    fn poll_transmit(&mut self) -> Option<Transmit> {
        let mut tx = self.out.pop_front()?;
        if self.cfg.integrity {
            tx.payload = packet::seal(&tx.payload);
        }
        Some(tx)
    }

    fn poll_event(&mut self) -> Option<AppEvent> {
        self.events.pop_front()
    }

    fn stats(&self) -> &Stats {
        &self.stats
    }

    fn is_idle(&self) -> bool {
        self.transfer.is_none()
            && self.cur.is_none()
            && self.staged.is_none()
            && self.queue.is_empty()
            && self.out.is_empty()
    }

    fn set_trace_sink(&mut self, sink: Box<dyn rmtrace::TraceSink>) {
        self.tracer.set_sink(sink);
    }

    fn enable_flight_recorder(&mut self, cap: usize) {
        self.tracer.enable_flight_recorder(cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::encode_ack;

    fn cfg(kind: ProtocolKind) -> ProtocolConfig {
        ProtocolConfig::new(kind, 100, 4)
    }

    fn drain(s: &mut Sender) -> Vec<Transmit> {
        std::iter::from_fn(|| s.poll_transmit()).collect()
    }

    fn ack(s: &mut Sender, now: Time, rank: Rank, transfer: u32, ne: u32) {
        let p = encode_ack(rank, transfer, SeqNo(ne));
        s.handle_datagram(now, &p);
    }

    #[test]
    fn handshake_sends_alloc_first() {
        let mut s = Sender::new(cfg(ProtocolKind::Ack), GroupSpec::new(2));
        s.send_message(Time::ZERO, Bytes::from(vec![1u8; 350]));
        let out = drain(&mut s);
        assert_eq!(out.len(), 1, "only the alloc request until it is acked");
        match Packet::parse(&out[0].payload).unwrap() {
            Packet::Alloc { header, body } => {
                assert_eq!(header.transfer, 0);
                assert_eq!(body.msg_len, 350);
                assert_eq!(body.data_transfer, 1);
                assert_eq!(body.packet_size, 100);
                assert!(header.flags.contains(PacketFlags::LAST));
            }
            other => panic!("expected alloc, got {other:?}"),
        }
    }

    #[test]
    fn data_flows_after_alloc_acked() {
        let mut s = Sender::new(cfg(ProtocolKind::Ack), GroupSpec::new(2));
        s.send_message(Time::ZERO, Bytes::from(vec![7u8; 350]));
        let _ = drain(&mut s);
        ack(&mut s, Time::ZERO, Rank(1), 0, 1);
        assert!(drain(&mut s).is_empty(), "one ack is not enough");
        ack(&mut s, Time::ZERO, Rank(2), 0, 1);
        let out = drain(&mut s);
        // 350 bytes / 100 = 4 packets, window 4: all in flight.
        assert_eq!(out.len(), 4);
        match Packet::parse(&out[3].payload).unwrap() {
            Packet::Data { header, body } => {
                assert_eq!(header.transfer, 1);
                assert_eq!(header.seq, SeqNo(3));
                assert!(header.flags.contains(PacketFlags::LAST));
                assert_eq!(body.len(), 50, "tail packet carries the remainder");
            }
            other => panic!("expected data, got {other:?}"),
        }
    }

    #[test]
    fn ack_protocol_completes_message() {
        let mut s = Sender::new(cfg(ProtocolKind::Ack), GroupSpec::new(2));
        let id = s.send_message(Time::ZERO, Bytes::from(vec![7u8; 350]));
        assert_eq!(id, 0);
        let _ = drain(&mut s);
        for r in [1u16, 2] {
            ack(&mut s, Time::ZERO, Rank(r), 0, 1);
        }
        let _ = drain(&mut s);
        for r in [1u16, 2] {
            ack(&mut s, Time::ZERO, Rank(r), 1, 4);
        }
        assert_eq!(s.poll_event(), Some(AppEvent::MessageSent { msg_id: 0 }));
        assert!(s.is_idle());
        assert_eq!(s.stats().messages_completed, 1);
    }

    #[test]
    fn window_gates_transmission() {
        let mut c = cfg(ProtocolKind::Ack);
        c.window = 2;
        c.handshake = false;
        let mut s = Sender::new(c, GroupSpec::new(1));
        s.send_message(Time::ZERO, Bytes::from(vec![1u8; 1000])); // 10 packets
        assert_eq!(drain(&mut s).len(), 2);
        ack(&mut s, Time::ZERO, Rank(1), 1, 1);
        assert_eq!(drain(&mut s).len(), 1, "one release, one refill");
        ack(&mut s, Time::ZERO, Rank(1), 1, 3);
        assert_eq!(drain(&mut s).len(), 2);
    }

    #[test]
    fn poll_flags_follow_interval() {
        let mut c = cfg(ProtocolKind::nak_polling(3));
        c.handshake = false;
        c.window = 4;
        let mut s = Sender::new(c, GroupSpec::new(1));
        s.send_message(Time::ZERO, Bytes::from(vec![1u8; 400])); // 4 packets
        let out = drain(&mut s);
        let polled: Vec<bool> = out
            .iter()
            .map(|t| {
                Packet::parse(&t.payload)
                    .unwrap()
                    .header()
                    .flags
                    .contains(PacketFlags::POLL)
            })
            .collect();
        // Interval 3: seq 2 polled; seq 3 polled because LAST.
        assert_eq!(polled, vec![false, false, true, true]);
    }

    #[test]
    fn timeout_triggers_gbn_retransmission() {
        let mut c = cfg(ProtocolKind::Ack);
        c.handshake = false;
        c.window = 3;
        let mut s = Sender::new(c, GroupSpec::new(1));
        s.send_message(Time::ZERO, Bytes::from(vec![1u8; 300]));
        assert_eq!(drain(&mut s).len(), 3);
        let deadline = s.poll_timeout().expect("armed");
        assert_eq!(deadline, Time::ZERO + c.rto);
        s.handle_timeout(deadline);
        let retx = drain(&mut s);
        assert_eq!(retx.len(), 3, "Go-Back-N resends the whole window");
        assert!(retx.iter().all(|t| {
            Packet::parse(&t.payload)
                .unwrap()
                .header()
                .flags
                .contains(PacketFlags::RETX)
        }));
        assert_eq!(s.stats().retx_sent, 3);
        assert_eq!(s.stats().timeouts, 1);
    }

    #[test]
    fn suppression_limits_retransmissions() {
        let mut c = cfg(ProtocolKind::Ack);
        c.handshake = false;
        let mut s = Sender::new(c, GroupSpec::new(1));
        s.send_message(Time::ZERO, Bytes::from(vec![1u8; 100]));
        let _ = drain(&mut s);
        // Two NAKs in quick succession: only one retransmission.
        let nak = packet::encode_nak(Rank(1), 1, SeqNo(0));
        s.handle_datagram(Time::from_millis(100), &nak);
        s.handle_datagram(Time::from_millis(100), &nak);
        assert_eq!(drain(&mut s).len(), 1);
        assert_eq!(s.stats().retx_suppressed, 1);
    }

    #[test]
    fn ring_release_needs_window_beyond_group() {
        let n = 3u16;
        let mut c = ProtocolConfig::new(ProtocolKind::Ring, 100, 5);
        c.handshake = false;
        let mut s = Sender::new(c, GroupSpec::new(n));
        s.send_message(Time::ZERO, Bytes::from(vec![1u8; 1000])); // 10 packets
        assert_eq!(drain(&mut s).len(), 5);
        // Token acks for packets 0..3 release packet 0 only (prefix 4 - N).
        ack(&mut s, Time::ZERO, Rank(1), 1, 1);
        ack(&mut s, Time::ZERO, Rank(2), 1, 2);
        ack(&mut s, Time::ZERO, Rank(3), 1, 3);
        assert!(drain(&mut s).is_empty());
        ack(&mut s, Time::ZERO, Rank(1), 1, 4);
        assert_eq!(drain(&mut s).len(), 1, "packet 0 released, packet 5 sent");
    }

    #[test]
    fn tree_sender_listens_only_to_roots() {
        let mut c = ProtocolConfig::new(ProtocolKind::flat_tree(2), 100, 4);
        c.handshake = false;
        // 4 receivers, H=2: roots are ranks 1 and 3.
        let mut s = Sender::new(c, GroupSpec::new(4));
        s.send_message(Time::ZERO, Bytes::from(vec![1u8; 200]));
        let _ = drain(&mut s);
        // Acks from non-roots must not release anything.
        ack(&mut s, Time::ZERO, Rank(2), 1, 2);
        ack(&mut s, Time::ZERO, Rank(4), 1, 2);
        assert!(s.poll_event().is_none());
        ack(&mut s, Time::ZERO, Rank(1), 1, 2);
        assert!(s.poll_event().is_none());
        ack(&mut s, Time::ZERO, Rank(3), 1, 2);
        assert_eq!(s.poll_event(), Some(AppEvent::MessageSent { msg_id: 0 }));
    }

    #[test]
    fn stale_and_foreign_packets_ignored() {
        let mut c = cfg(ProtocolKind::Ack);
        c.handshake = false;
        let mut s = Sender::new(c, GroupSpec::new(1));
        s.send_message(Time::ZERO, Bytes::from(vec![1u8; 100]));
        let _ = drain(&mut s);
        // Wrong transfer id.
        ack(&mut s, Time::ZERO, Rank(1), 99, 1);
        // Out-of-group rank.
        ack(&mut s, Time::ZERO, Rank(7), 1, 1);
        // Sender rank.
        ack(&mut s, Time::ZERO, Rank(0), 1, 1);
        assert!(s.poll_event().is_none());
        // Garbage datagram.
        s.handle_datagram(Time::ZERO, &[1, 2, 3]);
        assert_eq!(s.stats().decode_errors, 1);
        // The real ack completes it.
        ack(&mut s, Time::ZERO, Rank(1), 1, 1);
        assert_eq!(s.poll_event(), Some(AppEvent::MessageSent { msg_id: 0 }));
    }

    #[test]
    fn messages_queue_fifo() {
        let mut c = cfg(ProtocolKind::Ack);
        c.handshake = false;
        let mut s = Sender::new(c, GroupSpec::new(1));
        let a = s.send_message(Time::ZERO, Bytes::from(vec![1u8; 100]));
        let b = s.send_message(Time::ZERO, Bytes::from(vec![2u8; 100]));
        assert_eq!((a, b), (0, 1));
        assert_eq!(s.in_flight(), 2);
        let out = drain(&mut s);
        assert_eq!(out.len(), 1, "second message waits");
        ack(&mut s, Time::ZERO, Rank(1), 1, 1);
        assert_eq!(s.poll_event(), Some(AppEvent::MessageSent { msg_id: 0 }));
        let out = drain(&mut s);
        assert_eq!(out.len(), 1);
        assert_eq!(Packet::parse(&out[0].payload).unwrap().header().transfer, 3);
        ack(&mut s, Time::ZERO, Rank(1), 3, 1);
        assert_eq!(s.poll_event(), Some(AppEvent::MessageSent { msg_id: 1 }));
        assert!(s.is_idle());
    }

    #[test]
    fn copy_accounting_respects_flag() {
        let mut c = cfg(ProtocolKind::Ack);
        c.handshake = false;
        let mut s = Sender::new(c, GroupSpec::new(1));
        s.send_message(Time::ZERO, Bytes::from(vec![1u8; 250]));
        let out = drain(&mut s);
        let copied: usize = out.iter().map(|t| t.copied).sum();
        assert_eq!(copied, 250);
        assert_eq!(s.stats().user_copy_bytes, 250);

        let mut c2 = cfg(ProtocolKind::Ack);
        c2.handshake = false;
        c2.charge_copy = false;
        let mut s2 = Sender::new(c2, GroupSpec::new(1));
        s2.send_message(Time::ZERO, Bytes::from(vec![1u8; 250]));
        let out = drain(&mut s2);
        assert_eq!(out.iter().map(|t| t.copied).sum::<usize>(), 0);
    }

    #[test]
    fn backoff_stretches_rto() {
        use crate::config::LivenessConfig;
        let mut c = cfg(ProtocolKind::Ack);
        c.handshake = false;
        c.liveness = LivenessConfig::bounded(10);
        let mut s = Sender::new(c, GroupSpec::new(1));
        s.send_message(Time::ZERO, Bytes::from(vec![1u8; 100]));
        let _ = drain(&mut s);
        let d1 = s.poll_timeout().expect("armed");
        assert_eq!(d1, Time::ZERO + c.rto);
        s.handle_timeout(d1);
        let _ = drain(&mut s);
        let d2 = s.poll_timeout().expect("still armed");
        assert_eq!(
            d2,
            d1 + c.rto.saturating_mul(2),
            "second wait is twice the first"
        );
        s.handle_timeout(d2);
        let _ = drain(&mut s);
        let d3 = s.poll_timeout().expect("still armed");
        assert_eq!(d3, d2 + c.rto.saturating_mul(4));
        // Progress resets the backoff: ack, then send another message.
        ack(&mut s, d3, Rank(1), 1, 1);
        assert_eq!(s.poll_event(), Some(AppEvent::MessageSent { msg_id: 0 }));
        s.send_message(d3, Bytes::from(vec![2u8; 100]));
        let _ = drain(&mut s);
        assert_eq!(
            s.poll_timeout(),
            Some(d3 + c.rto),
            "fresh transfer, base RTO"
        );
    }

    #[test]
    fn bounded_retries_fail_with_typed_error() {
        use crate::config::LivenessConfig;
        use crate::error::SessionError;
        let mut c = cfg(ProtocolKind::Ack);
        c.handshake = false;
        c.liveness = LivenessConfig::bounded(2);
        let mut s = Sender::new(c, GroupSpec::new(1));
        s.send_message(Time::ZERO, Bytes::from(vec![1u8; 100]));
        let _ = drain(&mut s);
        // Nobody ever acknowledges: the sender must stop on its own.
        for _ in 0..10 {
            let Some(d) = s.poll_timeout() else { break };
            s.handle_timeout(d);
            let _ = drain(&mut s);
        }
        assert_eq!(
            s.poll_event(),
            Some(AppEvent::MessageFailed {
                msg_id: 0,
                error: SessionError::RetryLimitExceeded {
                    transfer: 1,
                    timeouts: 3,
                },
            })
        );
        assert!(s.is_idle(), "no retry loop survives the bound");
        assert_eq!(s.stats().messages_failed, 1);
        assert_eq!(
            s.stats().retx_sent,
            2,
            "exactly max_retx retransmission rounds"
        );
    }

    #[test]
    fn eviction_completes_to_survivors() {
        use crate::config::LivenessConfig;
        let mut c = cfg(ProtocolKind::Ack);
        c.handshake = false;
        c.liveness = LivenessConfig::evicting(1);
        let mut s = Sender::new(c, GroupSpec::new(2));
        s.send_message(Time::ZERO, Bytes::from(vec![1u8; 100]));
        let _ = drain(&mut s);
        // Receiver 1 acknowledges; receiver 2 is dead.
        ack(&mut s, Time::ZERO, Rank(1), 1, 1);
        for _ in 0..5 {
            let Some(d) = s.poll_timeout() else { break };
            s.handle_timeout(d);
            let _ = drain(&mut s);
        }
        assert_eq!(
            s.poll_event(),
            Some(AppEvent::ReceiverEvicted {
                msg_id: 0,
                rank: Rank(2)
            })
        );
        assert_eq!(
            s.poll_event(),
            Some(AppEvent::MessageSent { msg_id: 0 }),
            "completes to the surviving receiver"
        );
        assert_eq!(s.stats().evictions, 1);
        // Eviction is sticky: the next message needs only the survivor.
        s.send_message(Time::from_millis(1), Bytes::from(vec![2u8; 100]));
        let _ = drain(&mut s);
        ack(&mut s, Time::from_millis(1), Rank(1), 3, 1);
        assert_eq!(s.poll_event(), Some(AppEvent::MessageSent { msg_id: 1 }));
        assert!(s.is_idle());
    }

    #[test]
    fn evicting_everyone_fails_the_message() {
        use crate::config::LivenessConfig;
        use crate::error::SessionError;
        let mut c = cfg(ProtocolKind::Ack);
        c.handshake = false;
        c.liveness = LivenessConfig::evicting(1);
        let mut s = Sender::new(c, GroupSpec::new(1));
        s.send_message(Time::ZERO, Bytes::from(vec![1u8; 100]));
        let _ = drain(&mut s);
        for _ in 0..5 {
            let Some(d) = s.poll_timeout() else { break };
            s.handle_timeout(d);
            let _ = drain(&mut s);
        }
        assert_eq!(
            s.poll_event(),
            Some(AppEvent::MessageFailed {
                msg_id: 0,
                error: SessionError::AllReceiversEvicted { transfer: 1 },
            })
        );
        assert!(s.is_idle());
    }

    #[test]
    fn ring_eviction_skips_dead_token_site() {
        use crate::config::LivenessConfig;
        let mut c = ProtocolConfig::new(ProtocolKind::Ring, 100, 5);
        c.handshake = false;
        c.liveness = LivenessConfig::evicting(1);
        let mut s = Sender::new(c, GroupSpec::new(3));
        s.send_message(Time::ZERO, Bytes::from(vec![1u8; 300])); // 3 packets
        let _ = drain(&mut s);
        // Receivers 1 and 3 are alive and fully acknowledged (including the
        // LAST packet everyone acks); receiver 2 — token site of packet 1 —
        // is dead, blocking the prefix forever.
        ack(&mut s, Time::ZERO, Rank(1), 1, 3);
        ack(&mut s, Time::ZERO, Rank(3), 1, 3);
        assert!(s.poll_event().is_none());
        for _ in 0..5 {
            let Some(d) = s.poll_timeout() else { break };
            s.handle_timeout(d);
            let _ = drain(&mut s);
        }
        assert_eq!(
            s.poll_event(),
            Some(AppEvent::ReceiverEvicted {
                msg_id: 0,
                rank: Rank(2)
            }),
            "token-pass skip over the dead site"
        );
        assert_eq!(s.poll_event(), Some(AppEvent::MessageSent { msg_id: 0 }));
        assert!(s.is_idle());
    }

    #[test]
    fn empty_message_is_one_empty_packet() {
        let mut c = cfg(ProtocolKind::Ack);
        c.handshake = false;
        let mut s = Sender::new(c, GroupSpec::new(1));
        s.send_message(Time::ZERO, Bytes::new());
        let out = drain(&mut s);
        assert_eq!(out.len(), 1);
        match Packet::parse(&out[0].payload).unwrap() {
            Packet::Data { header, body } => {
                assert!(body.is_empty());
                assert!(header.flags.contains(PacketFlags::LAST));
            }
            other => panic!("{other:?}"),
        }
    }

    fn mcfg(kind: ProtocolKind) -> ProtocolConfig {
        use crate::config::MembershipConfig;
        let mut c = cfg(kind);
        c.handshake = false;
        c.membership = MembershipConfig::enabled();
        c
    }

    #[test]
    fn stale_epoch_ack_discarded() {
        let mut s = Sender::new(mcfg(ProtocolKind::Ack), GroupSpec::new(1));
        s.send_message(Time::ZERO, Bytes::from(vec![1u8; 100]));
        let _ = drain(&mut s);
        let stale = packet::encode_ack_epoch(Rank(1), 1, SeqNo(1), 7);
        s.handle_datagram(Time::ZERO, &stale);
        assert_eq!(s.stats().stale_epoch_discarded, 1);
        assert!(
            s.poll_event().is_none(),
            "a stale-epoch ack must not complete the message"
        );
        let fresh = packet::encode_ack_epoch(Rank(1), 1, SeqNo(1), 1);
        s.handle_datagram(Time::ZERO, &fresh);
        assert_eq!(s.poll_event(), Some(AppEvent::MessageSent { msg_id: 0 }));
    }

    #[test]
    fn heartbeat_detector_evicts_silent_receiver() {
        let mut s = Sender::new(mcfg(ProtocolKind::Ack), GroupSpec::new(2));
        s.send_message(Time::ZERO, Bytes::from(vec![1u8; 100]));
        let out = drain(&mut s);
        assert!(
            out.iter()
                .any(|t| matches!(Packet::parse(&t.payload).unwrap(), Packet::Heartbeat { .. })),
            "going busy announces a heartbeat"
        );
        // Receiver 1 acknowledges and keeps replying to heartbeats;
        // receiver 2 is silent forever.
        let ack1 = packet::encode_ack_epoch(Rank(1), 1, SeqNo(1), 1);
        s.handle_datagram(Time::ZERO, &ack1);
        for _ in 0..40 {
            let Some(d) = s.poll_timeout() else { break };
            let reply = packet::encode_heartbeat(Rank(1), s.epoch());
            s.handle_datagram(d, &reply);
            s.handle_timeout(d);
            let _ = drain(&mut s);
        }
        let events: Vec<_> = std::iter::from_fn(|| s.poll_event()).collect();
        assert!(events.contains(&AppEvent::ReceiverEvicted {
            msg_id: 0,
            rank: Rank(2)
        }));
        assert!(events.contains(&AppEvent::MessageSent { msg_id: 0 }));
        assert!(s.is_idle());
        assert_eq!(s.epoch(), 2, "the eviction bumped the epoch");
        assert!(s.stats().suspects >= 1, "suspicion precedes eviction");
        assert!(s.stats().heartbeats_received > 0);
    }

    #[test]
    fn join_admitted_at_message_boundary() {
        let mut s = Sender::new(mcfg(ProtocolKind::Ack), GroupSpec::new(2));
        s.send_message(Time::ZERO, Bytes::from(vec![1u8; 100]));
        let _ = drain(&mut s);
        // Receiver 2 restarts and JOINs mid-message.
        s.handle_datagram(Time::ZERO, &packet::encode_join(Rank(2), 0));
        let out = drain(&mut s);
        assert!(
            out.iter()
                .any(|t| matches!(Packet::parse(&t.payload).unwrap(), Packet::Welcome { .. })),
            "a JOIN is answered immediately"
        );
        // Rank 1 alone completes the message (rank 2 is pending, excluded).
        let ack1 = packet::encode_ack_epoch(Rank(1), 1, SeqNo(1), 1);
        s.handle_datagram(Time::ZERO, &ack1);
        let events: Vec<_> = std::iter::from_fn(|| s.poll_event()).collect();
        assert!(events.contains(&AppEvent::MessageSent { msg_id: 0 }));
        assert!(events.contains(&AppEvent::ReceiverJoined {
            rank: Rank(2),
            epoch: 2
        }));
        let out = drain(&mut s);
        let sync = out
            .iter()
            .find_map(|t| match Packet::parse(&t.payload).unwrap() {
                Packet::Sync { body, .. } => Some(body),
                _ => None,
            })
            .expect("SYNC handed off at the boundary");
        assert_eq!(sync.epoch, 2);
        assert_eq!(sync.next_msg, 1, "first message the joiner must handle");
        assert_eq!(s.stats().joins, 1);
        // The next message waits for both receivers again.
        s.send_message(Time::from_millis(1), Bytes::from(vec![2u8; 100]));
        let _ = drain(&mut s);
        let a1 = packet::encode_ack_epoch(Rank(1), 3, SeqNo(1), 2);
        s.handle_datagram(Time::from_millis(1), &a1);
        assert!(
            s.poll_event().is_none(),
            "the rejoined receiver gates the release again"
        );
        let a2 = packet::encode_ack_epoch(Rank(2), 3, SeqNo(1), 2);
        s.handle_datagram(Time::from_millis(1), &a2);
        assert_eq!(s.poll_event(), Some(AppEvent::MessageSent { msg_id: 1 }));
    }

    #[test]
    fn evicted_member_traffic_is_an_implicit_rejoin() {
        use crate::config::LivenessConfig;
        let mut c = mcfg(ProtocolKind::Ack);
        c.liveness = LivenessConfig::evicting(1);
        let mut s = Sender::new(c, GroupSpec::new(2));
        s.send_message(Time::ZERO, Bytes::from(vec![1u8; 100]));
        let _ = drain(&mut s);
        let ack1 = packet::encode_ack_epoch(Rank(1), 1, SeqNo(1), 1);
        s.handle_datagram(Time::ZERO, &ack1);
        for _ in 0..12 {
            let Some(d) = s.poll_timeout() else { break };
            let reply = packet::encode_heartbeat(Rank(1), s.epoch());
            s.handle_datagram(d, &reply);
            s.handle_timeout(d);
            let _ = drain(&mut s);
        }
        let events: Vec<_> = std::iter::from_fn(|| s.poll_event()).collect();
        assert!(events.contains(&AppEvent::ReceiverEvicted {
            msg_id: 0,
            rank: Rank(2)
        }));
        let epoch = s.epoch();
        // The evicted receiver reappears, echoing the epoch it overheard:
        // that is an implicit rejoin request, admitted on the spot (the
        // sender is at a message boundary).
        let reply = packet::encode_heartbeat(Rank(2), epoch);
        s.handle_datagram(Time::from_millis(500), &reply);
        assert_eq!(
            s.poll_event(),
            Some(AppEvent::ReceiverJoined {
                rank: Rank(2),
                epoch: epoch + 1
            })
        );
    }

    #[test]
    fn adaptive_rto_tracks_samples() {
        let mut c = cfg(ProtocolKind::Ack);
        c.handshake = false;
        c.adaptive_rto = true;
        let mut s = Sender::new(c, GroupSpec::new(1));
        s.send_message(Time::ZERO, Bytes::from(vec![1u8; 100]));
        let _ = drain(&mut s);
        assert_eq!(
            s.poll_timeout(),
            Some(Time::ZERO + c.rto),
            "no sample yet: the fixed RTO applies"
        );
        // The ack arrives 20 ms after transmission: srtt = 20 ms,
        // rttvar = 10 ms, so the estimate is 20 + 4·10 = 60 ms.
        ack(&mut s, Time::from_millis(20), Rank(1), 1, 1);
        assert_eq!(s.poll_event(), Some(AppEvent::MessageSent { msg_id: 0 }));
        s.send_message(Time::from_millis(30), Bytes::from(vec![2u8; 100]));
        let _ = drain(&mut s);
        assert_eq!(
            s.poll_timeout(),
            Some(Time::from_millis(30) + Duration::from_millis(60)),
            "the adaptive estimate replaces the fixed RTO"
        );
    }

    #[test]
    fn leave_evicts_immediately() {
        let mut s = Sender::new(mcfg(ProtocolKind::Ack), GroupSpec::new(2));
        s.send_message(Time::ZERO, Bytes::from(vec![1u8; 100]));
        let _ = drain(&mut s);
        let ack1 = packet::encode_ack_epoch(Rank(1), 1, SeqNo(1), 1);
        s.handle_datagram(Time::ZERO, &ack1);
        s.handle_datagram(Time::ZERO, &packet::encode_leave(Rank(2), 1));
        let events: Vec<_> = std::iter::from_fn(|| s.poll_event()).collect();
        assert!(events.contains(&AppEvent::ReceiverEvicted {
            msg_id: 0,
            rank: Rank(2)
        }));
        assert!(
            events.contains(&AppEvent::MessageSent { msg_id: 0 }),
            "the departure unblocks the survivors"
        );
        assert_eq!(s.epoch(), 2);
        assert_eq!(s.stats().evictions, 1);
    }
}

#[cfg(test)]
mod overload_tests {
    use super::*;
    use crate::config::LivenessConfig;
    use crate::overload::OverloadConfig;
    use crate::packet::{encode_ack, encode_nak};

    fn ocfg(kind: ProtocolKind) -> ProtocolConfig {
        let mut c = ProtocolConfig::new(kind, 100, 4);
        c.handshake = false;
        c.overload = OverloadConfig::adaptive(c.window);
        c
    }

    fn drain(s: &mut Sender) -> Vec<Transmit> {
        std::iter::from_fn(|| s.poll_transmit()).collect()
    }

    fn events(s: &mut Sender) -> Vec<AppEvent> {
        std::iter::from_fn(|| s.poll_event()).collect()
    }

    fn ack(s: &mut Sender, now: Time, rank: Rank, transfer: u32, ne: u32) {
        s.handle_datagram(now, &encode_ack(rank, transfer, SeqNo(ne)));
    }

    #[test]
    fn timeout_shrinks_window_and_acks_regrow_it() {
        let mut c = ocfg(ProtocolKind::Ack);
        c.liveness = LivenessConfig::bounded(10);
        let mut s = Sender::new(c, GroupSpec::new(1));
        // 7 packets, window 4: the window fills.
        s.send_message(Time::ZERO, Bytes::from(vec![1u8; 650]));
        let _ = drain(&mut s);
        let d = s.poll_timeout().expect("armed");
        s.handle_timeout(d);
        let _ = drain(&mut s);
        assert_eq!(s.stats().window_shrinks, 1, "timeout halves the cap");
        // Acknowledge what is outstanding, let the pump refill, and finish:
        // the transfer completes and the acked progress earns growth credit.
        ack(&mut s, d, Rank(1), 1, 4);
        let _ = drain(&mut s);
        ack(&mut s, d, Rank(1), 1, 7);
        assert!(events(&mut s).contains(&AppEvent::MessageSent { msg_id: 0 }));
        assert!(
            s.stats().window_grows >= 1,
            "acked progress regrows the cap"
        );
    }

    #[test]
    fn duplicate_naks_collapse_to_one_loss_signal() {
        let mut s = Sender::new(ocfg(ProtocolKind::Ack), GroupSpec::new(2));
        s.send_message(Time::ZERO, Bytes::from(vec![1u8; 350]));
        let _ = drain(&mut s);
        let now = Time::from_millis(1);
        for _ in 0..3 {
            s.handle_datagram(now, &encode_nak(Rank(2), 1, SeqNo(1)));
        }
        assert_eq!(s.stats().naks_received, 3);
        assert_eq!(s.stats().naks_collapsed, 2, "storm collapsed");
        assert_eq!(s.stats().window_shrinks, 1, "one loss signal, not three");
    }

    #[test]
    fn feedback_storm_is_shed_but_completion_acks_pass() {
        let mut c = ocfg(ProtocolKind::Ack);
        c.overload.feedback_rate = 1; // no meaningful refill at test timescales
        c.overload.feedback_burst = 2;
        let mut s = Sender::new(c, GroupSpec::new(2));
        s.send_message(Time::ZERO, Bytes::from(vec![1u8; 350]));
        let _ = drain(&mut s);
        let now = Time::from_millis(1);
        // Burst of partial ACKs: two admitted (burst), the rest shed.
        for _ in 0..5 {
            ack(&mut s, now, Rank(1), 1, 1);
        }
        assert_eq!(s.stats().acks_shed, 3);
        // Completion ACKs bypass the shedder: the transfer still finishes.
        ack(&mut s, now, Rank(1), 1, 4);
        ack(&mut s, now, Rank(2), 1, 4);
        assert!(events(&mut s).contains(&AppEvent::MessageSent { msg_id: 0 }));
    }

    #[test]
    fn slow_receiver_quarantines_catches_up_and_rejoins() {
        let mut c = ocfg(ProtocolKind::Ack);
        c.liveness = LivenessConfig::bounded(20);
        c.overload.quarantine_after = Some(2);
        let mut s = Sender::new(c, GroupSpec::new(2));
        s.send_message(Time::ZERO, Bytes::from(vec![1u8; 350]));
        let _ = drain(&mut s);
        // Rank 1 is current; rank 2 never acknowledges fresh data.
        ack(&mut s, Time::ZERO, Rank(1), 1, 4);
        for _ in 0..2 {
            let d = s.poll_timeout().expect("armed");
            s.handle_timeout(d);
            let _ = drain(&mut s);
        }
        assert_eq!(s.stats().quarantine_entered, 1);
        assert_eq!(
            s.stats().messages_completed,
            0,
            "completion gated on the quarantined receiver's catch-up"
        );
        // The next wake-up serves a unicast catch-up batch to rank 2.
        let d = s.poll_timeout().expect("catch-up scheduled");
        s.handle_timeout(d);
        let catchup = drain(&mut s)
            .into_iter()
            .filter(|t| t.dest == Dest::Rank(Rank(2)))
            .count();
        assert_eq!(catchup, 4, "one batch from the horizon");
        assert!(s.stats().catchup_retx_sent >= 4);
        // Rank 2 catches up: the message completes and it rejoins.
        ack(&mut s, d, Rank(2), 1, 4);
        assert!(events(&mut s).contains(&AppEvent::MessageSent { msg_id: 0 }));
        assert_eq!(s.stats().quarantine_rejoined, 1);
        assert!(s.is_idle());
    }

    #[test]
    fn quarantine_budget_exhaustion_resolves_through_eviction() {
        let mut c = ocfg(ProtocolKind::Ack);
        c.liveness = LivenessConfig::evicting(20);
        c.overload.quarantine_after = Some(2);
        c.overload.quarantine_budget = 1;
        let mut s = Sender::new(c, GroupSpec::new(2));
        s.send_message(Time::ZERO, Bytes::from(vec![1u8; 350]));
        let _ = drain(&mut s);
        ack(&mut s, Time::ZERO, Rank(1), 1, 4);
        for _ in 0..8 {
            let Some(d) = s.poll_timeout() else { break };
            s.handle_timeout(d);
            let _ = drain(&mut s);
            if s.stats().quarantine_evicted > 0 {
                break;
            }
        }
        assert_eq!(s.stats().quarantine_entered, 1);
        assert_eq!(s.stats().quarantine_evicted, 1, "budget spent");
        assert_eq!(s.stats().evictions, 1);
        let ev = events(&mut s);
        assert!(ev.contains(&AppEvent::ReceiverEvicted {
            msg_id: 0,
            rank: Rank(2)
        }));
        assert!(ev.contains(&AppEvent::MessageSent { msg_id: 0 }));
        assert!(s.is_idle());
    }

    #[test]
    fn backpressure_edges_fire_on_shrunken_window_stall() {
        let mut c = ocfg(ProtocolKind::Ack);
        c.liveness = LivenessConfig::bounded(20);
        let mut s = Sender::new(c, GroupSpec::new(1));
        // 7 packets, window 4.
        s.send_message(Time::ZERO, Bytes::from(vec![1u8; 650]));
        let _ = drain(&mut s);
        // Two timeouts shrink the cap 4 -> 2 -> 1.
        for _ in 0..2 {
            let d = s.poll_timeout().expect("armed");
            s.handle_timeout(d);
            let _ = drain(&mut s);
        }
        assert_eq!(s.stats().window_shrinks, 2);
        // Partial progress leaves occupancy at the clamped cap: stall.
        ack(&mut s, Time::from_millis(40), Rank(1), 1, 1);
        let _ = drain(&mut s);
        assert!(events(&mut s).contains(&AppEvent::Backpressure {
            msg_id: 0,
            congested: true
        }));
        assert_eq!(s.stats().backpressure_signals, 1);
        // Completion regrows the window and clears the edge.
        ack(&mut s, Time::from_millis(41), Rank(1), 1, 4);
        let _ = drain(&mut s);
        ack(&mut s, Time::from_millis(42), Rank(1), 1, 7);
        let ev = events(&mut s);
        assert!(ev.contains(&AppEvent::Backpressure {
            msg_id: 0,
            congested: false
        }));
        assert!(ev.contains(&AppEvent::MessageSent { msg_id: 0 }));
        assert_eq!(s.stats().backpressure_signals, 2);
    }
}
