//! Baselines the paper compares against.
//!
//! * **Raw UDP** (Figure 9): the sender blasts every packet over IP
//!   multicast with no flow control; receivers reply with a single ACK
//!   upon receipt of the last packet. Unreliable by construction — it
//!   bounds the protocol overhead from below.
//! * **"TCP"** (Figure 8): reliable unicast to each receiver in turn. We
//!   model it as the ACK-based engine run over a single-receiver group
//!   without the allocation handshake, once per receiver, sequentially —
//!   see `simrun`'s `SerialUnicast` driver; no extra engine is needed
//!   here.

use crate::endpoint::{AppEvent, Dest, Endpoint, Transmit};
use crate::packet::{self, Packet};
use crate::sender::Sender;
use crate::stats::Stats;
use bytes::Bytes;
use rmwire::{Duration, GroupSpec, PacketFlags, Rank, SeqNo, Time};
use std::collections::VecDeque;

/// The raw-UDP blasting sender.
pub struct RawUdpSender {
    group: GroupSpec,
    packet_size: usize,
    rto: Duration,
    stats: Stats,
    out: VecDeque<Transmit>,
    events: VecDeque<AppEvent>,
    /// Active message: `(msg_id, k, final-ack flags per receiver, last packet)`.
    active: Option<Active>,
    queue: VecDeque<(u64, Bytes)>,
    next_msg_id: u64,
}

struct Active {
    msg_id: u64,
    k: u32,
    acked: Vec<bool>,
    last_packet: Bytes,
    last_tx: Time,
}

impl RawUdpSender {
    /// Build a blaster for `group` with the given packet size.
    pub fn new(group: GroupSpec, packet_size: usize, rto: Duration) -> Self {
        assert!(packet_size >= 1);
        RawUdpSender {
            group,
            packet_size,
            rto,
            stats: Stats::default(),
            out: VecDeque::new(),
            events: VecDeque::new(),
            active: None,
            queue: VecDeque::new(),
            next_msg_id: 0,
        }
    }

    /// Queue a message; it is blasted in one burst when its turn comes.
    pub fn send_message(&mut self, now: Time, data: Bytes) -> u64 {
        let id = self.next_msg_id;
        self.next_msg_id += 1;
        self.queue.push_back((id, data));
        self.start_next(now);
        id
    }

    fn start_next(&mut self, now: Time) {
        if self.active.is_some() {
            return;
        }
        let Some((msg_id, data)) = self.queue.pop_front() else {
            return;
        };
        let transfer = Sender::data_transfer_id(msg_id);
        let k = Sender::packet_count(data.len(), self.packet_size);
        let mut last_packet = Bytes::new();
        for seq in 0..k {
            let start = seq as usize * self.packet_size;
            let end = (start + self.packet_size).min(data.len());
            let chunk = if start < data.len() {
                &data[start..end]
            } else {
                &[][..]
            };
            let mut flags = PacketFlags::EMPTY;
            if seq + 1 == k {
                flags |= PacketFlags::LAST | PacketFlags::POLL;
            }
            let payload = packet::encode_data(Rank::SENDER, transfer, SeqNo(seq), flags, chunk);
            if seq + 1 == k {
                last_packet = payload.clone();
            }
            self.stats.data_sent += 1;
            self.stats.payload_bytes_sent += chunk.len() as u64;
            self.stats.user_copy_bytes += chunk.len() as u64;
            self.out.push_back(Transmit {
                dest: Dest::Receivers,
                payload,
                copied: chunk.len(),
            });
        }
        self.active = Some(Active {
            msg_id,
            k,
            acked: vec![false; self.group.n_receivers as usize],
            last_packet,
            last_tx: now,
        });
    }
}

impl Endpoint for RawUdpSender {
    fn handle_datagram(&mut self, now: Time, datagram: &[u8]) {
        let Ok(Packet::Ack { header, body, .. }) = Packet::parse(datagram) else {
            self.stats.decode_errors += 1;
            return;
        };
        self.stats.acks_received += 1;
        let Some(a) = self.active.as_mut() else {
            return;
        };
        if header.transfer != Sender::data_transfer_id(a.msg_id)
            || body.next_expected.0 < a.k
            || header.src_rank.is_sender()
            || !self.group.contains(header.src_rank)
        {
            return;
        }
        a.acked[header.src_rank.receiver_index()] = true;
        if a.acked.iter().all(|&x| x) {
            let msg_id = a.msg_id;
            self.active = None;
            self.stats.messages_completed += 1;
            self.events.push_back(AppEvent::MessageSent { msg_id });
            self.start_next(now);
        }
    }

    fn handle_timeout(&mut self, now: Time) {
        let rto = self.rto;
        let Some(a) = self.active.as_mut() else {
            return;
        };
        if now.saturating_since(a.last_tx).as_nanos() < rto.as_nanos() {
            return;
        }
        // Re-blast only the last packet to re-trigger the final ACKs.
        a.last_tx = now;
        self.stats.retx_sent += 1;
        self.stats.timeouts += 1;
        self.out.push_back(Transmit {
            dest: Dest::Receivers,
            payload: a.last_packet.clone(),
            copied: 0,
        });
    }

    fn poll_timeout(&self) -> Option<Time> {
        self.active.as_ref().map(|a| a.last_tx + self.rto)
    }

    fn poll_transmit(&mut self) -> Option<Transmit> {
        self.out.pop_front()
    }

    fn poll_event(&mut self) -> Option<AppEvent> {
        self.events.pop_front()
    }

    fn stats(&self) -> &Stats {
        &self.stats
    }

    fn is_idle(&self) -> bool {
        self.active.is_none() && self.queue.is_empty() && self.out.is_empty()
    }
}

/// The raw-UDP receiver: appends in-order data, replies once to the last
/// packet, delivers only if nothing was lost.
pub struct RawUdpReceiver {
    rank: Rank,
    stats: Stats,
    out: VecDeque<Transmit>,
    events: VecDeque<AppEvent>,
    cur_transfer: Option<u32>,
    buf: Vec<u8>,
    next: u32,
    k: Option<u32>,
    delivered: bool,
}

impl RawUdpReceiver {
    /// Build the receiver for `rank`.
    pub fn new(rank: Rank) -> Self {
        assert!(!rank.is_sender());
        RawUdpReceiver {
            rank,
            stats: Stats::default(),
            out: VecDeque::new(),
            events: VecDeque::new(),
            cur_transfer: None,
            buf: Vec::new(),
            next: 0,
            k: None,
            delivered: false,
        }
    }
}

impl Endpoint for RawUdpReceiver {
    fn handle_datagram(&mut self, _now: Time, datagram: &[u8]) {
        let Ok(Packet::Data { header, body }) = Packet::parse(datagram) else {
            self.stats.decode_errors += 1;
            return;
        };
        self.stats.data_received += 1;
        if self.cur_transfer != Some(header.transfer) {
            // New blast begins.
            self.cur_transfer = Some(header.transfer);
            self.buf.clear();
            self.next = 0;
            self.k = None;
            self.delivered = false;
        }
        let seq = header.seq.0;
        if seq == self.next {
            self.buf.extend_from_slice(&body);
            self.next += 1;
        } else if seq < self.next {
            self.stats.data_discarded += 1;
        }
        // Gaps are silently lost: this is raw UDP.
        if header.flags.contains(PacketFlags::LAST) {
            let k = seq + 1;
            self.k = Some(k);
            // Acknowledge receipt of the last packet (paper Fig. 9 setup),
            // whether or not earlier packets were lost.
            self.stats.acks_sent += 1;
            self.out.push_back(Transmit {
                dest: Dest::Sender,
                payload: packet::encode_ack(self.rank, header.transfer, SeqNo(k)),
                copied: 0,
            });
            if self.next == k && !self.delivered {
                self.delivered = true;
                self.stats.messages_completed += 1;
                self.events.push_back(AppEvent::MessageDelivered {
                    msg_id: (header.transfer / 2) as u64,
                    data: Bytes::from(std::mem::take(&mut self.buf)),
                });
            }
        }
        self.stats.sample_buffer(self.buf.len());
    }

    fn handle_timeout(&mut self, _now: Time) {}

    fn poll_timeout(&self) -> Option<Time> {
        None
    }

    fn poll_transmit(&mut self) -> Option<Transmit> {
        self.out.pop_front()
    }

    fn poll_event(&mut self) -> Option<AppEvent> {
        self.events.pop_front()
    }

    fn stats(&self) -> &Stats {
        &self.stats
    }

    fn is_idle(&self) -> bool {
        self.out.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blast_and_final_ack() {
        let g = GroupSpec::new(2);
        let mut s = RawUdpSender::new(g, 100, Duration::from_millis(40));
        let mut r1 = RawUdpReceiver::new(Rank(1));
        let mut r2 = RawUdpReceiver::new(Rank(2));
        s.send_message(Time::ZERO, Bytes::from(vec![5u8; 250]));

        let mut pkts = Vec::new();
        while let Some(t) = s.poll_transmit() {
            assert_eq!(t.dest, Dest::Receivers);
            pkts.push(t.payload);
        }
        assert_eq!(pkts.len(), 3, "250 bytes / 100 = 3 packets, all at once");

        for p in &pkts {
            r1.handle_datagram(Time::ZERO, p);
            r2.handle_datagram(Time::ZERO, p);
        }
        let a1 = r1.poll_transmit().expect("final ack");
        let a2 = r2.poll_transmit().expect("final ack");
        assert!(r1.poll_transmit().is_none(), "exactly one ack per blast");
        match r1.poll_event().unwrap() {
            AppEvent::MessageDelivered { data, .. } => assert_eq!(data.len(), 250),
            other => panic!("{other:?}"),
        }

        s.handle_datagram(Time::ZERO, &a1.payload);
        assert!(s.poll_event().is_none(), "one ack is not enough");
        s.handle_datagram(Time::ZERO, &a2.payload);
        assert_eq!(s.poll_event(), Some(AppEvent::MessageSent { msg_id: 0 }));
        assert!(s.is_idle());
    }

    #[test]
    fn lost_middle_packet_means_no_delivery_but_still_acks() {
        let g = GroupSpec::new(1);
        let mut s = RawUdpSender::new(g, 100, Duration::from_millis(40));
        let mut r = RawUdpReceiver::new(Rank(1));
        s.send_message(Time::ZERO, Bytes::from(vec![5u8; 300]));
        let pkts: Vec<_> = std::iter::from_fn(|| s.poll_transmit()).collect();
        // Drop packet 1.
        r.handle_datagram(Time::ZERO, &pkts[0].payload);
        r.handle_datagram(Time::ZERO, &pkts[2].payload);
        let ack = r.poll_transmit().expect("acks the last packet anyway");
        assert!(r.poll_event().is_none(), "incomplete: no delivery");
        s.handle_datagram(Time::ZERO, &ack.payload);
        assert_eq!(
            s.poll_event(),
            Some(AppEvent::MessageSent { msg_id: 0 }),
            "raw UDP sender believes the blast completed"
        );
    }

    #[test]
    fn timeout_reblasts_last_packet() {
        let g = GroupSpec::new(1);
        let mut s = RawUdpSender::new(g, 100, Duration::from_millis(40));
        s.send_message(Time::ZERO, Bytes::from(vec![5u8; 100]));
        let _ = std::iter::from_fn(|| s.poll_transmit()).count();
        let deadline = s.poll_timeout().unwrap();
        s.handle_timeout(deadline);
        let retx: Vec<_> = std::iter::from_fn(|| s.poll_transmit()).collect();
        assert_eq!(retx.len(), 1);
        assert_eq!(s.stats().retx_sent, 1);
    }
}

/// The Figure 8 "TCP" baseline: a reliable unicast transfer to each
/// receiver **in turn**, modelling a message-passing library realizing a
/// broadcast over point-to-point TCP connections.
///
/// Internally this wraps one single-receiver ACK-engine per receiver and
/// activates them sequentially; transmits are rewritten from the
/// engine-local group destination to the global rank being served.
pub struct SerialUnicastSender {
    group: GroupSpec,
    subs: Vec<Sender>,
    active: usize,
    stats: Stats,
    events: VecDeque<AppEvent>,
    started: bool,
    /// Per-receiver payloads (identical for a broadcast, distinct for a
    /// scatter).
    parts: Option<Vec<Bytes>>,
}

impl SerialUnicastSender {
    /// A serial-unicast sender over `group` using a TCP-like segment size
    /// and window (in segments).
    pub fn new(group: GroupSpec, segment_size: usize, window: usize) -> Self {
        use crate::config::{ProtocolConfig, ProtocolKind};
        let mut cfg = ProtocolConfig::new(ProtocolKind::Ack, segment_size, window);
        cfg.handshake = false; // TCP is a stream: no allocation round trip
        let subs = group
            .receivers()
            .map(|_| Sender::new(cfg, GroupSpec::new(1)))
            .collect();
        SerialUnicastSender {
            group,
            subs,
            active: 0,
            stats: Stats::default(),
            events: VecDeque::new(),
            started: false,
            parts: None,
        }
    }

    /// Start transferring `data` to every receiver, one after another.
    /// Only a single message is supported (the Figure 8 workload).
    pub fn send_message(&mut self, now: Time, data: Bytes) {
        let n = self.subs.len();
        self.send_scatter(now, vec![data; n]);
    }

    /// MPI-style scatter: deliver `parts[i]` to receiver rank `i + 1`,
    /// reliably, one receiver after another.
    pub fn send_scatter(&mut self, now: Time, parts: Vec<Bytes>) {
        assert!(!self.started, "serial unicast carries a single message");
        assert_eq!(
            parts.len(),
            self.subs.len(),
            "scatter needs exactly one part per receiver"
        );
        self.started = true;
        let first = parts[0].clone();
        self.parts = Some(parts);
        self.subs[0].send_message(now, first);
    }

    fn advance_if_done(&mut self, now: Time) {
        while self.active < self.subs.len() {
            let sub = &mut self.subs[self.active];
            match sub.poll_event() {
                Some(AppEvent::MessageSent { .. }) => {
                    self.active += 1;
                    if self.active < self.subs.len() {
                        let data = self.parts.as_ref().expect("message set")[self.active].clone();
                        self.subs[self.active].send_message(now, data);
                    } else {
                        self.stats.messages_completed += 1;
                        self.events.push_back(AppEvent::MessageSent { msg_id: 0 });
                    }
                }
                Some(_) => {}
                None => break,
            }
        }
    }

    fn merge_sub_stats(&mut self) {
        let mut merged = Stats::default();
        for s in &self.subs {
            merged.merge(s.stats());
        }
        merged.messages_completed = self.stats.messages_completed;
        merged.peak_buffer_bytes = self
            .subs
            .iter()
            .map(|s| s.stats().peak_buffer_bytes)
            .max()
            .unwrap_or(0);
        self.stats = Stats {
            messages_completed: self.stats.messages_completed,
            ..merged
        };
    }
}

impl Endpoint for SerialUnicastSender {
    fn handle_datagram(&mut self, now: Time, datagram: &[u8]) {
        if self.active < self.subs.len() {
            self.subs[self.active].handle_datagram(now, datagram);
            self.advance_if_done(now);
        }
        self.merge_sub_stats();
    }

    fn handle_timeout(&mut self, now: Time) {
        if self.active < self.subs.len() {
            self.subs[self.active].handle_timeout(now);
        }
    }

    fn poll_timeout(&self) -> Option<Time> {
        self.subs.get(self.active).and_then(|s| s.poll_timeout())
    }

    fn poll_transmit(&mut self) -> Option<Transmit> {
        let active = self.active;
        let sub = self.subs.get_mut(active)?;
        let t = sub.poll_transmit()?;
        // The engine-local group has exactly one receiver; rewrite both
        // group and per-rank destinations to the global rank being served.
        let global = Rank::from_receiver_index(active);
        debug_assert!(self.group.contains(global));
        Some(Transmit {
            dest: Dest::Rank(global),
            ..t
        })
    }

    fn poll_event(&mut self) -> Option<AppEvent> {
        self.events.pop_front()
    }

    fn stats(&self) -> &Stats {
        &self.stats
    }

    fn is_idle(&self) -> bool {
        self.active >= self.subs.len()
    }
}

#[cfg(test)]
mod serial_tests {
    use super::*;
    use crate::config::{ProtocolConfig, ProtocolKind};
    use crate::endpoint::Endpoint;
    use crate::receiver::Receiver;

    #[test]
    fn serial_unicast_visits_receivers_in_order() {
        let g = GroupSpec::new(3);
        let mut s = SerialUnicastSender::new(g, 1000, 8);
        let mut cfg = ProtocolConfig::new(ProtocolKind::Ack, 1000, 8);
        cfg.handshake = false;
        let mut receivers: Vec<Receiver> = (0..3)
            .map(|_| Receiver::new(cfg, GroupSpec::new(1), Rank(1), 7))
            .collect();

        s.send_message(Time::ZERO, Bytes::from(vec![9u8; 2500]));
        let mut served = Vec::new();
        for _round in 0..100 {
            let mut moved = false;
            while let Some(t) = s.poll_transmit() {
                moved = true;
                let Dest::Rank(r) = t.dest else {
                    panic!("serial unicast must unicast")
                };
                served.push(r);
                let idx = r.receiver_index();
                receivers[idx].handle_datagram(Time::ZERO, &t.payload);
                while let Some(a) = receivers[idx].poll_transmit() {
                    s.handle_datagram(Time::ZERO, &a.payload);
                }
            }
            if !moved {
                break;
            }
        }
        assert_eq!(s.poll_event(), Some(AppEvent::MessageSent { msg_id: 0 }));
        assert!(s.is_idle());
        // Receiver 1 fully served before 2, before 3.
        let first_2 = served.iter().position(|r| *r == Rank(2)).unwrap();
        let last_1 = served.iter().rposition(|r| *r == Rank(1)).unwrap();
        assert!(last_1 < first_2, "receiver 1 must finish before 2 starts");
        assert_eq!(s.stats().data_sent, 9, "3 packets x 3 receivers");
        for r in &receivers {
            assert_eq!(r.stats().messages_completed, 1);
        }
    }
}

#[cfg(test)]
mod scatter_tests {
    use super::*;
    use crate::config::{ProtocolConfig, ProtocolKind};
    use crate::endpoint::Endpoint;
    use crate::receiver::Receiver;

    #[test]
    fn scatter_delivers_distinct_parts() {
        let g = GroupSpec::new(3);
        let mut s = SerialUnicastSender::new(g, 500, 4);
        let mut cfg = ProtocolConfig::new(ProtocolKind::Ack, 500, 4);
        cfg.handshake = false;
        let mut receivers: Vec<Receiver> = (0..3)
            .map(|_| Receiver::new(cfg, GroupSpec::new(1), Rank(1), 3))
            .collect();

        let parts: Vec<Bytes> = (0..3u8)
            .map(|i| Bytes::from(vec![i; 700 + i as usize * 100]))
            .collect();
        s.send_scatter(Time::ZERO, parts.clone());

        let mut delivered: Vec<Option<Bytes>> = vec![None; 3];
        for _ in 0..100 {
            let mut moved = false;
            while let Some(t) = s.poll_transmit() {
                moved = true;
                let Dest::Rank(r) = t.dest else {
                    panic!("must unicast")
                };
                let idx = r.receiver_index();
                receivers[idx].handle_datagram(Time::ZERO, &t.payload);
                while let Some(a) = receivers[idx].poll_transmit() {
                    s.handle_datagram(Time::ZERO, &a.payload);
                }
                while let Some(AppEvent::MessageDelivered { data, .. }) =
                    receivers[idx].poll_event()
                {
                    delivered[idx] = Some(data);
                }
            }
            if !moved {
                break;
            }
        }
        assert_eq!(s.poll_event(), Some(AppEvent::MessageSent { msg_id: 0 }));
        for (i, d) in delivered.iter().enumerate() {
            assert_eq!(d.as_ref().expect("delivered"), &parts[i]);
        }
    }

    #[test]
    #[should_panic(expected = "one part per receiver")]
    fn scatter_part_count_checked() {
        let mut s = SerialUnicastSender::new(GroupSpec::new(3), 500, 4);
        s.send_scatter(Time::ZERO, vec![Bytes::new(); 2]);
    }
}
