//! Building and parsing complete protocol datagrams (header + body).

use bytes::{Buf, Bytes, BytesMut};
use rmwire::{
    AckBody, AllocBody, Header, HeartbeatBody, JoinBody, LeaveBody, NakBody, PacketFlags,
    PacketType, Rank, RepairBody, SeqNo, SyncBody, WelcomeBody, WireError, HEADER_LEN,
};

/// A fully parsed incoming packet.
#[derive(Debug, Clone)]
pub enum Packet {
    /// Application data chunk.
    Data {
        /// Parsed header.
        header: Header,
        /// The data bytes (already detached from the receive buffer).
        body: Bytes,
    },
    /// Buffer-allocation request (a `Data` packet flagged `ALLOC`).
    Alloc {
        /// Parsed header.
        header: Header,
        /// Allocation body.
        body: AllocBody,
    },
    /// Cumulative acknowledgment.
    Ack {
        /// Parsed header.
        header: Header,
        /// Acknowledgment body.
        body: AckBody,
        /// Membership epoch the acknowledging receiver believed in, present
        /// only when the group runs with membership enabled.
        epoch: Option<u32>,
    },
    /// Negative acknowledgment.
    Nak {
        /// Parsed header.
        header: Header,
        /// NAK body.
        body: NakBody,
        /// Membership epoch, as for [`Packet::Ack`].
        epoch: Option<u32>,
    },
    /// Admission request from a (re)joining receiver.
    Join {
        /// Parsed header.
        header: Header,
        /// Join body.
        body: JoinBody,
    },
    /// The sender's immediate acknowledgment of a `Join`.
    Welcome {
        /// Parsed header.
        header: Header,
        /// Welcome body.
        body: WelcomeBody,
    },
    /// Voluntary departure announcement.
    Leave {
        /// Parsed header.
        header: Header,
        /// Leave body.
        body: LeaveBody,
    },
    /// Liveness beacon (sender announce when `src_rank == 0`, receiver
    /// reply otherwise).
    Heartbeat {
        /// Parsed header.
        header: Header,
        /// Heartbeat body.
        body: HeartbeatBody,
    },
    /// Admission handoff to a joiner.
    Sync {
        /// Parsed header.
        header: Header,
        /// Sync body.
        body: SyncBody,
    },
    /// Reactive coded repair: XOR of the packets named by `body`.
    Repair {
        /// Parsed header.
        header: Header,
        /// Coded-block header (seq set + generation).
        body: RepairBody,
        /// The XOR of the named chunks, each zero-padded to the
        /// transfer's packet size.
        payload: Bytes,
    },
    /// Proactive parity over the last *k* data packets (same layout as
    /// [`Packet::Repair`], different emission policy).
    Parity {
        /// Parsed header.
        header: Header,
        /// Coded-block header (seq set + generation).
        body: RepairBody,
        /// The XOR of the named chunks, zero-padded to packet size.
        payload: Bytes,
    },
}

impl Packet {
    /// Parse a received datagram without requiring an integrity trailer
    /// (checksummed packets are still verified when the flag is present).
    pub fn parse(datagram: &[u8]) -> Result<Packet, WireError> {
        Packet::parse_checked(datagram, false)
    }

    /// Parse a received datagram, verifying the CRC-32C trailer of any
    /// packet flagged [`PacketFlags::CKSUM`]. With `require_integrity`
    /// the decoder *fails closed*: a packet without the flag is rejected
    /// ([`WireError::ChecksumMissing`]), so a corrupting flip that clears
    /// the flag bit itself cannot smuggle bytes past verification.
    pub fn parse_checked(datagram: &[u8], require_integrity: bool) -> Result<Packet, WireError> {
        let _span = rmprof::span!(rmprof::Stage::WireDecode);
        // The flag byte sits at a fixed offset; peek it before the full
        // header decode so the checksum covers exactly the sealed bytes.
        let sealed = datagram.len() >= HEADER_LEN
            && datagram
                .get(1)
                .is_some_and(|&b| b & PacketFlags::CKSUM.bits() != 0);
        let datagram = if sealed {
            let Some(body_len) = datagram.len().checked_sub(4).filter(|&n| n >= HEADER_LEN) else {
                return Err(WireError::Truncated {
                    need: HEADER_LEN + 4,
                    have: datagram.len(),
                });
            };
            let (body, trailer) = datagram.split_at(body_len);
            let expected = match <[u8; 4]>::try_from(trailer) {
                Ok(raw) => u32::from_be_bytes(raw),
                // split_at gave exactly 4 trailer bytes; a mismatch here
                // means the arithmetic above drifted — fail closed.
                Err(_) => return Err(WireError::ChecksumMissing),
            };
            let crc_span = rmprof::span!(rmprof::Stage::WireCrc);
            let actual = rmwire::crc32c(body);
            drop(crc_span);
            if expected != actual {
                return Err(WireError::ChecksumMismatch { expected, actual });
            }
            body
        } else if require_integrity {
            // Still surface the more precise error for runts.
            if datagram.len() < HEADER_LEN {
                return Err(WireError::Truncated {
                    need: HEADER_LEN,
                    have: datagram.len(),
                });
            }
            return Err(WireError::ChecksumMissing);
        } else {
            datagram
        };

        let mut buf = datagram;
        let header = Header::decode(&mut buf)?;
        let packet = match header.ptype {
            PacketType::Data => {
                if header.flags.contains(PacketFlags::ALLOC) {
                    let body = AllocBody::decode(&mut buf)?;
                    Packet::Alloc { header, body }
                } else {
                    // Arbitrary application bytes: consume everything.
                    let body = Bytes::copy_from_slice(buf);
                    buf = &[];
                    Packet::Data { header, body }
                }
            }
            PacketType::Ack => {
                let body = AckBody::decode(&mut buf)?;
                let epoch = decode_epoch_tail(&mut buf)?;
                Packet::Ack {
                    header,
                    body,
                    epoch,
                }
            }
            PacketType::Nak => {
                let body = NakBody::decode(&mut buf)?;
                let epoch = decode_epoch_tail(&mut buf)?;
                Packet::Nak {
                    header,
                    body,
                    epoch,
                }
            }
            PacketType::Join => {
                let body = JoinBody::decode(&mut buf)?;
                Packet::Join { header, body }
            }
            PacketType::Welcome => {
                let body = WelcomeBody::decode(&mut buf)?;
                Packet::Welcome { header, body }
            }
            PacketType::Leave => {
                let body = LeaveBody::decode(&mut buf)?;
                Packet::Leave { header, body }
            }
            PacketType::Heartbeat => {
                let body = HeartbeatBody::decode(&mut buf)?;
                Packet::Heartbeat { header, body }
            }
            PacketType::Sync => {
                let body = SyncBody::decode(&mut buf)?;
                Packet::Sync { header, body }
            }
            PacketType::Repair | PacketType::Parity => {
                let body = RepairBody::decode(&mut buf)?;
                // An XOR block with no coded bytes is unencodable: even a
                // zero-length tail chunk pads to the packet size.
                if buf.is_empty() {
                    return Err(WireError::Truncated { need: 1, have: 0 });
                }
                let payload = Bytes::copy_from_slice(buf);
                buf = &[];
                if header.ptype == PacketType::Repair {
                    Packet::Repair {
                        header,
                        body,
                        payload,
                    }
                } else {
                    Packet::Parity {
                        header,
                        body,
                        payload,
                    }
                }
            }
        };
        // Strict decode: a well-formed body leaves nothing behind. (Data
        // bodies consume the whole buffer above.)
        if !buf.is_empty() {
            return Err(WireError::TrailingGarbage { extra: buf.len() });
        }
        Ok(packet)
    }

    /// The parsed header, whichever variant.
    pub fn header(&self) -> &Header {
        match self {
            Packet::Data { header, .. }
            | Packet::Alloc { header, .. }
            | Packet::Ack { header, .. }
            | Packet::Nak { header, .. }
            | Packet::Join { header, .. }
            | Packet::Welcome { header, .. }
            | Packet::Leave { header, .. }
            | Packet::Heartbeat { header, .. }
            | Packet::Sync { header, .. }
            | Packet::Repair { header, .. }
            | Packet::Parity { header, .. } => header,
        }
    }
}

/// Decode the optional 4-byte epoch trailer on ACK/NAK packets. A group
/// running without membership emits no trailer, so the disabled wire format
/// is byte-identical to the paper's.
fn decode_epoch_tail<B: Buf>(buf: &mut B) -> Result<Option<u32>, WireError> {
    match buf.remaining() {
        0 => Ok(None),
        n if n >= 4 => Ok(Some(buf.get_u32())),
        have => Err(WireError::Truncated { need: 4, have }),
    }
}

/// Seal an encoded packet with the integrity trailer: set
/// [`PacketFlags::CKSUM`] in the header's flag byte and append the
/// big-endian CRC-32C of every preceding byte. The inverse lives in
/// [`Packet::parse_checked`].
pub fn seal(packet: &[u8]) -> Bytes {
    let _span = rmprof::span!(rmprof::Stage::WireEncode);
    debug_assert!(packet.len() >= HEADER_LEN, "cannot seal a runt");
    let mut buf = BytesMut::with_capacity(packet.len() + 4);
    buf.extend_from_slice(packet);
    if let Some(flags) = buf.get_mut(1) {
        *flags |= PacketFlags::CKSUM.bits();
    }
    let crc_span = rmprof::span!(rmprof::Stage::WireCrc);
    let crc = rmwire::crc32c(&buf);
    drop(crc_span);
    bytes::BufMut::put_u32(&mut buf, crc);
    buf.freeze()
}

/// Encode a data packet.
pub fn encode_data(
    src_rank: Rank,
    transfer: u32,
    seq: SeqNo,
    flags: PacketFlags,
    chunk: &[u8],
) -> Bytes {
    let _span = rmprof::span!(rmprof::Stage::WireEncode);
    let mut buf = BytesMut::with_capacity(HEADER_LEN + chunk.len());
    Header {
        ptype: PacketType::Data,
        flags,
        src_rank,
        transfer,
        seq,
    }
    .encode(&mut buf);
    buf.extend_from_slice(chunk);
    buf.freeze()
}

/// Encode a buffer-allocation request packet.
pub fn encode_alloc(src_rank: Rank, transfer: u32, flags: PacketFlags, body: AllocBody) -> Bytes {
    let _span = rmprof::span!(rmprof::Stage::WireEncode);
    let mut buf = BytesMut::with_capacity(HEADER_LEN + AllocBody::LEN);
    Header {
        ptype: PacketType::Data,
        flags: flags | PacketFlags::ALLOC,
        src_rank,
        transfer,
        seq: SeqNo::ZERO,
    }
    .encode(&mut buf);
    body.encode(&mut buf);
    buf.freeze()
}

/// Encode a cumulative ACK.
pub fn encode_ack(src_rank: Rank, transfer: u32, next_expected: SeqNo) -> Bytes {
    let _span = rmprof::span!(rmprof::Stage::WireEncode);
    let mut buf = BytesMut::with_capacity(HEADER_LEN + AckBody::LEN);
    Header {
        ptype: PacketType::Ack,
        flags: PacketFlags::EMPTY,
        src_rank,
        transfer,
        seq: next_expected,
    }
    .encode(&mut buf);
    AckBody { next_expected }.encode(&mut buf);
    buf.freeze()
}

/// Encode a NAK for the first missing sequence number.
pub fn encode_nak(src_rank: Rank, transfer: u32, expected: SeqNo) -> Bytes {
    let _span = rmprof::span!(rmprof::Stage::WireEncode);
    let mut buf = BytesMut::with_capacity(HEADER_LEN + NakBody::LEN);
    Header {
        ptype: PacketType::Nak,
        flags: PacketFlags::EMPTY,
        src_rank,
        transfer,
        seq: expected,
    }
    .encode(&mut buf);
    NakBody { expected }.encode(&mut buf);
    buf.freeze()
}

/// Encode a cumulative ACK stamped with the membership epoch (used only
/// when membership is enabled; the trailer makes stale-epoch ACKs
/// detectable).
pub fn encode_ack_epoch(src_rank: Rank, transfer: u32, next_expected: SeqNo, epoch: u32) -> Bytes {
    let _span = rmprof::span!(rmprof::Stage::WireEncode);
    let mut buf = BytesMut::with_capacity(HEADER_LEN + AckBody::LEN + 4);
    Header {
        ptype: PacketType::Ack,
        flags: PacketFlags::EMPTY,
        src_rank,
        transfer,
        seq: next_expected,
    }
    .encode(&mut buf);
    AckBody { next_expected }.encode(&mut buf);
    bytes::BufMut::put_u32(&mut buf, epoch);
    buf.freeze()
}

/// Encode an epoch-stamped NAK (membership-enabled counterpart of
/// [`encode_nak`]).
pub fn encode_nak_epoch(src_rank: Rank, transfer: u32, expected: SeqNo, epoch: u32) -> Bytes {
    let _span = rmprof::span!(rmprof::Stage::WireEncode);
    let mut buf = BytesMut::with_capacity(HEADER_LEN + NakBody::LEN + 4);
    Header {
        ptype: PacketType::Nak,
        flags: PacketFlags::EMPTY,
        src_rank,
        transfer,
        seq: expected,
    }
    .encode(&mut buf);
    NakBody { expected }.encode(&mut buf);
    bytes::BufMut::put_u32(&mut buf, epoch);
    buf.freeze()
}

/// Encode an admission request. `last_epoch` is the epoch the joiner last
/// belonged to (zero for a fresh join).
pub fn encode_join(src_rank: Rank, last_epoch: u32) -> Bytes {
    let mut buf = BytesMut::with_capacity(HEADER_LEN + JoinBody::LEN);
    Header {
        ptype: PacketType::Join,
        flags: PacketFlags::EMPTY,
        src_rank,
        transfer: 0,
        seq: SeqNo::ZERO,
    }
    .encode(&mut buf);
    JoinBody { last_epoch }.encode(&mut buf);
    buf.freeze()
}

/// Encode the sender's immediate response to a join request.
pub fn encode_welcome(src_rank: Rank, epoch: u32) -> Bytes {
    let mut buf = BytesMut::with_capacity(HEADER_LEN + WelcomeBody::LEN);
    Header {
        ptype: PacketType::Welcome,
        flags: PacketFlags::EMPTY,
        src_rank,
        transfer: 0,
        seq: SeqNo::ZERO,
    }
    .encode(&mut buf);
    WelcomeBody { epoch }.encode(&mut buf);
    buf.freeze()
}

/// Encode a voluntary departure announcement.
pub fn encode_leave(src_rank: Rank, epoch: u32) -> Bytes {
    let mut buf = BytesMut::with_capacity(HEADER_LEN + LeaveBody::LEN);
    Header {
        ptype: PacketType::Leave,
        flags: PacketFlags::EMPTY,
        src_rank,
        transfer: 0,
        seq: SeqNo::ZERO,
    }
    .encode(&mut buf);
    LeaveBody { epoch }.encode(&mut buf);
    buf.freeze()
}

/// Encode a liveness beacon. The sender's multicast announce carries
/// `Rank::SENDER`; receiver replies carry their own rank.
pub fn encode_heartbeat(src_rank: Rank, epoch: u32) -> Bytes {
    let mut buf = BytesMut::with_capacity(HEADER_LEN + HeartbeatBody::LEN);
    Header {
        ptype: PacketType::Heartbeat,
        flags: PacketFlags::EMPTY,
        src_rank,
        transfer: 0,
        seq: SeqNo::ZERO,
    }
    .encode(&mut buf);
    HeartbeatBody { epoch }.encode(&mut buf);
    buf.freeze()
}

/// Encode a reactive coded-repair packet: `payload` is the XOR of the
/// chunks named by `body`, each zero-padded to the transfer's packet size.
pub fn encode_repair(src_rank: Rank, transfer: u32, body: RepairBody, payload: &[u8]) -> Bytes {
    encode_coded(PacketType::Repair, src_rank, transfer, body, payload)
}

/// Encode a proactive parity packet (same body layout as a repair).
pub fn encode_parity(src_rank: Rank, transfer: u32, body: RepairBody, payload: &[u8]) -> Bytes {
    encode_coded(PacketType::Parity, src_rank, transfer, body, payload)
}

fn encode_coded(
    ptype: PacketType,
    src_rank: Rank,
    transfer: u32,
    body: RepairBody,
    payload: &[u8],
) -> Bytes {
    let _span = rmprof::span!(rmprof::Stage::WireEncode);
    debug_assert!(body.bitmap & 1 == 1, "coded bitmap must be canonical");
    debug_assert!(!payload.is_empty(), "coded payload cannot be empty");
    let mut buf = BytesMut::with_capacity(HEADER_LEN + RepairBody::LEN + payload.len());
    Header {
        ptype,
        flags: PacketFlags::EMPTY,
        src_rank,
        transfer,
        seq: SeqNo(body.base_seq),
    }
    .encode(&mut buf);
    body.encode(&mut buf);
    buf.extend_from_slice(payload);
    buf.freeze()
}

/// Encode the admission handoff for one joiner.
pub fn encode_sync(src_rank: Rank, body: SyncBody) -> Bytes {
    let mut buf = BytesMut::with_capacity(HEADER_LEN + SyncBody::LEN);
    Header {
        ptype: PacketType::Sync,
        flags: PacketFlags::EMPTY,
        src_rank,
        transfer: body.next_transfer,
        seq: SeqNo::ZERO,
    }
    .encode(&mut buf);
    body.encode(&mut buf);
    buf.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_round_trip() {
        let b = encode_data(
            Rank(0),
            5,
            SeqNo(9),
            PacketFlags::POLL | PacketFlags::LAST,
            b"hello",
        );
        match Packet::parse(&b).unwrap() {
            Packet::Data { header, body } => {
                assert_eq!(header.transfer, 5);
                assert_eq!(header.seq, SeqNo(9));
                assert!(header.flags.contains(PacketFlags::POLL));
                assert!(header.flags.contains(PacketFlags::LAST));
                assert_eq!(&body[..], b"hello");
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn alloc_round_trip() {
        let body = AllocBody {
            msg_len: 123,
            data_transfer: 6,
            packet_size: 500,
        };
        let b = encode_alloc(Rank(0), 5, PacketFlags::LAST, body);
        match Packet::parse(&b).unwrap() {
            Packet::Alloc { header, body } => {
                assert!(header.flags.contains(PacketFlags::ALLOC));
                assert!(header.flags.contains(PacketFlags::LAST));
                assert_eq!(body.msg_len, 123);
                assert_eq!(body.data_transfer, 6);
                assert_eq!(body.packet_size, 500);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn ack_and_nak_round_trip() {
        let a = encode_ack(Rank(3), 7, SeqNo(100));
        match Packet::parse(&a).unwrap() {
            Packet::Ack {
                header,
                body,
                epoch,
            } => {
                assert_eq!(header.src_rank, Rank(3));
                assert_eq!(body.next_expected, SeqNo(100));
                assert_eq!(epoch, None, "plain ACKs carry no epoch trailer");
            }
            other => panic!("wrong variant: {other:?}"),
        }
        let n = encode_nak(Rank(4), 7, SeqNo(55));
        match Packet::parse(&n).unwrap() {
            Packet::Nak {
                header,
                body,
                epoch,
            } => {
                assert_eq!(header.src_rank, Rank(4));
                assert_eq!(body.expected, SeqNo(55));
                assert_eq!(epoch, None);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn epoch_stamped_ack_and_nak_round_trip() {
        let a = encode_ack_epoch(Rank(3), 7, SeqNo(100), 9);
        assert_eq!(
            a.len(),
            encode_ack(Rank(3), 7, SeqNo(100)).len() + 4,
            "epoch trailer adds exactly four bytes"
        );
        match Packet::parse(&a).unwrap() {
            Packet::Ack { body, epoch, .. } => {
                assert_eq!(body.next_expected, SeqNo(100));
                assert_eq!(epoch, Some(9));
            }
            other => panic!("wrong variant: {other:?}"),
        }
        let n = encode_nak_epoch(Rank(4), 7, SeqNo(55), 2);
        match Packet::parse(&n).unwrap() {
            Packet::Nak { body, epoch, .. } => {
                assert_eq!(body.expected, SeqNo(55));
                assert_eq!(epoch, Some(2));
            }
            other => panic!("wrong variant: {other:?}"),
        }
        // A ragged trailer (neither absent nor 4 bytes) is rejected.
        let ragged = &a[..a.len() - 2];
        assert!(Packet::parse(ragged).is_err());
    }

    #[test]
    fn membership_packets_round_trip() {
        match Packet::parse(&encode_join(Rank(5), 3)).unwrap() {
            Packet::Join { header, body } => {
                assert_eq!(header.src_rank, Rank(5));
                assert_eq!(body.last_epoch, 3);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        match Packet::parse(&encode_welcome(Rank(0), 4)).unwrap() {
            Packet::Welcome { body, .. } => assert_eq!(body.epoch, 4),
            other => panic!("wrong variant: {other:?}"),
        }
        match Packet::parse(&encode_leave(Rank(2), 4)).unwrap() {
            Packet::Leave { header, body } => {
                assert_eq!(header.src_rank, Rank(2));
                assert_eq!(body.epoch, 4);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        match Packet::parse(&encode_heartbeat(Rank(0), 7)).unwrap() {
            Packet::Heartbeat { header, body } => {
                assert_eq!(header.src_rank, Rank::SENDER);
                assert_eq!(body.epoch, 7);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        let sync = SyncBody {
            epoch: 8,
            next_msg: 12,
            next_transfer: 24,
            flags: SyncBody::DETACHED_ROOT,
        };
        match Packet::parse(&encode_sync(Rank(0), sync)).unwrap() {
            Packet::Sync { header, body } => {
                assert_eq!(header.transfer, 24);
                assert_eq!(body.next_msg, 12);
                assert!(body.detached_root());
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn repair_and_parity_round_trip() {
        let body = RepairBody {
            base_seq: 4,
            generation: 2,
            bitmap: 0b101,
        };
        let r = encode_repair(Rank(0), 3, body, b"\x12\x34");
        match Packet::parse(&r).unwrap() {
            Packet::Repair {
                header,
                body: b,
                payload,
            } => {
                assert_eq!(header.transfer, 3);
                assert_eq!(header.seq, SeqNo(4));
                assert_eq!(b, body);
                assert_eq!(&payload[..], b"\x12\x34");
            }
            other => panic!("wrong variant: {other:?}"),
        }
        let p = encode_parity(Rank(0), 3, body, b"\x56");
        match Packet::parse(&p).unwrap() {
            Packet::Parity { payload, .. } => assert_eq!(&payload[..], b"\x56"),
            other => panic!("wrong variant: {other:?}"),
        }
        // Sealed round trip too: the CRC covers the coded payload.
        assert!(Packet::parse_checked(&seal(&r), true).is_ok());
        // Empty coded payload is rejected, not delivered.
        assert!(Packet::parse(&r[..HEADER_LEN + RepairBody::LEN]).is_err());
    }

    #[test]
    fn garbage_rejected() {
        assert!(Packet::parse(&[]).is_err());
        assert!(Packet::parse(&[0xff; 20]).is_err());
        // Valid header but truncated ACK body.
        let full = encode_ack(Rank(1), 1, SeqNo(1));
        assert!(Packet::parse(&full[..HEADER_LEN + 1]).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut a = encode_ack(Rank(1), 1, SeqNo(1)).to_vec();
        a.extend_from_slice(&[0xaa; 4]); // looks like an epoch trailer
        a.push(0xbb); // ...plus one stray byte
        assert!(matches!(
            Packet::parse(&a),
            Err(WireError::TrailingGarbage { extra: 1 })
        ));
        let mut j = encode_join(Rank(5), 3).to_vec();
        j.extend_from_slice(b"xx");
        assert!(matches!(
            Packet::parse(&j),
            Err(WireError::TrailingGarbage { extra: 2 })
        ));
    }

    #[test]
    fn sealed_round_trip_and_flip_detection() {
        let plain = encode_data(Rank(0), 5, SeqNo(9), PacketFlags::POLL, b"payload");
        let sealed = seal(&plain);
        assert_eq!(sealed.len(), plain.len() + 4);
        // Verifies in both lenient and strict modes.
        for strict in [false, true] {
            match Packet::parse_checked(&sealed, strict).unwrap() {
                Packet::Data { header, body } => {
                    assert!(header.flags.contains(PacketFlags::CKSUM));
                    assert_eq!(&body[..], b"payload");
                }
                other => panic!("wrong variant: {other:?}"),
            }
        }
        // Every single-bit flip anywhere in the sealed packet is caught
        // in strict mode (flips in the CKSUM bit itself downgrade to
        // ChecksumMissing; flips elsewhere to mismatch or header errors).
        for byte in 0..sealed.len() {
            for bit in 0..8 {
                let mut bad = sealed.to_vec();
                bad[byte] ^= 1 << bit;
                assert!(
                    Packet::parse_checked(&bad, true).is_err(),
                    "flip at {byte}.{bit} went undetected"
                );
            }
        }
        // Unsealed packets fail closed under strict mode.
        assert!(matches!(
            Packet::parse_checked(&plain, true),
            Err(WireError::ChecksumMissing)
        ));
        // A sealed runt (trailer would eat into the header) is rejected.
        assert!(Packet::parse_checked(&sealed[..HEADER_LEN + 2], true).is_err());
    }

    #[test]
    fn sealed_control_packets_round_trip() {
        for pkt in [
            encode_ack_epoch(Rank(3), 7, SeqNo(100), 9),
            encode_nak(Rank(4), 7, SeqNo(55)),
            encode_heartbeat(Rank(0), 7),
            encode_sync(
                Rank(0),
                SyncBody {
                    epoch: 8,
                    next_msg: 12,
                    next_transfer: 24,
                    flags: 0,
                },
            ),
        ] {
            let sealed = seal(&pkt);
            assert!(Packet::parse_checked(&sealed, true).is_ok());
            // Corrupt the trailer itself: mismatch.
            let mut bad = sealed.to_vec();
            let n = bad.len();
            bad[n - 1] ^= 0xff;
            assert!(matches!(
                Packet::parse_checked(&bad, true),
                Err(WireError::ChecksumMismatch { .. })
            ));
        }
    }

    #[test]
    fn empty_data_packet_allowed() {
        let b = encode_data(Rank(0), 0, SeqNo(0), PacketFlags::LAST, b"");
        match Packet::parse(&b).unwrap() {
            Packet::Data { body, .. } => assert!(body.is_empty()),
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
