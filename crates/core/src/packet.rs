//! Building and parsing complete protocol datagrams (header + body).

use bytes::{Bytes, BytesMut};
use rmwire::{
    AckBody, AllocBody, Header, NakBody, PacketFlags, PacketType, Rank, SeqNo, WireError,
    HEADER_LEN,
};

/// A fully parsed incoming packet.
#[derive(Debug, Clone)]
pub enum Packet {
    /// Application data chunk.
    Data {
        /// Parsed header.
        header: Header,
        /// The data bytes (already detached from the receive buffer).
        body: Bytes,
    },
    /// Buffer-allocation request (a `Data` packet flagged `ALLOC`).
    Alloc {
        /// Parsed header.
        header: Header,
        /// Allocation body.
        body: AllocBody,
    },
    /// Cumulative acknowledgment.
    Ack {
        /// Parsed header.
        header: Header,
        /// Acknowledgment body.
        body: AckBody,
    },
    /// Negative acknowledgment.
    Nak {
        /// Parsed header.
        header: Header,
        /// NAK body.
        body: NakBody,
    },
}

impl Packet {
    /// Parse a received datagram.
    pub fn parse(datagram: &[u8]) -> Result<Packet, WireError> {
        let mut buf = datagram;
        let header = Header::decode(&mut buf)?;
        match header.ptype {
            PacketType::Data => {
                if header.flags.contains(PacketFlags::ALLOC) {
                    let body = AllocBody::decode(&mut buf)?;
                    Ok(Packet::Alloc { header, body })
                } else {
                    Ok(Packet::Data {
                        header,
                        body: Bytes::copy_from_slice(buf),
                    })
                }
            }
            PacketType::Ack => {
                let body = AckBody::decode(&mut buf)?;
                Ok(Packet::Ack { header, body })
            }
            PacketType::Nak => {
                let body = NakBody::decode(&mut buf)?;
                Ok(Packet::Nak { header, body })
            }
        }
    }

    /// The parsed header, whichever variant.
    pub fn header(&self) -> &Header {
        match self {
            Packet::Data { header, .. }
            | Packet::Alloc { header, .. }
            | Packet::Ack { header, .. }
            | Packet::Nak { header, .. } => header,
        }
    }
}

/// Encode a data packet.
pub fn encode_data(
    src_rank: Rank,
    transfer: u32,
    seq: SeqNo,
    flags: PacketFlags,
    chunk: &[u8],
) -> Bytes {
    let mut buf = BytesMut::with_capacity(HEADER_LEN + chunk.len());
    Header {
        ptype: PacketType::Data,
        flags,
        src_rank,
        transfer,
        seq,
    }
    .encode(&mut buf);
    buf.extend_from_slice(chunk);
    buf.freeze()
}

/// Encode a buffer-allocation request packet.
pub fn encode_alloc(src_rank: Rank, transfer: u32, flags: PacketFlags, body: AllocBody) -> Bytes {
    let mut buf = BytesMut::with_capacity(HEADER_LEN + AllocBody::LEN);
    Header {
        ptype: PacketType::Data,
        flags: flags | PacketFlags::ALLOC,
        src_rank,
        transfer,
        seq: SeqNo::ZERO,
    }
    .encode(&mut buf);
    body.encode(&mut buf);
    buf.freeze()
}

/// Encode a cumulative ACK.
pub fn encode_ack(src_rank: Rank, transfer: u32, next_expected: SeqNo) -> Bytes {
    let mut buf = BytesMut::with_capacity(HEADER_LEN + AckBody::LEN);
    Header {
        ptype: PacketType::Ack,
        flags: PacketFlags::EMPTY,
        src_rank,
        transfer,
        seq: next_expected,
    }
    .encode(&mut buf);
    AckBody { next_expected }.encode(&mut buf);
    buf.freeze()
}

/// Encode a NAK for the first missing sequence number.
pub fn encode_nak(src_rank: Rank, transfer: u32, expected: SeqNo) -> Bytes {
    let mut buf = BytesMut::with_capacity(HEADER_LEN + NakBody::LEN);
    Header {
        ptype: PacketType::Nak,
        flags: PacketFlags::EMPTY,
        src_rank,
        transfer,
        seq: expected,
    }
    .encode(&mut buf);
    NakBody { expected }.encode(&mut buf);
    buf.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_round_trip() {
        let b = encode_data(
            Rank(0),
            5,
            SeqNo(9),
            PacketFlags::POLL | PacketFlags::LAST,
            b"hello",
        );
        match Packet::parse(&b).unwrap() {
            Packet::Data { header, body } => {
                assert_eq!(header.transfer, 5);
                assert_eq!(header.seq, SeqNo(9));
                assert!(header.flags.contains(PacketFlags::POLL));
                assert!(header.flags.contains(PacketFlags::LAST));
                assert_eq!(&body[..], b"hello");
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn alloc_round_trip() {
        let body = AllocBody {
            msg_len: 123,
            data_transfer: 6,
            packet_size: 500,
        };
        let b = encode_alloc(Rank(0), 5, PacketFlags::LAST, body);
        match Packet::parse(&b).unwrap() {
            Packet::Alloc { header, body } => {
                assert!(header.flags.contains(PacketFlags::ALLOC));
                assert!(header.flags.contains(PacketFlags::LAST));
                assert_eq!(body.msg_len, 123);
                assert_eq!(body.data_transfer, 6);
                assert_eq!(body.packet_size, 500);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn ack_and_nak_round_trip() {
        let a = encode_ack(Rank(3), 7, SeqNo(100));
        match Packet::parse(&a).unwrap() {
            Packet::Ack { header, body } => {
                assert_eq!(header.src_rank, Rank(3));
                assert_eq!(body.next_expected, SeqNo(100));
            }
            other => panic!("wrong variant: {other:?}"),
        }
        let n = encode_nak(Rank(4), 7, SeqNo(55));
        match Packet::parse(&n).unwrap() {
            Packet::Nak { header, body } => {
                assert_eq!(header.src_rank, Rank(4));
                assert_eq!(body.expected, SeqNo(55));
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(Packet::parse(&[]).is_err());
        assert!(Packet::parse(&[0xff; 20]).is_err());
        // Valid header but truncated ACK body.
        let full = encode_ack(Rank(1), 1, SeqNo(1));
        assert!(Packet::parse(&full[..HEADER_LEN + 1]).is_err());
    }

    #[test]
    fn empty_data_packet_allowed() {
        let b = encode_data(Rank(0), 0, SeqNo(0), PacketFlags::LAST, b"");
        match Packet::parse(&b).unwrap() {
            Packet::Data { body, .. } => assert!(body.is_empty()),
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
