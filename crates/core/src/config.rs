//! Protocol selection and tuning parameters.

use crate::overload::OverloadConfig;
use rmwire::Duration;
use serde::{Deserialize, Serialize};

/// Which reliable multicast protocol family to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// Every receiver acknowledges every data packet.
    Ack,
    /// Receivers NAK gaps; every `poll_interval`-th packet (and the last)
    /// must be acknowledged.
    NakPolling {
        /// Packets between POLL flags (`1` degenerates to ACK-based).
        poll_interval: usize,
        /// When `true`, receivers delay NAKs randomly and multicast them so
        /// other receivers can suppress duplicates (the scheme of
        /// Pingali's thesis, cited as \[16\]); when `false`, NAKs go
        /// straight to the sender, which suppresses duplicate
        /// retransmissions (the paper's implementation).
        receiver_multicast_nak: bool,
    },
    /// Rotating token site: packet `p` is acknowledged by receiver
    /// `p mod N`; the last packet by everyone; NAKs go to the sender.
    Ring,
    /// Acknowledgments aggregate up a logical tree; the sender performs all
    /// retransmissions (the paper's LAN adaptation).
    Tree {
        /// Shape of the logical structure.
        shape: TreeShape,
    },
    /// FEC / network-coded repair on top of the NAK machinery: NAKs from
    /// different receivers are batched in a sender-side coding buffer and
    /// disjoint loss sets are XOR-combined into one multicast REPAIR
    /// packet; optionally a proactive PARITY packet (the XOR of the last
    /// `parity_every` data packets) rides along so single losses heal with
    /// no feedback round trip at all. Requires selective repeat and the
    /// allocation handshake (receivers must hold out-of-order packets to
    /// have decode material).
    Fec {
        /// Packets between POLL flags, exactly as in
        /// [`ProtocolKind::NakPolling`].
        poll_interval: usize,
        /// Emit one proactive parity packet after every `parity_every`
        /// fresh data packets (`0` disables proactive parity; otherwise
        /// `2..=64`).
        parity_every: usize,
        /// Most data packets ever XOR-combined into one repair block
        /// (`1..=64`; the wire bitmap is 64 bits wide).
        max_coded: usize,
    },
}

impl ProtocolKind {
    /// The paper's NAK-based protocol: sender-side suppression only.
    pub fn nak_polling(poll_interval: usize) -> ProtocolKind {
        ProtocolKind::NakPolling {
            poll_interval,
            receiver_multicast_nak: false,
        }
    }

    /// A flat tree of the given height.
    pub fn flat_tree(height: usize) -> ProtocolKind {
        ProtocolKind::Tree {
            shape: TreeShape::Flat { height },
        }
    }

    /// The coded-repair family with proactive parity every 8 packets and
    /// up to 16 packets per repair block.
    pub fn fec(poll_interval: usize) -> ProtocolKind {
        ProtocolKind::Fec {
            poll_interval,
            parity_every: 8,
            max_coded: 16,
        }
    }

    /// Short lowercase name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolKind::Ack => "ack",
            ProtocolKind::NakPolling { .. } => "nak",
            ProtocolKind::Ring => "ring",
            ProtocolKind::Tree {
                shape: TreeShape::Flat { .. },
            } => "tree-flat",
            ProtocolKind::Tree {
                shape: TreeShape::Binary,
            } => "tree-binary",
            ProtocolKind::Fec { .. } => "fec",
        }
    }
}

/// Logical structure imposed on the receiver set by the tree protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TreeShape {
    /// The paper's flat tree: `ceil(N/H)` chains of `H` receivers each;
    /// chain heads report to the sender, every other node to the node
    /// before it in the chain. `H = 1` is exactly the ACK protocol;
    /// `H = N` is a single chain.
    Flat {
        /// Chain length (tree height).
        height: usize,
    },
    /// A binary tree (Figure 4): receiver 1 is the root reporting to the
    /// sender; receiver `r` reports to receiver `r / 2`. Included as the
    /// structure the paper argues *against* for LANs.
    Binary,
}

/// Go-Back-N versus selective repeat (paper §4 *Flow control* argues they
/// tie on error-free LANs; `bench`'s ablation checks it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum WindowDiscipline {
    /// Retransmit everything from the lost packet onward; receivers drop
    /// out-of-order packets.
    #[default]
    GoBackN,
    /// Retransmit only what was lost; receivers buffer out-of-order
    /// packets inside the window.
    SelectiveRepeat,
}

/// Liveness bounds: what the engine does when a peer stops responding.
///
/// The paper's protocols (and the default here) retry forever at a fixed
/// RTO — correct on a LAN whose members stay up, but a single crashed
/// receiver then wedges the sender permanently. These knobs bound that
/// loop: the RTO backs off exponentially, a transfer that makes no window
/// progress for `max_retx` consecutive timeouts is resolved — either by
/// evicting the stragglers that gate the release rule and completing to
/// the surviving set, or by abandoning the message with a typed
/// [`crate::error::SessionError`]. Defaults are all-off so existing
/// figures reproduce byte-identically.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LivenessConfig {
    /// Consecutive timeouts without window progress before the sender
    /// gives up on a transfer. `None` retries forever (the paper's
    /// behavior).
    pub max_retx: Option<u32>,
    /// Multiplier applied to the effective RTO after each consecutive
    /// timeout (`1.0` = no backoff, the paper's behavior). Window progress
    /// resets the RTO to `ProtocolConfig::rto`.
    pub rto_backoff: f64,
    /// Ceiling for the backed-off RTO (ignored when it is below the base
    /// `rto`).
    pub rto_max: Duration,
    /// On hitting `max_retx`, evict the receivers gating the release rule
    /// and complete to the survivors instead of abandoning the message.
    /// The sender only fails a message once every receiver is evicted.
    pub evict_stragglers: bool,
    /// A receiver that hears nothing for this long while transfers are
    /// incomplete declares the sender dead and abandons them
    /// ([`crate::error::SessionError::SenderStalled`]).
    pub receiver_giveup: Option<Duration>,
    /// Tree mode: an aggregation node whose child's acknowledgment has not
    /// advanced for this long (while behind this node's own progress)
    /// drops the child from its aggregate, rerouting the ack chain around
    /// the dead subtree.
    pub child_evict_timeout: Option<Duration>,
}

impl Default for LivenessConfig {
    fn default() -> Self {
        LivenessConfig::PAPER
    }
}

impl LivenessConfig {
    /// The paper's behavior: retry forever, never evict, never give up.
    pub const PAPER: LivenessConfig = LivenessConfig {
        max_retx: None,
        rto_backoff: 1.0,
        rto_max: Duration::from_secs(5),
        evict_stragglers: false,
        receiver_giveup: None,
        child_evict_timeout: None,
    };

    /// Bounded retries with exponential backoff: give up (typed error)
    /// after `max_retx` consecutive timeouts without progress.
    pub fn bounded(max_retx: u32) -> LivenessConfig {
        LivenessConfig {
            max_retx: Some(max_retx),
            rto_backoff: 2.0,
            ..LivenessConfig::PAPER
        }
    }

    /// [`LivenessConfig::bounded`] plus straggler eviction: complete every
    /// message to the surviving receiver set instead of failing it.
    pub fn evicting(max_retx: u32) -> LivenessConfig {
        LivenessConfig {
            evict_stragglers: true,
            ..LivenessConfig::bounded(max_retx)
        }
    }
}

/// Dynamic membership: heartbeat failure detection, late join/rejoin with
/// SYNC handoff, and epoch-stamped acknowledgments.
///
/// Disabled by default: the paper's protocols negotiate a fixed receiver
/// set once, and with `enabled == false` no membership packet is ever
/// emitted and ACK/NAK stay byte-identical to the paper's wire format.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MembershipConfig {
    /// Master switch. Off reproduces the paper exactly.
    pub enabled: bool,
    /// Interval between the sender's multicast heartbeat announces (and
    /// failure-detector ticks). Heartbeats run only while messages are in
    /// flight, so an idle group stays silent.
    pub heartbeat_interval: Duration,
    /// Consecutive missed heartbeats before a member is *suspected*
    /// (counted, not yet acted on).
    pub suspect_misses: u32,
    /// Consecutive missed heartbeats before a member is evicted from the
    /// group (epoch bump + re-release of its window obligations). Must be
    /// `>= suspect_misses`.
    pub evict_misses: u32,
    /// How long a joining receiver waits for a SYNC before re-sending its
    /// JOIN.
    pub join_retry: Duration,
}

impl Default for MembershipConfig {
    fn default() -> Self {
        MembershipConfig::DISABLED
    }
}

impl MembershipConfig {
    /// No membership machinery at all (the paper's fixed-group model).
    pub const DISABLED: MembershipConfig = MembershipConfig {
        enabled: false,
        heartbeat_interval: Duration::from_millis(50),
        suspect_misses: 3,
        evict_misses: 6,
        join_retry: Duration::from_millis(100),
    };

    /// Membership on with LAN-scale defaults: 50 ms heartbeats, suspect
    /// after 3 misses, evict after 6.
    pub fn enabled() -> MembershipConfig {
        MembershipConfig {
            enabled: true,
            ..MembershipConfig::DISABLED
        }
    }
}

/// Full configuration of one protocol run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// Protocol family and its family-specific parameters.
    pub kind: ProtocolKind,
    /// Application data bytes per packet (the paper's "packet size").
    pub packet_size: usize,
    /// Sender window size in packets (the paper's "window size"; total
    /// protocol buffer = `packet_size * window`).
    pub window: usize,
    /// Retransmission timeout for the oldest unacknowledged packet.
    pub rto: Duration,
    /// Minimum spacing between retransmissions of the same packet (the
    /// paper's sender-side suppression: "a retransmission will happen only
    /// after a designated period of time has passed since the previous
    /// transmission").
    pub retx_suppress: Duration,
    /// Minimum spacing between NAKs sent by one receiver for one transfer.
    pub nak_suppress: Duration,
    /// Go-Back-N or selective repeat.
    // rmlint: allow(config-validate): any discipline is valid
    pub discipline: WindowDiscipline,
    /// Perform the two-round-trip buffer-allocation handshake before data
    /// (paper §4 *Buffer management*). Baselines switch it off.
    // rmlint: allow(config-validate): both settings are valid
    pub handshake: bool,
    /// Model the user-space copy of payload into the protocol buffer.
    /// Figure 9's "ACK-based without copy" (an *incorrect* protocol kept
    /// for comparison) sets this to `false`.
    // rmlint: allow(config-validate): both settings are valid
    pub charge_copy: bool,
    /// Retransmissions triggered by a NAK go unicast to the NAKing
    /// receiver instead of multicast to the group (paper §3, first bullet:
    /// multicast retransmission "may introduce extra CPU overhead for
    /// unintended receivers"). Timeout-driven retransmissions stay
    /// multicast (the sender does not know who is missing what).
    // rmlint: allow(config-validate): both settings are valid
    pub unicast_retx_on_nak: bool,
    /// Rate-based flow control (paper §3: "flow control can either be
    /// rate-based or window-based"): when set, fresh data packets are
    /// paced to at most this many payload bytes per second, on top of the
    /// window.
    pub rate_limit_bytes_per_sec: Option<u64>,
    /// Receiver-driven retransmission timers (paper §3, ACK-based
    /// variations): when set, a receiver whose transfer stalls for this
    /// long re-sends a NAK for its next expected packet — covering the
    /// lost-LAST-packet case without waiting for the sender's RTO.
    pub receiver_nak_timer: Option<Duration>,
    /// Pipeline the allocation handshake: run the *next* queued message's
    /// allocation round trip concurrently with the current message's data
    /// transfer, hiding one of the paper's "at least two round trips"
    /// behind useful work. Off reproduces the paper exactly.
    // rmlint: allow(config-validate): both settings are valid
    pub pipeline_handshake: bool,
    /// Liveness bounds (bounded retries, RTO backoff, straggler eviction,
    /// receiver give-up). [`LivenessConfig::PAPER`] retries forever.
    pub liveness: LivenessConfig,
    /// Adaptive retransmission timeout: when `true` the sender estimates
    /// the RTO per Jacobson/Karels (`SRTT + 4·RTTVAR`, gains 1/8 and 1/4)
    /// from acknowledgment round trips, honouring Karn's rule (samples
    /// from retransmitted packets are discarded) and clamping the result
    /// to `[2·retx_suppress, liveness.rto_max]`. When `false` (default)
    /// the fixed [`ProtocolConfig::rto`] is used, reproducing the paper's
    /// fixed-timer behavior byte-identically.
    pub adaptive_rto: bool,
    /// Dynamic membership (heartbeats, join/rejoin, epochs). Disabled by
    /// default.
    pub membership: MembershipConfig,
    /// Payload integrity: when `true`, every packet this endpoint sends is
    /// sealed with a CRC-32C trailer ([`rmwire::PacketFlags::CKSUM`]) and
    /// every received packet *must* carry a valid trailer — unsealed or
    /// corrupted packets are counted (`Stats::integrity_fail`) and
    /// dropped. When `false` (default) the wire format is byte-identical
    /// to the paper's, though trailers on incoming packets are still
    /// verified opportunistically. All endpoints of a group must agree.
    // rmlint: allow(config-validate): both settings are valid
    pub integrity: bool,
    /// Graceful degradation under overload: AIMD window adaptation,
    /// feedback-storm pacing, duplicate-NAK collapse, load-scaled
    /// suppression timers and slow-receiver quarantine.
    /// [`OverloadConfig::OFF`] (the default) reproduces the static-window
    /// engines byte-identically.
    pub overload: OverloadConfig,
}

impl ProtocolConfig {
    /// A configuration with the defaults the paper uses implicitly:
    /// Go-Back-N, handshake on, copy modelled, LAN-scale timers.
    pub fn new(kind: ProtocolKind, packet_size: usize, window: usize) -> Self {
        // The coded-repair family needs selective repeat: a Go-Back-N
        // receiver drops out-of-order packets and would hold no decode
        // material. The constructor picks the only valid discipline so
        // `new` always yields a config that passes `validate`.
        let discipline = match kind {
            ProtocolKind::Fec { .. } => WindowDiscipline::SelectiveRepeat,
            _ => WindowDiscipline::GoBackN,
        };
        ProtocolConfig {
            kind,
            packet_size,
            window,
            rto: Duration::from_millis(120),
            retx_suppress: Duration::from_millis(8),
            nak_suppress: Duration::from_millis(4),
            discipline,
            handshake: true,
            charge_copy: true,
            unicast_retx_on_nak: false,
            rate_limit_bytes_per_sec: None,
            receiver_nak_timer: None,
            pipeline_handshake: false,
            liveness: LivenessConfig::PAPER,
            adaptive_rto: false,
            membership: MembershipConfig::DISABLED,
            integrity: false,
            overload: OverloadConfig::OFF,
        }
    }

    /// Validate against a group of `n_receivers`, panicking with a precise
    /// message on any inconsistency. Call once before building endpoints.
    pub fn validate(&self, n_receivers: usize) {
        assert!(n_receivers >= 1, "need at least one receiver");
        assert!(self.packet_size >= 1, "packet size must be >= 1 byte");
        assert!(
            self.packet_size <= 65_000,
            "packet size {} exceeds what a UDP datagram can carry",
            self.packet_size
        );
        assert!(self.window >= 1, "window must hold at least one packet");
        assert!(
            self.retx_suppress < self.rto,
            "retransmission suppression ({}) must be shorter than the RTO ({}): \
             otherwise every timeout is suppressed and the transfer stalls",
            self.retx_suppress,
            self.rto
        );
        if self.adaptive_rto {
            assert!(
                self.retx_suppress.saturating_mul(2) <= self.liveness.rto_max,
                "adaptive RTO floor (2 x retx_suppress) exceeds liveness.rto_max"
            );
        }
        if self.membership.enabled {
            let m = &self.membership;
            assert!(
                m.heartbeat_interval > Duration::ZERO,
                "heartbeat_interval must be positive"
            );
            assert!(
                m.suspect_misses >= 1 && m.suspect_misses <= m.evict_misses,
                "need 1 <= suspect_misses <= evict_misses (got {} / {})",
                m.suspect_misses,
                m.evict_misses
            );
            assert!(m.join_retry > Duration::ZERO, "join_retry must be positive");
            if matches!(self.kind, ProtocolKind::Tree { .. }) {
                assert!(
                    self.liveness.child_evict_timeout.is_some(),
                    "tree protocols with membership enabled need \
                     liveness.child_evict_timeout: a rejoined child re-parents \
                     to the sender, and its old parent must be able to drop it"
                );
            }
        }
        if let Some(r) = self.rate_limit_bytes_per_sec {
            assert!(r > 0, "rate limit must be positive");
        }
        if let Some(t) = self.receiver_nak_timer {
            assert!(
                t > Duration::ZERO && t.as_nanos() >= self.nak_suppress.as_nanos(),
                "receiver NAK timer must be positive and no shorter than NAK suppression"
            );
        }
        if let Some(m) = self.liveness.max_retx {
            assert!(m >= 1, "max_retx must allow at least one retry");
        }
        assert!(
            self.liveness.rto_backoff >= 1.0 && self.liveness.rto_backoff.is_finite(),
            "rto_backoff must be a finite multiplier >= 1.0"
        );
        assert!(
            self.liveness.rto_max > Duration::ZERO,
            "rto_max must be positive"
        );
        if let Some(g) = self.liveness.receiver_giveup {
            assert!(g > Duration::ZERO, "receiver_giveup must be positive");
        }
        if let Some(c) = self.liveness.child_evict_timeout {
            assert!(c > Duration::ZERO, "child_evict_timeout must be positive");
        }
        let o = &self.overload;
        if o.aimd {
            assert!(
                o.aimd_floor >= 1,
                "AIMD floor must hold at least one packet"
            );
            assert!(
                o.aimd_floor <= self.window && self.window <= o.aimd_ceiling,
                "AIMD bounds must bracket the initial window \
                 (floor {} <= window {} <= ceiling {}): the adaptive cap \
                 starts at the configured window and moves within them",
                o.aimd_floor,
                self.window,
                o.aimd_ceiling
            );
            if matches!(self.kind, ProtocolKind::Ring) {
                assert!(
                    o.aimd_floor > n_receivers,
                    "ring protocol needs aimd_floor > n_receivers ({} <= {}): \
                     shrinking the window below the group size would deadlock \
                     the rotating release rule, which frees packet X only on \
                     the ACK for packet X + N",
                    o.aimd_floor,
                    n_receivers
                );
            }
        }
        if o.feedback_rate > 0 {
            assert!(
                o.feedback_burst >= 1,
                "feedback pacing needs feedback_burst >= 1: \
                 a zero-capacity bucket sheds every control packet"
            );
        }
        if let Some(q) = o.quarantine_after {
            assert!(q >= 1, "quarantine_after must allow at least one timeout");
            if let Some(m) = self.liveness.max_retx {
                assert!(
                    q < m,
                    "quarantine_after ({q}) must be below liveness.max_retx ({m}): \
                     otherwise the liveness path evicts or fails the transfer \
                     before quarantine can take the straggler off the window"
                );
            }
            assert!(
                o.catchup_interval > Duration::ZERO,
                "catchup_interval must be positive"
            );
            assert!(
                o.quarantine_budget >= 1,
                "quarantine_budget must allow at least one catch-up round"
            );
        }
        match self.kind {
            ProtocolKind::NakPolling { poll_interval, .. } => {
                assert!(poll_interval >= 1, "poll interval must be >= 1");
                assert!(
                    poll_interval <= self.window,
                    "poll interval {} beyond the window {} would deadlock: \
                     the window fills before any packet is polled",
                    poll_interval,
                    self.window
                );
            }
            ProtocolKind::Ring => {
                assert!(
                    self.window > n_receivers,
                    "ring protocol needs window > n_receivers ({} <= {}): an ACK \
                     for packet X only releases packet X - N",
                    self.window,
                    n_receivers
                );
            }
            ProtocolKind::Tree {
                shape: TreeShape::Flat { height },
            } => {
                assert!(height >= 1, "flat tree height must be >= 1");
                assert!(
                    height <= n_receivers,
                    "flat tree height {height} exceeds the {n_receivers} receivers"
                );
            }
            ProtocolKind::Tree {
                shape: TreeShape::Binary,
            }
            | ProtocolKind::Ack => {}
            ProtocolKind::Fec {
                poll_interval,
                parity_every,
                max_coded,
            } => {
                assert!(poll_interval >= 1, "poll interval must be >= 1");
                assert!(
                    poll_interval <= self.window,
                    "poll interval {} beyond the window {} would deadlock: \
                     the window fills before any packet is polled",
                    poll_interval,
                    self.window
                );
                assert!(
                    parity_every == 0 || (2..=64).contains(&parity_every),
                    "parity_every must be 0 (disabled) or 2..=64 (got {}): \
                     parity over one packet is just a duplicate, and the \
                     wire bitmap is 64 bits wide",
                    parity_every
                );
                assert!(
                    (1..=64).contains(&max_coded),
                    "max_coded must be 1..=64 (got {}): the repair bitmap \
                     is 64 bits wide",
                    max_coded
                );
                assert_eq!(
                    self.discipline,
                    WindowDiscipline::SelectiveRepeat,
                    "fec requires selective repeat: Go-Back-N receivers \
                     drop out-of-order packets, leaving nothing to decode \
                     a repair block against"
                );
                assert!(
                    self.handshake,
                    "fec requires the allocation handshake: the receiver \
                     must know packet_size and message length to XOR held \
                     chunks back out of its preallocated assembly"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let k = ProtocolKind::nak_polling(10);
        assert_eq!(
            k,
            ProtocolKind::NakPolling {
                poll_interval: 10,
                receiver_multicast_nak: false
            }
        );
        assert_eq!(k.name(), "nak");
        assert_eq!(ProtocolKind::flat_tree(4).name(), "tree-flat");
        assert_eq!(ProtocolKind::Ring.name(), "ring");
        let f = ProtocolKind::fec(16);
        assert_eq!(
            f,
            ProtocolKind::Fec {
                poll_interval: 16,
                parity_every: 8,
                max_coded: 16
            }
        );
        assert_eq!(f.name(), "fec");
    }

    #[test]
    fn valid_configs_pass() {
        ProtocolConfig::new(ProtocolKind::Ack, 8000, 2).validate(30);
        ProtocolConfig::new(ProtocolKind::nak_polling(16), 8000, 20).validate(30);
        ProtocolConfig::new(ProtocolKind::Ring, 8000, 31).validate(30);
        ProtocolConfig::new(ProtocolKind::flat_tree(6), 8000, 20).validate(30);
        let f = ProtocolConfig::new(ProtocolKind::fec(16), 8000, 20);
        assert_eq!(f.discipline, WindowDiscipline::SelectiveRepeat);
        f.validate(30);
    }

    #[test]
    #[should_panic(expected = "fec requires selective repeat")]
    fn fec_gbn_rejected() {
        let mut c = ProtocolConfig::new(ProtocolKind::fec(16), 8000, 20);
        c.discipline = WindowDiscipline::GoBackN;
        c.validate(30);
    }

    #[test]
    #[should_panic(expected = "fec requires the allocation handshake")]
    fn fec_without_handshake_rejected() {
        let mut c = ProtocolConfig::new(ProtocolKind::fec(16), 8000, 20);
        c.handshake = false;
        c.validate(30);
    }

    #[test]
    #[should_panic(expected = "parity_every")]
    fn fec_parity_of_one_rejected() {
        let c = ProtocolConfig::new(
            ProtocolKind::Fec {
                poll_interval: 16,
                parity_every: 1,
                max_coded: 16,
            },
            8000,
            20,
        );
        c.validate(30);
    }

    #[test]
    #[should_panic(expected = "max_coded")]
    fn fec_oversized_block_rejected() {
        let c = ProtocolConfig::new(
            ProtocolKind::Fec {
                poll_interval: 16,
                parity_every: 8,
                max_coded: 65,
            },
            8000,
            20,
        );
        c.validate(30);
    }

    #[test]
    #[should_panic(expected = "window > n_receivers")]
    fn ring_window_too_small() {
        ProtocolConfig::new(ProtocolKind::Ring, 8000, 30).validate(30);
    }

    #[test]
    #[should_panic(expected = "would deadlock")]
    fn poll_interval_beyond_window() {
        ProtocolConfig::new(ProtocolKind::nak_polling(21), 8000, 20).validate(30);
    }

    #[test]
    #[should_panic(expected = "exceeds the")]
    fn tree_taller_than_group() {
        ProtocolConfig::new(ProtocolKind::flat_tree(31), 8000, 20).validate(30);
    }

    #[test]
    #[should_panic(expected = "packet size")]
    fn zero_packet_size() {
        ProtocolConfig::new(ProtocolKind::Ack, 0, 2).validate(30);
    }

    #[test]
    fn liveness_constructors() {
        let l = LivenessConfig::default();
        assert_eq!(l, LivenessConfig::PAPER);
        assert!(l.max_retx.is_none(), "paper behavior retries forever");
        let b = LivenessConfig::bounded(8);
        assert_eq!(b.max_retx, Some(8));
        assert!(b.rto_backoff > 1.0);
        assert!(!b.evict_stragglers);
        let e = LivenessConfig::evicting(8);
        assert!(e.evict_stragglers);
        let mut c = ProtocolConfig::new(ProtocolKind::Ack, 8000, 2);
        c.liveness = e;
        c.validate(30);
    }

    #[test]
    #[should_panic(expected = "max_retx")]
    fn zero_max_retx_rejected() {
        let mut c = ProtocolConfig::new(ProtocolKind::Ack, 8000, 2);
        c.liveness.max_retx = Some(0);
        c.validate(30);
    }

    #[test]
    #[should_panic(expected = "rto_backoff")]
    fn shrinking_backoff_rejected() {
        let mut c = ProtocolConfig::new(ProtocolKind::Ack, 8000, 2);
        c.liveness.rto_backoff = 0.5;
        c.validate(30);
    }

    #[test]
    #[should_panic(expected = "must be shorter than the RTO")]
    fn suppression_no_shorter_than_rto_rejected() {
        let mut c = ProtocolConfig::new(ProtocolKind::Ack, 8000, 2);
        c.retx_suppress = c.rto;
        c.validate(30);
    }

    #[test]
    fn membership_defaults_off_and_enabled_validates() {
        let c = ProtocolConfig::new(ProtocolKind::Ack, 8000, 2);
        assert!(!c.membership.enabled);
        assert!(!c.adaptive_rto);
        let mut m = c;
        m.membership = MembershipConfig::enabled();
        m.adaptive_rto = true;
        m.validate(30);
    }

    #[test]
    #[should_panic(expected = "suspect_misses <= evict_misses")]
    fn inverted_detector_thresholds_rejected() {
        let mut c = ProtocolConfig::new(ProtocolKind::Ack, 8000, 2);
        c.membership = MembershipConfig::enabled();
        c.membership.suspect_misses = 9;
        c.membership.evict_misses = 3;
        c.validate(30);
    }

    #[test]
    #[should_panic(expected = "child_evict_timeout")]
    fn tree_membership_needs_child_eviction() {
        let mut c = ProtocolConfig::new(ProtocolKind::flat_tree(4), 8000, 8);
        c.membership = MembershipConfig::enabled();
        c.validate(30);
    }

    #[test]
    fn overload_defaults_off_and_adaptive_validates() {
        let c = ProtocolConfig::new(ProtocolKind::Ack, 8000, 8);
        assert_eq!(c.overload, OverloadConfig::OFF);
        let mut a = c;
        a.overload = OverloadConfig::adaptive(8);
        a.validate(30);
        let mut r = ProtocolConfig::new(ProtocolKind::Ring, 8000, 40);
        r.overload = OverloadConfig::adaptive(40);
        r.overload.aimd_floor = 31;
        r.validate(30);
    }

    #[test]
    #[should_panic(expected = "must bracket the initial window")]
    fn aimd_bounds_must_bracket_window() {
        let mut c = ProtocolConfig::new(ProtocolKind::Ack, 8000, 8);
        c.overload = OverloadConfig::adaptive(8);
        c.overload.aimd_ceiling = 4;
        c.validate(30);
    }

    #[test]
    #[should_panic(expected = "aimd_floor > n_receivers")]
    fn ring_aimd_floor_below_group_rejected() {
        let mut c = ProtocolConfig::new(ProtocolKind::Ring, 8000, 40);
        c.overload = OverloadConfig::adaptive(40);
        c.validate(30);
    }

    #[test]
    #[should_panic(expected = "must be below liveness.max_retx")]
    fn quarantine_after_liveness_limit_rejected() {
        let mut c = ProtocolConfig::new(ProtocolKind::Ack, 8000, 8);
        c.liveness = LivenessConfig::evicting(3);
        c.overload = OverloadConfig::adaptive(8);
        c.overload.quarantine_after = Some(3);
        c.validate(30);
    }

    #[test]
    #[should_panic(expected = "feedback_burst")]
    fn paced_feedback_needs_burst() {
        let mut c = ProtocolConfig::new(ProtocolKind::Ack, 8000, 8);
        c.overload.feedback_rate = 1_000;
        c.overload.feedback_burst = 0;
        c.validate(30);
    }
}
