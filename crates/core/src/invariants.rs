//! The runtime invariant audit.
//!
//! Every protocol engine can be asked, at any driver-call boundary, to
//! prove from first principles that its state still satisfies the safety
//! rules the four protocol families are built on. [`crate::Sender::audit`]
//! and [`crate::Receiver::audit`] return every violated invariant as a
//! human-readable finding; under `debug_assertions` the engines call the
//! audit themselves after every `handle_datagram` / `handle_timeout` /
//! `send_message`, so the whole sim, chaos, and fuzz test suites double as
//! an invariant audit at zero release-build cost.
//!
//! The audited invariants, by identifier (the `rmcheck explore` model
//! checker asserts the same list across *all* interleavings of a
//! small-scope configuration; see `docs/CORRECTNESS.md`):
//!
//! | id | holder | invariant |
//! |------|----------|-----------|
//! | `S1` | sender | window structure: `base ≤ next ≤ k`, occupancy ≤ capacity, one slot per outstanding packet |
//! | `S2` | sender | buffers released only after ACK coverage: `win.base ≤ release.released()` |
//! | `S3` | sender | release-tracker consistency: the released prefix is the minimum over active sources (ACK/NAK/tree), or obeys the ring `X − N` rule with the all-acked fast path |
//! | `S4` | sender | at least one acknowledgment source stays in the proof obligation |
//! | `S5` | sender | tree topology: symmetric parent/child links, roots cover the group exactly once |
//! | `S6` | sender | transfer bookkeeping: an active transfer always belongs to a current message, alloc transfers are single-packet with even ids, data transfers carry odd ids |
//! | `S7` | sender | overload bookkeeping: a quarantined receiver is never sticky-evicted at the same time |
//! | `S8` | sender | fec coding state: present iff the fec family is configured, bound only to (odd-id) data transfers, buffered losses always have a flush deadline armed |
//! | `R1` | receiver | per-transfer progress: `own_next ≤ k`, a delivered transfer is complete, the tracked prefix mirrors the assembly |
//! | `R2` | receiver | ack-aggregation monotonicity: nothing acknowledged up the tree beyond what this node and its live children can prove (`sent_up ≤ aggregate`) |
//! | `R3` | receiver | reassembly discipline: Go-Back-N buffers nothing out of order; selective repeat keeps a contiguous prefix and stays inside the receive window |
//! | `R4` | receiver | child bookkeeping: per-child coverage, liveness and eviction arrays stay in lockstep with the aggregation links |
//!
//! The audit is deliberately *redundant*: it recomputes what the engines
//! maintain incrementally (release prefixes, ring token runs, aggregation
//! minima) and compares. A drifted incremental update is exactly the class
//! of bug probabilistic testing misses — SRM's loss-recovery corner cases
//! survived for decades that way.

/// One violated invariant: the identifier from the table above plus a
/// specific, state-bearing description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Invariant identifier (`S1`…`S6`, `R1`…`R4`).
    pub id: &'static str,
    /// What exactly was violated, with the offending values.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.id, self.detail)
    }
}

/// Collects violations during one audit pass.
#[derive(Debug, Default)]
pub struct Audit {
    violations: Vec<Violation>,
}

impl Audit {
    /// An empty audit pass.
    pub fn new() -> Self {
        Audit::default()
    }

    /// Record the outcome of one structural check under invariant `id`.
    pub fn check(&mut self, id: &'static str, result: Result<(), String>) {
        if let Err(detail) = result {
            self.violations.push(Violation { id, detail });
        }
    }

    /// Record a boolean invariant under `id`; `detail` is evaluated only
    /// on failure.
    pub fn require(&mut self, id: &'static str, ok: bool, detail: impl FnOnce() -> String) {
        if !ok {
            self.violations.push(Violation {
                id,
                detail: detail(),
            });
        }
    }

    /// Finish the pass: `Ok` when every invariant held.
    pub fn finish(self) -> Result<(), Vec<Violation>> {
        if self.violations.is_empty() {
            Ok(())
        } else {
            Err(self.violations)
        }
    }
}

/// Render a violation list the way the debug hooks and `rmcheck` report
/// it: one line per violated invariant.
pub fn render(violations: &[Violation]) -> String {
    violations
        .iter()
        .map(Violation::to_string)
        .collect::<Vec<_>>()
        .join("; ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_collects_and_renders() {
        let mut a = Audit::new();
        a.check("S1", Ok(()));
        a.require("S2", true, || unreachable!("not evaluated on success"));
        a.check("S3", Err("released 5 beyond coverage 3".into()));
        a.require("S4", false, || "zero active sources".into());
        let err = a.finish().expect_err("two violations recorded");
        assert_eq!(err.len(), 2);
        assert_eq!(err[0].id, "S3");
        let text = render(&err);
        assert!(text.contains("[S3] released 5"));
        assert!(text.contains("[S4] zero active sources"));
    }

    #[test]
    fn clean_audit_passes() {
        assert!(Audit::new().finish().is_ok());
    }
}
