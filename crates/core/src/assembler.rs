//! Receiver-side reassembly of a message from data packets.
//!
//! Under Go-Back-N only the in-order packet is accepted; under selective
//! repeat, packets within the receive window are buffered out of order.
//! When the buffer-allocation handshake ran, the message length is known
//! up front and the buffer is pre-allocated (the paper's §4 *Buffer
//! management*); baselines without the handshake grow the buffer as
//! in-order data arrives.

use crate::config::WindowDiscipline;
use bytes::Bytes;

/// Result of offering one data packet to the assembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer {
    /// Accepted and the contiguous prefix advanced.
    InOrder,
    /// Accepted out of order and buffered (selective repeat only).
    Buffered,
    /// Already had it.
    Duplicate,
    /// Rejected: a gap under Go-Back-N, or outside the selective-repeat
    /// window.
    Rejected,
}

/// Reassembles one transfer's payload.
#[derive(Debug, Clone)]
pub struct Assembly {
    discipline: WindowDiscipline,
    packet_size: usize,
    /// Total packet count, known from the allocation handshake or learned
    /// from the LAST flag.
    k: Option<u32>,
    /// Pre-allocated when the message length is known.
    preallocated: bool,
    buf: Vec<u8>,
    /// Received bitmap (selective repeat).
    have: Vec<u64>,
    /// Contiguous prefix: every packet below this has been accepted.
    next: u32,
    /// Selective-repeat acceptance window in packets.
    window: u32,
}

impl Assembly {
    /// An assembly that knows the message size up front (handshake ran).
    pub fn preallocated(
        msg_len: usize,
        packet_size: usize,
        discipline: WindowDiscipline,
        window: u32,
    ) -> Self {
        assert!(packet_size >= 1);
        let k = (msg_len.div_ceil(packet_size)).max(1) as u32;
        Assembly {
            discipline,
            packet_size,
            k: Some(k),
            preallocated: true,
            buf: vec![0; msg_len],
            have: vec![0; (k as usize).div_ceil(64)],
            next: 0,
            window,
        }
    }

    /// An assembly that learns its size from the LAST flag (no handshake);
    /// Go-Back-N only.
    pub fn dynamic(packet_size: usize, discipline: WindowDiscipline) -> Self {
        assert_eq!(
            discipline,
            WindowDiscipline::GoBackN,
            "selective repeat requires the allocation handshake"
        );
        Assembly {
            discipline,
            packet_size,
            k: None,
            preallocated: false,
            buf: Vec::new(),
            have: Vec::new(),
            next: 0,
            window: 0,
        }
    }

    /// Expected packet count, if known yet.
    pub fn k(&self) -> Option<u32> {
        self.k
    }

    /// The contiguous prefix (receiver's `next_expected`).
    pub fn next_expected(&self) -> u32 {
        self.next
    }

    /// `true` once every packet has been accepted.
    pub fn complete(&self) -> bool {
        matches!(self.k, Some(k) if self.next == k)
    }

    /// Bytes currently pinned by this assembly (Table 1 accounting).
    pub fn buffered_bytes(&self) -> usize {
        self.buf.len()
    }

    /// The received bitmap words, for state digesting (`rmcheck explore`;
    /// only selective repeat ever sets bits beyond the prefix).
    pub fn have_words(&self) -> &[u64] {
        &self.have
    }

    /// Structural self-check of the reassembly discipline: Go-Back-N
    /// accepts only the in-order packet (the bitmap stays empty), while
    /// selective repeat keeps a contiguous set prefix below
    /// `next_expected` and buffers nothing at or beyond `next + window`.
    pub fn check(&self) -> Result<(), String> {
        if let Some(k) = self.k {
            if self.next > k {
                return Err(format!(
                    "assembly prefix {} beyond the {k}-packet transfer",
                    self.next
                ));
            }
        }
        match self.discipline {
            WindowDiscipline::GoBackN => {
                if self.have.iter().any(|&w| w != 0) {
                    return Err("Go-Back-N assembly buffered out of order".into());
                }
            }
            WindowDiscipline::SelectiveRepeat => {
                for s in 0..self.next {
                    if !self.bit(s) {
                        return Err(format!(
                            "selective-repeat prefix {} skips unreceived packet {s}",
                            self.next
                        ));
                    }
                }
                let hi = (self.have.len() as u32) * 64;
                for s in self.next.saturating_add(self.window)..hi {
                    if self.bit(s) {
                        return Err(format!(
                            "packet {s} buffered beyond the receive window ({} + {})",
                            self.next, self.window
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    fn bit(&self, seq: u32) -> bool {
        self.have
            .get((seq / 64) as usize)
            .is_some_and(|w| w & (1 << (seq % 64)) != 0)
    }

    fn set_bit(&mut self, seq: u32) {
        let idx = (seq / 64) as usize;
        if idx >= self.have.len() {
            self.have.resize(idx + 1, 0);
        }
        self.have[idx] |= 1 << (seq % 64);
    }

    /// `true` if packet `seq` has been accepted and its bytes are still
    /// readable from the buffer (coded-repair decoding peeks at held
    /// packets to XOR a missing one back out).
    pub fn holds(&self, seq: u32) -> bool {
        match self.discipline {
            WindowDiscipline::GoBackN => seq < self.next,
            WindowDiscipline::SelectiveRepeat => self.bit(seq),
        }
    }

    /// The chunk geometry: how many payload bytes packet `seq` carries in
    /// this transfer (`None` when `seq` is outside it, or when the
    /// geometry is unknown because no allocation handshake sized the
    /// buffer). The tail packet may be short or even empty.
    pub fn chunk_len(&self, seq: u32) -> Option<usize> {
        if !self.preallocated {
            return None;
        }
        let k = self.k?;
        if seq >= k {
            return None;
        }
        let off = (seq as usize).checked_mul(self.packet_size)?;
        Some(self.buf.len().saturating_sub(off).min(self.packet_size))
    }

    /// Read back the bytes of held packet `seq` (coded-repair decoding).
    /// `None` unless the packet is held in a preallocated buffer.
    pub fn chunk(&self, seq: u32) -> Option<&[u8]> {
        if !self.preallocated || !self.holds(seq) {
            return None;
        }
        let len = self.chunk_len(seq)?;
        let off = seq as usize * self.packet_size;
        Some(&self.buf[off..off + len])
    }

    /// The nominal per-packet payload size this assembly was built with.
    pub fn packet_size(&self) -> usize {
        self.packet_size
    }

    /// Offer packet `seq` with payload `chunk`; `last` is the LAST flag.
    pub fn offer(&mut self, seq: u32, chunk: &[u8], last: bool) -> Offer {
        if last {
            match self.k {
                None => self.k = Some(seq + 1),
                Some(k) => debug_assert_eq!(k, seq + 1, "inconsistent LAST flag"),
            }
        }
        if seq < self.next {
            return Offer::Duplicate;
        }
        match self.discipline {
            WindowDiscipline::GoBackN => {
                if seq != self.next || !self.fits(seq, chunk) {
                    return Offer::Rejected;
                }
                self.store(seq, chunk);
                self.next += 1;
                Offer::InOrder
            }
            WindowDiscipline::SelectiveRepeat => {
                if seq >= self.next + self.window || !self.fits(seq, chunk) {
                    return Offer::Rejected;
                }
                if self.bit(seq) {
                    return Offer::Duplicate;
                }
                self.store(seq, chunk);
                self.set_bit(seq);
                if seq == self.next {
                    while self.bit(self.next) {
                        self.next += 1;
                    }
                    Offer::InOrder
                } else {
                    Offer::Buffered
                }
            }
        }
    }

    /// Does packet `seq` with this payload fit the allocation? A mismatch
    /// means a corrupt or forged packet (or allocation announcement):
    /// network input, so it must be rejectable, never a panic.
    fn fits(&self, seq: u32, chunk: &[u8]) -> bool {
        if !self.preallocated {
            return true; // dynamic assembly grows
        }
        let Some(off) = (seq as usize).checked_mul(self.packet_size) else {
            return false;
        };
        off.checked_add(chunk.len())
            .is_some_and(|end| end <= self.buf.len())
    }

    fn store(&mut self, seq: u32, chunk: &[u8]) {
        if self.preallocated {
            let off = seq as usize * self.packet_size;
            let end = off + chunk.len();
            debug_assert!(end <= self.buf.len(), "offer() checked fits()");
            self.buf[off..end].copy_from_slice(chunk);
        } else {
            debug_assert_eq!(seq, self.next, "dynamic assembly is in-order only");
            self.buf.extend_from_slice(chunk);
        }
    }

    /// Consume the assembly, yielding the message payload. Panics if
    /// incomplete.
    pub fn into_bytes(self) -> Bytes {
        assert!(self.complete(), "assembly incomplete");
        Bytes::from(self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbn_in_order_only() {
        let mut a = Assembly::preallocated(10, 4, WindowDiscipline::GoBackN, 8);
        assert_eq!(a.k(), Some(3));
        assert_eq!(a.offer(1, b"xxxx", false), Offer::Rejected);
        assert_eq!(a.offer(0, b"aaaa", false), Offer::InOrder);
        assert_eq!(a.offer(0, b"aaaa", false), Offer::Duplicate);
        assert_eq!(a.offer(1, b"bbbb", false), Offer::InOrder);
        assert!(!a.complete());
        assert_eq!(a.offer(2, b"cc", true), Offer::InOrder);
        assert!(a.complete());
        assert_eq!(&a.into_bytes()[..], b"aaaabbbbcc");
    }

    #[test]
    fn sr_buffers_out_of_order() {
        let mut a = Assembly::preallocated(12, 4, WindowDiscipline::SelectiveRepeat, 8);
        assert_eq!(a.offer(2, b"cccc", true), Offer::Buffered);
        assert_eq!(a.offer(2, b"cccc", true), Offer::Duplicate);
        assert_eq!(a.offer(0, b"aaaa", false), Offer::InOrder);
        assert_eq!(a.next_expected(), 1);
        assert_eq!(a.offer(1, b"bbbb", false), Offer::InOrder);
        assert_eq!(a.next_expected(), 3, "prefix jumps over buffered packet");
        assert!(a.complete());
        assert_eq!(&a.into_bytes()[..], b"aaaabbbbcccc");
    }

    #[test]
    fn sr_window_bound() {
        let mut a = Assembly::preallocated(400, 4, WindowDiscipline::SelectiveRepeat, 2);
        assert_eq!(a.offer(2, b"xxxx", false), Offer::Rejected);
        assert_eq!(a.offer(1, b"bbbb", false), Offer::Buffered);
        assert_eq!(a.offer(0, b"aaaa", false), Offer::InOrder);
        assert_eq!(a.next_expected(), 2);
        assert_eq!(a.offer(3, b"dddd", false), Offer::Buffered);
    }

    #[test]
    fn dynamic_learns_k_from_last() {
        let mut a = Assembly::dynamic(4, WindowDiscipline::GoBackN);
        assert_eq!(a.k(), None);
        assert_eq!(a.offer(0, b"aaaa", false), Offer::InOrder);
        assert!(!a.complete());
        assert_eq!(a.offer(1, b"bb", true), Offer::InOrder);
        assert_eq!(a.k(), Some(2));
        assert!(a.complete());
        assert_eq!(&a.into_bytes()[..], b"aaaabb");
    }

    #[test]
    fn empty_message_is_one_packet() {
        let mut a = Assembly::preallocated(0, 500, WindowDiscipline::GoBackN, 4);
        assert_eq!(a.k(), Some(1));
        assert_eq!(a.offer(0, b"", true), Offer::InOrder);
        assert!(a.complete());
        assert_eq!(a.into_bytes().len(), 0);
    }

    #[test]
    #[should_panic(expected = "selective repeat requires")]
    fn dynamic_sr_rejected() {
        let _ = Assembly::dynamic(4, WindowDiscipline::SelectiveRepeat);
    }

    #[test]
    fn held_chunk_read_back() {
        let mut a = Assembly::preallocated(10, 4, WindowDiscipline::SelectiveRepeat, 8);
        assert!(!a.holds(0));
        assert_eq!(a.offer(1, b"bbbb", false), Offer::Buffered);
        assert_eq!(a.offer(2, b"cc", true), Offer::Buffered);
        assert!(a.holds(1) && a.holds(2) && !a.holds(0));
        assert_eq!(a.chunk(1).unwrap(), b"bbbb");
        assert_eq!(a.chunk(2).unwrap(), b"cc");
        assert_eq!(a.chunk(0), None, "unheld packet is not readable");
        assert_eq!(a.chunk_len(0), Some(4));
        assert_eq!(a.chunk_len(2), Some(2), "tail packet is short");
        assert_eq!(a.chunk_len(3), None, "beyond the transfer");
        assert_eq!(a.packet_size(), 4);
        // GBN: the contiguous prefix is held.
        let mut g = Assembly::preallocated(8, 4, WindowDiscipline::GoBackN, 8);
        assert_eq!(g.offer(0, b"aaaa", false), Offer::InOrder);
        assert!(g.holds(0) && !g.holds(1));
        assert_eq!(g.chunk(0).unwrap(), b"aaaa");
    }

    #[test]
    fn oversized_chunk_rejected_not_panicking() {
        let mut a = Assembly::preallocated(10, 4, WindowDiscipline::GoBackN, 8);
        assert_eq!(a.offer(0, b"aaaa", false), Offer::InOrder);
        assert_eq!(a.offer(1, b"aaaa", false), Offer::InOrder);
        // Tail packet may carry at most 2 bytes (10 - 8): an oversized
        // chunk is hostile/corrupt network input and must be rejected.
        assert_eq!(a.offer(2, b"aaaa", true), Offer::Rejected);
        assert_eq!(a.offer(2, b"aa", true), Offer::InOrder);
        assert!(a.complete());
    }
}
