//! The multicast receiver engine.
//!
//! All four protocols share reception, reassembly and NAK machinery; they
//! differ in *when a receiver acknowledges*:
//!
//! * **ACK**: a cumulative ACK to the sender for every data packet heard.
//! * **NAK with polling**: an ACK only for POLL-flagged packets; NAKs on
//!   gaps (unicast to the sender, or randomly-delayed multicast under the
//!   suppression variant).
//! * **Ring**: an ACK only for the packets this receiver is the token
//!   site of (`seq mod N == rank-1`) — and for the final packet, which
//!   everyone acknowledges.
//! * **Tree**: a cumulative ACK to the *parent* carrying the minimum of
//!   this node's own progress and its children's reported progress; chain
//!   heads report to the sender.

use crate::assembler::{Assembly, Offer};
use crate::config::{ProtocolConfig, ProtocolKind};
use crate::endpoint::{AppEvent, Dest, Endpoint, Transmit};
use crate::error::SessionError;
use crate::overload::LoadScaler;
use crate::packet::{self, Packet};
use crate::stats::Stats;
use crate::telemetry::ReceiverTelemetry;
use crate::tree::{TreeLinks, TreeTopology};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rmtrace::{TraceEvent, Tracer};
use rmwire::{
    AllocBody, GroupSpec, Header, PacketFlags, PacketType, Rank, RepairBody, SeqNo, Time,
};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// How many finished transfers of acknowledgment state to retain for
/// re-acknowledging retransmissions.
const RETAIN_TRANSFERS: u32 = 8;

/// Hard bound on tracked transfer states: entries far beyond the live
/// window (which only forged or wildly corrupt traffic can create) are
/// evicted beyond this count.
const MAX_TRACKED: usize = 32;

/// Largest message length an ALLOC announcement may claim. The body's
/// `msg_len` sizes a pre-allocated buffer, so a forged or bit-flipped
/// value must never be trusted verbatim — a single corrupt high byte
/// would otherwise demand gigabytes before the first data packet lands.
const MAX_ALLOC_BYTES: u64 = 1 << 28; // 256 MiB

/// Cap on the packet count an ALLOC implies (`msg_len / packet_size`):
/// bounds the receive bitmap alongside the payload buffer.
const MAX_ALLOC_PACKETS: u64 = 1 << 20;

/// Per-transfer receiver state. The assembly is dropped at delivery; the
/// acknowledgment state survives so retransmissions of a finished transfer
/// still get re-acknowledged.
#[derive(Clone)]
struct TransferState {
    /// Own in-order progress (next expected sequence number).
    own_next: u32,
    /// Total packets, once known.
    k: Option<u32>,
    /// Payload reassembly (data transfers, until delivered).
    assembly: Option<Assembly>,
    delivered: bool,
    /// Tree mode: per-child cumulative coverage.
    child_cov: Vec<u32>,
    /// Last cumulative acknowledgment sent toward the sender/parent.
    sent_up: Option<u32>,
    /// When the first packet of this transfer was heard (assembly-latency
    /// telemetry).
    first_heard: Option<Time>,
    /// Highest coded-block generation processed (fec replay gate: REPAIR
    /// and PARITY share a strictly-increasing per-transfer counter).
    repair_gen: Option<u32>,
}

impl TransferState {
    fn new(is_alloc: bool, n_children: usize) -> Self {
        TransferState {
            own_next: 0,
            k: if is_alloc { Some(1) } else { None },
            assembly: None,
            delivered: false,
            child_cov: vec![0; n_children],
            sent_up: None,
            first_heard: None,
            repair_gen: None,
        }
    }

    fn complete(&self) -> bool {
        matches!(self.k, Some(k) if self.own_next >= k)
    }

    /// What this node can vouch for: own progress limited by its *live*
    /// children (evicted children no longer gate the aggregate).
    fn aggregate(&self, dead_children: &[bool]) -> u32 {
        self.child_cov
            .iter()
            .zip(dead_children)
            .filter(|&(_, &dead)| !dead)
            .map(|(&c, _)| c)
            .chain(std::iter::once(self.own_next))
            .min()
            .expect("iterator never empty")
    }
}

/// A NAK waiting out its random delay (receiver-multicast suppression).
#[derive(Clone)]
struct PendingNak {
    transfer: u32,
    expected: u32,
    deadline: Time,
}

/// The receiver endpoint (ranks `1..=N`) of a reliable multicast group.
///
/// Cloning forks the entire protocol state (the `rmcheck explore` model
/// checker branches worlds this way); the clone's tracer comes back
/// *detached* — see [`rmtrace::Tracer`]'s `Clone` contract.
#[derive(Clone)]
pub struct Receiver {
    cfg: ProtocolConfig,
    group: GroupSpec,
    rank: Rank,
    /// Tree mode: this node's aggregation links and child rank -> slot.
    links: Option<TreeLinks>,
    child_slot: HashMap<Rank, usize>,
    stats: Stats,
    out: VecDeque<Transmit>,
    events: VecDeque<AppEvent>,
    transfers: BTreeMap<u32, TransferState>,
    max_seen: u32,
    /// Allocation bodies awaiting their data transfer.
    alloc_pending: HashMap<u32, AllocBody>,
    /// Global NAK rate limiting (sender-side-suppression variant).
    last_nak: Option<Time>,
    pending_nak: Option<PendingNak>,
    /// Load-aware NAK-suppression scaling (`overload.load_scaling`), fed
    /// by the retransmission traffic this receiver observes: heavy RETX
    /// flow means the sender is overloaded, so our own NAK timers stretch.
    load: Option<LoadScaler>,
    /// Receiver-driven retransmission timer: when the config enables it,
    /// this deadline fires a NAK for the oldest stalled transfer.
    stall_deadline: Option<Time>,
    /// Tree children dropped from the aggregate by the child-evict timer
    /// (sticky: a dead subtree never gates a later transfer either).
    dead_children: Vec<bool>,
    /// Child-evict timer: armed while a live child's acknowledgment trails
    /// this node's own progress; per-child signs of life push it out.
    child_deadline: Option<Time>,
    /// Last sign of life per child slot: acknowledgment progress, or (with
    /// membership enabled) a heartbeat. A child is only evicted when it is
    /// both *behind* and *silent* past the timeout — an alive child gated
    /// by its own dead subtree must not be cascade-evicted.
    child_alive: Vec<Time>,
    /// Last instant any packet arrived (base of the receiver give-up
    /// timer).
    last_heard: Time,
    /// Dynamic membership: true from construction via
    /// [`Receiver::new_joining`] until the sender's SYNC handoff admits
    /// this receiver at a message boundary.
    joining: bool,
    /// Current membership epoch (0 with membership disabled).
    epoch: u32,
    /// Transfers below this id belong to messages that completed before
    /// this receiver was admitted; their multicast packets are discarded.
    /// `u32::MAX` while joining (everything is pre-admission until SYNC).
    min_transfer: u32,
    /// JOIN retry timer, armed while `joining`.
    join_deadline: Option<Time>,
    rng: SmallRng,
    tracer: Tracer,
    telem: ReceiverTelemetry,
    /// Latest driver-provided time, for trace hooks on paths without a
    /// `now` parameter (send_ack from the acknowledgment policies).
    now_cache: Time,
}

impl Receiver {
    /// Build the receiver for `rank` within `group`. The `seed` feeds the
    /// random NAK delay of the multicast-suppression variant.
    pub fn new(cfg: ProtocolConfig, group: GroupSpec, rank: Rank, seed: u64) -> Self {
        cfg.validate(group.n_receivers as usize);
        assert!(!rank.is_sender(), "rank 0 is the sender");
        assert!(group.contains(rank), "{rank} outside the group");
        let links = match cfg.kind {
            ProtocolKind::Tree { shape } => {
                Some(TreeTopology::new(group, shape).links(rank).clone())
            }
            _ => None,
        };
        let child_slot = links
            .as_ref()
            .map(|l| {
                l.children
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| (c, i))
                    .collect()
            })
            .unwrap_or_default();
        let n_children = links.as_ref().map_or(0, |l| l.children.len());
        let epoch = if cfg.membership.enabled { 1 } else { 0 };
        let load = cfg.overload.load_scaling.then(|| LoadScaler::new(32));
        Receiver {
            cfg,
            group,
            rank,
            links,
            child_slot,
            stats: Stats::default(),
            out: VecDeque::new(),
            events: VecDeque::new(),
            transfers: BTreeMap::new(),
            max_seen: 0,
            alloc_pending: HashMap::new(),
            last_nak: None,
            pending_nak: None,
            load,
            stall_deadline: None,
            dead_children: vec![false; n_children],
            child_deadline: None,
            child_alive: vec![Time::ZERO; n_children],
            last_heard: Time::ZERO,
            joining: false,
            epoch,
            min_transfer: 0,
            join_deadline: None,
            rng: SmallRng::seed_from_u64(seed ^ (rank.0 as u64) << 32),
            tracer: Tracer::off(rank.0),
            telem: ReceiverTelemetry::default(),
            now_cache: Time::ZERO,
        }
    }

    /// Build a receiver that is *not* yet a group member: it unicasts a
    /// JOIN to the sender (retried every `membership.join_retry`) and
    /// discards all data until the sender's SYNC handoff admits it at a
    /// message boundary. Requires [`crate::MembershipConfig::enabled`].
    pub fn new_joining(
        cfg: ProtocolConfig,
        group: GroupSpec,
        rank: Rank,
        seed: u64,
        now: Time,
    ) -> Self {
        assert!(
            cfg.membership.enabled,
            "joining requires dynamic membership"
        );
        let mut r = Receiver::new(cfg, group, rank, seed);
        r.joining = true;
        r.epoch = 0;
        r.min_transfer = u32::MAX;
        r.last_heard = now;
        r.send_join(now);
        r
    }

    fn send_join(&mut self, now: Time) {
        self.out.push_back(Transmit {
            dest: Dest::Sender,
            payload: packet::encode_join(self.rank, self.epoch),
            copied: 0,
        });
        self.join_deadline = Some(now + self.cfg.membership.join_retry);
    }

    /// Announce a voluntary departure: the sender drops this receiver
    /// from the proof obligation immediately.
    pub fn leave(&mut self) {
        self.out.push_back(Transmit {
            dest: Dest::Sender,
            payload: packet::encode_leave(self.rank, self.epoch),
            copied: 0,
        });
    }

    /// The membership epoch this receiver stamps on its ACKs/NAKs.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The oldest transfer this receiver is still waiting on, with the
    /// sequence number it needs next: either an incomplete transfer it has
    /// heard packets of, or a data transfer announced by a completed
    /// allocation round trip but not yet begun.
    fn stalled_target(&self) -> Option<(u32, u32)> {
        let incomplete = self
            .transfers
            .iter()
            .find(|(_, st)| !st.complete())
            .map(|(&t, st)| (t, st.own_next));
        let announced = self
            .alloc_pending
            .keys()
            .copied()
            .filter(|t| !self.transfers.contains_key(t))
            .min()
            .map(|t| (t, 0));
        match (incomplete, announced) {
            (Some(a), Some(b)) => Some(if a.0 <= b.0 { a } else { b }),
            (a, b) => a.or(b),
        }
    }

    /// Re-arm (or disarm) the receiver-driven retransmission timer.
    fn rearm_stall_timer(&mut self, now: Time) {
        let Some(d) = self.cfg.receiver_nak_timer else {
            return;
        };
        self.stall_deadline = self.stalled_target().map(|_| now + d);
    }

    /// This receiver's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Latency distributions maintained by this receiver.
    pub fn telemetry(&self) -> &ReceiverTelemetry {
        &self.telem
    }

    fn n_children(&self) -> usize {
        self.links.as_ref().map_or(0, |l| l.children.len())
    }

    fn ensure_state(&mut self, transfer: u32, is_alloc: bool) -> &mut TransferState {
        let n_children = self.n_children();
        self.transfers
            .entry(transfer)
            .or_insert_with(|| TransferState::new(is_alloc, n_children))
    }

    /// Advance the pruning horizon — but only along the protocol's
    /// *sequential* transfer progression. A forged completion with an
    /// arbitrary transfer id must not be able to prune live state.
    fn note_completion(&mut self, transfer: u32) {
        if transfer <= self.max_seen.saturating_add(2) {
            self.max_seen = self.max_seen.max(transfer);
        }
    }

    fn prune(&mut self) {
        let cutoff = self.max_seen.saturating_sub(RETAIN_TRANSFERS);
        self.transfers.retain(|&t, _| t >= cutoff);
        self.alloc_pending.retain(|&t, _| t >= cutoff);
        // Evict state far beyond the live window when something (hostile
        // traffic, wild corruption) inflates the maps.
        let high_water = self.max_seen.saturating_add(RETAIN_TRANSFERS);
        while self.transfers.len() > MAX_TRACKED {
            let far = *self.transfers.keys().next_back().expect("non-empty");
            if far > high_water {
                self.transfers.remove(&far);
            } else {
                break;
            }
        }
        while self.alloc_pending.len() > MAX_TRACKED {
            let far = *self.alloc_pending.keys().max().expect("non-empty");
            if far > high_water {
                self.alloc_pending.remove(&far);
            } else {
                break;
            }
        }
    }

    // ------------------------------------------------------------------
    // Data path
    // ------------------------------------------------------------------

    fn on_data(&mut self, now: Time, header: Header, body: DataBody<'_>) {
        let _span = rmprof::span!(rmprof::Stage::RecvAssembly);
        self.stats.data_received += 1;
        // Any sender traffic proves the sender is alive (give-up timer).
        self.last_heard = now;
        // Pre-admission traffic (while joining: everything): the message it
        // belongs to completes without us, so tracking it would only grow
        // state the sender never resolves for this receiver.
        if header.transfer < self.min_transfer {
            self.stats.data_discarded += 1;
            self.tracer.emit(
                now.as_nanos(),
                TraceEvent::DataDiscarded {
                    transfer: header.transfer,
                    seq: header.seq.0,
                },
            );
            return;
        }
        let transfer = header.transfer;
        let is_alloc = matches!(body, DataBody::Alloc(_));
        let seq = header.seq.0;
        let last = header.flags.contains(PacketFlags::LAST);
        // Retransmission traffic is the load signal scaling our NAK timers.
        if header.flags.contains(PacketFlags::RETX) {
            if let Some(l) = self.load.as_mut() {
                l.note(now);
            }
        }

        // Materialize the assembly lazily for data transfers.
        let discipline = self.cfg.discipline;
        let window = self.cfg.window as u32;
        let packet_size = self.cfg.packet_size;
        let alloc_body = self.alloc_pending.get(&transfer).copied();
        let handshake = self.cfg.handshake;

        // With the handshake enabled, data for a transfer whose allocation
        // round trip we have not completed cannot be sized — and a
        // legitimate sender never emits it (the allocation must be
        // acknowledged by everyone first). Discard rather than trust it.
        if handshake
            && !is_alloc
            && alloc_body.is_none()
            && self
                .transfers
                .get(&transfer)
                .is_none_or(|st| st.assembly.is_none() && !st.delivered)
        {
            self.stats.data_discarded += 1;
            self.tracer
                .emit(now.as_nanos(), TraceEvent::DataDiscarded { transfer, seq });
            return;
        }

        let st = self.ensure_state(transfer, is_alloc);
        if st.first_heard.is_none() {
            st.first_heard = Some(now);
        }
        if st.assembly.is_none() && !st.delivered && !is_alloc {
            let assembly = match alloc_body {
                Some(b) => Assembly::preallocated(
                    b.msg_len as usize,
                    b.packet_size as usize,
                    discipline,
                    window,
                ),
                None => Assembly::dynamic(packet_size, discipline),
            };
            st.assembly = Some(assembly);
        }

        let prev_next = st.own_next;
        let was_complete = st.complete();

        // Offer the packet.
        let offer = if is_alloc {
            if st.own_next == 0 {
                st.own_next = 1;
                Offer::InOrder
            } else {
                Offer::Duplicate
            }
        } else if st.delivered {
            Offer::Duplicate
        } else {
            let chunk = match body {
                DataBody::Chunk(c) => c,
                DataBody::Alloc(_) => unreachable!(),
            };
            let a = st.assembly.as_mut().expect("assembly materialized above");
            let o = a.offer(seq, chunk, last);
            st.own_next = a.next_expected();
            st.k = a.k();
            o
        };

        if matches!(offer, Offer::Duplicate) {
            self.stats.data_discarded += 1;
        }
        if self.tracer.active() {
            let ev = match offer {
                Offer::InOrder | Offer::Buffered => TraceEvent::DataRecv { transfer, seq },
                Offer::Duplicate | Offer::Rejected => TraceEvent::DataDiscarded { transfer, seq },
            };
            self.tracer.emit(now.as_nanos(), ev);
        }

        // Sample buffer occupancy for Table 1.
        let buffered = self
            .transfers
            .get(&transfer)
            .and_then(|s| s.assembly.as_ref())
            .map_or(0, |a| a.buffered_bytes());
        self.stats.sample_buffer(buffered);

        // Record the allocation body for the upcoming data transfer —
        // after capping what it may demand: the body reaches
        // `Assembly::preallocated`, so an uncapped `msg_len` is a
        // state-exhaustion primitive for anyone who can flip a bit.
        if let DataBody::Alloc(b) = body {
            if matches!(offer, Offer::InOrder) {
                let packets = b.msg_len.div_ceil(u64::from(b.packet_size.max(1)));
                if b.msg_len > MAX_ALLOC_BYTES || packets > MAX_ALLOC_PACKETS {
                    self.stats.decode_errors += 1;
                    self.stats.malformed_rx += 1;
                    self.tracer.emit(
                        now.as_nanos(),
                        TraceEvent::DataDiscarded {
                            transfer: b.data_transfer,
                            seq: 0,
                        },
                    );
                } else {
                    self.alloc_pending.insert(b.data_transfer, b);
                }
            }
        }

        // Deliver on completion.
        let st = self.transfers.get_mut(&transfer).expect("state exists");
        let became_complete = !was_complete && st.complete();
        if became_complete {
            self.note_completion(transfer);
        }
        let st = self.transfers.get_mut(&transfer).expect("state exists");
        if became_complete && !is_alloc && !st.delivered {
            st.delivered = true;
            let data = st
                .assembly
                .take()
                .expect("completed data transfer has an assembly")
                .into_bytes();
            let msg_id = (transfer / 2) as u64;
            self.stats.messages_completed += 1;
            if let Some(first) = st.first_heard {
                self.telem
                    .assembly_ns
                    .record(now.saturating_since(first).as_nanos());
            }
            self.tracer
                .emit(now.as_nanos(), TraceEvent::Delivered { transfer, msg_id });
            self.events
                .push_back(AppEvent::MessageDelivered { msg_id, data });
            // A newly delivered message obsoletes the pending NAK state for
            // this transfer.
            if self
                .pending_nak
                .as_ref()
                .is_some_and(|p| p.transfer == transfer)
            {
                self.pending_nak = None;
            }
        }
        if became_complete && is_alloc {
            st.delivered = true;
        }

        // Acknowledge per protocol policy.
        self.acknowledge(transfer, header.flags, seq, prev_next, offer);

        // NAK on detected gaps.
        if matches!(offer, Offer::Rejected) || (matches!(offer, Offer::Buffered) && seq > prev_next)
        {
            let expected = self.transfers[&transfer].own_next;
            self.consider_nak(now, transfer, expected);
        }

        self.prune();
        self.rearm_stall_timer(now);
        self.rearm_child_timer(now);
    }

    /// The per-protocol acknowledgment decision after processing a data
    /// packet.
    fn acknowledge(
        &mut self,
        transfer: u32,
        flags: PacketFlags,
        seq: u32,
        prev_next: u32,
        offer: Offer,
    ) {
        let st = &self.transfers[&transfer];
        let next = st.own_next;
        match self.cfg.kind {
            ProtocolKind::Ack => {
                // Cumulative ACK for every packet heard.
                self.send_ack(Dest::Sender, transfer, next);
            }
            ProtocolKind::NakPolling { .. } | ProtocolKind::Fec { .. } => {
                // Polled packets are acknowledged; so are retransmissions:
                // a retransmission means the sender is stalled waiting for
                // state it cannot otherwise observe (a gap filled under
                // selective repeat, or a lost poll response). The fec
                // family inherits this policy — decoded repairs carry RETX
                // on their synthesized header, so a successful decode
                // reports progress the same way a retransmission would.
                if flags.contains(PacketFlags::POLL) || flags.contains(PacketFlags::RETX) {
                    self.send_ack(Dest::Sender, transfer, next);
                }
            }
            ProtocolKind::Ring => {
                let n = self.group.n_receivers as u32;
                let idx = self.rank.receiver_index() as u32;
                let advanced = matches!(offer, Offer::InOrder);
                // Token packets newly covered by the in-order advance.
                let newly_token = advanced && (prev_next..next).any(|p| p % n == idx);
                // Everyone acknowledges the end of the transfer.
                let completed_now = advanced && st.complete();
                // Duplicates of our token packets or of the LAST packet
                // are re-acknowledged (lost-ACK recovery).
                let dup_token = matches!(offer, Offer::Duplicate)
                    && (seq % n == idx || flags.contains(PacketFlags::LAST));
                // Under overload hardening, an in-order advance on a
                // retransmitted packet is acknowledged even off-token: a
                // retransmission means the sender is starved of state it
                // cannot otherwise observe (quarantine catch-up would
                // stall a full token rotation between ACKs otherwise).
                let retx_advance = self.cfg.overload.any_enabled()
                    && advanced
                    && flags.contains(PacketFlags::RETX);
                if newly_token || completed_now || dup_token || retx_advance {
                    self.send_ack(Dest::Sender, transfer, next);
                }
            }
            ProtocolKind::Tree { .. } => {
                let force = matches!(offer, Offer::Duplicate)
                    && (flags.contains(PacketFlags::LAST) || flags.contains(PacketFlags::RETX));
                self.send_aggregate(transfer, force);
            }
        }
    }

    /// Tree mode: send the aggregated cumulative ACK upward when it
    /// advanced (or when `force`d by a retransmitted LAST packet).
    fn send_aggregate(&mut self, transfer: u32, force: bool) {
        let st = self.transfers.get_mut(&transfer).expect("state exists");
        let agg = st.aggregate(&self.dead_children);
        let advanced = st.sent_up.is_none_or(|s| agg > s);
        let should_send = force || (advanced && agg > 0);
        if !should_send {
            return;
        }
        st.sent_up = Some(agg.max(st.sent_up.unwrap_or(0)));
        let dest = match self.links.as_ref().and_then(|l| l.parent) {
            Some(p) => Dest::Rank(p),
            None => Dest::Sender,
        };
        self.send_ack(dest, transfer, agg);
    }

    fn send_ack(&mut self, dest: Dest, transfer: u32, next_expected: u32) {
        self.stats.acks_sent += 1;
        self.tracer.emit(
            self.now_cache.as_nanos(),
            TraceEvent::AckSent {
                transfer,
                next: next_expected,
            },
        );
        let payload = if self.cfg.membership.enabled {
            packet::encode_ack_epoch(self.rank, transfer, SeqNo(next_expected), self.epoch)
        } else {
            packet::encode_ack(self.rank, transfer, SeqNo(next_expected))
        };
        self.out.push_back(Transmit {
            dest,
            payload,
            copied: 0,
        });
    }

    // ------------------------------------------------------------------
    // NAKs
    // ------------------------------------------------------------------

    fn consider_nak(&mut self, now: Time, transfer: u32, expected: u32) {
        // Load-aware scaling: the static suppression interval stretches
        // with observed retransmission traffic (identity when disabled).
        let suppress = match self.load.as_mut() {
            Some(l) => l.scale(self.cfg.nak_suppress, now),
            None => self.cfg.nak_suppress,
        };
        let receiver_multicast = matches!(
            self.cfg.kind,
            ProtocolKind::NakPolling {
                receiver_multicast_nak: true,
                ..
            }
        );
        if receiver_multicast {
            if self.pending_nak.is_none() {
                let delay_ns = self.rng.gen_range(0..=suppress.as_nanos());
                self.pending_nak = Some(PendingNak {
                    transfer,
                    expected,
                    deadline: now + rmwire::Duration::from_nanos(delay_ns),
                });
            } else {
                self.stats.naks_suppressed += 1;
            }
            return;
        }
        // Sender-side suppression variant: rate-limit our own NAKs.
        let ok = self
            .last_nak
            .is_none_or(|t| now.saturating_since(t).as_nanos() >= suppress.as_nanos());
        if ok {
            self.last_nak = Some(now);
            self.emit_nak(Dest::Sender, transfer, expected);
        } else {
            self.stats.naks_suppressed += 1;
        }
    }

    fn emit_nak(&mut self, dest: Dest, transfer: u32, expected: u32) {
        self.stats.naks_sent += 1;
        self.tracer.emit(
            self.now_cache.as_nanos(),
            TraceEvent::NakSent {
                transfer,
                seq: expected,
            },
        );
        let payload = if self.cfg.membership.enabled {
            packet::encode_nak_epoch(self.rank, transfer, SeqNo(expected), self.epoch)
        } else {
            packet::encode_nak(self.rank, transfer, SeqNo(expected))
        };
        self.out.push_back(Transmit {
            dest,
            payload,
            copied: 0,
        });
    }

    // ------------------------------------------------------------------
    // Coded repair (the fec family)
    // ------------------------------------------------------------------

    /// Process a REPAIR or PARITY coded block: the XOR of the packets the
    /// body's bitmap names. Exactly one of them missing here means the
    /// block decodes — XOR the held packets back out and feed the
    /// reconstructed chunk through the ordinary data path, which keeps
    /// delivery exactly-once even when the same packet later arrives
    /// natively (the assembly reports it as a duplicate).
    fn on_repair(&mut self, now: Time, header: Header, body: RepairBody, payload: &[u8]) {
        let _span = rmprof::span!(rmprof::Stage::FecDecode);
        self.stats.repairs_received += 1;
        self.last_heard = now;
        let transfer = header.transfer;
        if transfer < self.min_transfer {
            self.stats.data_discarded += 1;
            self.tracer.emit(
                now.as_nanos(),
                TraceEvent::DataDiscarded {
                    transfer,
                    seq: body.base_seq,
                },
            );
            return;
        }
        // Reactive repair is retransmission traffic: feed the load signal
        // that stretches NAK suppression under overload. Proactive parity
        // is steady-state traffic and stays out of it.
        if header.ptype == PacketType::Repair {
            if let Some(l) = self.load.as_mut() {
                l.note(now);
            }
        }
        // Replay gate: generations are strictly increasing per transfer.
        // An equal-or-older generation is a replayed (or badly reordered)
        // block; dropping it is never load-bearing because the sender
        // re-codes losses that stay unresolved.
        if let Some(st) = self.transfers.get(&transfer) {
            if st.repair_gen.is_some_and(|g| body.generation <= g) {
                self.stats.repairs_replayed += 1;
                return;
            }
        }
        // Decoding needs the exact chunk geometry, which only the
        // allocation handshake provides (the fec family requires it). A
        // block for a transfer we cannot size is unattributable — discard.
        let have_state = self
            .transfers
            .get(&transfer)
            .is_some_and(|st| st.assembly.is_some() || st.delivered);
        if !have_state && !self.alloc_pending.contains_key(&transfer) {
            self.stats.data_discarded += 1;
            self.tracer.emit(
                now.as_nanos(),
                TraceEvent::DataDiscarded {
                    transfer,
                    seq: body.base_seq,
                },
            );
            return;
        }
        // Materialize the assembly exactly as the data path would, then
        // stamp the generation: the block counts as processed whatever the
        // decode outcome.
        let discipline = self.cfg.discipline;
        let window = self.cfg.window as u32;
        let alloc_body = self.alloc_pending.get(&transfer).copied();
        let st = self.ensure_state(transfer, false);
        if st.first_heard.is_none() {
            st.first_heard = Some(now);
        }
        if st.assembly.is_none() && !st.delivered {
            let b = alloc_body.expect("gated on alloc_pending above");
            let asm = Assembly::preallocated(
                b.msg_len as usize,
                b.packet_size as usize,
                discipline,
                window,
            );
            // Keep the tracked-progress mirrors in lockstep (invariant
            // R1), as the data path does after every offer.
            st.own_next = asm.next_expected();
            st.k = asm.k();
            st.assembly = Some(asm);
        }
        st.repair_gen = Some(body.generation);

        enum Outcome {
            Useless,
            Undecodable,
            Decoded {
                seq: u32,
                chunk: Vec<u8>,
                last: bool,
            },
        }
        let outcome = {
            let st = &self.transfers[&transfer];
            match &st.assembly {
                // Delivered: everything the block names is already held.
                None => Outcome::Useless,
                Some(asm) => {
                    let packet_size = asm.packet_size();
                    if payload.len() > packet_size {
                        // The XOR of ≤ packet_size chunks cannot be longer
                        // than packet_size: hostile or corrupt.
                        Outcome::Undecodable
                    } else {
                        let mut missing = None;
                        let mut n_missing = 0u32;
                        for seq in body.seqs() {
                            if !asm.holds(seq) {
                                n_missing += 1;
                                missing = Some(seq);
                            }
                        }
                        match (n_missing, missing) {
                            (0, _) => Outcome::Useless,
                            (1, Some(seq)) => match asm.chunk_len(seq) {
                                // The bitmap names a packet beyond the
                                // transfer: hostile or corrupt.
                                None => Outcome::Undecodable,
                                Some(want) => {
                                    let mut acc = vec![0u8; packet_size];
                                    acc[..payload.len()].copy_from_slice(payload);
                                    let mut readable = true;
                                    for s in body.seqs().filter(|&s| s != seq) {
                                        match asm.chunk(s) {
                                            Some(held) => {
                                                for (a, &b) in acc.iter_mut().zip(held) {
                                                    *a ^= b;
                                                }
                                            }
                                            // A "held" bit just outside the
                                            // sized transfer (forged empty
                                            // data can plant one) is not
                                            // readable — fail the decode,
                                            // never the process.
                                            None => {
                                                readable = false;
                                                break;
                                            }
                                        }
                                    }
                                    if readable {
                                        acc.truncate(want);
                                        let last = asm.k().is_some_and(|k| seq + 1 == k);
                                        Outcome::Decoded {
                                            seq,
                                            chunk: acc,
                                            last,
                                        }
                                    } else {
                                        Outcome::Undecodable
                                    }
                                }
                            },
                            _ => Outcome::Undecodable,
                        }
                    }
                }
            }
        };
        match outcome {
            Outcome::Useless => self.stats.repairs_useless += 1,
            Outcome::Undecodable => self.stats.repairs_undecodable += 1,
            Outcome::Decoded { seq, chunk, last } => {
                self.stats.repairs_decoded += 1;
                self.tracer
                    .emit(now.as_nanos(), TraceEvent::RepairDecoded { transfer, seq });
                // Feed the reconstruction through the ordinary data path
                // under a synthesized header. RETX makes the NakPolling-
                // style acknowledgment policy report the progress; LAST
                // restates what the geometry already pinned.
                let mut flags = PacketFlags::RETX;
                if last {
                    flags |= PacketFlags::LAST;
                }
                let synth = Header {
                    ptype: PacketType::Data,
                    flags,
                    src_rank: header.src_rank,
                    transfer,
                    seq: SeqNo(seq),
                };
                self.on_data(now, synth, DataBody::Chunk(&chunk));
            }
        }
    }

    // ------------------------------------------------------------------
    // Control packets from peers
    // ------------------------------------------------------------------

    fn on_peer_ack(&mut self, now: Time, rank: Rank, transfer: u32, next_expected: u32) {
        self.stats.acks_received += 1;
        let Some(&slot) = self.child_slot.get(&rank) else {
            return; // not one of our tree children; stray
        };
        self.tracer.emit(
            now.as_nanos(),
            TraceEvent::AckReceived {
                from: rank.0,
                transfer,
                next: next_expected,
            },
        );
        let st = self.ensure_state(transfer, false);
        let advanced = next_expected > st.child_cov[slot];
        st.child_cov[slot] = st.child_cov[slot].max(next_expected);
        self.send_aggregate(transfer, false);
        if advanced {
            // Child progress: push that child's eviction out.
            self.child_alive[slot] = self.child_alive[slot].max(now);
        }
        self.rearm_child_timer(now);
    }

    // ------------------------------------------------------------------
    // Liveness: child eviction and sender give-up
    // ------------------------------------------------------------------

    /// Is slot's acknowledgment trailing this node's own progress on some
    /// tracked transfer? Returns the oldest such transfer.
    fn slot_behind(&self, slot: usize) -> Option<u32> {
        self.transfers
            .iter()
            .find(|(_, st)| st.child_cov[slot] < st.own_next)
            .map(|(&t, _)| t)
    }

    /// Arm the child-evict timer at the earliest per-child deadline (last
    /// sign of life + timeout, over live children that are behind); disarm
    /// it when no child gates anything.
    fn rearm_child_timer(&mut self, _now: Time) {
        let Some(d) = self.cfg.liveness.child_evict_timeout else {
            return;
        };
        self.child_deadline = (0..self.dead_children.len())
            .filter(|&s| !self.dead_children[s] && self.slot_behind(s).is_some())
            .map(|s| self.child_alive[s] + d)
            .min();
    }

    /// The child-evict timer fired: every live child that is behind *and*
    /// silent past the timeout is presumed dead. Drop it from the
    /// aggregate so the ack chain routes around the dead subtree, and
    /// re-report everything that unblocked.
    fn evict_stalled_children(&mut self, now: Time) {
        self.child_deadline = None;
        let d = self
            .cfg
            .liveness
            .child_evict_timeout
            .expect("timer only armed when configured");
        let mut evicted = Vec::new();
        for (slot, dead) in self.dead_children.clone().iter().enumerate() {
            if *dead || self.child_alive[slot] + d > now {
                continue;
            }
            if let Some(transfer) = self.slot_behind(slot) {
                self.dead_children[slot] = true;
                evicted.push((slot, transfer));
            }
        }
        for &(slot, transfer) in &evicted {
            let rank = self
                .links
                .as_ref()
                .expect("children imply tree links")
                .children[slot];
            self.stats.evictions += 1;
            self.tracer.emit(
                now.as_nanos(),
                TraceEvent::Evicted {
                    peer: rank.0,
                    transfer,
                },
            );
            self.events.push_back(AppEvent::ReceiverEvicted {
                msg_id: (transfer / 2) as u64,
                rank,
            });
        }
        if !evicted.is_empty() {
            // Aggregates may have jumped: re-report every tracked transfer
            // (send_aggregate only emits when the aggregate advanced).
            for t in self.transfers.keys().copied().collect::<Vec<_>>() {
                self.send_aggregate(t, false);
            }
        }
        self.rearm_child_timer(now);
    }

    /// The give-up deadline, when the config bounds how long a receiver
    /// waits on a silent sender with transfers incomplete.
    fn giveup_deadline(&self) -> Option<Time> {
        let g = self.cfg.liveness.receiver_giveup?;
        self.stalled_target().map(|_| self.last_heard + g)
    }

    /// The sender went silent past `receiver_giveup`: abandon every
    /// incomplete (or announced-but-unstarted) message with a typed error
    /// instead of waiting forever.
    fn give_up_on_sender(&mut self, now: Time) {
        // Oldest transfer per abandoned message id, for the error report.
        let mut failed: BTreeMap<u64, u32> = BTreeMap::new();
        for (&t, st) in &self.transfers {
            if !st.complete() {
                failed.entry((t / 2) as u64).or_insert(t);
            }
        }
        for &t in self.alloc_pending.keys() {
            if !self.transfers.contains_key(&t) {
                failed.entry((t / 2) as u64).or_insert(t);
            }
        }
        self.transfers.retain(|_, st| st.complete());
        self.alloc_pending.clear();
        self.pending_nak = None;
        self.stall_deadline = None;
        let any_failed = !failed.is_empty();
        for (msg_id, transfer) in failed {
            self.stats.messages_failed += 1;
            self.events.push_back(AppEvent::MessageFailed {
                msg_id,
                error: SessionError::SenderStalled { transfer },
            });
        }
        if any_failed {
            self.push_flight_dump(now, "receiver gave up on silent sender");
        }
    }

    /// Snapshot the flight recorder (when enabled) into an app event, so
    /// the driver can surface the last moments before a failure.
    fn push_flight_dump(&mut self, now: Time, reason: &str) {
        if let Some(dump) = self
            .tracer
            .flight_dump(now.as_nanos(), reason, self.stats.snapshot())
        {
            self.events.push_back(AppEvent::FlightRecorderDump { dump });
        }
    }

    /// Adopt a (possibly newer) epoch announced by the sender, tracing
    /// the transition.
    fn adopt_epoch(&mut self, now: Time, epoch: u32) {
        if epoch > self.epoch {
            self.epoch = epoch;
            self.tracer
                .emit(now.as_nanos(), TraceEvent::EpochChange { epoch });
        }
    }

    fn on_peer_nak(&mut self, transfer: u32, expected: u32) {
        self.stats.naks_received += 1;
        // Multicast NAK overheard: suppress our own pending NAK for the
        // same (or earlier) gap.
        if let Some(p) = &self.pending_nak {
            if p.transfer == transfer && expected <= p.expected {
                self.pending_nak = None;
                self.stats.naks_suppressed += 1;
            }
        }
    }

    // ------------------------------------------------------------------
    // Dynamic membership
    // ------------------------------------------------------------------

    /// A heartbeat arrived. The sender's multicast announce carries the
    /// authoritative epoch and is answered with a unicast reply (plus a
    /// copy to the tree parent, so ancestors can tell a *gated* child —
    /// alive but blocked on its own dead subtree — from a silent one). A
    /// heartbeat from one of our children re-bases its eviction timer.
    fn on_heartbeat(&mut self, now: Time, src: Rank, epoch: u32) {
        self.stats.heartbeats_received += 1;
        if let Some(&slot) = self.child_slot.get(&src) {
            if !self.dead_children[slot] {
                // The child is alive even if its aggregate is stuck:
                // without this, a dead leaf cascade-evicts every live
                // ancestor in its chain.
                self.child_alive[slot] = self.child_alive[slot].max(now);
                self.rearm_child_timer(now);
            }
            return;
        }
        if !src.is_sender() {
            return;
        }
        self.last_heard = now;
        self.adopt_epoch(now, epoch);
        if self.joining {
            // Not a member yet: the JOIN retry timer covers liveness.
            return;
        }
        self.stats.heartbeats_sent += 1;
        self.out.push_back(Transmit {
            dest: Dest::Sender,
            payload: packet::encode_heartbeat(self.rank, self.epoch),
            copied: 0,
        });
        if let Some(p) = self.links.as_ref().and_then(|l| l.parent) {
            self.stats.heartbeats_sent += 1;
            self.out.push_back(Transmit {
                dest: Dest::Rank(p),
                payload: packet::encode_heartbeat(self.rank, self.epoch),
                copied: 0,
            });
        }
    }

    /// The sender acknowledged our JOIN. Admission itself still waits on
    /// the SYNC handoff at the next message boundary.
    fn on_welcome(&mut self, now: Time, epoch: u32) {
        self.last_heard = now;
        self.adopt_epoch(now, epoch);
    }

    /// The SYNC handoff: we are a member from `body.epoch` on, obligated
    /// for transfers from `body.next_transfer`. Anything older completes
    /// (or fails) without us.
    fn on_sync(&mut self, now: Time, body: rmwire::SyncBody) {
        self.last_heard = now;
        self.adopt_epoch(now, body.epoch);
        if body.detached_root() {
            // Re-parented as a detached tree root: the old parent chain no
            // longer waits on us; aggregates go straight to the sender.
            if let Some(l) = self.links.as_mut() {
                l.parent = None;
            }
        }
        let cutoff = if self.joining {
            body.next_transfer
        } else {
            // Implicit rejoin after an eviction we never observed: the
            // handoff point only ever moves forward.
            self.min_transfer.max(body.next_transfer)
        };
        self.min_transfer = cutoff;
        // SYNC is authoritative about where the transfer progression
        // stands: advance the pruning horizon so fresh state is tracked.
        self.max_seen = self.max_seen.max(cutoff);
        // Abandon incomplete pre-admission transfers: the sender fulfils
        // them toward the members of their epoch, not toward us.
        let mut failed: BTreeMap<u64, u32> = BTreeMap::new();
        for (&t, st) in &self.transfers {
            if t < cutoff && !st.complete() {
                failed.entry((t / 2) as u64).or_insert(t);
            }
        }
        for &t in self.alloc_pending.keys() {
            if t < cutoff && !self.transfers.contains_key(&t) {
                failed.entry((t / 2) as u64).or_insert(t);
            }
        }
        self.transfers.retain(|&t, st| t >= cutoff || st.complete());
        self.alloc_pending.retain(|&t, _| t >= cutoff);
        if self
            .pending_nak
            .as_ref()
            .is_some_and(|p| p.transfer < cutoff)
        {
            self.pending_nak = None;
        }
        let any_failed = !failed.is_empty();
        for (msg_id, transfer) in failed {
            self.stats.messages_failed += 1;
            self.events.push_back(AppEvent::MessageFailed {
                msg_id,
                error: SessionError::SenderStalled { transfer },
            });
        }
        if any_failed {
            self.push_flight_dump(now, "SYNC abandoned pre-admission transfers");
        }
        if self.joining {
            self.joining = false;
            self.join_deadline = None;
            self.stats.joins += 1;
        }
        self.rearm_stall_timer(now);
    }
}

/// Body of a received data-bearing packet.
enum DataBody<'a> {
    Chunk(&'a [u8]),
    Alloc(AllocBody),
}

impl Receiver {
    /// Audit every receiver-side invariant (`R1`…`R4` in
    /// [`crate::invariants`]) against the current state.
    pub fn audit(&self) -> Result<(), Vec<crate::invariants::Violation>> {
        use crate::invariants::Audit;
        let mut a = Audit::new();
        let n_children = self.n_children();
        a.require("R4", self.dead_children.len() == n_children, || {
            format!(
                "{} eviction flags for {n_children} children",
                self.dead_children.len()
            )
        });
        a.require("R4", self.child_alive.len() == n_children, || {
            format!(
                "{} liveness stamps for {n_children} children",
                self.child_alive.len()
            )
        });
        a.require(
            "R4",
            self.child_slot.len() == n_children
                && self.child_slot.values().all(|&s| s < n_children),
            || "child rank → slot map out of lockstep with the aggregation links".into(),
        );
        for (&id, st) in &self.transfers {
            if let Some(k) = st.k {
                a.require("R1", st.own_next <= k, || {
                    format!("transfer {id}: progress {} beyond k = {k}", st.own_next)
                });
                a.require("R1", !st.delivered || st.own_next >= k, || {
                    format!(
                        "transfer {id}: delivered with only {} of {k} packets",
                        st.own_next
                    )
                });
            } else {
                a.require("R1", !st.delivered, || {
                    format!("transfer {id}: delivered without ever learning k")
                });
            }
            if let Some(asm) = &st.assembly {
                a.require(
                    "R1",
                    st.own_next == asm.next_expected() && st.k == asm.k(),
                    || {
                        format!(
                            "transfer {id}: tracked progress {}/{:?} diverges from the \
                         assembly's {}/{:?}",
                            st.own_next,
                            st.k,
                            asm.next_expected(),
                            asm.k()
                        )
                    },
                );
                a.check("R3", asm.check().map_err(|e| format!("transfer {id}: {e}")));
            }
            a.require("R4", st.child_cov.len() == n_children, || {
                format!(
                    "transfer {id}: {} child coverage slots for {n_children} children",
                    st.child_cov.len()
                )
            });
            if st.child_cov.len() == n_children && self.dead_children.len() == n_children {
                let agg = st.aggregate(&self.dead_children);
                if let Some(sent) = st.sent_up {
                    a.require("R2", sent <= agg, || {
                        format!(
                            "transfer {id}: acknowledged {sent} up the tree but can \
                             only vouch for {agg} (own {} / children {:?})",
                            st.own_next, st.child_cov
                        )
                    });
                }
            }
        }
        a.finish()
    }

    /// Hash the protocol-logical state into `h`: everything that shapes
    /// future behavior except clocks, counters and telemetry (see
    /// [`crate::Sender::hash_protocol_state`] for the soundness
    /// argument).
    pub fn hash_protocol_state(&self, h: &mut dyn std::hash::Hasher) {
        h.write_u16(self.rank.0);
        for (&id, st) in &self.transfers {
            h.write_u32(id);
            h.write_u32(st.own_next);
            match st.k {
                None => h.write_u8(0),
                Some(k) => {
                    h.write_u8(1);
                    h.write_u32(k);
                }
            }
            h.write_u8(st.delivered as u8);
            for &c in &st.child_cov {
                h.write_u32(c);
            }
            match st.sent_up {
                None => h.write_u8(0),
                Some(s) => {
                    h.write_u8(1);
                    h.write_u32(s);
                }
            }
            match st.repair_gen {
                None => h.write_u8(0),
                Some(g) => {
                    h.write_u8(1);
                    h.write_u32(g);
                }
            }
            match &st.assembly {
                None => h.write_u8(0),
                Some(asm) => {
                    h.write_u8(1);
                    h.write_u32(asm.next_expected());
                    for &w in asm.have_words() {
                        h.write_u64(w);
                    }
                    h.write_usize(asm.buffered_bytes());
                }
            }
        }
        h.write_u32(self.max_seen);
        // HashMap iteration order is arbitrary: hash sorted.
        let mut pending: Vec<_> = self.alloc_pending.keys().copied().collect();
        pending.sort_unstable();
        for id in pending {
            h.write_u32(id);
            let b = &self.alloc_pending[&id];
            h.write_u64(b.msg_len);
            h.write_u32(b.data_transfer);
            h.write_u32(b.packet_size);
        }
        match &self.pending_nak {
            None => h.write_u8(0),
            Some(p) => {
                h.write_u8(1);
                h.write_u32(p.transfer);
                h.write_u32(p.expected);
            }
        }
        for &d in &self.dead_children {
            h.write_u8(d as u8);
        }
        h.write_u8(self.joining as u8);
        h.write_u32(self.epoch);
        h.write_u32(self.min_transfer);
        h.write_usize(self.out.len());
        h.write_usize(self.events.len());
    }

    /// Panic on any violated invariant (`debug_assertions` only; see
    /// [`crate::Sender`]'s equivalent hook).
    #[cfg(debug_assertions)]
    fn debug_audit(&self) {
        if let Err(v) = self.audit() {
            panic!(
                "receiver {} invariant violation: {}",
                self.rank,
                crate::invariants::render(&v)
            );
        }
    }
}

impl Endpoint for Receiver {
    fn handle_datagram(&mut self, now: Time, datagram: &[u8]) {
        self.now_cache = self.now_cache.max(now);
        let pkt = match Packet::parse_checked(datagram, self.cfg.integrity) {
            Ok(p) => p,
            Err(e) => {
                self.stats.decode_errors += 1;
                let cause = match e {
                    rmwire::WireError::ChecksumMismatch { .. }
                    | rmwire::WireError::ChecksumMissing => {
                        self.stats.integrity_fail += 1;
                        "IntegrityFail"
                    }
                    _ => {
                        self.stats.malformed_rx += 1;
                        "MalformedRx"
                    }
                };
                self.tracer.emit(now.as_nanos(), TraceEvent::Drop { cause });
                return;
            }
        };
        match pkt {
            Packet::Data { header, body } => self.on_data(now, header, DataBody::Chunk(&body)),
            Packet::Alloc { header, body } => self.on_data(now, header, DataBody::Alloc(body)),
            Packet::Ack { header, body, .. } => {
                self.on_peer_ack(now, header.src_rank, header.transfer, body.next_expected.0)
            }
            Packet::Nak { header, body, .. } => self.on_peer_nak(header.transfer, body.expected.0),
            Packet::Heartbeat { header, body } => {
                self.on_heartbeat(now, header.src_rank, body.epoch)
            }
            Packet::Welcome { body, .. } => self.on_welcome(now, body.epoch),
            Packet::Sync { body, .. } => self.on_sync(now, body),
            Packet::Repair {
                header,
                body,
                payload,
            }
            | Packet::Parity {
                header,
                body,
                payload,
            } => self.on_repair(now, header, body, &payload),
            // Sender-bound admission control that strayed to a receiver.
            Packet::Join { .. } | Packet::Leave { .. } => self.stats.data_discarded += 1,
        }
        #[cfg(debug_assertions)]
        self.debug_audit();
    }

    fn handle_timeout(&mut self, now: Time) {
        self.now_cache = self.now_cache.max(now);
        if let Some(p) = self.pending_nak.take() {
            if p.deadline <= now {
                // Multicast to the group and unicast to the sender (the
                // sender is not a group member).
                self.emit_nak(Dest::Receivers, p.transfer, p.expected);
                self.emit_nak(Dest::Sender, p.transfer, p.expected);
            } else {
                self.pending_nak = Some(p);
            }
        }
        if self.stall_deadline.is_some_and(|d| d <= now) {
            self.stall_deadline = None;
            if let Some((transfer, expected)) = self.stalled_target() {
                self.emit_nak(Dest::Sender, transfer, expected);
                self.rearm_stall_timer(now);
            }
        }
        if self.child_deadline.is_some_and(|d| d <= now) {
            self.evict_stalled_children(now);
        }
        if self.join_deadline.is_some_and(|d| d <= now) {
            if self.joining {
                self.send_join(now); // re-arms the retry timer
            } else {
                self.join_deadline = None;
            }
        }
        if self.giveup_deadline().is_some_and(|d| d <= now) {
            self.give_up_on_sender(now);
        }
        #[cfg(debug_assertions)]
        self.debug_audit();
    }

    fn poll_timeout(&self) -> Option<Time> {
        [
            self.pending_nak.as_ref().map(|p| p.deadline),
            self.stall_deadline,
            self.child_deadline,
            self.join_deadline,
            self.giveup_deadline(),
        ]
        .into_iter()
        .flatten()
        .min()
    }

    fn poll_transmit(&mut self) -> Option<Transmit> {
        let mut tx = self.out.pop_front()?;
        if self.cfg.integrity {
            tx.payload = packet::seal(&tx.payload);
        }
        Some(tx)
    }

    fn poll_event(&mut self) -> Option<AppEvent> {
        self.events.pop_front()
    }

    fn stats(&self) -> &Stats {
        &self.stats
    }

    fn set_trace_sink(&mut self, sink: Box<dyn rmtrace::TraceSink>) {
        self.tracer.set_sink(sink);
    }

    fn enable_flight_recorder(&mut self, cap: usize) {
        self.tracer.enable_flight_recorder(cap);
    }

    fn is_idle(&self) -> bool {
        self.out.is_empty()
            && self.pending_nak.is_none()
            && self.stall_deadline.is_none()
            && self.child_deadline.is_none()
            && self.join_deadline.is_none()
            && self.giveup_deadline().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TreeShape;
    use bytes::Bytes;

    fn cfg(kind: ProtocolKind) -> ProtocolConfig {
        let mut c = ProtocolConfig::new(kind, 100, 4);
        c.handshake = false;
        c
    }

    fn recv(cfg: ProtocolConfig, n: u16, rank: u16) -> Receiver {
        Receiver::new(cfg, GroupSpec::new(n), Rank(rank), 42)
    }

    fn data(transfer: u32, seq: u32, flags: PacketFlags, chunk: &[u8]) -> Bytes {
        packet::encode_data(Rank::SENDER, transfer, SeqNo(seq), flags, chunk)
    }

    fn drain(r: &mut Receiver) -> Vec<Transmit> {
        std::iter::from_fn(|| r.poll_transmit()).collect()
    }

    fn parse_acks(ts: &[Transmit]) -> Vec<(Dest, u32, u32)> {
        ts.iter()
            .filter_map(|t| match Packet::parse(&t.payload).unwrap() {
                Packet::Ack { header, body, .. } => {
                    Some((t.dest, header.transfer, body.next_expected.0))
                }
                _ => None,
            })
            .collect()
    }

    #[test]
    fn ack_mode_acks_every_packet() {
        let mut r = recv(cfg(ProtocolKind::Ack), 2, 1);
        r.handle_datagram(Time::ZERO, &data(1, 0, PacketFlags::EMPTY, b"aa"));
        r.handle_datagram(
            Time::ZERO,
            &data(1, 1, PacketFlags::LAST | PacketFlags::POLL, b"b"),
        );
        let acks = parse_acks(&drain(&mut r));
        assert_eq!(acks, vec![(Dest::Sender, 1, 1), (Dest::Sender, 1, 2)]);
        match r.poll_event().unwrap() {
            AppEvent::MessageDelivered { msg_id, data } => {
                assert_eq!(msg_id, 0);
                assert_eq!(&data[..], b"aab");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn gbn_gap_naks_and_drops() {
        let mut r = recv(cfg(ProtocolKind::Ack), 2, 1);
        r.handle_datagram(Time::ZERO, &data(1, 1, PacketFlags::EMPTY, b"bb"));
        let out = drain(&mut r);
        // Out-of-order packet: an ACK for the old cumulative point plus a
        // NAK for the missing packet.
        let naks: Vec<_> = out
            .iter()
            .filter_map(|t| match Packet::parse(&t.payload).unwrap() {
                Packet::Nak { body, .. } => Some(body.expected.0),
                _ => None,
            })
            .collect();
        assert_eq!(naks, vec![0]);
        assert_eq!(r.stats().naks_sent, 1);
        // NAK rate limiting.
        r.handle_datagram(Time::from_nanos(1), &data(1, 2, PacketFlags::EMPTY, b"cc"));
        assert_eq!(r.stats().naks_suppressed, 1);
    }

    #[test]
    fn nak_mode_acks_only_polled() {
        let mut r = recv(cfg(ProtocolKind::nak_polling(2)), 2, 1);
        r.handle_datagram(Time::ZERO, &data(1, 0, PacketFlags::EMPTY, b"aa"));
        assert!(parse_acks(&drain(&mut r)).is_empty());
        r.handle_datagram(Time::ZERO, &data(1, 1, PacketFlags::POLL, b"bb"));
        assert_eq!(parse_acks(&drain(&mut r)), vec![(Dest::Sender, 1, 2)]);
    }

    #[test]
    fn ring_mode_acks_token_and_last() {
        // 3 receivers; this is rank 2 (index 1): tokens are seqs 1, 4, ...
        let mut c = cfg(ProtocolKind::Ring);
        c.window = 5;
        let mut r = recv(c, 3, 2);
        r.handle_datagram(Time::ZERO, &data(1, 0, PacketFlags::EMPTY, b"aa"));
        assert!(parse_acks(&drain(&mut r)).is_empty(), "not my token");
        r.handle_datagram(Time::ZERO, &data(1, 1, PacketFlags::EMPTY, b"bb"));
        assert_eq!(parse_acks(&drain(&mut r)), vec![(Dest::Sender, 1, 2)]);
        r.handle_datagram(Time::ZERO, &data(1, 2, PacketFlags::LAST, b"cc"));
        // LAST: everyone acknowledges.
        assert_eq!(parse_acks(&drain(&mut r)), vec![(Dest::Sender, 1, 3)]);
    }

    #[test]
    fn ring_dup_token_reacked() {
        let mut c = cfg(ProtocolKind::Ring);
        c.window = 5;
        let mut r = recv(c, 3, 1); // tokens 0, 3, ...
        r.handle_datagram(Time::ZERO, &data(1, 0, PacketFlags::EMPTY, b"aa"));
        let _ = drain(&mut r);
        r.handle_datagram(Time::ZERO, &data(1, 0, PacketFlags::RETX, b"aa"));
        assert_eq!(parse_acks(&drain(&mut r)), vec![(Dest::Sender, 1, 1)]);
        assert_eq!(r.stats().data_discarded, 1);
    }

    #[test]
    fn tree_leaf_acks_to_parent_and_head_aggregates() {
        let kind = ProtocolKind::Tree {
            shape: TreeShape::Flat { height: 2 },
        };
        // 4 receivers, chains {1,2} and {3,4}.
        let mut head = recv(cfg(kind), 4, 1);
        let mut leaf = recv(cfg(kind), 4, 2);

        let pkt = data(1, 0, PacketFlags::LAST | PacketFlags::POLL, b"aa");
        leaf.handle_datagram(Time::ZERO, &pkt);
        let leaf_acks = parse_acks(&drain(&mut leaf));
        assert_eq!(leaf_acks, vec![(Dest::Rank(Rank(1)), 1, 1)]);

        // Head receives the data but must wait for its child.
        head.handle_datagram(Time::ZERO, &pkt);
        assert!(parse_acks(&drain(&mut head)).is_empty());
        // Child's ack arrives: now the head reports to the sender.
        let ack = packet::encode_ack(Rank(2), 1, SeqNo(1));
        head.handle_datagram(Time::ZERO, &ack);
        assert_eq!(parse_acks(&drain(&mut head)), vec![(Dest::Sender, 1, 1)]);
    }

    #[test]
    fn tree_child_ack_before_own_data() {
        let kind = ProtocolKind::Tree {
            shape: TreeShape::Flat { height: 2 },
        };
        let mut head = recv(cfg(kind), 4, 1);
        // Child ack arrives first (head's copy of the data is still in
        // flight): nothing to report yet.
        let ack = packet::encode_ack(Rank(2), 1, SeqNo(1));
        head.handle_datagram(Time::ZERO, &ack);
        assert!(parse_acks(&drain(&mut head)).is_empty());
        // Own data arrives: aggregate becomes 1.
        head.handle_datagram(Time::ZERO, &data(1, 0, PacketFlags::LAST, b"aa"));
        assert_eq!(parse_acks(&drain(&mut head)), vec![(Dest::Sender, 1, 1)]);
    }

    #[test]
    fn alloc_preallocates_and_data_fills() {
        let mut c = cfg(ProtocolKind::Ack);
        c.handshake = true;
        let mut r = recv(c, 1, 1);
        let alloc = packet::encode_alloc(
            Rank::SENDER,
            0,
            PacketFlags::LAST | PacketFlags::POLL,
            AllocBody {
                msg_len: 150,
                data_transfer: 1,
                packet_size: 100,
            },
        );
        r.handle_datagram(Time::ZERO, &alloc);
        assert_eq!(parse_acks(&drain(&mut r)), vec![(Dest::Sender, 0, 1)]);
        r.handle_datagram(Time::ZERO, &data(1, 0, PacketFlags::EMPTY, &[9u8; 100]));
        r.handle_datagram(Time::ZERO, &data(1, 1, PacketFlags::LAST, &[9u8; 50]));
        let _ = drain(&mut r);
        match r.poll_event().unwrap() {
            AppEvent::MessageDelivered { msg_id, data } => {
                assert_eq!(msg_id, 0);
                assert_eq!(data.len(), 150);
                assert!(data.iter().all(|&b| b == 9));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn duplicate_alloc_reacked_not_redelivered() {
        let mut c = cfg(ProtocolKind::Ack);
        c.handshake = true;
        let mut r = recv(c, 1, 1);
        let alloc = packet::encode_alloc(
            Rank::SENDER,
            0,
            PacketFlags::LAST,
            AllocBody {
                msg_len: 10,
                data_transfer: 1,
                packet_size: 100,
            },
        );
        r.handle_datagram(Time::ZERO, &alloc);
        r.handle_datagram(Time::ZERO, &alloc);
        let acks = parse_acks(&drain(&mut r));
        assert_eq!(acks.len(), 2, "dup alloc is re-acked");
        assert_eq!(r.stats().data_discarded, 1);
        assert!(r.poll_event().is_none(), "alloc is not an app message");
    }

    #[test]
    fn receiver_multicast_nak_delays_and_suppresses() {
        let kind = ProtocolKind::NakPolling {
            poll_interval: 2,
            receiver_multicast_nak: true,
        };
        let mut r = recv(cfg(kind), 3, 1);
        // Gap: schedules a delayed NAK instead of sending.
        r.handle_datagram(Time::ZERO, &data(1, 1, PacketFlags::EMPTY, b"bb"));
        assert!(drain(&mut r).is_empty());
        let deadline = r.poll_timeout().expect("NAK scheduled");
        // Overhearing another receiver's NAK for the same gap cancels ours.
        let nak = packet::encode_nak(Rank(2), 1, SeqNo(0));
        r.handle_datagram(Time::ZERO, &nak);
        assert!(r.poll_timeout().is_none());
        assert_eq!(r.stats().naks_suppressed, 1);
        // A later gap re-schedules; letting it fire emits to group+sender.
        r.handle_datagram(deadline, &data(1, 2, PacketFlags::EMPTY, b"cc"));
        let d2 = r.poll_timeout().expect("rescheduled");
        r.handle_timeout(d2);
        let out = drain(&mut r);
        let dests: Vec<_> = out.iter().map(|t| t.dest).collect();
        assert_eq!(dests, vec![Dest::Receivers, Dest::Sender]);
        assert_eq!(r.stats().naks_sent, 2);
    }

    #[test]
    fn tree_child_eviction_reroutes_ack_chain() {
        let kind = ProtocolKind::Tree {
            shape: TreeShape::Flat { height: 2 },
        };
        let mut c = cfg(kind);
        c.liveness.child_evict_timeout = Some(rmwire::Duration::from_millis(50));
        // 4 receivers, chains {1,2} and {3,4}: rank 1 aggregates rank 2.
        let mut head = recv(c, 4, 1);
        head.handle_datagram(Time::ZERO, &data(1, 0, PacketFlags::LAST, b"aa"));
        // Own progress outruns the (dead) child: no upward ack yet, but
        // the child-evict timer is armed.
        assert!(parse_acks(&drain(&mut head)).is_empty());
        assert!(matches!(
            head.poll_event(),
            Some(AppEvent::MessageDelivered { msg_id: 0, .. })
        ));
        let d = head.poll_timeout().expect("child timer armed");
        assert_eq!(d, Time::ZERO + rmwire::Duration::from_millis(50));
        head.handle_timeout(d);
        assert_eq!(
            head.poll_event(),
            Some(AppEvent::ReceiverEvicted {
                msg_id: 0,
                rank: Rank(2)
            })
        );
        // The ack chain now routes around the dead subtree: the head
        // vouches for its own copy alone.
        assert_eq!(parse_acks(&drain(&mut head)), vec![(Dest::Sender, 1, 1)]);
        assert_eq!(head.stats().evictions, 1);
        // Sticky: the next transfer never waits on the dead child.
        head.handle_datagram(d, &data(3, 0, PacketFlags::LAST, b"bb"));
        assert_eq!(parse_acks(&drain(&mut head)), vec![(Dest::Sender, 3, 1)]);
        assert!(head.poll_timeout().is_none(), "no timer for a dead child");
    }

    #[test]
    fn child_progress_pushes_evict_timer_out() {
        let kind = ProtocolKind::Tree {
            shape: TreeShape::Flat { height: 2 },
        };
        let mut c = cfg(kind);
        c.liveness.child_evict_timeout = Some(rmwire::Duration::from_millis(50));
        let mut head = recv(c, 4, 1);
        head.handle_datagram(Time::ZERO, &data(1, 0, PacketFlags::EMPTY, b"aa"));
        head.handle_datagram(Time::ZERO, &data(1, 1, PacketFlags::LAST, b"bb"));
        let _ = drain(&mut head);
        // The child acks packet 0 at t=40ms: alive, just slow. The timer
        // restarts instead of firing at 50ms.
        let t40 = Time::from_millis(40);
        head.handle_datagram(t40, &packet::encode_ack(Rank(2), 1, SeqNo(1)));
        let _ = drain(&mut head);
        assert_eq!(
            head.poll_timeout(),
            Some(t40 + rmwire::Duration::from_millis(50)),
            "progress re-bases the timer"
        );
        // Full catch-up disarms it.
        head.handle_datagram(t40, &packet::encode_ack(Rank(2), 1, SeqNo(2)));
        let _ = drain(&mut head);
        assert!(head.poll_timeout().is_none());
        assert_eq!(head.stats().evictions, 0);
    }

    #[test]
    fn receiver_gives_up_on_silent_sender() {
        use crate::error::SessionError;
        let mut c = cfg(ProtocolKind::Ack);
        c.liveness.receiver_giveup = Some(rmwire::Duration::from_millis(100));
        let mut r = recv(c, 1, 1);
        // One packet of an unfinished transfer, then silence.
        r.handle_datagram(Time::ZERO, &data(1, 0, PacketFlags::EMPTY, b"aa"));
        let _ = drain(&mut r);
        let d = r.poll_timeout().expect("give-up timer armed");
        assert_eq!(d, Time::ZERO + rmwire::Duration::from_millis(100));
        r.handle_timeout(d);
        assert_eq!(
            r.poll_event(),
            Some(AppEvent::MessageFailed {
                msg_id: 0,
                error: SessionError::SenderStalled { transfer: 1 },
            })
        );
        assert!(r.is_idle(), "nothing left to wait for");
        assert_eq!(r.stats().messages_failed, 1);
    }

    #[test]
    fn giveup_covers_announced_but_unstarted_transfers() {
        use crate::error::SessionError;
        let mut c = cfg(ProtocolKind::Ack);
        c.handshake = true;
        c.liveness.receiver_giveup = Some(rmwire::Duration::from_millis(100));
        let mut r = recv(c, 1, 1);
        // The allocation round trip completes; the data never arrives.
        let alloc = packet::encode_alloc(
            Rank::SENDER,
            0,
            PacketFlags::LAST,
            AllocBody {
                msg_len: 100,
                data_transfer: 1,
                packet_size: 100,
            },
        );
        r.handle_datagram(Time::ZERO, &alloc);
        let _ = drain(&mut r);
        let d = r.poll_timeout().expect("give-up timer armed");
        r.handle_timeout(d);
        assert_eq!(
            r.poll_event(),
            Some(AppEvent::MessageFailed {
                msg_id: 0,
                error: SessionError::SenderStalled { transfer: 1 },
            })
        );
        assert!(r.is_idle());
    }

    #[test]
    fn old_transfer_state_pruned() {
        let mut r = recv(cfg(ProtocolKind::Ack), 1, 1);
        for t in 0..20u32 {
            r.handle_datagram(Time::ZERO, &data(2 * t + 1, 0, PacketFlags::LAST, b"x"));
        }
        assert!(r.transfers.len() <= (RETAIN_TRANSFERS as usize) + 2);
    }

    #[test]
    #[should_panic(expected = "rank 0 is the sender")]
    fn sender_rank_rejected() {
        let _ = recv(cfg(ProtocolKind::Ack), 2, 0);
    }

    // ------------------------------------------------------------------
    // Dynamic membership
    // ------------------------------------------------------------------

    use crate::config::MembershipConfig;
    use rmwire::SyncBody;

    fn mcfg(kind: ProtocolKind) -> ProtocolConfig {
        let mut c = cfg(kind);
        c.membership = MembershipConfig::enabled();
        if matches!(kind, ProtocolKind::Tree { .. }) {
            c.liveness.child_evict_timeout = Some(rmwire::Duration::from_millis(50));
        }
        c
    }

    fn sync_body(epoch: u32, next_msg: u64, flags: u32) -> SyncBody {
        SyncBody {
            epoch,
            next_msg,
            next_transfer: (next_msg as u32) * 2,
            flags,
        }
    }

    #[test]
    fn joining_receiver_discards_data_until_sync() {
        let mut r = Receiver::new_joining(
            mcfg(ProtocolKind::Ack),
            GroupSpec::new(2),
            Rank(2),
            7,
            Time::ZERO,
        );
        // The constructor queued the JOIN.
        let out = drain(&mut r);
        assert_eq!(out.len(), 1);
        assert!(matches!(
            Packet::parse(&out[0].payload).unwrap(),
            Packet::Join { header, body } if header.src_rank == Rank(2) && body.last_epoch == 0
        ));
        // Data from the in-flight message is not ours: discarded, no ACK.
        r.handle_datagram(Time::ZERO, &data(1, 0, PacketFlags::LAST, b"aa"));
        assert!(drain(&mut r).is_empty());
        assert_eq!(r.stats().data_discarded, 1);
        // WELCOME brings the epoch; SYNC at the boundary of message 1
        // admits us for transfers >= 2.
        r.handle_datagram(Time::ZERO, &packet::encode_welcome(Rank::SENDER, 2));
        assert_eq!(r.epoch(), 2);
        r.handle_datagram(
            Time::ZERO,
            &packet::encode_sync(Rank::SENDER, sync_body(2, 1, 0)),
        );
        assert_eq!(r.stats().joins, 1);
        assert!(r.is_idle(), "JOIN retry timer disarmed");
        // Message 1 (transfer 3) is delivered and ACKed with our epoch.
        r.handle_datagram(Time::ZERO, &data(3, 0, PacketFlags::LAST, b"bb"));
        let out = drain(&mut r);
        match Packet::parse(&out[0].payload).unwrap() {
            Packet::Ack { epoch, body, .. } => {
                assert_eq!(epoch, Some(2));
                assert_eq!(body.next_expected.0, 1);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        assert!(matches!(
            r.poll_event(),
            Some(AppEvent::MessageDelivered { msg_id: 1, .. })
        ));
    }

    #[test]
    fn join_retries_until_sync() {
        let mut r = Receiver::new_joining(
            mcfg(ProtocolKind::Ack),
            GroupSpec::new(2),
            Rank(2),
            7,
            Time::ZERO,
        );
        let _ = drain(&mut r);
        let d = r.poll_timeout().expect("JOIN retry armed");
        assert_eq!(d, Time::ZERO + MembershipConfig::enabled().join_retry);
        r.handle_timeout(d);
        let out = drain(&mut r);
        assert_eq!(out.len(), 1, "JOIN retransmitted");
        assert!(matches!(
            Packet::parse(&out[0].payload).unwrap(),
            Packet::Join { .. }
        ));
        r.handle_datagram(d, &packet::encode_sync(Rank::SENDER, sync_body(2, 0, 0)));
        assert!(r.poll_timeout().is_none(), "retry disarmed after SYNC");
    }

    #[test]
    fn heartbeat_reply_carries_epoch() {
        let mut r = recv(mcfg(ProtocolKind::Ack), 2, 1);
        r.handle_datagram(Time::ZERO, &packet::encode_heartbeat(Rank::SENDER, 3));
        assert_eq!(r.epoch(), 3, "announce fast-forwards the epoch");
        let out = drain(&mut r);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dest, Dest::Sender);
        match Packet::parse(&out[0].payload).unwrap() {
            Packet::Heartbeat { header, body } => {
                assert_eq!(header.src_rank, Rank(1));
                assert_eq!(body.epoch, 3);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        assert_eq!(r.stats().heartbeats_received, 1);
        assert_eq!(r.stats().heartbeats_sent, 1);
    }

    #[test]
    fn sync_detached_root_reparents_tree_node() {
        let kind = ProtocolKind::Tree {
            shape: TreeShape::Flat { height: 2 },
        };
        // 4 receivers, chains {1,2} and {3,4}: rank 2 normally acks to 1.
        let mut r = recv(mcfg(kind), 4, 2);
        r.handle_datagram(
            Time::ZERO,
            &packet::encode_sync(
                Rank::SENDER,
                SyncBody {
                    epoch: 2,
                    next_msg: 0,
                    next_transfer: 0,
                    flags: SyncBody::DETACHED_ROOT,
                },
            ),
        );
        r.handle_datagram(Time::ZERO, &data(1, 0, PacketFlags::LAST, b"aa"));
        let acks = parse_acks(&drain(&mut r));
        assert_eq!(acks, vec![(Dest::Sender, 1, 1)], "parent link severed");
    }

    #[test]
    fn sync_abandons_preadmission_transfers() {
        let mut c = mcfg(ProtocolKind::Ack);
        c.receiver_nak_timer = Some(rmwire::Duration::from_millis(10));
        let mut r = recv(c, 1, 1);
        // An incomplete transfer, then an implicit-rejoin SYNC handing off
        // at message 2: the stale transfer fails instead of stalling.
        r.handle_datagram(Time::ZERO, &data(1, 0, PacketFlags::EMPTY, b"aa"));
        let _ = drain(&mut r);
        assert!(r.poll_timeout().is_some(), "stall timer armed");
        r.handle_datagram(
            Time::ZERO,
            &packet::encode_sync(Rank::SENDER, sync_body(3, 2, 0)),
        );
        assert_eq!(
            r.poll_event(),
            Some(AppEvent::MessageFailed {
                msg_id: 0,
                error: SessionError::SenderStalled { transfer: 1 },
            })
        );
        assert_eq!(r.epoch(), 3);
        assert!(r.is_idle(), "nothing left to wait on");
        // Retransmissions of the abandoned transfer are discarded.
        r.handle_datagram(
            Time::ZERO,
            &data(1, 1, PacketFlags::LAST | PacketFlags::RETX, b"bb"),
        );
        assert!(drain(&mut r).is_empty());
    }

    #[test]
    fn leave_announces_departure() {
        let mut r = recv(mcfg(ProtocolKind::Ack), 2, 1);
        r.leave();
        let out = drain(&mut r);
        assert_eq!(out.len(), 1);
        assert!(matches!(
            Packet::parse(&out[0].payload).unwrap(),
            Packet::Leave { header, body } if header.src_rank == Rank(1) && body.epoch == 1
        ));
    }
}
