//! Logical acknowledgment-aggregation structures for the tree protocol.
//!
//! Data always travels by multicast directly from the sender; the tree
//! shapes only the *acknowledgment* flow. Each receiver reports the
//! minimum of its own progress and its children's reported progress to its
//! parent; roots report to the sender. A flat tree of height `H` is a set
//! of `ceil(N/H)` chains, so at most `N/H` acknowledgments travel
//! simultaneously (paper §3, Figure 5).

use crate::config::TreeShape;
use rmwire::{GroupSpec, Rank};

/// The aggregation links of one receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeLinks {
    /// Where this node sends its aggregated ACKs: `None` means directly to
    /// the sender (the node is a root).
    pub parent: Option<Rank>,
    /// Nodes whose ACKs this node aggregates.
    pub children: Vec<Rank>,
}

/// The full logical structure over a receiver group.
///
/// ```
/// use rmcast::tree::TreeTopology;
/// use rmcast::TreeShape;
/// use rmwire::{GroupSpec, Rank};
///
/// // 6 receivers in chains of 3: roots r1 and r4 report to the sender.
/// let t = TreeTopology::new(GroupSpec::new(6), TreeShape::Flat { height: 3 });
/// assert_eq!(t.roots(), &[Rank(1), Rank(4)]);
/// assert_eq!(t.links(Rank(2)).parent, Some(Rank(1)));
/// assert_eq!(t.subtree_size(Rank(1)), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeTopology {
    links: Vec<TreeLinks>, // indexed by receiver_index
    roots: Vec<Rank>,
}

impl TreeTopology {
    /// Build the structure for `group` with the given shape.
    pub fn new(group: GroupSpec, shape: TreeShape) -> Self {
        let n = group.n_receivers as usize;
        let mut links: Vec<TreeLinks> = (0..n)
            .map(|_| TreeLinks {
                parent: None,
                children: Vec::new(),
            })
            .collect();
        let mut roots = Vec::new();

        match shape {
            TreeShape::Flat { height } => {
                assert!(height >= 1 && height <= n, "invalid flat-tree height");
                // Chains of `height` consecutive ranks: the head of each
                // chain reports to the sender; node k reports to node k-1.
                let mut i = 0usize;
                while i < n {
                    let head = Rank::from_receiver_index(i);
                    roots.push(head);
                    let end = (i + height).min(n);
                    for k in i..end {
                        if k > i {
                            let parent = Rank::from_receiver_index(k - 1);
                            links[k].parent = Some(parent);
                            links[k - 1].children.push(Rank::from_receiver_index(k));
                        }
                    }
                    i = end;
                }
            }
            TreeShape::Binary => {
                // Receiver r's parent is receiver r/2; receiver 1 is the
                // single root.
                roots.push(Rank(1));
                for r in 2..=n as u16 {
                    let parent = Rank(r / 2);
                    links[(r - 1) as usize].parent = Some(parent);
                    links[(r / 2 - 1) as usize].children.push(Rank(r));
                }
            }
        }

        TreeTopology { links, roots }
    }

    /// Aggregation links of `rank`.
    pub fn links(&self, rank: Rank) -> &TreeLinks {
        &self.links[rank.receiver_index()]
    }

    /// The ranks that report directly to the sender.
    pub fn roots(&self) -> &[Rank] {
        &self.roots
    }

    /// Number of receivers covered by the subtree rooted at `rank`
    /// (itself included).
    pub fn subtree_size(&self, rank: Rank) -> usize {
        1 + self
            .links(rank)
            .children
            .iter()
            .map(|&c| self.subtree_size(c))
            .sum::<usize>()
    }

    /// Structural self-check: the aggregation links must form a forest
    /// whose roots cover every receiver exactly once, with symmetric
    /// parent/child links (`rmcheck` and the invariant audit call this).
    pub fn check(&self) -> Result<(), String> {
        let n = self.links.len();
        for (i, l) in self.links.iter().enumerate() {
            let me = Rank::from_receiver_index(i);
            match l.parent {
                None => {
                    if !self.roots.contains(&me) {
                        return Err(format!("{me} has no parent but is not a root"));
                    }
                }
                Some(p) => {
                    if !self.links[p.receiver_index()].children.contains(&me) {
                        return Err(format!("{me} reports to {p}, which does not list it"));
                    }
                }
            }
            for &c in &l.children {
                if self.links[c.receiver_index()].parent != Some(me) {
                    return Err(format!("{me} lists child {c}, which reports elsewhere"));
                }
            }
        }
        let covered: usize = self.roots.iter().map(|&r| self.subtree_size(r)).sum();
        if covered != n {
            return Err(format!("root subtrees cover {covered} of {n} receivers"));
        }
        Ok(())
    }

    /// Longest root-to-leaf path length in nodes (the effective height).
    pub fn max_depth(&self) -> usize {
        fn depth(t: &TreeTopology, r: Rank) -> usize {
            1 + t
                .links(r)
                .children
                .iter()
                .map(|&c| depth(t, c))
                .max()
                .unwrap_or(0)
        }
        self.roots
            .iter()
            .map(|&r| depth(self, r))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(n: u16) -> GroupSpec {
        GroupSpec::new(n)
    }

    #[test]
    fn flat_height_one_is_ack_protocol() {
        let t = TreeTopology::new(group(5), TreeShape::Flat { height: 1 });
        assert_eq!(t.roots().len(), 5);
        for r in group(5).receivers() {
            assert_eq!(t.links(r).parent, None);
            assert!(t.links(r).children.is_empty());
        }
        assert_eq!(t.max_depth(), 1);
    }

    #[test]
    fn flat_height_n_is_single_chain() {
        let t = TreeTopology::new(group(4), TreeShape::Flat { height: 4 });
        assert_eq!(t.roots(), &[Rank(1)]);
        assert_eq!(t.links(Rank(1)).children, vec![Rank(2)]);
        assert_eq!(t.links(Rank(2)).parent, Some(Rank(1)));
        assert_eq!(t.links(Rank(4)).children, Vec::<Rank>::new());
        assert_eq!(t.max_depth(), 4);
        assert_eq!(t.subtree_size(Rank(1)), 4);
    }

    #[test]
    fn flat_chains_chunk_consecutively() {
        // N = 16, H = 3 -> chains {1,2,3},{4,5,6},...,{16}: 6 roots.
        let t = TreeTopology::new(group(16), TreeShape::Flat { height: 3 });
        assert_eq!(t.roots().len(), 6);
        assert_eq!(t.roots()[0], Rank(1));
        assert_eq!(t.roots()[5], Rank(16));
        assert_eq!(t.links(Rank(2)).parent, Some(Rank(1)));
        assert_eq!(t.links(Rank(3)).parent, Some(Rank(2)));
        assert_eq!(t.links(Rank(4)).parent, None);
        assert_eq!(t.subtree_size(Rank(1)), 3);
        assert_eq!(t.subtree_size(Rank(16)), 1);
        assert_eq!(t.max_depth(), 3);
    }

    #[test]
    fn subtrees_cover_group_exactly() {
        for (n, h) in [(16, 3), (30, 6), (30, 15), (30, 30), (7, 2)] {
            let t = TreeTopology::new(group(n), TreeShape::Flat { height: h });
            let covered: usize = t.roots().iter().map(|&r| t.subtree_size(r)).sum();
            assert_eq!(covered, n as usize, "N={n} H={h}");
            assert_eq!(t.roots().len(), (n as usize).div_ceil(h));
        }
    }

    #[test]
    fn binary_tree_shape() {
        let t = TreeTopology::new(group(7), TreeShape::Binary);
        assert_eq!(t.roots(), &[Rank(1)]);
        assert_eq!(t.links(Rank(1)).children, vec![Rank(2), Rank(3)]);
        assert_eq!(t.links(Rank(2)).children, vec![Rank(4), Rank(5)]);
        assert_eq!(t.links(Rank(3)).children, vec![Rank(6), Rank(7)]);
        assert_eq!(t.links(Rank(7)).parent, Some(Rank(3)));
        assert_eq!(t.subtree_size(Rank(1)), 7);
        assert_eq!(t.max_depth(), 3);
    }

    #[test]
    fn binary_tree_single_node() {
        let t = TreeTopology::new(group(1), TreeShape::Binary);
        assert_eq!(t.roots(), &[Rank(1)]);
        assert!(t.links(Rank(1)).children.is_empty());
    }
}
