//! Sender-side coding buffer for the `fec` protocol family.
//!
//! The fifth family batches NAKs instead of answering each with a
//! retransmission: losses reported by different receivers for *different*
//! packets are XOR-combined into one coded REPAIR multicast, which every
//! receiver missing exactly one of the coded packets can decode back into
//! the packet it lacks. One repair transmission thus heals disjoint losses
//! across the whole group — the bandwidth win over the plain NAK family at
//! non-trivial loss rates.
//!
//! The buffer collects `(seq, loser)` pairs for a short aggregation window
//! (the configured retransmission-suppression interval), then flushes:
//! [`greedy_blocks`] partitions the pending set into coded blocks such
//! that no block codes two packets lost by the *same* receiver (that
//! receiver could not decode either one). Proactive parity — the XOR of
//! every `parity_every` consecutive fresh packets — rides the same
//! machinery so single losses heal with no feedback round trip at all.
//!
//! Everything here is pure bookkeeping: the [`crate::Sender`] owns the
//! packet encoding, slot accounting and trace emission.

use rmwire::Time;
use std::collections::BTreeMap;

/// Per-receiver loss sets a coded block must keep disjoint. Receiver
/// indices ≥ 64 do not fit the bitmask; the sender falls back to plain
/// retransmission for their NAKs (correct, just uncoded).
pub const MAX_TRACKED_RECEIVERS: usize = 64;

/// Upper bound on buffered distinct sequence numbers. NAKs only enter the
/// buffer for currently-outstanding window slots, so this is belt and
/// braces against a hostile NAK storm racing window movement.
const MAX_PENDING: usize = 4096;

/// Partition `pending` — sequence number → bitmask of receiver indices
/// that reported it lost — into coded blocks, greedily in sequence order.
///
/// Each returned `(base_seq, bitmap)` pair describes one block in the
/// [`rmwire::RepairBody`] canonical form: bit `i` of `bitmap` set means
/// sequence `base_seq + i` is coded into the block, and bit 0 is always
/// set. The greedy rule adds a sequence to the open block iff
///
/// * no receiver lost both it and a sequence already in the block (their
///   loser masks are disjoint — the decodability requirement),
/// * it lies within the 64-sequence bitmap span of the block's base, and
/// * the block holds fewer than `max_coded` sequences.
///
/// Sequences that do not fit open a new block, so every pending sequence
/// appears in exactly one block.
pub fn greedy_blocks(pending: &BTreeMap<u32, u64>, max_coded: usize) -> Vec<(u32, u64)> {
    let max_coded = max_coded.clamp(1, 64);
    let mut blocks: Vec<(u32, u64, u64, u32)> = Vec::new(); // (base, bitmap, losers, count)
    for (&seq, &losers) in pending {
        let placed = blocks.iter_mut().any(|(base, bitmap, union, count)| {
            let offset = seq - *base; // BTreeMap iterates ascending: seq ≥ base
            if offset < 64 && (*count as usize) < max_coded && losers & *union == 0 {
                *bitmap |= 1u64 << offset;
                *union |= losers;
                *count += 1;
                true
            } else {
                false
            }
        });
        if !placed {
            blocks.push((seq, 1, losers, 1));
        }
    }
    blocks.into_iter().map(|(b, m, _, _)| (b, m)).collect()
}

/// XOR together the payload chunks of `seqs`, each chunk cut from `msg`
/// at `packet_size` granularity, shorter chunks zero-padded to the
/// longest. A block of entirely-empty chunks still yields one zero byte:
/// the wire format forbids an empty coded payload, and receivers
/// truncate to the decoded chunk's true length anyway.
pub fn xor_chunks(msg: &[u8], packet_size: usize, seqs: impl Iterator<Item = u32>) -> Vec<u8> {
    let mut acc: Vec<u8> = Vec::new();
    for seq in seqs {
        let start = (seq as usize).saturating_mul(packet_size);
        let chunk = if start < msg.len() {
            &msg[start..(start + packet_size).min(msg.len())]
        } else {
            &[][..]
        };
        if chunk.len() > acc.len() {
            acc.resize(chunk.len(), 0);
        }
        for (a, b) in acc.iter_mut().zip(chunk) {
            *a ^= b;
        }
    }
    if acc.is_empty() {
        acc.push(0);
    }
    acc
}

/// The sender's coding state: the NAK aggregation buffer, the proactive
/// parity accumulator and the shared generation counter, all bound to one
/// data transfer at a time.
#[derive(Debug, Clone, Default)]
pub struct FecState {
    /// The data transfer the state is bound to; everything resets when a
    /// new transfer begins.
    transfer: Option<u32>,
    /// Pending losses: sequence number → bitmask of receiver indices.
    pending: BTreeMap<u32, u64>,
    /// Flush deadline, armed when the first loss lands in an empty buffer.
    deadline: Option<Time>,
    /// Generation counter shared by REPAIR and PARITY blocks of the bound
    /// transfer (receivers enforce strict increase as their replay gate).
    generation: u32,
    /// Proactive parity accumulator: first sequence of the current run of
    /// consecutive fresh packets, if one is open.
    parity_base: Option<u32>,
    /// Packets accumulated in the open parity run.
    parity_count: u32,
}

impl FecState {
    /// Fresh, unbound coding state.
    pub fn new() -> Self {
        FecState::default()
    }

    /// Bind to data transfer `id`, discarding every piece of state that
    /// belonged to the previous one (pending losses for a finished
    /// transfer can never be flushed; generations restart because
    /// receivers track them per transfer).
    pub fn bind(&mut self, id: u32) {
        *self = FecState {
            transfer: Some(id),
            ..FecState::default()
        };
    }

    /// Drop the binding (an allocation round trip or no transfer at all
    /// is active; nothing is codable).
    pub fn unbind(&mut self) {
        *self = FecState::default();
    }

    /// The bound data transfer, if any.
    pub fn transfer(&self) -> Option<u32> {
        self.transfer
    }

    /// The armed flush deadline, if any (drives the sender's
    /// `poll_timeout`).
    pub fn deadline(&self) -> Option<Time> {
        self.deadline
    }

    /// Pending distinct sequence numbers (audit bookkeeping).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Snapshot of the pending losses (state digesting).
    pub fn pending(&self) -> &BTreeMap<u32, u64> {
        &self.pending
    }

    /// The last generation handed out (state digesting).
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Buffer a NAK: receiver index `idx` reported sequence `seq` of
    /// transfer `id` lost. Returns `false` — caller falls back to a plain
    /// retransmission — when the state is bound to a different transfer,
    /// the index does not fit the loser bitmask, or the buffer is full.
    /// Arms the flush deadline at `deadline` on the first buffered loss.
    pub fn buffer_nak(&mut self, id: u32, seq: u32, idx: usize, deadline: Time) -> bool {
        if self.transfer != Some(id) || idx >= MAX_TRACKED_RECEIVERS {
            return false;
        }
        if !self.pending.contains_key(&seq) && self.pending.len() >= MAX_PENDING {
            return false;
        }
        *self.pending.entry(seq).or_insert(0) |= 1u64 << idx;
        if self.deadline.is_none() {
            self.deadline = Some(deadline);
        }
        true
    }

    /// Flush the aggregation buffer for transfer `id`: returns the coded
    /// blocks with their assigned generations, disarming the deadline.
    /// A state bound elsewhere just clears (stale losses are not
    /// flushable).
    pub fn flush(&mut self, id: u32, max_coded: usize) -> Vec<(u32, u64, u32)> {
        self.deadline = None;
        let pending = std::mem::take(&mut self.pending);
        if self.transfer != Some(id) {
            return Vec::new();
        }
        greedy_blocks(&pending, max_coded)
            .into_iter()
            .map(|(base, bitmap)| {
                self.generation = self.generation.saturating_add(1);
                (base, bitmap, self.generation)
            })
            .collect()
    }

    /// Drop pending losses that no longer satisfy `keep` — their window
    /// slots were released while the flush timer ran, so no receiver is
    /// still owed them.
    pub fn prune_pending(&mut self, mut keep: impl FnMut(u32) -> bool) {
        self.pending.retain(|&s, _| keep(s));
    }

    /// The open proactive-parity run as `(base_seq, count)` (state
    /// digesting).
    pub fn parity_run(&self) -> Option<(u32, u32)> {
        self.parity_base.map(|b| (b, self.parity_count))
    }

    /// Note a fresh (first-transmission) data packet of transfer `id`
    /// entering the wire. Returns `Some((base_seq, generation))` when the
    /// packet completes a run of `parity_every` consecutive sequences —
    /// the caller emits a PARITY block over `[base_seq, base_seq +
    /// parity_every)`.
    pub fn note_fresh(&mut self, id: u32, seq: u32, parity_every: u32) -> Option<(u32, u32)> {
        if self.transfer != Some(id) || parity_every < 2 {
            return None;
        }
        match self.parity_base {
            Some(base) if seq == base + self.parity_count => self.parity_count += 1,
            _ => {
                self.parity_base = Some(seq);
                self.parity_count = 1;
            }
        }
        if self.parity_count == parity_every {
            let base = self.parity_base.take().expect("open run");
            self.parity_count = 0;
            self.generation = self.generation.saturating_add(1);
            return Some((base, self.generation));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pending(pairs: &[(u32, u64)]) -> BTreeMap<u32, u64> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn disjoint_losses_share_one_block() {
        // Three receivers, each missing a different packet: one repair.
        let p = pending(&[(0, 0b001), (1, 0b010), (2, 0b100)]);
        assert_eq!(greedy_blocks(&p, 16), vec![(0, 0b111)]);
    }

    #[test]
    fn same_receiver_splits_blocks() {
        // Receiver 0 lost both packets: they can never share a block.
        let p = pending(&[(0, 0b01), (1, 0b01), (2, 0b10)]);
        assert_eq!(greedy_blocks(&p, 16), vec![(0, 0b101), (1, 0b1)]);
    }

    #[test]
    fn span_and_size_bounds_respected() {
        // Sequence 70 is beyond seq 0's 64-bit bitmap span.
        let p = pending(&[(0, 0b01), (70, 0b10)]);
        assert_eq!(greedy_blocks(&p, 16), vec![(0, 1), (70, 1)]);
        // max_coded = 2 caps the block even though losses are disjoint.
        let p = pending(&[(0, 0b001), (1, 0b010), (2, 0b100)]);
        assert_eq!(greedy_blocks(&p, 2), vec![(0, 0b11), (2, 0b1)]);
    }

    #[test]
    fn state_binds_per_transfer() {
        let mut f = FecState::new();
        assert!(
            !f.buffer_nak(3, 0, 0, Time::ZERO),
            "unbound buffers nothing"
        );
        f.bind(3);
        assert!(f.buffer_nak(3, 0, 0, Time::from_nanos(5)));
        assert!(f.buffer_nak(3, 1, 1, Time::from_nanos(9)));
        assert_eq!(f.deadline(), Some(Time::from_nanos(5)), "first arm wins");
        assert!(!f.buffer_nak(4, 2, 0, Time::ZERO), "wrong transfer");
        assert!(!f.buffer_nak(3, 2, 64, Time::ZERO), "index beyond bitmask");
        let blocks = f.flush(3, 16);
        assert_eq!(blocks, vec![(0, 0b11, 1)]);
        assert_eq!(f.deadline(), None);
        assert_eq!(f.pending_len(), 0);
        // Generations keep rising across flushes of the same transfer.
        assert!(f.buffer_nak(3, 5, 0, Time::from_nanos(20)));
        assert_eq!(f.flush(3, 16), vec![(5, 1, 2)]);
        // Rebinding restarts them.
        f.bind(5);
        assert!(f.buffer_nak(5, 0, 0, Time::from_nanos(30)));
        assert_eq!(f.flush(5, 16), vec![(0, 1, 1)]);
    }

    #[test]
    fn parity_runs_need_consecutive_sequences() {
        let mut f = FecState::new();
        f.bind(1);
        assert_eq!(f.note_fresh(1, 0, 4), None);
        assert_eq!(f.note_fresh(1, 1, 4), None);
        assert_eq!(f.note_fresh(1, 2, 4), None);
        assert_eq!(f.note_fresh(1, 3, 4), Some((0, 1)));
        // A gap restarts the run.
        assert_eq!(f.note_fresh(1, 5, 4), None);
        assert_eq!(f.note_fresh(1, 6, 4), None);
        assert_eq!(f.note_fresh(1, 7, 4), None);
        assert_eq!(f.note_fresh(1, 8, 4), Some((5, 2)));
        // parity_every < 2 disables proactive parity.
        assert_eq!(f.note_fresh(1, 9, 0), None);
        // Repair generations interleave with parity generations.
        assert!(f.buffer_nak(1, 2, 0, Time::from_nanos(1)));
        assert_eq!(f.flush(1, 16), vec![(2, 1, 3)]);
    }
}
