//! Latency and occupancy distributions maintained by the engines.
//!
//! Unlike [`crate::Stats`] counters these are full distributions
//! ([`rmtrace::Histogram`]): fixed-size, allocation-free, and recorded
//! unconditionally (the cost is a few adds per sample), so benches and
//! experiments always have percentiles without enabling a trace sink.

use rmtrace::Histogram;

/// Distributions a [`crate::Sender`] maintains.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SenderTelemetry {
    /// ACK round-trip time in nanoseconds, sampled under Karn's rule
    /// (only ACKs covering a never-retransmitted packet).
    pub ack_rtt_ns: Histogram,
    /// The effective RTO (nanoseconds) each time a retransmission timer
    /// fired — shows backoff behavior under loss.
    pub rto_at_fire_ns: Histogram,
    /// Send-window occupancy (packets outstanding) sampled on every
    /// window state change.
    pub window_occupancy: Histogram,
}

/// Distributions a [`crate::Receiver`] maintains.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReceiverTelemetry {
    /// Per-message assembly latency in nanoseconds: first data packet of
    /// a transfer heard → message delivered to the application.
    pub assembly_ns: Histogram,
}
