//! The sender's sliding window.
//!
//! Every transfer numbers its packets `0..k`; the window tracks which
//! packets are in flight, when each was last (re)transmitted, and releases
//! a contiguous prefix as the protocol's release tracker advances
//! (paper §4 *Flow control*: Go-Back-N with sender-driven timers).

use rmwire::{Duration, Time};
use std::collections::VecDeque;

/// Per-packet bookkeeping inside the window.
#[derive(Debug, Clone, Copy)]
pub struct Slot {
    /// When this packet was last put on the wire.
    pub last_tx: Time,
    /// How many times it was retransmitted.
    pub retx: u32,
}

/// A fixed-capacity sliding send window over packets `0..k`.
///
/// ```
/// use rmcast::window::SendWindow;
/// use rmwire::Time;
///
/// let mut w = SendWindow::new(10, 3);          // 10 packets, window 3
/// while w.can_send() { w.mark_sent(Time::ZERO); }
/// assert_eq!(w.next(), 3);                     // window full
/// w.release(2);                                // coverage reached packet 2
/// assert!(w.can_send());                       // room for packet 3
/// ```
#[derive(Debug, Clone)]
pub struct SendWindow {
    base: u32,
    next: u32,
    k: u32,
    cap: u32,
    slots: VecDeque<Slot>,
}

impl SendWindow {
    /// Window of `cap` packets over a `k`-packet transfer.
    pub fn new(k: u32, cap: u32) -> Self {
        assert!(k >= 1, "a transfer has at least one packet");
        assert!(cap >= 1, "window capacity must be >= 1");
        SendWindow {
            base: 0,
            next: 0,
            k,
            cap,
            slots: VecDeque::with_capacity(cap as usize),
        }
    }

    /// First unreleased sequence number.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Next never-sent sequence number.
    pub fn next(&self) -> u32 {
        self.next
    }

    /// Total packets in the transfer.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// `true` when a fresh packet may enter the window.
    pub fn can_send(&self) -> bool {
        self.next < self.k && self.next - self.base < self.cap
    }

    /// Record the first transmission of `next()` at `now`; returns its
    /// sequence number.
    pub fn mark_sent(&mut self, now: Time) -> u32 {
        assert!(self.can_send(), "window full or transfer exhausted");
        let seq = self.next;
        self.next += 1;
        self.slots.push_back(Slot {
            last_tx: now,
            retx: 0,
        });
        seq
    }

    /// Packets currently outstanding (sent, unreleased).
    pub fn outstanding(&self) -> impl Iterator<Item = u32> + '_ {
        self.base..self.next
    }

    /// `true` when every packet of the transfer has been released.
    pub fn all_released(&self) -> bool {
        self.base == self.k
    }

    /// Mutable slot for an outstanding `seq`, or `None` if released /
    /// unsent.
    pub fn slot_mut(&mut self, seq: u32) -> Option<&mut Slot> {
        if seq < self.base || seq >= self.next {
            return None;
        }
        self.slots.get_mut((seq - self.base) as usize)
    }

    /// Read-only slot for an outstanding `seq` (tracing / telemetry).
    pub fn slot(&self, seq: u32) -> Option<&Slot> {
        if seq < self.base || seq >= self.next {
            return None;
        }
        self.slots.get((seq - self.base) as usize)
    }

    /// Packets currently outstanding (sent but unreleased), as a count —
    /// the window-occupancy gauge.
    pub fn occupancy(&self) -> u32 {
        self.next - self.base
    }

    /// Release every packet below `upto` (idempotent; clamped to what has
    /// actually been sent).
    pub fn release(&mut self, upto: u32) {
        let upto = upto.min(self.next);
        while self.base < upto {
            self.slots.pop_front();
            self.base += 1;
        }
    }

    /// Deadline at which the oldest outstanding packet times out.
    pub fn oldest_deadline(&self, rto: Duration) -> Option<Time> {
        self.slots.front().map(|s| s.last_tx + rto)
    }

    /// Earliest deadline across *all* outstanding packets. Under selective
    /// repeat each packet effectively has its own timer; retransmissions
    /// push individual `last_tx` values forward, so the front slot is not
    /// necessarily the next to expire.
    pub fn earliest_deadline(&self, rto: Duration) -> Option<Time> {
        self.slots.iter().map(|s| s.last_tx + rto).min()
    }

    /// Outstanding sequence numbers whose last transmission is at least
    /// `rto` before `now`.
    pub fn expired(&self, now: Time, rto: Duration) -> Vec<u32> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| now.saturating_since(s.last_tx).as_nanos() >= rto.as_nanos())
            .map(|(i, _)| self.base + i as u32)
            .collect()
    }

    /// Bytes of protocol buffer the window pins for `packet_size`-byte
    /// packets (the in-flight span).
    pub fn buffered_bytes(&self, packet_size: usize) -> usize {
        (self.next - self.base) as usize * packet_size
    }

    /// Window capacity in packets.
    pub fn capacity(&self) -> u32 {
        self.cap
    }

    /// Retarget the window capacity (AIMD adaptation). Shrinking below the
    /// current occupancy never discards in-flight packets: the effective
    /// capacity clamps to the occupancy and new sends stay blocked until
    /// releases drain the window down to the requested cap.
    pub fn set_cap(&mut self, cap: u32) {
        assert!(cap >= 1, "window capacity must be >= 1");
        self.cap = cap.max(self.occupancy());
    }

    /// Structural self-check: the window-never-exceeded and
    /// base-within-transfer invariants, verified from first principles
    /// (`rmcheck` and the `debug_assertions` audit both call this).
    pub fn check(&self) -> Result<(), String> {
        if self.base > self.next {
            return Err(format!(
                "window base {} beyond next {}",
                self.base, self.next
            ));
        }
        if self.next > self.k {
            return Err(format!(
                "window sent {} packets of a {}-packet transfer",
                self.next, self.k
            ));
        }
        if self.next - self.base > self.cap {
            return Err(format!(
                "window occupancy {} exceeds capacity {}",
                self.next - self.base,
                self.cap
            ));
        }
        if self.slots.len() != (self.next - self.base) as usize {
            return Err(format!(
                "window tracks {} slots for {} outstanding packets",
                self.slots.len(),
                self.next - self.base
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> Time {
        Time::from_micros(us)
    }

    #[test]
    fn fills_to_capacity() {
        let mut w = SendWindow::new(10, 3);
        assert!(w.can_send());
        assert_eq!(w.mark_sent(t(0)), 0);
        assert_eq!(w.mark_sent(t(1)), 1);
        assert_eq!(w.mark_sent(t(2)), 2);
        assert!(!w.can_send(), "window of 3 is full");
        assert_eq!(w.outstanding().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn release_slides_window() {
        let mut w = SendWindow::new(10, 3);
        for _ in 0..3 {
            w.mark_sent(t(0));
        }
        w.release(2);
        assert_eq!(w.base(), 2);
        assert!(w.can_send());
        assert_eq!(w.mark_sent(t(5)), 3);
        // Releasing below base is a no-op.
        w.release(1);
        assert_eq!(w.base(), 2);
        // Releasing beyond what was sent clamps.
        w.release(100);
        assert_eq!(w.base(), 4);
        assert!(!w.all_released());
    }

    #[test]
    fn completes_when_all_released() {
        let mut w = SendWindow::new(2, 5);
        w.mark_sent(t(0));
        w.mark_sent(t(0));
        assert!(!w.can_send(), "transfer exhausted");
        w.release(2);
        assert!(w.all_released());
        assert_eq!(w.buffered_bytes(100), 0);
    }

    #[test]
    fn slots_and_deadlines() {
        let mut w = SendWindow::new(5, 5);
        w.mark_sent(t(10));
        w.mark_sent(t(20));
        assert_eq!(w.oldest_deadline(Duration::from_micros(100)), Some(t(110)));
        w.slot_mut(0).unwrap().last_tx = t(50);
        assert_eq!(w.oldest_deadline(Duration::from_micros(100)), Some(t(150)));
        assert!(w.slot_mut(4).is_none(), "unsent seq has no slot");
        w.release(1);
        assert!(w.slot_mut(0).is_none(), "released seq has no slot");
        assert_eq!(w.oldest_deadline(Duration::from_micros(100)), Some(t(120)));
    }

    #[test]
    fn buffered_bytes_tracks_span() {
        let mut w = SendWindow::new(10, 4);
        assert_eq!(w.buffered_bytes(500), 0);
        w.mark_sent(t(0));
        w.mark_sent(t(0));
        assert_eq!(w.buffered_bytes(500), 1000);
        w.release(1);
        assert_eq!(w.buffered_bytes(500), 500);
    }

    #[test]
    fn set_cap_blocks_new_sends_without_dropping_flight() {
        let mut w = SendWindow::new(10, 4);
        for _ in 0..4 {
            w.mark_sent(t(0));
        }
        // Shrink below occupancy: nothing is discarded, check() still
        // holds, and sends stay blocked.
        w.set_cap(2);
        assert_eq!(w.capacity(), 4, "clamped to occupancy");
        w.check().unwrap();
        assert!(!w.can_send());
        // Once releases drain the window, a re-applied cap takes effect.
        w.release(3);
        w.set_cap(2);
        assert_eq!(w.capacity(), 2);
        w.mark_sent(t(1));
        assert!(!w.can_send(), "occupancy 2 fills the shrunken cap");
        // Growing reopens immediately.
        w.set_cap(5);
        assert!(w.can_send());
        w.check().unwrap();
    }

    #[test]
    #[should_panic(expected = "window full")]
    fn overfill_panics() {
        let mut w = SendWindow::new(10, 1);
        w.mark_sent(t(0));
        w.mark_sent(t(0));
    }
}
