//! Graceful degradation under overload.
//!
//! The paper's headline failure mode is sender overload: ACK implosion and
//! buffer exhaustion at only 31 nodes (§5, Figure 7's knee). The engines in
//! this crate historically ran a *static* window and processed every piece
//! of feedback the instant it arrived — exactly the design SRM-at-30 warns
//! ages badly as group size and load grow. This module collects the small,
//! clock-free state machines that let a [`crate::Sender`] degrade
//! gracefully instead of collapsing:
//!
//! * [`AimdWindow`] — congestion-aware window adaptation: multiplicative
//!   shrink on loss/timeout signals, additive recovery on progress, bounded
//!   by a configured `[floor, ceiling]`.
//! * [`TokenBucket`] — deterministic pacing of ACK/NAK *processing* so a
//!   feedback storm costs the sender a bounded amount of work per second.
//! * [`DupNakFilter`] — collapses bursts of duplicate NAKs for the same
//!   packet before they each trigger retransmission bookkeeping.
//! * [`LoadScaler`] — epoch-bucketed feedback-rate estimate that scales the
//!   static `retx_suppress`/`nak_suppress` timers with observed load,
//!   replacing the fixed timers the paper inherited from its LAN testbed.
//!
//! Everything here is a pure function of the `Time`s fed through the
//! sans-io [`crate::Endpoint`] API: no wall clocks, no RNG, so the same
//! machinery runs unchanged under `netsim`, `udprun`, the fuzzer and the
//! `rmcheck` state-space explorer. [`OverloadConfig::OFF`] (the default)
//! disables every mechanism and reproduces the static-window engines
//! byte-identically.

use rmwire::{Duration, Time};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Overload-robustness knobs, carried by
/// [`crate::ProtocolConfig::overload`]. The default ([`OverloadConfig::OFF`])
/// switches every mechanism off.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverloadConfig {
    /// Master switch for AIMD window adaptation: shrink the effective send
    /// window multiplicatively on congestion signals (retransmission
    /// timeouts, loss-indicating NAKs), recover it additively as
    /// acknowledgments arrive.
    pub aimd: bool,
    /// Smallest window AIMD may shrink to. Ring protocols must keep this
    /// above the receiver count or the rotating release rule deadlocks.
    pub aimd_floor: usize,
    /// Largest window AIMD may grow to (additive probing beyond the
    /// configured window is allowed up to here).
    pub aimd_ceiling: usize,
    /// Token-bucket rate for ACK/NAK *processing*, in packets per second.
    /// `0` disables pacing (every control packet is processed on arrival,
    /// the paper's behavior). Control packets arriving with the bucket
    /// empty are shed after their acknowledgment horizon is noted, so
    /// correctness is unaffected — only retransmission bookkeeping is
    /// rate-limited.
    pub feedback_rate: u64,
    /// Burst capacity of the feedback bucket, in packets.
    pub feedback_burst: u32,
    /// Collapse duplicate NAKs for the same `(transfer, seq)` arriving
    /// within one `retx_suppress` interval before they reach the
    /// retransmission machinery.
    pub nak_collapse: bool,
    /// Scale `retx_suppress` (sender) and `nak_suppress` (receiver) with
    /// observed feedback/retransmission load instead of keeping the
    /// paper's static timers.
    pub load_scaling: bool,
    /// Consecutive timeouts without window progress before the laggards
    /// holding the window are moved to quarantine (served catch-up
    /// retransmissions off the fast path instead of blocking it). `None`
    /// disables quarantine. Must stay below `liveness.max_retx` when both
    /// are set, or liveness eviction fires first.
    pub quarantine_after: Option<u32>,
    /// Spacing between catch-up retransmission rounds to one quarantined
    /// receiver.
    pub catchup_interval: Duration,
    /// Catch-up rounds a quarantined receiver gets per transfer before the
    /// sender falls back to the liveness path (straggler eviction or typed
    /// failure).
    pub quarantine_budget: u32,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig::OFF
    }
}

impl OverloadConfig {
    /// Every mechanism off: static window, unpaced feedback, no
    /// quarantine. Reproduces the paper-faithful engines byte-identically.
    pub const OFF: OverloadConfig = OverloadConfig {
        aimd: false,
        aimd_floor: 1,
        aimd_ceiling: usize::MAX,
        feedback_rate: 0,
        feedback_burst: 0,
        nak_collapse: false,
        load_scaling: false,
        quarantine_after: None,
        catchup_interval: Duration::from_millis(10),
        quarantine_budget: 8,
    };

    /// Every mechanism on with defaults scaled to the configured `window`:
    /// AIMD in `[max(1, window/4), 2·window]`, feedback paced to 20k
    /// control packets/s with a 64-packet burst, duplicate-NAK collapse,
    /// load-scaled suppression, quarantine after 3 stalled timeouts with an
    /// 8-round catch-up budget. Ring configurations must raise
    /// [`OverloadConfig::aimd_floor`] above the receiver count.
    pub fn adaptive(window: usize) -> OverloadConfig {
        OverloadConfig {
            aimd: true,
            aimd_floor: (window / 4).max(1),
            aimd_ceiling: window.saturating_mul(2),
            feedback_rate: 20_000,
            feedback_burst: 64,
            nak_collapse: true,
            load_scaling: true,
            quarantine_after: Some(3),
            catchup_interval: Duration::from_millis(10),
            quarantine_budget: 8,
        }
    }

    /// True when any mechanism that changes engine behavior is enabled.
    pub fn any_enabled(&self) -> bool {
        self.aimd
            || self.feedback_rate > 0
            || self.nak_collapse
            || self.load_scaling
            || self.quarantine_after.is_some()
    }
}

/// Additive-increase / multiplicative-decrease window cap.
///
/// Clock-free and event-driven: congestion signals halve the cap toward
/// the floor, acknowledged packets accumulate credit and grow it by one
/// packet per current-window's-worth of progress (the classic 1/cwnd
/// additive increase), up to the ceiling. The cap never leaves
/// `[floor, ceiling]` — `core/tests/properties.rs` proves it by proptest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AimdWindow {
    cur: usize,
    floor: usize,
    ceiling: usize,
    credit: usize,
}

impl AimdWindow {
    /// A cap starting at `initial`, confined to `[floor, ceiling]`.
    pub fn new(initial: usize, floor: usize, ceiling: usize) -> AimdWindow {
        assert!(
            1 <= floor && floor <= initial && initial <= ceiling,
            "AIMD bounds must satisfy 1 <= floor <= initial <= ceiling \
             (got floor {floor}, initial {initial}, ceiling {ceiling})"
        );
        AimdWindow {
            cur: initial,
            floor,
            ceiling,
            credit: 0,
        }
    }

    /// The current window cap, always in `[floor, ceiling]`.
    pub fn cap(&self) -> usize {
        self.cur
    }

    /// Multiplicative decrease: halve toward the floor and forfeit any
    /// accumulated growth credit. Returns `true` when the cap changed.
    pub fn on_congestion(&mut self) -> bool {
        self.credit = 0;
        let next = (self.cur / 2).max(self.floor);
        let changed = next != self.cur;
        self.cur = next;
        changed
    }

    /// Additive increase: `acked` packets of progress accumulate credit;
    /// each full current-window of credit grows the cap by one packet, up
    /// to the ceiling. Returns `true` when the cap changed.
    pub fn on_progress(&mut self, acked: usize) -> bool {
        if self.cur >= self.ceiling {
            return false;
        }
        self.credit = self.credit.saturating_add(acked);
        let before = self.cur;
        while self.credit >= self.cur && self.cur < self.ceiling {
            self.credit -= self.cur;
            self.cur += 1;
        }
        self.cur != before
    }

    /// Fold the adaptive state into a protocol-state digest (used by
    /// `rmcheck explore`).
    pub fn digest_into(&self, h: &mut dyn std::hash::Hasher) {
        h.write_usize(self.cur);
        h.write_usize(self.credit);
    }
}

/// Deterministic token bucket in integer nano-token arithmetic: one packet
/// costs `NANO_PER_PACKET` tokens, the bucket refills at `rate` packets
/// per second and holds at most `burst` packets. Starts full.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenBucket {
    rate: u64,
    cap_nano: u64,
    tokens_nano: u64,
    last: Time,
}

const NANO_PER_PACKET: u64 = 1_000_000_000;

impl TokenBucket {
    /// A bucket refilling at `rate` packets/s holding at most `burst`
    /// packets. `rate == 0` builds a bucket whose [`TokenBucket::take`]
    /// always succeeds (pacing off).
    pub fn new(rate: u64, burst: u32) -> TokenBucket {
        let cap_nano = (burst as u64).saturating_mul(NANO_PER_PACKET);
        TokenBucket {
            rate,
            cap_nano,
            tokens_nano: cap_nano,
            last: Time::ZERO,
        }
    }

    /// Refill for the elapsed time and try to spend one packet's worth of
    /// tokens. Returns `false` (caller should shed the packet) when the
    /// bucket is empty. With `rate == 0` always returns `true`.
    pub fn take(&mut self, now: Time) -> bool {
        if self.rate == 0 {
            return true;
        }
        let elapsed = now.saturating_since(self.last).as_nanos() as u128;
        self.last = now;
        // One packet = NANO_PER_PACKET tokens, so `rate` packets/s refill
        // exactly `rate` tokens per nanosecond of elapsed time.
        let refill = elapsed * self.rate as u128;
        self.tokens_nano = self
            .tokens_nano
            .saturating_add(refill.min(u64::MAX as u128) as u64)
            .min(self.cap_nano);
        if self.tokens_nano >= NANO_PER_PACKET {
            self.tokens_nano -= NANO_PER_PACKET;
            true
        } else {
            false
        }
    }
}

/// Bounded memory of recently seen NAKs, used to collapse duplicate-NAK
/// floods: a NAK for a `(transfer, seq)` already NAKed within `window` is
/// a duplicate and is dropped before it reaches retransmission
/// bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DupNakFilter {
    window: Duration,
    seen: VecDeque<(u64, u64, Time)>,
}

/// Entries remembered by [`DupNakFilter`]; bounds memory under a storm of
/// NAKs for *distinct* packets.
const DUP_NAK_CAPACITY: usize = 64;

impl DupNakFilter {
    /// A filter collapsing duplicates within `window`.
    pub fn new(window: Duration) -> DupNakFilter {
        DupNakFilter {
            window,
            seen: VecDeque::new(),
        }
    }

    /// Record a NAK for `(transfer, seq)` at `now`; returns `true` when it
    /// duplicates one seen within the window (caller should collapse it).
    pub fn is_dup(&mut self, transfer: u64, seq: u64, now: Time) -> bool {
        while let Some(&(_, _, t)) = self.seen.front() {
            if now.saturating_since(t).as_nanos() > self.window.as_nanos() {
                self.seen.pop_front();
            } else {
                break;
            }
        }
        if self
            .seen
            .iter()
            .any(|&(tr, s, _)| tr == transfer && s == seq)
        {
            return true;
        }
        if self.seen.len() == DUP_NAK_CAPACITY {
            self.seen.pop_front();
        }
        self.seen.push_back((transfer, seq, now));
        false
    }
}

/// Epoch-bucketed feedback-rate estimate driving load-aware suppression
/// scaling. Counts events per fixed epoch; when an epoch closes, the load
/// level becomes `1 + count / threshold`, clamped to `[1, MAX_LEVEL]`. The
/// effective suppression interval is the configured one times the level,
/// so the static timers the paper hard-codes stretch smoothly as feedback
/// traffic grows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadScaler {
    epoch: Duration,
    threshold: u32,
    bucket_start: Time,
    count: u32,
    level: u32,
}

/// Largest multiplier [`LoadScaler::level`] reports.
pub const MAX_LOAD_LEVEL: u32 = 8;

impl LoadScaler {
    /// A scaler with a 20 ms epoch and the given per-epoch nominal event
    /// budget.
    pub fn new(threshold: u32) -> LoadScaler {
        LoadScaler {
            epoch: Duration::from_millis(20),
            threshold: threshold.max(1),
            bucket_start: Time::ZERO,
            count: 0,
            level: 1,
        }
    }

    /// Record one feedback event at `now`, rolling the epoch if it ended.
    pub fn note(&mut self, now: Time) {
        self.roll(now);
        self.count = self.count.saturating_add(1);
    }

    /// Current load level in `[1, MAX_LOAD_LEVEL]` as of `now`.
    pub fn level(&mut self, now: Time) -> u32 {
        self.roll(now);
        self.level
    }

    fn roll(&mut self, now: Time) {
        let elapsed = now.saturating_since(self.bucket_start);
        if elapsed.as_nanos() >= self.epoch.as_nanos() {
            self.level = (1 + self.count / self.threshold).clamp(1, MAX_LOAD_LEVEL);
            self.count = 0;
            self.bucket_start = now;
        }
    }

    /// Scale a configured suppression interval by the current load level.
    pub fn scale(&mut self, base: Duration, now: Time) -> Duration {
        base.saturating_mul(self.level(now) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_inert_and_default() {
        let off = OverloadConfig::default();
        assert_eq!(off, OverloadConfig::OFF);
        assert!(!off.any_enabled());
        assert!(OverloadConfig::adaptive(16).any_enabled());
    }

    #[test]
    fn adaptive_brackets_the_window() {
        let o = OverloadConfig::adaptive(16);
        assert!(o.aimd_floor <= 16 && 16 <= o.aimd_ceiling);
        assert_eq!(o.aimd_floor, 4);
        assert_eq!(o.aimd_ceiling, 32);
        // Tiny windows still get a sane floor.
        assert_eq!(OverloadConfig::adaptive(1).aimd_floor, 1);
    }

    #[test]
    fn aimd_halves_toward_floor_and_recovers_additively() {
        let mut w = AimdWindow::new(16, 4, 32);
        assert!(w.on_congestion());
        assert_eq!(w.cap(), 8);
        assert!(w.on_congestion(), "8 -> 4 hits the floor");
        assert_eq!(w.cap(), 4);
        assert!(!w.on_congestion(), "pinned at the floor");
        // Additive recovery: one packet per window's worth of acks.
        assert!(!w.on_progress(3), "3 < cur 4: credit only");
        assert!(w.on_progress(1), "4th ack grows the cap");
        assert_eq!(w.cap(), 5);
        assert!(w.on_progress(100));
        assert!(w.cap() <= 32);
    }

    #[test]
    fn aimd_caps_at_ceiling() {
        let mut w = AimdWindow::new(4, 2, 6);
        assert!(w.on_progress(1000));
        assert_eq!(w.cap(), 6);
        assert!(!w.on_progress(1000), "pinned at the ceiling");
    }

    #[test]
    #[should_panic(expected = "floor <= initial <= ceiling")]
    fn aimd_rejects_inverted_bounds() {
        AimdWindow::new(4, 8, 16);
    }

    #[test]
    fn congestion_forfeits_credit() {
        let mut w = AimdWindow::new(8, 2, 16);
        w.on_progress(7); // almost a full window of credit
        w.on_congestion();
        assert_eq!(w.cap(), 4);
        assert!(!w.on_progress(3), "credit restarted from zero");
    }

    #[test]
    fn token_bucket_paces_deterministically() {
        let mut b = TokenBucket::new(1_000, 2); // 1k pkt/s, burst 2
        let t0 = Time::from_millis(1);
        assert!(b.take(t0), "bucket starts full");
        assert!(b.take(t0));
        assert!(!b.take(t0), "burst exhausted");
        // 1 ms at 1k pkt/s refills exactly one packet.
        assert!(b.take(Time::from_millis(2)));
        assert!(!b.take(Time::from_millis(2)));
    }

    #[test]
    fn token_bucket_rate_zero_never_sheds() {
        let mut b = TokenBucket::new(0, 0);
        for _ in 0..1000 {
            assert!(b.take(Time::ZERO));
        }
    }

    #[test]
    fn dup_nak_filter_collapses_within_window() {
        let mut f = DupNakFilter::new(Duration::from_millis(8));
        let t = Time::from_millis(100);
        assert!(!f.is_dup(1, 5, t), "first sighting passes");
        assert!(f.is_dup(1, 5, t + Duration::from_millis(2)));
        assert!(!f.is_dup(1, 6, t), "different seq passes");
        assert!(!f.is_dup(2, 5, t), "different transfer passes");
        // Outside the window the entry has aged out.
        assert!(!f.is_dup(1, 5, t + Duration::from_millis(20)));
    }

    #[test]
    fn dup_nak_filter_is_bounded() {
        let mut f = DupNakFilter::new(Duration::from_secs(10));
        for s in 0..10 * DUP_NAK_CAPACITY as u64 {
            f.is_dup(0, s, Time::from_millis(1));
        }
        assert!(f.seen.len() <= DUP_NAK_CAPACITY);
    }

    #[test]
    fn load_scaler_tracks_feedback_rate() {
        let mut s = LoadScaler::new(4);
        assert_eq!(s.level(Time::ZERO), 1);
        // 40 events in the first epoch -> level 11 clamped to 8.
        for _ in 0..40 {
            s.note(Time::from_millis(1));
        }
        let later = Time::from_millis(25);
        assert_eq!(s.level(later), 8);
        assert_eq!(
            s.scale(Duration::from_millis(4), later),
            Duration::from_millis(32)
        );
        // A quiet epoch relaxes back to 1.
        assert_eq!(s.level(Time::from_millis(50)), 1);
    }
}
