//! Reliable multicast protocol engines over unreliable datagram multicast.
//!
//! This crate implements the four families of reliable multicast protocols
//! studied in *An Empirical Study of Reliable Multicast Protocols over
//! Ethernet-Connected Networks* (Lane, Daniels, Yuan — ICPP 2001):
//!
//! * **ACK-based** ([`ProtocolKind::Ack`]): every receiver positively
//!   acknowledges every data packet; simple and low-memory but the sender
//!   must process `N` ACKs per packet (ACK implosion).
//! * **NAK-based with polling** ([`ProtocolKind::NakPolling`]): receivers
//!   send NAKs on sequence gaps; every `i`-th packet carries a POLL flag
//!   that receivers must acknowledge, letting the sender release buffers
//!   with `N/i` control packets per data packet.
//! * **Ring-based** ([`ProtocolKind::Ring`]): receivers take turns (packet
//!   `p` is acknowledged by receiver `p mod N`); an ACK for packet `p`
//!   releases packet `p − N`; the last packet is acknowledged by everyone.
//! * **Tree-based** ([`ProtocolKind::Tree`]): receivers form a logical
//!   flat tree (or binary tree) and aggregate acknowledgments up chains so
//!   the sender processes only `N/H` control packets, bounding simultaneous
//!   transmissions at the protocol level.
//!
//! All protocols share the paper's machinery: a two-round-trip
//! buffer-allocation handshake before each message, window-based flow
//! control with **Go-Back-N** (selective repeat available as an ablation),
//! sender-driven retransmission timers with retransmission suppression, and
//! multicast retransmission.
//!
//! The engines are **sans-io**: a [`Sender`] or [`Receiver`] never touches
//! sockets or clocks. You feed it datagrams and timeouts
//! ([`Endpoint::handle_datagram`], [`Endpoint::handle_timeout`]) and drain
//! what it wants to do ([`Endpoint::poll_transmit`],
//! [`Endpoint::poll_event`], [`Endpoint::poll_timeout`]). The same engine
//! instance therefore runs unmodified under the `netsim` discrete-event
//! simulator, over real UDP sockets (`udprun`), or inside the in-process
//! [`loopback`] test harness.
//!
//! # Quickstart
//!
//! ```
//! use rmcast::{loopback::Loopback, ProtocolConfig, ProtocolKind};
//! use bytes::Bytes;
//!
//! // One sender, four receivers, NAK-with-polling, 8 KB packets.
//! let cfg = ProtocolConfig::new(ProtocolKind::nak_polling(16), 8000, 20);
//! let mut net = Loopback::new(cfg, 4, 7);
//! net.send_message(Bytes::from(vec![42u8; 100_000]));
//! let delivered = net.run();
//! assert_eq!(delivered.len(), 4);
//! assert!(delivered.iter().all(|d| d.len() == 100_000));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod assembler;
pub mod baseline;
pub mod config;
pub mod coverage;
pub mod endpoint;
pub mod error;
pub mod fec;
pub mod invariants;
pub mod loopback;
pub mod membership;
pub mod overload;
pub mod packet;
pub mod receiver;
pub mod sender;
pub mod stats;
pub mod telemetry;
pub mod tree;
pub mod window;

pub use config::{
    LivenessConfig, MembershipConfig, ProtocolConfig, ProtocolKind, TreeShape, WindowDiscipline,
};
pub use endpoint::{AppEvent, Dest, Endpoint, Role, Transmit};
pub use error::SessionError;
pub use membership::{FailureDetector, LivenessVerdict, RttEstimator};
pub use overload::{AimdWindow, DupNakFilter, LoadScaler, OverloadConfig, TokenBucket};
pub use receiver::Receiver;
pub use sender::Sender;
pub use stats::Stats;
pub use telemetry::{ReceiverTelemetry, SenderTelemetry};

pub use rmtrace::{FlightDump, Histogram, JsonlSink, MemorySink, NullSink, TraceEvent, TraceSink};
pub use rmwire::{Duration, GroupSpec, Rank, SeqNo, Time};
