//! An in-process test harness: one sender and `N` receivers wired through
//! an idealized, zero-latency network with optional per-datagram loss.
//!
//! The loopback exists to test *protocol logic* (reliability, ordering,
//! release rules) independently of any timing model — the timing studies
//! run under `netsim`. Datagrams are delivered instantly; when nothing is
//! in flight, virtual time jumps to the earliest pending timeout, so
//! timer-driven recovery is exercised exactly.

use crate::config::ProtocolConfig;
use crate::endpoint::{AppEvent, Dest, Endpoint, Transmit};
use crate::receiver::Receiver;
use crate::sender::Sender;
use crate::stats::Stats;
use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rmwire::{GroupSpec, Rank, Time};

/// The loopback network.
pub struct Loopback {
    cfg: ProtocolConfig,
    group: GroupSpec,
    seed: u64,
    sender: Sender,
    receivers: Vec<Receiver>,
    /// Crashed receivers: they neither send nor receive until respawned
    /// by [`Loopback::rejoin_receiver`].
    dead: Vec<bool>,
    now: Time,
    loss: f64,
    /// Probability that a delivered datagram is held back one round and
    /// delivered late (out of order), per copy.
    reorder: f64,
    /// Probability that a delivered datagram copy arrives twice
    /// back-to-back (duplication fault).
    dup: f64,
    /// Probability that a delivered datagram copy has a random byte
    /// flipped before delivery (byzantine corruption reaching the decode
    /// path, unlike `loss` which models FCS-dropped frames).
    corrupt: f64,
    /// Datagrams held back by the reorder fault.
    held: Vec<(usize, Bytes)>,
    rng: SmallRng,
    /// Message ids the sender reported complete.
    pub sent: Vec<u64>,
    /// `(receiver index, message id, payload)` deliveries in order.
    pub deliveries: Vec<(usize, u64, Bytes)>,
}

/// Which endpoint a transmit originated from.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Origin {
    Sender,
    Receiver(usize),
}

impl Loopback {
    /// Build a loopback group of `n_receivers` receivers running `cfg`.
    pub fn new(cfg: ProtocolConfig, n_receivers: u16, seed: u64) -> Self {
        let group = GroupSpec::new(n_receivers);
        let sender = Sender::new(cfg, group);
        let receivers = group
            .receivers()
            .map(|r| Receiver::new(cfg, group, r, seed.wrapping_add(r.0 as u64)))
            .collect();
        let dead = vec![false; n_receivers as usize];
        Loopback {
            cfg,
            group,
            seed,
            sender,
            receivers,
            dead,
            now: Time::ZERO,
            loss: 0.0,
            reorder: 0.0,
            dup: 0.0,
            corrupt: 0.0,
            held: Vec::new(),
            rng: SmallRng::seed_from_u64(seed),
            sent: Vec::new(),
            deliveries: Vec::new(),
        }
    }

    /// Drop each delivered datagram copy independently with probability
    /// `p` (multicast loss is per-receiver, like real IP multicast).
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "loss probability out of range");
        self.loss = p;
        self
    }

    /// Hold back each delivered datagram copy with probability `p`,
    /// delivering it one round later — i.e. out of order relative to its
    /// successors (real multicast retransmission can reorder like this).
    pub fn with_reorder(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "probability out of range");
        self.reorder = p;
        self
    }

    /// Duplicate each delivered datagram copy with probability `p`
    /// (delivered twice back-to-back; protocols must stay exactly-once).
    pub fn with_dup(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "probability out of range");
        self.dup = p;
        self
    }

    /// Flip one random byte of each delivered datagram copy with
    /// probability `p`. The corrupted bytes *reach the endpoint* (unlike
    /// [`Loopback::with_loss`], which models FCS-dropped frames), so
    /// configs with `integrity` enabled must detect and drop them.
    pub fn with_corrupt(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "probability out of range");
        self.corrupt = p;
        self
    }

    /// Queue a message on the sender.
    pub fn send_message(&mut self, data: Bytes) -> u64 {
        self.sender.send_message(self.now, data)
    }

    /// Inject an arbitrary datagram into an endpoint (hostile-input
    /// testing): `None` targets the sender, `Some(i)` receiver index `i`.
    pub fn inject(&mut self, target: Option<usize>, payload: &[u8]) {
        match target {
            None => self.sender.handle_datagram(self.now, payload),
            Some(i) => self.receivers[i].handle_datagram(self.now, payload),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Crash receiver index `i`: it stops sending and receiving. With
    /// membership enabled the sender's failure detector will evict it;
    /// without, straggler eviction or give-up timers must clean up.
    pub fn kill_receiver(&mut self, i: usize) {
        self.dead[i] = true;
    }

    /// Respawn a crashed receiver with empty state: it rejoins the group
    /// through the JOIN → WELCOME → SYNC handshake (membership must be
    /// enabled in the config).
    pub fn rejoin_receiver(&mut self, i: usize) {
        assert!(self.dead[i], "rejoin of a live receiver");
        let rank = Rank::from_receiver_index(i);
        let seed = self.seed.wrapping_add(rank.0 as u64).wrapping_add(0x9e37);
        self.receivers[i] = Receiver::new_joining(self.cfg, self.group, rank, seed, self.now);
        self.dead[i] = false;
    }

    /// Is receiver index `i` currently crashed?
    pub fn is_dead(&self, i: usize) -> bool {
        self.dead[i]
    }

    /// The sender's counters.
    pub fn sender_stats(&self) -> &Stats {
        self.sender.stats()
    }

    /// A receiver's counters (0-based index).
    pub fn receiver_stats(&self, idx: usize) -> &Stats {
        self.receivers[idx].stats()
    }

    /// Run to quiescence and return every delivered payload, in delivery
    /// order (with one message and `N` receivers: `N` entries).
    ///
    /// Panics if the protocols fail to converge within a generous virtual
    /// time bound — that is a reliability bug, and tests want it loud.
    pub fn run(&mut self) -> Vec<Bytes> {
        let deadline = Time::from_nanos(600 * 1_000_000_000);
        let start_deliveries = self.deliveries.len();
        loop {
            // 1. Flush transmits until the network is silent.
            while self.step_transmits() {}
            self.collect_events();
            // 2. All quiet: either done, or jump to the next timeout.
            if self.step_transmits() {
                continue;
            }
            let next_timeout = self.endpoint_timeouts().into_iter().flatten().min();
            match next_timeout {
                None => break,
                Some(t) => {
                    assert!(
                        t <= deadline,
                        "loopback did not converge: timeout chain beyond {deadline}"
                    );
                    self.now = self.now.max(t);
                    let now = self.now;
                    if self.sender.poll_timeout().is_some_and(|d| d <= now) {
                        self.sender.handle_timeout(now);
                    }
                    for (i, r) in self.receivers.iter_mut().enumerate() {
                        if !self.dead[i] && r.poll_timeout().is_some_and(|d| d <= now) {
                            r.handle_timeout(now);
                        }
                    }
                }
            }
        }
        assert!(
            self.sender.is_idle()
                && self
                    .receivers
                    .iter()
                    .enumerate()
                    .all(|(i, r)| self.dead[i] || r.is_idle()),
            "loopback reached quiescence with non-idle endpoints"
        );
        self.deliveries[start_deliveries..]
            .iter()
            .map(|(_, _, d)| d.clone())
            .collect()
    }

    fn endpoint_timeouts(&self) -> Vec<Option<Time>> {
        let mut v = vec![self.sender.poll_timeout()];
        v.extend(self.receivers.iter().enumerate().map(|(i, r)| {
            if self.dead[i] {
                None
            } else {
                r.poll_timeout()
            }
        }));
        v
    }

    /// Drain one round of transmits from every endpoint and deliver them.
    /// Returns `true` if anything moved.
    fn step_transmits(&mut self) -> bool {
        // Release datagrams the reorder fault held back last round.
        let held = std::mem::take(&mut self.held);
        let released = !held.is_empty();
        for (idx, payload) in held {
            let now = self.now;
            if idx == usize::MAX {
                self.sender.handle_datagram(now, &payload);
            } else if !self.dead[idx] {
                self.receivers[idx].handle_datagram(now, &payload);
            }
        }

        let mut flights: Vec<(Origin, Transmit)> = Vec::new();
        while let Some(t) = self.sender.poll_transmit() {
            flights.push((Origin::Sender, t));
        }
        for (i, r) in self.receivers.iter_mut().enumerate() {
            while let Some(t) = r.poll_transmit() {
                // A crashed receiver's queued datagrams never hit the wire.
                if !self.dead[i] {
                    flights.push((Origin::Receiver(i), t));
                }
            }
        }
        if flights.is_empty() {
            self.collect_events();
            return released;
        }
        for (origin, t) in flights {
            match t.dest {
                Dest::Sender => {
                    if self.deliver_roll() {
                        if self.reorder_roll() {
                            self.held.push((usize::MAX, t.payload.clone()));
                        } else {
                            for _ in 0..self.dup_copies() {
                                let p = self.maybe_corrupt(&t.payload);
                                self.sender.handle_datagram(self.now, &p);
                            }
                        }
                    }
                }
                Dest::Rank(rank) => {
                    let idx = rank.receiver_index();
                    if origin != Origin::Receiver(idx) && !self.dead[idx] && self.deliver_roll() {
                        if self.reorder_roll() {
                            self.held.push((idx, t.payload.clone()));
                        } else {
                            let now = self.now;
                            for _ in 0..self.dup_copies() {
                                let p = self.maybe_corrupt(&t.payload);
                                self.receivers[idx].handle_datagram(now, &p);
                            }
                        }
                    }
                }
                Dest::Receivers => {
                    for i in 0..self.receivers.len() {
                        if origin == Origin::Receiver(i) || self.dead[i] {
                            continue; // no self-delivery; crashed hear nothing
                        }
                        if self.deliver_roll() {
                            if self.reorder_roll() {
                                self.held.push((i, t.payload.clone()));
                            } else {
                                let now = self.now;
                                for _ in 0..self.dup_copies() {
                                    let p = self.maybe_corrupt(&t.payload);
                                    self.receivers[i].handle_datagram(now, &p);
                                }
                            }
                        }
                    }
                }
            }
        }
        self.collect_events();
        true
    }

    fn deliver_roll(&mut self) -> bool {
        self.loss == 0.0 || self.rng.gen::<f64>() >= self.loss
    }

    fn reorder_roll(&mut self) -> bool {
        self.reorder > 0.0 && self.rng.gen::<f64>() < self.reorder
    }

    /// How many copies of a delivered datagram arrive (1, or 2 under the
    /// duplication fault). Draws randomness only when the fault is on.
    fn dup_copies(&mut self) -> usize {
        if self.dup > 0.0 && self.rng.gen::<f64>() < self.dup {
            2
        } else {
            1
        }
    }

    /// The payload as the endpoint will see it: verbatim, or with one
    /// random byte XOR-flipped under the corruption fault. Draws
    /// randomness only when the fault is on.
    fn maybe_corrupt(&mut self, payload: &Bytes) -> Bytes {
        if self.corrupt > 0.0 && !payload.is_empty() && self.rng.gen::<f64>() < self.corrupt {
            let mut v = payload.to_vec();
            let at = self.rng.gen_range(0..v.len());
            let bit = self.rng.gen_range(0u8..8);
            v[at] ^= 1 << bit;
            Bytes::from(v)
        } else {
            payload.clone()
        }
    }

    fn collect_events(&mut self) {
        while let Some(e) = self.sender.poll_event() {
            if let AppEvent::MessageSent { msg_id } = e {
                self.sent.push(msg_id);
            }
        }
        for (i, r) in self.receivers.iter_mut().enumerate() {
            while let Some(e) = r.poll_event() {
                if self.dead[i] {
                    continue; // a crashed receiver's completions are lost
                }
                if let AppEvent::MessageDelivered { msg_id, data } = e {
                    self.deliveries.push((i, msg_id, data));
                }
            }
        }
    }

    /// The rank of receiver index `i` (convenience for assertions).
    pub fn rank_of(&self, i: usize) -> Rank {
        Rank::from_receiver_index(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolKind;

    #[test]
    fn clean_ack_run_delivers_everywhere() {
        let cfg = ProtocolConfig::new(ProtocolKind::Ack, 500, 2);
        let mut net = Loopback::new(cfg, 5, 1);
        net.send_message(Bytes::from(vec![3u8; 4321]));
        let out = net.run();
        assert_eq!(out.len(), 5);
        assert!(out
            .iter()
            .all(|d| d.len() == 4321 && d.iter().all(|&b| b == 3)));
        assert_eq!(net.sent, vec![0]);
        // Clean network: no retransmissions, no naks, no timeouts.
        assert_eq!(net.sender_stats().retx_sent, 0);
        assert_eq!(net.sender_stats().naks_received, 0);
        assert_eq!(net.sender_stats().timeouts, 0);
    }

    #[test]
    fn crash_evict_rejoin_cycle() {
        use crate::config::MembershipConfig;
        let mut cfg = ProtocolConfig::new(ProtocolKind::Ack, 500, 4);
        cfg.membership = MembershipConfig::enabled();
        let mut net = Loopback::new(cfg, 3, 5);
        // Message 0: everyone delivers.
        net.send_message(Bytes::from(vec![1u8; 2000]));
        assert_eq!(net.run().len(), 3);
        // Receiver 1 crashes; message 1 completes after its eviction.
        net.kill_receiver(1);
        net.send_message(Bytes::from(vec![2u8; 2000]));
        assert_eq!(net.run().len(), 2);
        assert_eq!(net.sender_stats().evictions, 1);
        assert!(net.sender_stats().suspects >= 1);
        // It restarts and rejoins; flushing the empty network completes
        // the JOIN → WELCOME → SYNC handshake (the sender is idle, so
        // admission is immediate). Message 2 then reaches all three.
        net.rejoin_receiver(1);
        assert!(net.run().is_empty());
        assert_eq!(net.sender_stats().joins, 1);
        net.send_message(Bytes::from(vec![3u8; 2000]));
        assert_eq!(net.run().len(), 3);
        assert_eq!(net.sender_stats().joins, 1);
        assert_eq!(net.sent, vec![0, 1, 2]);
    }

    #[test]
    fn lossy_ack_run_still_reliable() {
        let cfg = ProtocolConfig::new(ProtocolKind::Ack, 500, 4);
        let mut net = Loopback::new(cfg, 3, 99).with_loss(0.2);
        net.send_message(Bytes::from(vec![9u8; 10_000]));
        let out = net.run();
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|d| d.len() == 10_000));
        assert!(
            net.sender_stats().retx_sent > 0,
            "20% loss must force retransmissions"
        );
    }
}
