//! The sans-io endpoint interface.
//!
//! A protocol engine is driven entirely from outside:
//!
//! ```text
//!            datagram in ─────► handle_datagram
//!            deadline hit ────► handle_timeout
//!
//!            poll_transmit ──► datagrams to put on the wire
//!            poll_timeout ───► next deadline to call handle_timeout at
//!            poll_event ─────► application-visible completions
//! ```
//!
//! The driver (simulator host adapter, UDP thread, or the in-process
//! loopback) owns sockets and clocks; the engine owns all protocol state.

use crate::error::SessionError;
use crate::stats::Stats;
use bytes::Bytes;
use rmwire::{Rank, Time};

/// Where a produced datagram should go. The driver maps these onto real
/// addresses (simulated host/port, UDP socket address, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dest {
    /// Unicast to the group's sender (rank 0).
    Sender,
    /// Unicast to one receiver.
    Rank(Rank),
    /// Multicast to the receiver group.
    Receivers,
}

/// One datagram the engine wants transmitted.
#[derive(Debug, Clone)]
pub struct Transmit {
    /// Destination.
    pub dest: Dest,
    /// Full wire payload (header + body).
    pub payload: Bytes,
    /// Bytes that were logically copied from the user buffer into the
    /// protocol buffer to build this packet; the driver charges the
    /// user-space copy cost for them (zero when the copy is disabled or
    /// for control packets).
    pub copied: usize,
}

/// Application-visible events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppEvent {
    /// The sender finished a message: every receiver provably holds it and
    /// all buffers are released.
    MessageSent {
        /// Message index (0-based, in submission order).
        msg_id: u64,
    },
    /// A receiver delivered a complete message.
    MessageDelivered {
        /// Message index.
        msg_id: u64,
        /// The reassembled payload.
        data: Bytes,
    },
    /// A message session was abandoned under the liveness bounds
    /// ([`crate::config::LivenessConfig`]) instead of completing.
    MessageFailed {
        /// Message index.
        msg_id: u64,
        /// Why the session was abandoned.
        error: SessionError,
    },
    /// Straggler eviction removed a peer from the proof obligation: the
    /// sender (or a tree aggregation node) stopped waiting for it.
    ReceiverEvicted {
        /// Message in transfer when the eviction happened.
        msg_id: u64,
        /// The evicted peer.
        rank: Rank,
    },
    /// Dynamic membership admitted a (re)joining receiver at a message
    /// boundary: it is part of the proof obligation from `epoch` on.
    ReceiverJoined {
        /// The admitted peer.
        rank: Rank,
        /// The membership epoch created by the admission.
        epoch: u32,
    },
    /// Sender→application backpressure (edge-triggered): `congested: true`
    /// when AIMD has shrunk the window below its configured size and the
    /// send path has stalled on it — publishers should slow down;
    /// `congested: false` once the window recovers and sending resumes.
    Backpressure {
        /// Message in transfer when the edge fired.
        msg_id: u64,
        /// The new congestion state.
        congested: bool,
    },
    /// The endpoint's flight recorder captured a post-mortem snapshot at
    /// the moment a failure was recorded (`messages_failed` increment /
    /// liveness bound trip). Emitted only when a flight recorder was
    /// enabled via [`Endpoint::enable_flight_recorder`].
    FlightRecorderDump {
        /// The last events, counter snapshot, and reason.
        dump: rmtrace::FlightDump,
    },
}

/// Whether an endpoint is the group's sender or one of its receivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Rank 0.
    Sender,
    /// Ranks `1..=N`.
    Receiver(Rank),
}

/// The driver-facing face of every protocol engine.
pub trait Endpoint {
    /// Feed one received datagram (UDP payload) at local time `now`.
    fn handle_datagram(&mut self, now: Time, datagram: &[u8]);

    /// Notify that `now >= poll_timeout()`.
    fn handle_timeout(&mut self, now: Time);

    /// The next instant [`Endpoint::handle_timeout`] must be called, if
    /// any. Re-query after every other call; deadlines move.
    fn poll_timeout(&self) -> Option<Time>;

    /// Take the next datagram to transmit, if any. Drivers drain this
    /// after every `handle_*` call.
    fn poll_transmit(&mut self) -> Option<Transmit>;

    /// Take the next application event, if any.
    fn poll_event(&mut self) -> Option<AppEvent>;

    /// Instrumentation counters.
    fn stats(&self) -> &Stats;

    /// `true` when the endpoint has nothing in flight and nothing queued:
    /// drivers may use this for quiescence detection.
    fn is_idle(&self) -> bool;

    /// Attach a trace sink receiving this endpoint's protocol events.
    /// Engines without tracing support ignore the sink (default).
    fn set_trace_sink(&mut self, sink: Box<dyn rmtrace::TraceSink>) {
        let _ = sink;
    }

    /// Keep the last `cap` events in a flight recorder, dumped as an
    /// [`AppEvent::FlightRecorderDump`] when a failure is recorded.
    /// Ignored by engines without tracing support (default).
    fn enable_flight_recorder(&mut self, cap: usize) {
        let _ = cap;
    }
}
