//! Release trackers: when may the sender free a packet's buffer?
//!
//! All four protocols free a packet only once it is *provably* held by
//! every receiver, but they prove it differently:
//!
//! * ACK / NAK-polling: per-receiver cumulative acknowledgments; packet
//!   `p` is released when every receiver's `next_expected` exceeds `p`.
//! * Tree: the same, but per aggregation *root* — a root's cumulative
//!   acknowledgment covers its whole subtree.
//! * Ring: packet `p` is acknowledged only by receiver `p mod N`, so an
//!   in-order prefix of `A` token acknowledgments releases packets below
//!   `A − N`; the final packet is acknowledged by everyone, which releases
//!   the rest (the paper's second LAN modification).

use rmwire::Rank;

/// Minimum-of-cumulative-acknowledgments tracker (ACK, NAK, tree).
///
/// ```
/// use rmcast::coverage::PerSourceCoverage;
///
/// let mut cov = PerSourceCoverage::new(3);
/// cov.update(0, 5);
/// cov.update(1, 4);
/// assert_eq!(cov.update(2, 6), 4, "slowest source gates the release");
/// ```
#[derive(Debug, Clone)]
pub struct PerSourceCoverage {
    /// `next_expected` reported by each source (receiver or tree root).
    cov: Vec<u32>,
    /// Sources removed from the proof obligation (straggler eviction).
    evicted: Vec<bool>,
}

impl PerSourceCoverage {
    /// Tracker over `n_sources` acknowledgment sources.
    pub fn new(n_sources: usize) -> Self {
        assert!(n_sources >= 1);
        PerSourceCoverage {
            cov: vec![0; n_sources],
            evicted: vec![false; n_sources],
        }
    }

    /// Record a cumulative acknowledgment from source `idx`; stale (lower)
    /// values are ignored. Returns the new releasable prefix.
    pub fn update(&mut self, idx: usize, next_expected: u32) -> u32 {
        let c = &mut self.cov[idx];
        *c = (*c).max(next_expected);
        self.released()
    }

    /// Remove source `idx` from the proof obligation; its acknowledgment
    /// no longer gates the release. Callers must keep at least one source
    /// active (the session otherwise fails).
    pub fn evict(&mut self, idx: usize) {
        self.evicted[idx] = true;
    }

    /// Sources still part of the proof obligation.
    pub fn n_active(&self) -> usize {
        self.evicted.iter().filter(|&&e| !e).count()
    }

    /// The active sources currently gating the release (those at the
    /// minimum cumulative acknowledgment) — the eviction candidates when a
    /// transfer stalls.
    pub fn laggards(&self) -> Vec<usize> {
        let min = self.released();
        (0..self.cov.len())
            .filter(|&i| !self.evicted[i] && self.cov[i] == min)
            .collect()
    }

    /// Packets `0..released()` are held by every *active* source.
    pub fn released(&self) -> u32 {
        self.cov
            .iter()
            .zip(&self.evicted)
            .filter(|&(_, &e)| !e)
            .map(|(&c, _)| c)
            .min()
            .expect("at least one active source")
    }

    /// The per-source cumulative acknowledgments and eviction flags, for
    /// state digesting (`rmcheck explore`).
    pub fn state(&self) -> (&[u32], &[bool]) {
        (&self.cov, &self.evicted)
    }

    /// Structural self-check: the released prefix must be the minimum over
    /// active sources — no packet is ever released that some active source
    /// has not acknowledged.
    pub fn check(&self) -> Result<(), String> {
        if self.n_active() == 0 {
            return Err("coverage with zero active sources".into());
        }
        let min = self
            .cov
            .iter()
            .zip(&self.evicted)
            .filter(|&(_, &e)| !e)
            .map(|(&c, _)| c)
            .min()
            .unwrap_or(0);
        if self.released() != min {
            return Err(format!(
                "released() = {} but the slowest active source acknowledged {}",
                self.released(),
                min
            ));
        }
        Ok(())
    }
}

/// The ring protocol's release tracker.
///
/// ```
/// use rmcast::coverage::RingTracker;
/// use rmwire::Rank;
///
/// // 10 packets, 3 receivers: packet p is acked by receiver (p mod 3) + 1.
/// let mut ring = RingTracker::new(10, 3);
/// ring.update(Rank(1), 1);                 // token ack for packet 0
/// ring.update(Rank(2), 2);                 // packet 1
/// ring.update(Rank(3), 3);                 // packet 2
/// assert_eq!(ring.update(Rank(1), 4), 1);  // packet 3 -> releases packet 0
/// ```
#[derive(Debug, Clone)]
pub struct RingTracker {
    n_receivers: u32,
    k: u32,
    /// Per-receiver cumulative `next_expected` (from the ACKs each sent on
    /// its token turns or for the final packet).
    cov: Vec<u32>,
    /// Length of the contiguous prefix of packets whose token receiver has
    /// acknowledged them.
    token_prefix: u32,
    /// Receivers removed from the token rotation (straggler eviction): the
    /// prefix advances past their token packets as if acknowledged.
    evicted: Vec<bool>,
}

impl RingTracker {
    /// Tracker for a `k`-packet transfer to `n_receivers` receivers.
    pub fn new(k: u32, n_receivers: u32) -> Self {
        assert!(n_receivers >= 1);
        RingTracker {
            n_receivers,
            k,
            cov: vec![0; n_receivers as usize],
            token_prefix: 0,
            evicted: vec![false; n_receivers as usize],
        }
    }

    /// Remove receiver index `idx` from the token rotation: the prefix is
    /// advanced over its unacknowledged token packets (token-pass skip),
    /// and it no longer gates the end-of-transfer release. Callers must
    /// keep at least one receiver active.
    pub fn evict(&mut self, idx: usize) {
        self.evicted[idx] = true;
        self.advance_prefix();
    }

    /// Receivers still part of the token rotation.
    pub fn n_active(&self) -> usize {
        self.evicted.iter().filter(|&&e| !e).count()
    }

    /// The active receivers currently gating the release: the token site
    /// of the packet blocking the prefix, or — once the prefix has run
    /// through the whole transfer — everyone yet to acknowledge the end.
    pub fn laggards(&self) -> Vec<usize> {
        if self.token_prefix < self.k {
            vec![(self.token_prefix % self.n_receivers) as usize]
        } else {
            (0..self.cov.len())
                .filter(|&i| !self.evicted[i] && self.cov[i] < self.k)
                .collect()
        }
    }

    /// The receiver responsible for acknowledging packet `seq`.
    pub fn token_receiver(seq: u32, n_receivers: u32) -> Rank {
        Rank::from_receiver_index((seq % n_receivers) as usize)
    }

    /// Record a cumulative acknowledgment from `rank`; returns the new
    /// releasable prefix.
    pub fn update(&mut self, rank: Rank, next_expected: u32) -> u32 {
        let i = rank.receiver_index();
        let c = &mut self.cov[i];
        *c = (*c).max(next_expected);
        self.advance_prefix();
        self.released()
    }

    /// Advance the token prefix: packet p is token-acknowledged when
    /// receiver (p mod N) reported next_expected > p — or was evicted.
    fn advance_prefix(&mut self) {
        while self.token_prefix < self.k {
            let p = self.token_prefix;
            let r = (p % self.n_receivers) as usize;
            if self.cov[r] > p || self.evicted[r] {
                self.token_prefix += 1;
            } else {
                break;
            }
        }
    }

    /// Packets `0..released()` are provably held by every receiver: an
    /// acknowledged token packet `X` proves everyone holds `X − N + 1`
    /// onward... i.e. the prefix minus one ring revolution — except that
    /// once every receiver acknowledges the end of the transfer,
    /// everything is released.
    pub fn released(&self) -> u32 {
        if self
            .cov
            .iter()
            .zip(&self.evicted)
            .all(|(&c, &e)| e || c >= self.k)
        {
            return self.k;
        }
        self.token_prefix.saturating_sub(self.n_receivers)
    }

    /// The per-receiver cumulative acknowledgments, token prefix and
    /// eviction flags, for state digesting (`rmcheck explore`).
    pub fn state(&self) -> (&[u32], u32, &[bool]) {
        (&self.cov, self.token_prefix, &self.evicted)
    }

    /// Structural self-check of the paper's ring release rule: the token
    /// prefix must be exactly the contiguous run of token-acknowledged
    /// packets implied by `cov`/`evicted`, and `released()` must trail it
    /// by one full ring revolution (`X − N`) except for the all-acked
    /// fast path at end of transfer.
    pub fn check(&self) -> Result<(), String> {
        if self.n_active() == 0 {
            return Err("ring tracker with zero active receivers".into());
        }
        // Recompute the prefix from scratch and compare.
        let mut prefix = 0u32;
        while prefix < self.k {
            let r = (prefix % self.n_receivers) as usize;
            if self.evicted[r] || self.cov[r] > prefix {
                prefix += 1;
            } else {
                break;
            }
        }
        if prefix != self.token_prefix {
            return Err(format!(
                "ring token prefix {} but coverage implies {}",
                self.token_prefix, prefix
            ));
        }
        let all_acked = self
            .cov
            .iter()
            .zip(&self.evicted)
            .all(|(&c, &e)| e || c >= self.k);
        let expect = if all_acked {
            self.k
        } else {
            self.token_prefix.saturating_sub(self.n_receivers)
        };
        if self.released() != expect {
            return Err(format!(
                "ring released() = {} violates the X - N rule (prefix {}, N {}, expected {})",
                self.released(),
                self.token_prefix,
                self.n_receivers,
                expect
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_source_min_rules() {
        let mut c = PerSourceCoverage::new(3);
        assert_eq!(c.released(), 0);
        assert_eq!(c.update(0, 5), 0);
        assert_eq!(c.update(1, 3), 0);
        assert_eq!(c.update(2, 4), 3);
        // Stale update ignored.
        assert_eq!(c.update(0, 1), 3);
        assert_eq!(c.update(1, 9), 4);
    }

    #[test]
    fn token_receiver_rotation() {
        assert_eq!(RingTracker::token_receiver(0, 5), Rank(1));
        assert_eq!(RingTracker::token_receiver(4, 5), Rank(5));
        assert_eq!(RingTracker::token_receiver(5, 5), Rank(1));
    }

    #[test]
    fn ring_releases_one_revolution_behind() {
        // 3 receivers, 10 packets.
        let mut r = RingTracker::new(10, 3);
        // Receiver 1 acks packet 0 (next_expected 1): prefix 1, releases 0.
        assert_eq!(r.update(Rank(1), 1), 0);
        assert_eq!(r.update(Rank(2), 2), 0);
        // Receiver 3 acks packet 2: prefix 3, release 3 - 3 = 0.
        assert_eq!(r.update(Rank(3), 3), 0);
        // Receiver 1 acks packet 3: prefix 4 -> release packet 0.
        assert_eq!(r.update(Rank(1), 4), 1);
        assert_eq!(r.update(Rank(2), 5), 2);
    }

    #[test]
    fn ring_out_of_order_acks_fill_prefix() {
        let mut r = RingTracker::new(10, 3);
        // Receiver 2's ack arrives before receiver 1's.
        assert_eq!(r.update(Rank(2), 2), 0);
        assert_eq!(r.token_prefix, 0, "prefix blocked on packet 0");
        assert_eq!(r.update(Rank(1), 1), 0);
        assert_eq!(r.token_prefix, 2, "prefix jumps over the buffered ack");
    }

    #[test]
    fn ring_final_ack_from_all_releases_everything() {
        let mut r = RingTracker::new(4, 3);
        assert_eq!(r.update(Rank(1), 4), 0);
        assert_eq!(r.update(Rank(2), 4), 0);
        // Everyone has acknowledged next_expected = k.
        assert_eq!(r.update(Rank(3), 4), 4);
    }

    #[test]
    fn per_source_eviction_unblocks_release() {
        let mut c = PerSourceCoverage::new(3);
        c.update(0, 5);
        c.update(2, 5);
        assert_eq!(c.released(), 0, "source 1 gates everything");
        assert_eq!(c.laggards(), vec![1]);
        c.evict(1);
        assert_eq!(c.released(), 5, "survivors define the release");
        assert_eq!(c.n_active(), 2);
        // Stale acks from the evicted source no longer matter.
        assert_eq!(c.update(1, 1), 5);
    }

    #[test]
    fn ring_eviction_skips_dead_token_site() {
        // 3 receivers, 6 packets; receiver 2 (index 1) is dead.
        let mut r = RingTracker::new(6, 3);
        assert_eq!(r.update(Rank(1), 6), 0);
        assert_eq!(r.update(Rank(3), 6), 0);
        assert_eq!(r.token_prefix, 1, "blocked on packet 1's dead token site");
        assert_eq!(r.laggards(), vec![1]);
        r.evict(1);
        // Token-pass skip: the prefix runs over the dead site's packets,
        // and the all-acked fast path ignores it.
        assert_eq!(r.released(), 6);
        assert_eq!(r.n_active(), 2);
    }

    #[test]
    fn ring_laggards_after_full_prefix() {
        // 2 receivers, 4 packets: receiver 1 token-acked everything it is
        // the site of, but never reached the end of the transfer.
        let mut r = RingTracker::new(4, 2);
        r.update(Rank(1), 3);
        r.update(Rank(2), 4);
        assert_eq!(r.token_prefix, 4, "every token packet acknowledged");
        assert_eq!(r.released(), 2, "still one revolution behind");
        assert_eq!(r.laggards(), vec![0], "receiver 1 gates the end");
        r.evict(0);
        assert_eq!(r.released(), 4);
    }

    #[test]
    fn ring_cumulative_ack_covers_multiple_tokens() {
        // 2 receivers; receiver 1 acks with next_expected 5, covering its
        // tokens 0, 2 and 4 at once.
        let mut r = RingTracker::new(10, 2);
        assert_eq!(r.update(Rank(1), 5), 0);
        assert_eq!(r.token_prefix, 1, "blocked on packet 1 (receiver 2)");
        // Receiver 2's ack covers its tokens 1 and 3; the prefix then runs
        // through packet 4 (receiver 1's token, already covered by ne=5).
        assert_eq!(r.update(Rank(2), 4), 3); // prefix 5 -> release 5 - 2
        assert_eq!(r.token_prefix, 5);
    }
}
