//! Per-endpoint instrumentation.
//!
//! These counters feed the paper's Table 2 (control packets per data
//! packet) and Table 1 (memory requirement) reproductions, and every
//! experiment's sanity checks.

use serde::{Deserialize, Serialize};

/// Counters maintained by every [`crate::Sender`] / [`crate::Receiver`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stats {
    /// Original (non-retransmitted) data packets sent.
    pub data_sent: u64,
    /// Retransmitted data packets sent.
    pub retx_sent: u64,
    /// Data packets received (duplicates included).
    pub data_received: u64,
    /// Duplicate or out-of-window data packets discarded.
    pub data_discarded: u64,
    /// ACK packets sent.
    pub acks_sent: u64,
    /// ACK packets received (and processed).
    pub acks_received: u64,
    /// NAK packets sent.
    pub naks_sent: u64,
    /// NAK packets received.
    pub naks_received: u64,
    /// NAKs a receiver wanted to send but suppressed (rate limit or
    /// overheard multicast NAK).
    pub naks_suppressed: u64,
    /// Retransmissions suppressed by the sender-side scheme.
    pub retx_suppressed: u64,
    /// Bytes copied from the user buffer into protocol buffers (the cost
    /// Figure 9 isolates).
    pub user_copy_bytes: u64,
    /// Application payload bytes carried in data packets sent.
    pub payload_bytes_sent: u64,
    /// Messages fully sent (sender) or delivered (receiver).
    pub messages_completed: u64,
    /// High-water mark of bytes held in the protocol window / receive
    /// buffers (Table 1's "memory requirement").
    pub peak_buffer_bytes: u64,
    /// Malformed datagrams ignored.
    pub decode_errors: u64,
    /// Retransmission timeouts that fired.
    pub timeouts: u64,
    /// Messages abandoned under the liveness bounds (sender giving up or a
    /// receiver declaring the sender dead).
    pub messages_failed: u64,
    /// Peers evicted from the proof obligation by straggler eviction.
    pub evictions: u64,
    /// Heartbeat packets sent (sender announces, receiver replies).
    pub heartbeats_sent: u64,
    /// Heartbeat packets received.
    pub heartbeats_received: u64,
    /// Members admitted into the group (sender) or SYNC handoffs processed
    /// (receiver).
    pub joins: u64,
    /// Members that crossed the failure detector's suspect threshold.
    pub suspects: u64,
    /// ACK/NAK packets discarded because they carried a stale membership
    /// epoch.
    pub stale_epoch_discarded: u64,
}

impl Stats {
    /// Record a buffer occupancy sample, keeping the peak.
    pub fn sample_buffer(&mut self, bytes: usize) {
        self.peak_buffer_bytes = self.peak_buffer_bytes.max(bytes as u64);
    }

    /// Control packets sent (ACKs + NAKs).
    pub fn control_sent(&self) -> u64 {
        self.acks_sent + self.naks_sent
    }

    /// Control packets received.
    pub fn control_received(&self) -> u64 {
        self.acks_received + self.naks_received
    }

    /// Control packets received at this endpoint per data packet it sent —
    /// the sender-side column of the paper's Table 2.
    pub fn control_per_data_packet(&self) -> f64 {
        if self.data_sent == 0 {
            0.0
        } else {
            self.control_received() as f64 / self.data_sent as f64
        }
    }

    /// Merge another endpoint's counters into this one (used to aggregate
    /// across receivers).
    pub fn merge(&mut self, other: &Stats) {
        self.data_sent += other.data_sent;
        self.retx_sent += other.retx_sent;
        self.data_received += other.data_received;
        self.data_discarded += other.data_discarded;
        self.acks_sent += other.acks_sent;
        self.acks_received += other.acks_received;
        self.naks_sent += other.naks_sent;
        self.naks_received += other.naks_received;
        self.naks_suppressed += other.naks_suppressed;
        self.retx_suppressed += other.retx_suppressed;
        self.user_copy_bytes += other.user_copy_bytes;
        self.payload_bytes_sent += other.payload_bytes_sent;
        self.messages_completed += other.messages_completed;
        self.peak_buffer_bytes = self.peak_buffer_bytes.max(other.peak_buffer_bytes);
        self.decode_errors += other.decode_errors;
        self.timeouts += other.timeouts;
        self.messages_failed += other.messages_failed;
        self.evictions += other.evictions;
        self.heartbeats_sent += other.heartbeats_sent;
        self.heartbeats_received += other.heartbeats_received;
        self.joins += other.joins;
        self.suspects += other.suspects;
        self.stale_epoch_discarded += other.stale_epoch_discarded;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracking() {
        let mut s = Stats::default();
        s.sample_buffer(100);
        s.sample_buffer(50);
        assert_eq!(s.peak_buffer_bytes, 100);
        s.sample_buffer(200);
        assert_eq!(s.peak_buffer_bytes, 200);
    }

    #[test]
    fn ratios() {
        let mut s = Stats::default();
        assert_eq!(s.control_per_data_packet(), 0.0);
        s.data_sent = 10;
        s.acks_received = 25;
        s.naks_received = 5;
        assert_eq!(s.control_sent(), 0);
        assert_eq!(s.control_received(), 30);
        assert_eq!(s.control_per_data_packet(), 3.0);
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = Stats {
            data_sent: 1,
            peak_buffer_bytes: 10,
            ..Stats::default()
        };
        let b = Stats {
            data_sent: 2,
            peak_buffer_bytes: 5,
            ..Stats::default()
        };
        a.merge(&b);
        assert_eq!(a.data_sent, 3);
        assert_eq!(a.peak_buffer_bytes, 10);
    }
}
