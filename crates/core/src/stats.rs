//! Per-endpoint instrumentation.
//!
//! These counters feed the paper's Table 2 (control packets per data
//! packet) and Table 1 (memory requirement) reproductions, and every
//! experiment's sanity checks.
//!
//! The fields are declared once through [`define_stats!`], which derives
//! the struct, [`Stats::merge`], the `(name, value)` field enumeration
//! and the JSON encoder from the same list — so a newly added counter can
//! never be silently dropped from aggregation or from flight-recorder
//! snapshots (a guard test below asserts every field participates).

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

macro_rules! merge_field {
    (sum, $a:expr, $b:expr) => {
        $a += $b
    };
    (max, $a:expr, $b:expr) => {
        $a = $a.max($b)
    };
}

macro_rules! define_stats {
    ($( $(#[$doc:meta])* $name:ident : $kind:ident, )*) => {
        /// Counters maintained by every [`crate::Sender`] / [`crate::Receiver`].
        #[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
        pub struct Stats {
            $( $(#[$doc])* pub $name: u64, )*
        }

        impl Stats {
            /// Number of counter fields (kept in lockstep with the struct
            /// by construction).
            pub const FIELD_COUNT: usize = [$(stringify!($name)),*].len();

            /// Merge another endpoint's counters into this one (used to
            /// aggregate across receivers). Each field combines according
            /// to its declared kind: `sum` adds, `max` keeps the peak.
            pub fn merge(&mut self, other: &Stats) {
                $( merge_field!($kind, self.$name, other.$name); )*
            }

            /// Every counter as a `(name, value)` pair, in declaration
            /// order (flight-recorder snapshots, reports).
            pub fn fields(&self) -> Vec<(&'static str, u64)> {
                vec![ $( (stringify!($name), self.$name), )* ]
            }

            /// Every counter's declared merge kind (`"sum"` or `"max"`),
            /// in declaration order.
            pub fn field_kinds() -> Vec<(&'static str, &'static str)> {
                vec![ $( (stringify!($name), stringify!($kind)), )* ]
            }

            /// Encode as a flat JSON object (hand-rolled; the workspace's
            /// serde is an inert shim).
            pub fn to_json(&self) -> String {
                let mut s = String::from("{");
                let mut first = true;
                for (name, v) in self.fields() {
                    if !first {
                        s.push(',');
                    }
                    first = false;
                    let _ = write!(s, "\"{name}\":{v}");
                }
                s.push('}');
                s
            }
        }
    };
}

define_stats! {
    /// Original (non-retransmitted) data packets sent.
    data_sent: sum,
    /// Retransmitted data packets sent.
    retx_sent: sum,
    /// Data packets received (duplicates included).
    data_received: sum,
    /// Duplicate or out-of-window data packets discarded.
    data_discarded: sum,
    /// ACK packets sent.
    acks_sent: sum,
    /// ACK packets received (and processed).
    acks_received: sum,
    /// NAK packets sent.
    naks_sent: sum,
    /// NAK packets received.
    naks_received: sum,
    /// NAKs a receiver wanted to send but suppressed (rate limit or
    /// overheard multicast NAK).
    naks_suppressed: sum,
    /// Retransmissions suppressed by the sender-side scheme.
    retx_suppressed: sum,
    /// Bytes copied from the user buffer into protocol buffers (the cost
    /// Figure 9 isolates).
    user_copy_bytes: sum,
    /// Application payload bytes carried in data packets sent.
    payload_bytes_sent: sum,
    /// Messages fully sent (sender) or delivered (receiver).
    messages_completed: sum,
    /// High-water mark of bytes held in the protocol window / receive
    /// buffers (Table 1's "memory requirement").
    peak_buffer_bytes: max,
    /// Malformed datagrams ignored.
    decode_errors: sum,
    /// Retransmission timeouts that fired.
    timeouts: sum,
    /// Messages abandoned under the liveness bounds (sender giving up or a
    /// receiver declaring the sender dead).
    messages_failed: sum,
    /// Peers evicted from the proof obligation by straggler eviction.
    evictions: sum,
    /// Heartbeat packets sent (sender announces, receiver replies).
    heartbeats_sent: sum,
    /// Heartbeat packets received.
    heartbeats_received: sum,
    /// Members admitted into the group (sender) or SYNC handoffs processed
    /// (receiver).
    joins: sum,
    /// Members that crossed the failure detector's suspect threshold.
    suspects: sum,
    /// ACK/NAK packets discarded because they carried a stale membership
    /// epoch.
    stale_epoch_discarded: sum,
    /// Datagrams rejected by strict decode (truncation, unknown types or
    /// flags, trailing garbage, out-of-range fields). A subset of
    /// `decode_errors`, which remains the umbrella count.
    malformed_rx: sum,
    /// Datagrams rejected by the payload integrity check (CRC-32C trailer
    /// mismatch, or a missing trailer under an integrity-enforcing
    /// configuration). Also counted under `decode_errors`.
    integrity_fail: sum,
    /// AIMD window cap reductions (multiplicative decrease on a congestion
    /// signal).
    window_shrinks: sum,
    /// AIMD window cap increases (additive recovery on acknowledged
    /// progress).
    window_grows: sum,
    /// ACK packets shed unprocessed by feedback-storm pacing (their
    /// acknowledgment horizon was still noted for quarantined peers).
    acks_shed: sum,
    /// NAK packets shed unprocessed by feedback-storm pacing.
    naks_shed: sum,
    /// Duplicate NAKs collapsed by the aggregated-duplicate filter before
    /// reaching retransmission bookkeeping.
    naks_collapsed: sum,
    /// Receivers moved into slow-receiver quarantine (taken off the
    /// window's critical path).
    quarantine_entered: sum,
    /// Quarantined receivers that caught up and rejoined at a message
    /// boundary.
    quarantine_rejoined: sum,
    /// Quarantined receivers that exhausted their catch-up budget and were
    /// resolved through the liveness path (evicted or message failed).
    quarantine_evicted: sum,
    /// Backpressure edges signalled to the application (congested and
    /// cleared transitions both count).
    backpressure_signals: sum,
    /// Catch-up retransmissions unicast to quarantined receivers.
    catchup_retx_sent: sum,
    /// Coded REPAIR packets multicast by the fec sender (each heals a
    /// whole batch of disjoint per-receiver losses at once).
    repairs_sent: sum,
    /// Proactive PARITY packets multicast by the fec sender (unsolicited
    /// XOR over the last `parity_every` data packets).
    parity_sent: sum,
    /// NAKed packets that were folded into a coded repair block instead of
    /// being retransmitted individually (fec's saving over plain NAK).
    naks_coded: sum,
    /// REPAIR/PARITY packets received (before any decode decision).
    repairs_received: sum,
    /// Coded blocks that successfully reconstructed a missing packet.
    repairs_decoded: sum,
    /// Coded blocks naming no packet this receiver was missing.
    repairs_useless: sum,
    /// Coded blocks naming two or more missing packets (or otherwise
    /// undecodable: oversized payload, unknown geometry, seqs beyond the
    /// transfer).
    repairs_undecodable: sum,
    /// Coded blocks dropped by the replay gate (generation not strictly
    /// increasing for the transfer).
    repairs_replayed: sum,
}

impl Stats {
    /// Record a buffer occupancy sample, keeping the peak.
    pub fn sample_buffer(&mut self, bytes: usize) {
        self.peak_buffer_bytes = self.peak_buffer_bytes.max(bytes as u64);
    }

    /// Control packets sent (ACKs + NAKs).
    pub fn control_sent(&self) -> u64 {
        self.acks_sent + self.naks_sent
    }

    /// Control packets received.
    pub fn control_received(&self) -> u64 {
        self.acks_received + self.naks_received
    }

    /// Control packets received at this endpoint per data packet it sent —
    /// the sender-side column of the paper's Table 2.
    pub fn control_per_data_packet(&self) -> f64 {
        if self.data_sent == 0 {
            0.0
        } else {
            self.control_received() as f64 / self.data_sent as f64
        }
    }

    /// Counter snapshot as owned `(name, value)` pairs (flight recorder).
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.fields()
            .into_iter()
            .map(|(n, v)| (n.to_string(), v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A `Stats` with every counter set to `v` (merge-guard helper). The
    /// literal below must name every field — the struct has no `..` rest
    /// here, so adding a counter to `define_stats!` fails this helper at
    /// compile time until it is added, and the `all == 1` assert catches
    /// a field accidentally initialized to something else.
    fn all_set(v: u64) -> Stats {
        let mut s = Stats::default();
        let ones = Stats {
            data_sent: 1,
            retx_sent: 1,
            data_received: 1,
            data_discarded: 1,
            acks_sent: 1,
            acks_received: 1,
            naks_sent: 1,
            naks_received: 1,
            naks_suppressed: 1,
            retx_suppressed: 1,
            user_copy_bytes: 1,
            payload_bytes_sent: 1,
            messages_completed: 1,
            peak_buffer_bytes: 1,
            decode_errors: 1,
            timeouts: 1,
            messages_failed: 1,
            evictions: 1,
            heartbeats_sent: 1,
            heartbeats_received: 1,
            joins: 1,
            suspects: 1,
            stale_epoch_discarded: 1,
            malformed_rx: 1,
            integrity_fail: 1,
            window_shrinks: 1,
            window_grows: 1,
            acks_shed: 1,
            naks_shed: 1,
            naks_collapsed: 1,
            quarantine_entered: 1,
            quarantine_rejoined: 1,
            quarantine_evicted: 1,
            backpressure_signals: 1,
            catchup_retx_sent: 1,
            repairs_sent: 1,
            parity_sent: 1,
            naks_coded: 1,
            repairs_received: 1,
            repairs_decoded: 1,
            repairs_useless: 1,
            repairs_undecodable: 1,
            repairs_replayed: 1,
        };
        assert!(
            ones.fields().iter().all(|&(_, x)| x == 1),
            "all_set() helper missed a field; update it"
        );
        for _ in 0..v {
            s.merge(&ones);
        }
        // Max-kind fields saturate at 1 under repeated merge; fix them up.
        for (name, kind) in Stats::field_kinds() {
            if kind == "max" {
                match name {
                    "peak_buffer_bytes" => s.peak_buffer_bytes = v,
                    other => panic!("new max field {other} needs a setter here"),
                }
            }
        }
        s
    }

    #[test]
    fn peak_tracking() {
        let mut s = Stats::default();
        s.sample_buffer(100);
        s.sample_buffer(50);
        assert_eq!(s.peak_buffer_bytes, 100);
        s.sample_buffer(200);
        assert_eq!(s.peak_buffer_bytes, 200);
    }

    #[test]
    fn ratios() {
        let mut s = Stats::default();
        assert_eq!(s.control_per_data_packet(), 0.0);
        s.data_sent = 10;
        s.acks_received = 25;
        s.naks_received = 5;
        assert_eq!(s.control_sent(), 0);
        assert_eq!(s.control_received(), 30);
        assert_eq!(s.control_per_data_packet(), 3.0);
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = Stats {
            data_sent: 1,
            peak_buffer_bytes: 10,
            ..Stats::default()
        };
        let b = Stats {
            data_sent: 2,
            peak_buffer_bytes: 5,
            ..Stats::default()
        };
        a.merge(&b);
        assert_eq!(a.data_sent, 3);
        assert_eq!(a.peak_buffer_bytes, 10);
    }

    /// The field-count guard: every declared counter shows up in the JSON
    /// serialization and participates in `merge` with its declared kind.
    /// Adding a field to `define_stats!` automatically extends all three;
    /// adding one anywhere else is impossible (the macro owns the struct).
    #[test]
    fn every_field_serializes_and_merges() {
        let mut a = all_set(1);
        let b = all_set(2);

        // JSON carries exactly FIELD_COUNT fields, each by name.
        let json = b.to_json();
        assert_eq!(
            json.matches("\":").count(),
            Stats::FIELD_COUNT,
            "to_json field count mismatch: {json}"
        );
        for (name, _) in b.fields() {
            assert!(
                json.contains(&format!("\"{name}\":2")),
                "{name} missing from {json}"
            );
        }
        assert_eq!(b.fields().len(), Stats::FIELD_COUNT);
        assert_eq!(Stats::field_kinds().len(), Stats::FIELD_COUNT);

        // Merge combines every field: sum fields become 1+2, max fields
        // become max(1, 2). A field merge forgot would still read 1.
        a.merge(&b);
        for ((name, v), (_, kind)) in a.fields().into_iter().zip(Stats::field_kinds()) {
            match kind {
                "sum" => assert_eq!(v, 3, "field {name} dropped from merge (sum)"),
                "max" => assert_eq!(v, 2, "field {name} dropped from merge (max)"),
                other => panic!("unknown merge kind {other} on {name}"),
            }
        }
    }
}
