//! Typed session failures.
//!
//! The paper's protocols assume every group member stays up; a crashed
//! receiver leaves the sender retransmitting forever. When the liveness
//! knobs ([`crate::config::LivenessConfig`]) bound that retry loop, the
//! engine reports *why* it stopped through one of these errors instead of
//! spinning — the bounded-time guarantee the chaos experiments assert.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a message session was abandoned instead of completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionError {
    /// The sender hit `max_retx` consecutive timeouts on one transfer
    /// without the window advancing, and straggler eviction was off (or
    /// could not identify a culprit).
    RetryLimitExceeded {
        /// Transfer that stalled.
        transfer: u32,
        /// Consecutive timeouts when the sender gave up.
        timeouts: u32,
    },
    /// Straggler eviction removed every receiver: nobody is left to
    /// deliver to.
    AllReceiversEvicted {
        /// Transfer that stalled.
        transfer: u32,
    },
    /// A receiver stopped hearing the sender for `receiver_giveup` and
    /// abandoned its incomplete transfers.
    SenderStalled {
        /// Oldest transfer the receiver was still waiting on.
        transfer: u32,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::RetryLimitExceeded { transfer, timeouts } => write!(
                f,
                "transfer {transfer} abandoned after {timeouts} consecutive timeouts"
            ),
            SessionError::AllReceiversEvicted { transfer } => {
                write!(f, "transfer {transfer} abandoned: every receiver evicted")
            }
            SessionError::SenderStalled { transfer } => {
                write!(f, "transfer {transfer} abandoned: sender went silent")
            }
        }
    }
}

impl std::error::Error for SessionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_transfer() {
        let e = SessionError::RetryLimitExceeded {
            transfer: 3,
            timeouts: 8,
        };
        assert!(e.to_string().contains("transfer 3"));
        assert!(e.to_string().contains("8 consecutive timeouts"));
        let e = SessionError::AllReceiversEvicted { transfer: 5 };
        assert!(e.to_string().contains("every receiver evicted"));
        let e = SessionError::SenderStalled { transfer: 7 };
        assert!(e.to_string().contains("sender went silent"));
    }
}
