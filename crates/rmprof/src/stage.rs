//! The fixed taxonomy of profiled hot-path stages.
//!
//! A closed enum instead of interned strings keeps the per-sample path a
//! plain array index — no hashing, no registration race — and gives the
//! exposition formats a stable, documented ordering. Adding a stage is a
//! one-line change here plus a `span!` at the site; the snapshot,
//! exposition and report layers pick it up by name automatically.

/// One profiled hot-path stage. The wire name (`Stage::name`) is what
/// appears in exposition output, `BENCH_*.json` profile blocks, and the
/// `rmreport` hotspot table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Building outgoing datagrams (header + body encode, buffer fill).
    WireEncode,
    /// Parsing incoming datagrams into typed packets.
    WireDecode,
    /// CRC-32C integrity trailer: compute on seal, verify on parse.
    WireCrc,
    /// Sender window bookkeeping: ACK/NAK processing, slot release,
    /// retransmit scheduling.
    SenderWindow,
    /// Receiver-side data handling: duplicate filtering, chunk copy-in,
    /// in-order assembly and delivery.
    RecvAssembly,
    /// FEC sender coding: NAK aggregation, greedy XOR batching, parity
    /// runs.
    FecEncode,
    /// FEC receiver decode: coded-block geometry checks and XOR recovery.
    FecDecode,
    /// The netsim discrete-event core: one dequeued event dispatched.
    NetsimDispatch,
    /// udprun kernel socket transmit (`send_to`).
    UdpTx,
    /// udprun kernel socket receive (`recv_from`), successful reads only.
    UdpRx,
}

impl Stage {
    /// Number of stages (the registry's fixed table width).
    pub const COUNT: usize = 10;

    /// Every stage, in registry/exposition order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::WireEncode,
        Stage::WireDecode,
        Stage::WireCrc,
        Stage::SenderWindow,
        Stage::RecvAssembly,
        Stage::FecEncode,
        Stage::FecDecode,
        Stage::NetsimDispatch,
        Stage::UdpTx,
        Stage::UdpRx,
    ];

    /// The registry table index of this stage.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Stage::WireEncode => 0,
            Stage::WireDecode => 1,
            Stage::WireCrc => 2,
            Stage::SenderWindow => 3,
            Stage::RecvAssembly => 4,
            Stage::FecEncode => 5,
            Stage::FecDecode => 6,
            Stage::NetsimDispatch => 7,
            Stage::UdpTx => 8,
            Stage::UdpRx => 9,
        }
    }

    /// The stable wire name (`"wire.encode"`, `"udprun.rx"`, ...).
    pub fn name(self) -> &'static str {
        match self {
            Stage::WireEncode => "wire.encode",
            Stage::WireDecode => "wire.decode",
            Stage::WireCrc => "wire.crc",
            Stage::SenderWindow => "sender.window",
            Stage::RecvAssembly => "recv.assembly",
            Stage::FecEncode => "fec.encode",
            Stage::FecDecode => "fec.decode",
            Stage::NetsimDispatch => "netsim.dispatch",
            Stage::UdpTx => "udprun.tx",
            Stage::UdpRx => "udprun.rx",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_match_all_order() {
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        let total = names.len();
        assert_eq!(total, Stage::COUNT);
        names.dedup();
        assert_eq!(names.len(), total, "stage names must be unique");
    }
}
