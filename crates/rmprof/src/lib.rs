//! Hot-path profiling and live metrics for the reliable-multicast stack.
//!
//! The source paper is an *empirical* study; this crate is the
//! instrument. It answers "where did the time go?" for every backend with
//! two cooperating pieces:
//!
//! * **A metrics registry** ([`registry`]): monotonic [`Counter`]s,
//!   [`Gauge`]s and log₂ histograms (bucket layout shared with
//!   [`rmtrace::Histogram`]) behind a process-wide handle. Updates are
//!   lock-free — plain relaxed atomics — and a mutex is taken only at
//!   name registration (cold). [`snapshot`] freezes everything into a
//!   plain-data [`Snapshot`] that merges, renders to a Prometheus-style
//!   text page or JSON ([`expo`]), and feeds `rmreport`'s hotspot table.
//! * **A span profiler** ([`span!`], [`Span`]): scoped monotonic-clock
//!   timers over the fixed [`Stage`] taxonomy of hot protocol stages
//!   (wire encode/decode, CRC, sender window ops, receiver assembly, FEC
//!   XOR batching/decode, netsim event dispatch, udprun socket tx/rx).
//!   Samples accumulate in plain thread-local tables and flush to the
//!   shared atomic registry every [`FLUSH_EVERY`] records and on thread
//!   exit, so the hot path never touches contended cache lines per
//!   sample.
//!
//! # Cost model
//!
//! Profiling is **off by default**. Disabled, a span site is one relaxed
//! atomic load and a branch — the overhead-budget regression test in
//! `rm-bench` holds the whole instrumented loopback workload to ≤ 2%.
//! Enabled, each span costs two `Instant::now` reads plus a thread-local
//! histogram record (tens of nanoseconds; bounded and measured by the
//! same test). Building with the `noop` feature deletes span sites
//! entirely — `Span::enter` is an empty inlineable function — for
//! environments where even the atomic load is unwanted.
//!
//! # Determinism
//!
//! The engines this crate instruments are seed-deterministic and the
//! workspace lint (`rmlint`'s `wall-clock` rule) bans raw clock reads in
//! them. Spans do read the monotonic clock — *inside this crate* — but
//! the measurements flow one way, into the registry; nothing feeds back
//! into protocol decisions, timer schedules, or trace output, so golden
//! traces and the model checker are unaffected. The companion
//! `raw-instant` lint rule keeps ad-hoc `Instant::now()` timing out of
//! the backends so every timer goes through this registry.
//!
//! ```
//! use rmprof::{span, Stage};
//!
//! rmprof::set_enabled(true);
//! {
//!     let _span = span!(Stage::WireEncode);
//!     // ... encode a packet ...
//! } // span records its elapsed nanoseconds on drop
//! rmprof::counter("example.packets").inc();
//! rmprof::flush();
//! let snap = rmprof::snapshot();
//! assert_eq!(snap.counter("example.packets"), Some(1));
//! // (Under the `noop` feature the span is compiled away and records
//! // nothing; counters remain live either way.)
//! assert!(cfg!(feature = "noop") || snap.stage("wire.encode").is_some_and(|h| h.count() >= 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod expo;
pub mod registry;
mod span;
mod stage;

pub use registry::{counter, flush, gauge, reset, snapshot, Counter, Gauge, Snapshot};
pub use span::Span;
pub use stage::Stage;

use std::sync::atomic::{AtomicBool, Ordering};

/// Records flushed from a thread's local tables to the shared registry in
/// one batch. Small enough that a poller watching the live endpoint sees
/// mid-transfer progress; large enough to amortize the atomic traffic.
pub const FLUSH_EVERY: u32 = 64;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn span timing on or off process-wide. Counters and gauges are
/// always live (one relaxed atomic op); only the clock-reading span
/// machinery is gated.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Is span timing currently enabled?
#[inline]
pub fn enabled() -> bool {
    !cfg!(feature = "noop") && ENABLED.load(Ordering::Relaxed)
}

/// Open a profiling span for a [`Stage`]; the returned guard records the
/// elapsed nanoseconds into the registry when dropped.
///
/// ```
/// # use rmprof::{span, Stage};
/// let _span = span!(Stage::NetsimDispatch);
/// ```
#[macro_export]
macro_rules! span {
    ($stage:expr) => {
        $crate::Span::enter($stage)
    };
}
