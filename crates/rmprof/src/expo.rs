//! Exposition: rendering a [`Snapshot`] for machines and humans.
//!
//! Two text formats, both deterministic (stages in [`Stage::ALL`] order,
//! counters/gauges sorted by name — covered by a golden-snapshot test):
//!
//! * [`prometheus`] — the classic pull-scrape text page: each stage as a
//!   `summary` (p50/p99 quantiles plus `_sum`/`_count`), counters and
//!   gauges as flat samples with names sanitized to metric-name rules.
//! * [`json`] — the same data as one JSON object (`rmprof-v1`), the
//!   format the udprun stats endpoint serves at `/stats.json` and
//!   `rmreport --profile` reads back.
//!
//! A matching reader lives here too: [`Json`] is a minimal recursive
//! JSON parser (objects, arrays, strings, numbers, booleans, null —
//! enough for every artifact this workspace emits, since the vendored
//! serde is an inert shim), and [`parse_snapshot`] lifts a `rmprof-v1`
//! document into typed [`ProfileDoc`] rows.

use crate::registry::Snapshot;
use std::fmt::Write as _;

/// Render the Prometheus-style text page. Quantiles are the histogram's
/// bucket-resolved p50/p99 in nanoseconds.
pub fn prometheus(s: &Snapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# HELP rmprof_stage_ns hot-path stage latency (nanoseconds, log2-bucket quantiles)"
    );
    let _ = writeln!(out, "# TYPE rmprof_stage_ns summary");
    for (name, h) in &s.stages {
        let _ = writeln!(
            out,
            "rmprof_stage_ns{{stage=\"{name}\",quantile=\"0.5\"}} {}",
            h.p50()
        );
        let _ = writeln!(
            out,
            "rmprof_stage_ns{{stage=\"{name}\",quantile=\"0.99\"}} {}",
            h.p99()
        );
        let _ = writeln!(out, "rmprof_stage_ns_sum{{stage=\"{name}\"}} {}", h.sum());
        let _ = writeln!(
            out,
            "rmprof_stage_ns_count{{stage=\"{name}\"}} {}",
            h.count()
        );
    }
    for (name, v) in &s.counters {
        let m = metric_name(name);
        let _ = writeln!(out, "# TYPE {m} counter");
        let _ = writeln!(out, "{m} {v}");
    }
    for (name, v) in &s.gauges {
        let m = metric_name(name);
        let _ = writeln!(out, "# TYPE {m} gauge");
        let _ = writeln!(out, "{m} {v}");
    }
    out
}

/// `udprun.datagrams_tx` → `udprun_datagrams_tx`: Prometheus metric names
/// allow `[a-zA-Z0-9_:]`; everything else becomes `_`.
fn metric_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Render the `rmprof-v1` JSON document.
pub fn json(s: &Snapshot) -> String {
    let mut out = String::from("{\n  \"schema\": \"rmprof-v1\",\n  \"stages\": [");
    for (i, (name, h)) in s.stages.iter().enumerate() {
        let _ = write!(
            out,
            "{}\n    {{\"stage\": \"{name}\", \"count\": {}, \"sum_ns\": {}, \"min_ns\": {}, \
             \"max_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}}}",
            if i == 0 { "" } else { "," },
            h.count(),
            h.sum(),
            h.min(),
            h.max(),
            h.p50(),
            h.p99()
        );
    }
    out.push_str("\n  ],\n  \"counters\": [");
    for (i, (name, v)) in s.counters.iter().enumerate() {
        let _ = write!(
            out,
            "{}\n    {{\"name\": \"{name}\", \"value\": {v}}}",
            if i == 0 { "" } else { "," }
        );
    }
    out.push_str("\n  ],\n  \"gauges\": [");
    for (i, (name, v)) in s.gauges.iter().enumerate() {
        let _ = write!(
            out,
            "{}\n    {{\"name\": \"{name}\", \"value\": {v}}}",
            if i == 0 { "" } else { "," }
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

// ---------------------------------------------------------------------
// Reading side
// ---------------------------------------------------------------------

/// One parsed stage row of a `rmprof-v1` document (bucket detail is not
/// serialized, so the reader gets summary figures, not a mergeable
/// histogram).
#[derive(Debug, Clone, PartialEq)]
pub struct StageRow {
    /// Stage wire name (`"wire.decode"` ...).
    pub stage: String,
    /// Sample count.
    pub count: u64,
    /// Total nanoseconds across samples.
    pub sum_ns: u64,
    /// Exact minimum sample.
    pub min_ns: u64,
    /// Exact maximum sample.
    pub max_ns: u64,
    /// Bucket-resolved median.
    pub p50_ns: u64,
    /// Bucket-resolved 99th percentile.
    pub p99_ns: u64,
}

/// A parsed `rmprof-v1` document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileDoc {
    /// Per-stage summary rows, document order.
    pub stages: Vec<StageRow>,
    /// Counters by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges by name.
    pub gauges: Vec<(String, i64)>,
}

impl ProfileDoc {
    /// The row for a stage wire name, if present.
    pub fn stage(&self, name: &str) -> Option<&StageRow> {
        self.stages.iter().find(|r| r.stage == name)
    }

    /// A counter's value by name.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// A gauge's value by name.
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }
}

/// Parse a `rmprof-v1` JSON document (as produced by [`json`] or served
/// by the udprun stats endpoint).
pub fn parse_snapshot(text: &str) -> Result<ProfileDoc, String> {
    let v = Json::parse(text)?;
    if v.get("schema").and_then(Json::as_str) != Some("rmprof-v1") {
        return Err("not a rmprof-v1 document (missing/wrong \"schema\")".to_string());
    }
    let mut doc = ProfileDoc::default();
    for row in v.get("stages").and_then(Json::as_arr).unwrap_or(&[]) {
        let field = |k: &str| -> Result<u64, String> {
            row.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("stage row missing numeric {k:?}"))
        };
        doc.stages.push(StageRow {
            stage: row
                .get("stage")
                .and_then(Json::as_str)
                .ok_or("stage row missing \"stage\"")?
                .to_string(),
            count: field("count")?,
            sum_ns: field("sum_ns")?,
            min_ns: field("min_ns")?,
            max_ns: field("max_ns")?,
            p50_ns: field("p50_ns")?,
            p99_ns: field("p99_ns")?,
        });
    }
    for row in v.get("counters").and_then(Json::as_arr).unwrap_or(&[]) {
        let name = row
            .get("name")
            .and_then(Json::as_str)
            .ok_or("counter row missing \"name\"")?;
        let value = row
            .get("value")
            .and_then(Json::as_u64)
            .ok_or("counter row missing numeric \"value\"")?;
        doc.counters.push((name.to_string(), value));
    }
    for row in v.get("gauges").and_then(Json::as_arr).unwrap_or(&[]) {
        let name = row
            .get("name")
            .and_then(Json::as_str)
            .ok_or("gauge row missing \"name\"")?;
        let value = row
            .get("value")
            .and_then(Json::as_i64)
            .ok_or("gauge row missing numeric \"value\"")?;
        doc.gauges.push((name.to_string(), value));
    }
    Ok(doc)
}

/// A parsed JSON value — the minimal recursive reader shared by the
/// profile tooling and the bench-artifact schema validator. Numbers are
/// kept as `f64` (every artifact this workspace writes stays inside the
/// 2⁵³ exact-integer range).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// Object: ordered key/value pairs (insertion order preserved).
    Obj(Vec<(String, Json)>),
    /// Array.
    Arr(Vec<Json>),
    /// String.
    Str(String),
    /// Number.
    Num(f64),
    /// Boolean.
    Bool(bool),
    /// Null.
    Null,
}

impl Json {
    /// Parse one complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing garbage at byte {}", p.i));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Number view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Non-negative integer view (rejects fractions and negatives).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Integer view (rejects fractions).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    s.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        other => return Err(format!("unsupported escape \\{}", other as char)),
                    });
                    self.i += 1;
                }
                Some(_) => {
                    let start = self.i;
                    while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                        self.i += 1;
                    }
                    s.push_str(
                        std::str::from_utf8(&self.b[start..self.i])
                            .map_err(|_| "invalid utf8 in string")?,
                    );
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-')
        {
            self.i += 1;
        }
        let txt = std::str::from_utf8(&self.b[start..self.i]).map_err(|_| "invalid number")?;
        txt.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {txt:?}: {e}"))
    }

    fn keyword(&mut self, kw: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(kw.as_bytes()) {
            self.i += kw.len();
            Ok(v)
        } else {
            Err(format!("expected {kw} at byte {}", self.i))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::Stage;
    use rmtrace::Histogram;

    fn sample_snapshot() -> Snapshot {
        let mut snap = Snapshot::default();
        for s in Stage::ALL {
            let mut h = Histogram::new();
            if s == Stage::WireDecode {
                h.record(100);
                h.record(200);
            }
            snap.stages.push((s.name().to_string(), h));
        }
        snap.counters.push(("udprun.datagrams_rx".into(), 41));
        snap.gauges.push(("udprun.nodes".into(), 3));
        snap
    }

    #[test]
    fn json_round_trips_through_parse_snapshot() {
        let snap = sample_snapshot();
        let doc = parse_snapshot(&json(&snap)).expect("parse own emission");
        assert_eq!(doc.stages.len(), Stage::COUNT);
        let wd = doc
            .stages
            .iter()
            .find(|r| r.stage == "wire.decode")
            .unwrap();
        assert_eq!(wd.count, 2);
        assert_eq!(wd.sum_ns, 300);
        assert_eq!(wd.min_ns, 100);
        assert_eq!(wd.max_ns, 200);
        assert_eq!(doc.counters, vec![("udprun.datagrams_rx".to_string(), 41)]);
        assert_eq!(doc.gauges, vec![("udprun.nodes".to_string(), 3)]);
    }

    #[test]
    fn prometheus_names_and_series_are_well_formed() {
        let text = prometheus(&sample_snapshot());
        assert!(text.contains("# TYPE rmprof_stage_ns summary"));
        assert!(text.contains("rmprof_stage_ns{stage=\"wire.decode\",quantile=\"0.5\"}"));
        assert!(text.contains("rmprof_stage_ns_count{stage=\"wire.decode\"} 2"));
        assert!(text.contains("# TYPE udprun_datagrams_rx counter"));
        assert!(text.contains("udprun_datagrams_rx 41"));
        assert!(text.contains("# TYPE udprun_nodes gauge"));
        // Dots never leak into metric names.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split([' ', '{']).next().unwrap();
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name in {line:?}"
            );
        }
    }

    #[test]
    fn parser_handles_the_bench_artifact_shape() {
        let v = Json::parse(
            "{\"pr\": 8, \"x\": -0.4, \"arr\": [1, 2.5, true, null], \"s\": \"a\\\"b\"}",
        )
        .unwrap();
        assert_eq!(v.get("pr").and_then(Json::as_u64), Some(8));
        assert_eq!(v.get("x").and_then(Json::as_f64), Some(-0.4));
        assert_eq!(
            v.get("arr").and_then(Json::as_arr).map(<[Json]>::len),
            Some(4)
        );
        assert_eq!(v.get("s").and_then(Json::as_str), Some("a\"b"));
        assert!(Json::parse("{\"a\": 1} trailing").is_err());
        assert!(Json::parse("").is_err());
    }
}
