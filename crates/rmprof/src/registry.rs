//! The process-wide metrics registry.
//!
//! Three tiers, ordered by temperature:
//!
//! 1. **Thread-local accumulation** — span samples land in plain (non-
//!    atomic) per-thread tables; no sharing, no contention, a handful of
//!    arithmetic ops per sample.
//! 2. **The shared atomic registry** — local tables flush into per-stage
//!    atomic histograms every [`crate::FLUSH_EVERY`] samples and on
//!    thread exit. All updates are relaxed atomics: lock-free, merge-by-
//!    addition, safe to read concurrently (a reader may see a torn
//!    *set* of buckets — each bucket is individually consistent — which
//!    is the usual live-metrics contract).
//! 3. **Snapshots** — [`snapshot`] freezes the registry into plain data
//!    ([`Snapshot`]) for exposition, reports and tests.
//!
//! [`Counter`]s and [`Gauge`]s are registered by name (a mutex guards the
//! name table — registration is cold) and updated lock-free through a
//! shared `Arc`'d atomic. They are always live, independent of the span
//! gate: one relaxed `fetch_add` is cheap enough to leave on.

use crate::stage::Stage;
use rmtrace::hist::{bucket_of, BUCKETS};
use rmtrace::Histogram;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

// ---------------------------------------------------------------------
// Shared atomic tier
// ---------------------------------------------------------------------

/// Lock-free histogram mirror: one atomic per bucket plus exact
/// sum/min/max, in the exact bucket layout of [`rmtrace::Histogram`].
struct AtomicHist {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl AtomicHist {
    fn new() -> Self {
        AtomicHist {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Fold a thread-local table in (called at flush, not per sample).
    fn absorb(&self, local: &LocalHist) {
        for (a, &n) in self.buckets.iter().zip(local.counts.iter()) {
            if n != 0 {
                a.fetch_add(u64::from(n), Ordering::Relaxed);
            }
        }
        self.sum.fetch_add(local.sum, Ordering::Relaxed);
        self.min.fetch_min(local.min, Ordering::Relaxed);
        self.max.fetch_max(local.max, Ordering::Relaxed);
    }

    fn snapshot(&self) -> Histogram {
        let counts: [u64; BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        Histogram::from_parts(
            counts,
            u128::from(self.sum.load(Ordering::Relaxed)),
            self.min.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        )
    }

    fn reset(&self) {
        for a in &self.buckets {
            a.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

struct Registry {
    stages: [AtomicHist; Stage::COUNT],
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
}

fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(|| Registry {
        stages: std::array::from_fn(|_| AtomicHist::new()),
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
    })
}

// ---------------------------------------------------------------------
// Thread-local tier
// ---------------------------------------------------------------------

/// Per-thread, non-atomic histogram accumulator. `u32` bucket counts are
/// ample: tables flush every [`crate::FLUSH_EVERY`] samples.
#[derive(Clone, Copy)]
struct LocalHist {
    counts: [u32; BUCKETS],
    sum: u64,
    min: u64,
    max: u64,
}

impl LocalHist {
    const EMPTY: LocalHist = LocalHist {
        counts: [0; BUCKETS],
        sum: 0,
        min: u64::MAX,
        max: 0,
    };

    #[inline]
    fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn is_empty(&self) -> bool {
        self.min == u64::MAX && self.max == 0
    }
}

struct Local {
    stages: [LocalHist; Stage::COUNT],
    pending: u32,
}

impl Local {
    fn flush_into_global(&mut self) {
        if self.pending == 0 {
            return;
        }
        let reg = global();
        for (i, local) in self.stages.iter_mut().enumerate() {
            if !local.is_empty() {
                reg.stages[i].absorb(local);
                *local = LocalHist::EMPTY;
            }
        }
        self.pending = 0;
    }
}

/// Thread exit flushes whatever the last batch left behind, so short-
/// lived worker threads (udprun nodes) never strand samples.
impl Drop for Local {
    fn drop(&mut self) {
        self.flush_into_global();
    }
}

thread_local! {
    static LOCAL: RefCell<Local> = const {
        RefCell::new(Local {
            stages: [LocalHist::EMPTY; Stage::COUNT],
            pending: 0,
        })
    };
}

/// Record one span sample (called from [`crate::Span::drop`]).
#[inline]
pub(crate) fn record_ns(stage: Stage, ns: u64) {
    // A recursive borrow is impossible (nothing below re-enters), and a
    // post-teardown access during thread exit silently drops the sample.
    let _ = LOCAL.try_with(|cell| {
        let mut local = cell.borrow_mut();
        local.stages[stage.index()].record(ns);
        local.pending += 1;
        if local.pending >= crate::FLUSH_EVERY {
            local.flush_into_global();
        }
    });
}

/// Flush the calling thread's pending span samples into the shared
/// registry. Long-lived threads flush automatically every
/// [`crate::FLUSH_EVERY`] samples and on exit; call this before taking a
/// snapshot on the same thread, or before a checkpoint read elsewhere.
pub fn flush() {
    let _ = LOCAL.try_with(|cell| cell.borrow_mut().flush_into_global());
}

// ---------------------------------------------------------------------
// Counters and gauges
// ---------------------------------------------------------------------

/// A monotonic counter handle. Cloning shares the underlying atomic;
/// updates are relaxed `fetch_add`s — always live, never gated.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time gauge handle (signed; may go down).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Get-or-register the counter `name`. Keep a handle around on hot
/// paths — registration takes the name-table mutex, updates do not.
pub fn counter(name: &str) -> Counter {
    let mut map = global().counters.lock().expect("counter registry poisoned");
    Counter(Arc::clone(
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0))),
    ))
}

/// Get-or-register the gauge `name`; same locking contract as
/// [`counter`].
pub fn gauge(name: &str) -> Gauge {
    let mut map = global().gauges.lock().expect("gauge registry poisoned");
    Gauge(Arc::clone(
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicI64::new(0))),
    ))
}

// ---------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------

/// A frozen, plain-data view of the registry: every stage histogram (in
/// [`Stage::ALL`] order, empty ones included so exposition emits a stable
/// series set), plus all registered counters and gauges sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(stage name, histogram of nanosecond samples)`.
    pub stages: Vec<(String, Histogram)>,
    /// `(name, value)` monotonic counters.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges.
    pub gauges: Vec<(String, i64)>,
}

impl Snapshot {
    /// Histogram for a stage by wire name.
    pub fn stage(&self, name: &str) -> Option<&Histogram> {
        self.stages.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Total nanoseconds across all stage histograms — the numerator of a
    /// whole-profile share-of-wall.
    pub fn total_stage_ns(&self) -> u128 {
        self.stages.iter().map(|(_, h)| h.sum()).sum()
    }

    /// Fold `other` in: histograms merge bucketwise, counters and gauges
    /// add (missing names are inserted). Merging snapshots from separate
    /// processes or runs yields the same result as one combined run.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, h) in &other.stages {
            match self.stages.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => mine.merge(h),
                None => self.stages.push((name.clone(), h.clone())),
            }
        }
        for (name, v) in &other.counters {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine += v,
                None => self.counters.push((name.clone(), *v)),
            }
            self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        }
        for (name, v) in &other.gauges {
            match self.gauges.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine += v,
                None => self.gauges.push((name.clone(), *v)),
            }
            self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        }
    }
}

/// Freeze the registry into a [`Snapshot`]. Flushes the calling thread's
/// pending samples first; other threads' unflushed tails (at most
/// [`crate::FLUSH_EVERY`] − 1 samples each) appear at their next flush.
pub fn snapshot() -> Snapshot {
    flush();
    let reg = global();
    let stages = Stage::ALL
        .iter()
        .map(|s| (s.name().to_string(), reg.stages[s.index()].snapshot()))
        .collect();
    let counters = reg
        .counters
        .lock()
        .expect("counter registry poisoned")
        .iter()
        .map(|(n, a)| (n.clone(), a.load(Ordering::Relaxed)))
        .collect();
    let gauges = reg
        .gauges
        .lock()
        .expect("gauge registry poisoned")
        .iter()
        .map(|(n, a)| (n.clone(), a.load(Ordering::Relaxed)))
        .collect();
    Snapshot {
        stages,
        counters,
        gauges,
    }
}

/// Zero every stage histogram and every registered counter/gauge value
/// (names stay registered), plus the calling thread's local tables.
/// Sections of a benchmark call this between measurements; worker
/// threads still running keep only their unflushed local tails.
pub fn reset() {
    let _ = LOCAL.try_with(|cell| {
        let mut local = cell.borrow_mut();
        local.stages = [LocalHist::EMPTY; Stage::COUNT];
        local.pending = 0;
    });
    let reg = global();
    for h in &reg.stages {
        h.reset();
    }
    for a in reg
        .counters
        .lock()
        .expect("counter registry poisoned")
        .values()
    {
        a.store(0, Ordering::Relaxed);
    }
    for a in reg.gauges.lock().expect("gauge registry poisoned").values() {
        a.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let c = counter("test.reg.counter");
        let g = gauge("test.reg.gauge");
        c.add(5);
        c.inc();
        g.set(-3);
        g.add(1);
        assert_eq!(c.get(), 6);
        assert_eq!(g.get(), -2);
        let snap = snapshot();
        assert_eq!(snap.counter("test.reg.counter"), Some(6));
        assert_eq!(snap.gauge("test.reg.gauge"), Some(-2));
        // Same name returns the same underlying cell.
        counter("test.reg.counter").add(4);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn merge_is_addition() {
        let mut a = Snapshot::default();
        let mut h1 = Histogram::new();
        h1.record(10);
        a.stages.push(("s".into(), h1.clone()));
        a.counters.push(("c".into(), 2));
        let mut b = Snapshot::default();
        let mut h2 = Histogram::new();
        h2.record(1000);
        b.stages.push(("s".into(), h2.clone()));
        b.counters.push(("c".into(), 3));
        b.gauges.push(("g".into(), -1));
        a.merge(&b);
        h1.merge(&h2);
        assert_eq!(a.stage("s"), Some(&h1));
        assert_eq!(a.counter("c"), Some(5));
        assert_eq!(a.gauge("g"), Some(-1));
        assert_eq!(a.total_stage_ns(), 1010);
    }
}
