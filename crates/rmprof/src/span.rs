//! The scoped hot-path timer behind the [`crate::span!`] macro.

use crate::stage::Stage;
use std::time::Instant;

/// A scoped profiling timer: created by [`crate::span!`], records the
/// elapsed monotonic nanoseconds for its [`Stage`] when dropped.
///
/// Disabled (the default), construction is one relaxed atomic load and
/// the drop is a no-op branch. Under the `noop` feature the guard is
/// always inert and the optimizer deletes the site entirely.
#[must_use = "a span measures nothing unless it lives across the timed section"]
pub struct Span(Option<(Stage, Instant)>);

impl Span {
    /// Open a span for `stage` (no-op unless [`crate::enabled`]).
    #[inline]
    pub fn enter(stage: Stage) -> Span {
        if crate::enabled() {
            Span(Some((stage, Instant::now())))
        } else {
            Span(None)
        }
    }

    /// Discard the measurement: the span records nothing on drop. Used
    /// where failure renders the sample meaningless — e.g. a socket read
    /// that returned `WouldBlock` measured its timeout, not its work.
    #[inline]
    pub fn cancel(mut self) {
        self.0 = None;
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if let Some((stage, t0)) = self.0.take() {
            crate::registry::record_ns(stage, t0.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing_and_cancel_works() {
        crate::set_enabled(false);
        {
            let _s = Span::enter(Stage::WireCrc);
        }
        crate::set_enabled(true);
        Span::enter(Stage::WireCrc).cancel();
        crate::set_enabled(false);
        crate::flush();
        // Cancelled and disabled spans both leave the histogram alone; we
        // can only assert "no sample from this test" weakly because other
        // tests share the process-wide registry, so use a stage no other
        // test records into with enabled=true.
    }

    // Under the `noop` feature spans are inert by design, so there is
    // nothing to assert here.
    #[cfg(not(feature = "noop"))]
    #[test]
    fn enabled_span_lands_in_the_stage_histogram() {
        crate::set_enabled(true);
        {
            let _s = Span::enter(Stage::FecDecode);
            std::hint::black_box(0u64);
        }
        crate::set_enabled(false);
        crate::flush();
        let snap = crate::snapshot();
        let h = snap.stage("fec.decode").expect("stage exists");
        assert!(h.count() >= 1, "span sample must reach the registry");
    }
}
