//! Golden-snapshot test for the exposition text formats.
//!
//! The Prometheus page and the `rmprof-v1` JSON document are consumed
//! outside this crate (scrapers polling the udprun stats endpoint,
//! `rmreport --profile`, the CI bench-schema check), so their exact byte
//! layout is a contract. The snapshot is built by hand — not from the
//! process-global registry — so the test is immune to other tests'
//! recordings.

use rmprof::{expo, Snapshot};
use rmtrace::Histogram;

fn golden_snapshot() -> Snapshot {
    let mut h = Histogram::new();
    for v in [100u64, 200, 300] {
        h.record(v);
    }
    let mut snap = Snapshot::default();
    snap.stages.push(("wire.encode".to_string(), h));
    snap.stages
        .push(("fec.decode".to_string(), Histogram::new()));
    snap.counters.push(("udprun.datagrams_tx".to_string(), 17));
    snap.gauges.push(("cluster.inflight".to_string(), -2));
    snap
}

#[test]
fn prometheus_exposition_matches_golden() {
    let expected = "\
# HELP rmprof_stage_ns hot-path stage latency (nanoseconds, log2-bucket quantiles)
# TYPE rmprof_stage_ns summary
rmprof_stage_ns{stage=\"wire.encode\",quantile=\"0.5\"} 255
rmprof_stage_ns{stage=\"wire.encode\",quantile=\"0.99\"} 300
rmprof_stage_ns_sum{stage=\"wire.encode\"} 600
rmprof_stage_ns_count{stage=\"wire.encode\"} 3
rmprof_stage_ns{stage=\"fec.decode\",quantile=\"0.5\"} 0
rmprof_stage_ns{stage=\"fec.decode\",quantile=\"0.99\"} 0
rmprof_stage_ns_sum{stage=\"fec.decode\"} 0
rmprof_stage_ns_count{stage=\"fec.decode\"} 0
# TYPE udprun_datagrams_tx counter
udprun_datagrams_tx 17
# TYPE cluster_inflight gauge
cluster_inflight -2
";
    assert_eq!(expo::prometheus(&golden_snapshot()), expected);
}

#[test]
fn json_exposition_matches_golden() {
    let expected = r#"{
  "schema": "rmprof-v1",
  "stages": [
    {"stage": "wire.encode", "count": 3, "sum_ns": 600, "min_ns": 100, "max_ns": 300, "p50_ns": 255, "p99_ns": 300},
    {"stage": "fec.decode", "count": 0, "sum_ns": 0, "min_ns": 0, "max_ns": 0, "p50_ns": 0, "p99_ns": 0}
  ],
  "counters": [
    {"name": "udprun.datagrams_tx", "value": 17}
  ],
  "gauges": [
    {"name": "cluster.inflight", "value": -2}
  ]
}
"#;
    assert_eq!(expo::json(&golden_snapshot()), expected);
}

#[test]
fn golden_json_parses_back_losslessly_at_summary_level() {
    let doc = expo::parse_snapshot(&expo::json(&golden_snapshot())).unwrap();
    assert_eq!(doc.stages.len(), 2);
    assert_eq!(doc.stages[0].stage, "wire.encode");
    assert_eq!(doc.stages[0].p50_ns, 255);
    assert_eq!(doc.stages[0].p99_ns, 300);
    assert_eq!(doc.counters[0], ("udprun.datagrams_tx".to_string(), 17));
    assert_eq!(doc.gauges[0], ("cluster.inflight".to_string(), -2));
}
