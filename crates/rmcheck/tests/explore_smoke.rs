//! CI-scope model-checking smoke: exhaustively verify the smoke scope
//! (2 receivers, window 2, 1-packet message, handshake, one duplicate)
//! for every protocol family. Roughly the `rmcheck explore` CI step as a
//! test, so `cargo test` alone exercises the checker end to end.
//!
//! These run the full BFS — tens of seconds per family under
//! `debug_assertions`, where every engine step also runs the invariant
//! audit (which is the point). The deeper scopes (`ExploreConfig::soak`,
//! the window-stall scope) are `#[ignore]`d: run them with
//! `cargo test -p rmcheck --release -- --ignored`.

use rmcast::ProtocolKind;
use rmcheck::explore::{explore, ExploreConfig};

fn verify(family: ProtocolKind) {
    let report = explore(&ExploreConfig::smoke(family));
    assert!(
        report.verified(),
        "{}: truncated={} violations={:#?}",
        report.family,
        report.truncated,
        report.violations
    );
    assert!(
        report.states > 10,
        "{}: suspiciously small state space ({} states) — the scope \
         collapsed and the run proves nothing",
        report.family,
        report.states
    );
}

#[test]
fn smoke_ack() {
    verify(ProtocolKind::Ack);
}

#[test]
fn smoke_nak_polling() {
    verify(ProtocolKind::nak_polling(2));
}

#[test]
fn smoke_ring() {
    verify(ProtocolKind::Ring);
}

#[test]
fn smoke_tree_flat() {
    verify(ProtocolKind::Tree {
        shape: rmcast::TreeShape::Flat { height: 2 },
    });
}

#[test]
fn smoke_tree_binary() {
    verify(ProtocolKind::Tree {
        shape: rmcast::TreeShape::Binary,
    });
}

#[test]
fn smoke_fec() {
    // The fec scope: REPAIR/PARITY delivery, drop and duplication are
    // part of the enumerated datagram universe, the coding buffer and
    // the receivers' generation gates are part of the state digest, and
    // the exactly-once check covers a packet arriving both natively and
    // via decode.
    verify(ExploreConfig::MODEL_FEC);
}

#[test]
fn smoke_ack_aimd() {
    // The `--aimd` CI scope: the adaptive cap shrinks on every explored
    // timer fire and regrows on progress, and is itself part of the
    // state digest — the whole shrink/recover lattice is enumerated.
    let mut scope = ExploreConfig::smoke(ProtocolKind::Ack);
    scope.aimd = true;
    let report = explore(&scope);
    assert!(
        report.verified(),
        "{}: truncated={} violations={:#?}",
        report.family,
        report.truncated,
        report.violations
    );
}

#[test]
fn smoke_ring_aimd() {
    // Ring + AIMD: the floor is pinned at N+1 by the scope builder, so
    // the exploration also witnesses that adaptation never violates the
    // rotating release rule.
    let mut scope = ExploreConfig::smoke(ProtocolKind::Ring);
    scope.aimd = true;
    let report = explore(&scope);
    assert!(
        report.verified(),
        "{}: truncated={} violations={:#?}",
        report.family,
        report.truncated,
        report.violations
    );
}

#[test]
#[ignore = "minutes in release; run with --ignored"]
fn soak_ack_window_machinery() {
    let report = explore(&ExploreConfig::soak(ProtocolKind::Ack));
    assert!(
        report.verified(),
        "{}: truncated={} violations={:#?}",
        report.family,
        report.truncated,
        report.violations
    );
}

#[test]
#[ignore = "minutes in release; run with --ignored"]
fn soak_ack_window_stall() {
    // The `--window 1 --packets 2` CI scope: the stall/release cycle and
    // go-back-N are in the enumerated space (window 1 fills on the first
    // packet).
    let mut scope = ExploreConfig::smoke(ProtocolKind::Ack);
    scope.window = 1;
    scope.packets = 2;
    scope.dups = 0;
    scope.max_states = 4_000_000;
    let report = explore(&scope);
    assert!(
        report.verified(),
        "{}: truncated={} violations={:#?}",
        report.family,
        report.truncated,
        report.violations
    );
}

#[test]
fn violation_reports_carry_a_trail() {
    // A scope too small to exhaust must report truncation, not success:
    // an unexhausted search proves nothing and `verified()` must say so.
    let mut scope = ExploreConfig::smoke(ProtocolKind::Ack);
    scope.max_states = 3;
    let report = explore(&scope);
    assert!(report.truncated);
    assert!(!report.verified());
}
