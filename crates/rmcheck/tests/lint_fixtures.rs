//! Positive and negative fixtures for every `rmlint` rule: each rule
//! must fire on a minimal violating snippet and stay quiet on the
//! compliant rewrite (including `rmlint: allow(...)` suppression).

use rmcheck::lint::{
    lint_config_validate, lint_counter_drift, lint_doc_coverage, lint_packet_exhaustive,
    lint_source, strip_comments_and_strings,
};

fn rules(findings: &[rmcheck::lint::Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn wall_clock_fires_and_is_suppressible() {
    let bad = "fn t() -> std::time::Instant { std::time::Instant::now() }\n";
    let f = lint_source("x.rs", bad);
    assert!(rules(&f).contains(&"wall-clock"), "{f:?}");

    let allowed = "// rmlint: allow(wall-clock): fixture justification\n\
                   fn t() -> std::time::Instant { std::time::Instant::now() }\n";
    assert!(
        !rules(&lint_source("x.rs", allowed)).contains(&"wall-clock"),
        "allow comment on the previous line must suppress"
    );

    let clean = "fn t(now: rmwire::Time) -> rmwire::Time { now }\n";
    assert!(!rules(&lint_source("x.rs", clean)).contains(&"wall-clock"));
}

#[test]
fn wall_clock_catches_os_randomness() {
    for bad in [
        "let mut rng = thread_rng();\n",
        "let rng = SmallRng::from_entropy();\n",
        "let mut rng = OsRng;\n",
        "let t = SystemTime::now();\n",
    ] {
        assert!(
            rules(&lint_source("x.rs", bad)).contains(&"wall-clock"),
            "expected wall-clock on {bad:?}"
        );
    }
}

#[test]
fn wall_clock_ignores_comments_strings_and_test_modules() {
    let commented = "// Instant::now is forbidden here\nfn f() {}\n";
    assert!(rules(&lint_source("x.rs", commented)).is_empty());

    let in_string = "const MSG: &str = \"Instant::now\";\n";
    assert!(rules(&lint_source("x.rs", in_string)).is_empty());

    let in_tests = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let _ = \
                    std::time::Instant::now(); }\n}\n";
    assert!(rules(&lint_source("x.rs", in_tests)).is_empty());
}

#[test]
fn raw_instant_fires_and_is_suppressible() {
    let bad = "let t = std::time::Instant::now();\nwork();\nlet wall = t.elapsed();\n";
    let f = lint_source("x.rs", bad);
    assert!(rules(&f).contains(&"raw-instant"), "{f:?}");

    let allowed = "// rmlint: allow(raw-instant): cluster epoch, not a measurement\n\
                   let epoch = Instant::now();\n";
    assert!(
        !rules(&lint_source("x.rs", allowed)).contains(&"raw-instant"),
        "allow comment must suppress"
    );

    // The sanctioned pattern: a span, not a stopwatch.
    let clean = "let _span = rmprof::span!(rmprof::Stage::UdpTx);\nwork();\n";
    assert!(!rules(&lint_source("x.rs", clean)).contains(&"raw-instant"));

    // Comments, strings, and test modules stay quiet.
    let in_tests = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let _ = \
                    std::time::Instant::now(); }\n}\n";
    assert!(rules(&lint_source("x.rs", in_tests)).is_empty());
}

#[test]
fn panic_path_fires_and_is_suppressible() {
    for bad in [
        "let v = map.get(&k).unwrap();\n",
        "let v = map.get(&k).expect(\"present\");\n",
        "panic!(\"bad packet\");\n",
        "unreachable!();\n",
        "todo!()\n",
        "unimplemented!()\n",
    ] {
        assert!(
            rules(&lint_source("x.rs", bad)).contains(&"panic-path"),
            "expected panic-path on {bad:?}"
        );
    }

    let allowed =
        "let v = map.get(&k).unwrap(); // rmlint: allow(panic-path): key inserted above\n";
    assert!(!rules(&lint_source("x.rs", allowed)).contains(&"panic-path"));

    let clean = "let Some(v) = map.get(&k) else { return Err(WireError::Truncated) };\n";
    assert!(!rules(&lint_source("x.rs", clean)).contains(&"panic-path"));
}

#[test]
fn index_unguarded_fires_and_skips_non_index_brackets() {
    let bad = "let b = buf[0];\n";
    assert!(rules(&lint_source("x.rs", bad)).contains(&"index-unguarded"));

    let slicing = "let head = buf[..4].to_vec();\n";
    assert!(rules(&lint_source("x.rs", slicing)).contains(&"index-unguarded"));

    let chained = "let b = words()[i];\n";
    assert!(rules(&lint_source("x.rs", chained)).contains(&"index-unguarded"));

    // Attributes, array types/literals, and vec! are not index expressions.
    for clean in [
        "#[derive(Debug)]\nstruct S;\n",
        "let a: [u8; 4] = [0; 4];\n",
        "let v = vec![1, 2, 3];\n",
        "let b = buf.get(0);\n",
    ] {
        assert!(
            !rules(&lint_source("x.rs", clean)).contains(&"index-unguarded"),
            "false positive on {clean:?}"
        );
    }

    let allowed = "// rmlint: allow(index-unguarded): i < LEN by loop bound\nlet b = buf[i];\n";
    assert!(!rules(&lint_source("x.rs", allowed)).contains(&"index-unguarded"));
}

const FIXTURE_STATS: &str = "define_stats! {\n    data_sent: sum,\n    peak_buffer: max,\n}\n";
const FIXTURE_EVENTS: &str =
    "pub enum TraceEvent {\n    DataSent { seq: u32 },\n    Delivered { msg: u64 },\n}\n";

#[test]
fn doc_coverage_reports_each_missing_name() {
    let docs = "`data_sent` counts packets. `DataSent` marks a send.\n";
    let mut f = Vec::new();
    lint_doc_coverage(FIXTURE_STATS, FIXTURE_EVENTS, docs, &mut f);
    let msgs: Vec<&str> = f.iter().map(|x| x.message.as_str()).collect();
    assert_eq!(rules(&f), vec!["stats-doc", "trace-doc"], "{f:?}");
    assert!(msgs[0].contains("peak_buffer"), "{msgs:?}");
    assert!(msgs[1].contains("Delivered"), "{msgs:?}");
}

#[test]
fn doc_coverage_clean_when_all_names_present() {
    let docs = "| data_sent | ... | peak_buffer | ... DataSent ... Delivered\n";
    let mut f = Vec::new();
    lint_doc_coverage(FIXTURE_STATS, FIXTURE_EVENTS, docs, &mut f);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn config_validate_fires_on_unvalidated_field() {
    let src = "pub struct ProtocolConfig {\n\
               \x20   pub window: usize,\n\
               \x20   pub mystery_knob: u32,\n\
               }\n\
               impl ProtocolConfig {\n\
               \x20   pub fn validate(&self) -> Result<(), Error> {\n\
               \x20       if self.window == 0 { return Err(Error::Window); }\n\
               \x20       Ok(())\n\
               \x20   }\n\
               }\n";
    let mut f = Vec::new();
    lint_config_validate(src, &mut f);
    assert_eq!(rules(&f), vec!["config-validate"], "{f:?}");
    assert!(f[0].message.contains("mystery_knob"), "{f:?}");
}

#[test]
fn config_validate_accepts_allow_comment() {
    let src = "pub struct ProtocolConfig {\n\
               \x20   pub window: usize,\n\
               \x20   // rmlint: allow(config-validate): free-form label, any value is legal\n\
               \x20   pub mystery_knob: u32,\n\
               }\n\
               impl ProtocolConfig {\n\
               \x20   pub fn validate(&self) -> Result<(), Error> {\n\
               \x20       if self.window == 0 { return Err(Error::Window); }\n\
               \x20       Ok(())\n\
               \x20   }\n\
               }\n";
    let mut f = Vec::new();
    lint_config_validate(src, &mut f);
    assert!(f.is_empty(), "{f:?}");
}

/// The v1 linter skipped from the first `#[cfg(test)]` to end-of-file,
/// so any non-test code *after* a test module was invisible to every
/// rule. The lexer's brace-aware test marking closes that hole.
#[test]
fn code_after_a_test_module_is_still_linted() {
    let src = "fn f() {}\n\
               #[cfg(test)]\n\
               mod tests {\n\
               \x20   #[test]\n\
               \x20   fn t() { let _ = std::time::Instant::now(); }\n\
               }\n\
               pub fn g() -> std::time::Instant { std::time::Instant::now() }\n";
    let f = lint_source("x.rs", src);
    assert!(rules(&f).contains(&"wall-clock"), "{f:?}");
    assert!(
        f.iter().all(|x| x.line == 7),
        "must flag the post-test-module line, not the test body: {f:?}"
    );
}

#[test]
fn hot_alloc_fires_only_inside_span_instrumented_fns() {
    let bad = "fn encode(buf: &[u8]) -> Vec<u8> {\n\
               \x20   let _span = rmprof::span!(rmprof::Stage::WireEncode);\n\
               \x20   buf.to_vec()\n\
               }\n";
    let f = lint_source("x.rs", bad);
    assert!(rules(&f).contains(&"hot-alloc"), "{f:?}");
    assert!(
        f.iter().any(|x| x.rule == "hot-alloc" && x.line == 3),
        "{f:?}"
    );

    // Same allocation, no span: the function is not on a measured hot
    // path, so the rule stays quiet.
    let unspanned = "fn encode(buf: &[u8]) -> Vec<u8> { buf.to_vec() }\n";
    assert!(!rules(&lint_source("x.rs", unspanned)).contains(&"hot-alloc"));

    // Allocations in a sibling fn of a span-instrumented one are fine.
    let sibling = "fn hot() { let _span = rmprof::span!(rmprof::Stage::UdpTx); }\n\
                   fn cold() -> Vec<u8> { vec![0; 16] }\n";
    assert!(!rules(&lint_source("x.rs", sibling)).contains(&"hot-alloc"));

    let allowed = "fn encode(buf: &[u8]) -> Vec<u8> {\n\
                   \x20   let _span = rmprof::span!(rmprof::Stage::WireEncode);\n\
                   \x20   // rmlint: allow(hot-alloc): single staging copy per transfer\n\
                   \x20   buf.to_vec()\n\
                   }\n";
    assert!(!rules(&lint_source("x.rs", allowed)).contains(&"hot-alloc"));
}

#[test]
fn hot_alloc_catches_the_common_allocators() {
    for alloc in [
        "Vec::new()",
        "vec![0; 16]",
        "Box::new(x)",
        "format!(\"{x}\")",
        "xs.iter().collect::<Vec<_>>()",
        "HashMap::new()",
    ] {
        let src = format!(
            "fn hot(x: u8, xs: &[u8]) {{\n\
             \x20   let _span = rmprof::span!(rmprof::Stage::UdpTx);\n\
             \x20   let _ = {alloc};\n\
             }}\n"
        );
        assert!(
            rules(&lint_source("x.rs", &src)).contains(&"hot-alloc"),
            "expected hot-alloc on {alloc:?}"
        );
    }
}

/// Wildcard arms in packet matches report under the `packet-exhaustive`
/// rule — same contract as the cross-crate variant-coverage half.
#[test]
fn wildcard_arm_fires_in_packet_matches_only() {
    let bad = "fn dispatch(p: Packet) {\n\
               \x20   match p {\n\
               \x20       Packet::Data(d) => on_data(d),\n\
               \x20       _ => {}\n\
               \x20   }\n\
               }\n";
    let f = lint_source("x.rs", bad);
    assert!(
        f.iter().any(|x| x.rule == "packet-exhaustive"
            && x.line == 4
            && x.message.contains("wildcard arm")),
        "{f:?}"
    );

    // Exhaustive packet match: quiet.
    let exhaustive = "fn dispatch(p: Packet) {\n\
                      \x20   match p {\n\
                      \x20       Packet::Data(d) => on_data(d),\n\
                      \x20       Packet::Ack(a) => on_ack(a),\n\
                      \x20   }\n\
                      }\n";
    assert!(!rules(&lint_source("x.rs", exhaustive)).contains(&"packet-exhaustive"));

    // Wildcards over non-packet enums are legitimate.
    let other = "fn f(s: State) {\n\
                 \x20   match s {\n\
                 \x20       State::Idle => go(),\n\
                 \x20       _ => {}\n\
                 \x20   }\n\
                 }\n";
    assert!(!rules(&lint_source("x.rs", other)).contains(&"packet-exhaustive"));

    // Binding patterns like `other => ...` are not wildcards; they at
    // least force the author to name what they are swallowing.
    let bound = "fn dispatch(p: Packet) {\n\
                 \x20   match p {\n\
                 \x20       Packet::Data(d) => on_data(d),\n\
                 \x20       other => log(other),\n\
                 \x20   }\n\
                 }\n";
    assert!(!rules(&lint_source("x.rs", bound)).contains(&"packet-exhaustive"));

    let allowed = "fn dispatch(p: Packet) {\n\
                   \x20   match p {\n\
                   \x20       Packet::Data(d) => on_data(d),\n\
                   \x20       // rmlint: allow(packet-exhaustive): decoder rejects the rest\n\
                   \x20       _ => {}\n\
                   \x20   }\n\
                   }\n";
    assert!(!rules(&lint_source("x.rs", allowed)).contains(&"packet-exhaustive"));
}

const PX_HEADER: &str = "pub enum PacketType {\n    Data,\n    Nak,\n}\n";
const PX_PACKET: &str = "pub enum Packet {\n    Data,\n    Nak,\n}\n\
                         fn parse(t: PacketType) -> Packet {\n\
                         \x20   match t {\n\
                         \x20       PacketType::Data => Packet::Data,\n\
                         \x20       PacketType::Nak => Packet::Nak,\n\
                         \x20   }\n\
                         }\n";
const PX_DISPATCH: &str = "fn dispatch(p: Packet) {\n\
                           \x20   match p {\n\
                           \x20       Packet::Data => {}\n\
                           \x20       Packet::Nak => {}\n\
                           \x20   }\n\
                           }\n";
const PX_FUZZ: &str = "fn corpus() { encode_data(); encode_nak(); }\n";

#[test]
fn packet_exhaustive_clean_when_every_variant_is_covered() {
    let mut f = Vec::new();
    lint_packet_exhaustive(
        PX_HEADER,
        PX_PACKET,
        PX_DISPATCH,
        PX_DISPATCH,
        PX_FUZZ,
        &mut f,
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn packet_exhaustive_reports_each_uncovered_variant() {
    // Grow the wire enum without teaching the dispatches or the fuzzer:
    // every gap is reported individually.
    let header = "pub enum PacketType {\n    Data,\n    Nak,\n    Heartbeat,\n}\n";
    let mut f = Vec::new();
    lint_packet_exhaustive(header, PX_PACKET, PX_DISPATCH, PX_DISPATCH, PX_FUZZ, &mut f);
    let msgs: Vec<&str> = f.iter().map(|x| x.message.as_str()).collect();
    assert_eq!(
        rules(&f),
        vec!["packet-exhaustive", "packet-exhaustive"],
        "{f:?}"
    );
    assert!(
        msgs[0].contains("PacketType::Heartbeat") && msgs[0].contains("dispatch"),
        "{msgs:?}"
    );
    assert!(msgs[1].contains("fuzzer"), "{msgs:?}");

    // A Packet variant one engine forgot: named with the file at fault.
    let packet = "pub enum Packet {\n    Data,\n    Nak,\n    Repair,\n}\n\
                  fn parse(t: PacketType) -> Packet {\n\
                  \x20   match t {\n\
                  \x20       PacketType::Data => Packet::Data,\n\
                  \x20       PacketType::Nak => Packet::Nak,\n\
                  \x20   }\n\
                  }\n";
    let receiver = "fn dispatch(p: Packet) {\n\
                    \x20   match p {\n\
                    \x20       Packet::Data => {}\n\
                    \x20       Packet::Nak => {}\n\
                    \x20       Packet::Repair => {}\n\
                    \x20   }\n\
                    }\n";
    let mut f = Vec::new();
    lint_packet_exhaustive(PX_HEADER, packet, receiver, PX_DISPATCH, PX_FUZZ, &mut f);
    assert_eq!(rules(&f), vec!["packet-exhaustive"], "{f:?}");
    assert_eq!(f[0].file, "crates/core/src/sender.rs");
    assert!(f[0].message.contains("Packet::Repair"), "{f:?}");
}

#[test]
fn packet_exhaustive_missing_enum_is_a_config_error() {
    let mut f = Vec::new();
    lint_packet_exhaustive("", PX_PACKET, PX_DISPATCH, PX_DISPATCH, PX_FUZZ, &mut f);
    assert!(rules(&f).contains(&"lint-config"), "{f:?}");
}

const CD_STATS: &str = "define_stats! {\n    data_sent: sum,\n    naks_sent: sum,\n}\n";
const CD_EVENTS: &str = "pub enum TraceEvent {\n    DataSent { seq: u32 },\n}\n";

fn cd_sources(src: &str, test: &str) -> Vec<(String, String)> {
    vec![
        ("crates/core/src/sender.rs".to_string(), src.to_string()),
        ("crates/simrun/tests/t.rs".to_string(), test.to_string()),
    ]
}

#[test]
fn counter_drift_clean_when_updated_and_asserted() {
    let src = "fn f(s: &mut Stats) {\n\
               \x20   s.data_sent += 1;\n\
               \x20   s.naks_sent += 1;\n\
               \x20   emit(TraceEvent::DataSent { seq: 0 });\n\
               }\n";
    let test = "#[test]\nfn t() {\n\
                \x20   assert!(s.data_sent > 0 && s.naks_sent > 0);\n\
                \x20   assert!(matches!(e, TraceEvent::DataSent { .. }));\n\
                }\n";
    let mut f = Vec::new();
    lint_counter_drift(CD_STATS, CD_EVENTS, &cd_sources(src, test), &mut f);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn counter_drift_reports_unincremented_and_unasserted_names() {
    // `naks_sent` is declared but never bumped; the test never looks at
    // it; `DataSent` is emitted but no test pins it.
    let src = "fn f(s: &mut Stats) {\n\
               \x20   s.data_sent += 1;\n\
               \x20   emit(TraceEvent::DataSent { seq: 0 });\n\
               }\n";
    let test = "#[test]\nfn t() { assert!(s.data_sent > 0); }\n";
    let mut f = Vec::new();
    lint_counter_drift(CD_STATS, CD_EVENTS, &cd_sources(src, test), &mut f);
    let msgs: Vec<&str> = f.iter().map(|x| x.message.as_str()).collect();
    assert_eq!(rules(&f), vec!["counter-drift"; 3], "{f:?}");
    assert!(
        msgs.iter()
            .any(|m| m.contains("`naks_sent` is never updated")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("`naks_sent` is never asserted")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("`DataSent` is never asserted")),
        "{msgs:?}"
    );
}

#[test]
fn counter_drift_accepts_string_assertions_and_allow_comments() {
    // Tests that match on the event's *name string* (e.g. golden-trace
    // comparisons) count as assertions.
    let src = "fn f(s: &mut Stats) {\n\
               \x20   s.data_sent += 1;\n\
               \x20   s.naks_sent += 1;\n\
               \x20   emit(TraceEvent::DataSent { seq: 0 });\n\
               }\n";
    let test = "#[test]\nfn t() {\n\
                \x20   assert!(golden.contains(\"DataSent seq=0\"));\n\
                \x20   assert!(s.data_sent > 0 && s.naks_sent > 0);\n\
                }\n";
    let mut f = Vec::new();
    lint_counter_drift(CD_STATS, CD_EVENTS, &cd_sources(src, test), &mut f);
    assert!(f.is_empty(), "{f:?}");

    // An allow comment on the declaration waives both checks for it.
    let stats = "define_stats! {\n\
                 \x20   data_sent: sum,\n\
                 \x20   // rmlint: allow(counter-drift): reserved for the next wire rev\n\
                 \x20   naks_sent: sum,\n\
                 }\n";
    let test = "#[test]\nfn t() {\n\
                \x20   assert!(s.data_sent > 0);\n\
                \x20   assert!(matches!(e, TraceEvent::DataSent { .. }));\n\
                }\n";
    let mut f = Vec::new();
    lint_counter_drift(stats, CD_EVENTS, &cd_sources(src, test), &mut f);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn stripper_preserves_line_structure() {
    let src = "let a = 1; /* multi\nline */ let b = \"x\\\"y\";\nlet c = r#\"raw \" str\"#;\n";
    let out = strip_comments_and_strings(src);
    assert_eq!(src.lines().count(), out.lines().count());
    assert!(!out.contains("multi"));
    assert!(!out.contains("raw"));
    assert!(out.contains("let a = 1;"));
    assert!(out.contains("let b ="));
}

#[test]
fn stripper_distinguishes_lifetimes_from_chars() {
    let src = "fn f<'a>(x: &'a [u8]) -> char { 'z' }\n";
    let out = strip_comments_and_strings(src);
    assert!(out.contains("'a"), "lifetimes must survive: {out:?}");
    assert!(!out.contains('z'), "char literal must be blanked: {out:?}");
}
