//! Positive and negative fixtures for every `rmlint` rule: each rule
//! must fire on a minimal violating snippet and stay quiet on the
//! compliant rewrite (including `rmlint: allow(...)` suppression).

use rmcheck::lint::{
    lint_config_validate, lint_doc_coverage, lint_source, strip_comments_and_strings,
};

fn rules(findings: &[rmcheck::lint::Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn wall_clock_fires_and_is_suppressible() {
    let bad = "fn t() -> std::time::Instant { std::time::Instant::now() }\n";
    let f = lint_source("x.rs", bad);
    assert!(rules(&f).contains(&"wall-clock"), "{f:?}");

    let allowed = "// rmlint: allow(wall-clock): fixture justification\n\
                   fn t() -> std::time::Instant { std::time::Instant::now() }\n";
    assert!(
        !rules(&lint_source("x.rs", allowed)).contains(&"wall-clock"),
        "allow comment on the previous line must suppress"
    );

    let clean = "fn t(now: rmwire::Time) -> rmwire::Time { now }\n";
    assert!(!rules(&lint_source("x.rs", clean)).contains(&"wall-clock"));
}

#[test]
fn wall_clock_catches_os_randomness() {
    for bad in [
        "let mut rng = thread_rng();\n",
        "let rng = SmallRng::from_entropy();\n",
        "let mut rng = OsRng;\n",
        "let t = SystemTime::now();\n",
    ] {
        assert!(
            rules(&lint_source("x.rs", bad)).contains(&"wall-clock"),
            "expected wall-clock on {bad:?}"
        );
    }
}

#[test]
fn wall_clock_ignores_comments_strings_and_test_modules() {
    let commented = "// Instant::now is forbidden here\nfn f() {}\n";
    assert!(rules(&lint_source("x.rs", commented)).is_empty());

    let in_string = "const MSG: &str = \"Instant::now\";\n";
    assert!(rules(&lint_source("x.rs", in_string)).is_empty());

    let in_tests = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let _ = \
                    std::time::Instant::now(); }\n}\n";
    assert!(rules(&lint_source("x.rs", in_tests)).is_empty());
}

#[test]
fn raw_instant_fires_and_is_suppressible() {
    let bad = "let t = std::time::Instant::now();\nwork();\nlet wall = t.elapsed();\n";
    let f = lint_source("x.rs", bad);
    assert!(rules(&f).contains(&"raw-instant"), "{f:?}");

    let allowed = "// rmlint: allow(raw-instant): cluster epoch, not a measurement\n\
                   let epoch = Instant::now();\n";
    assert!(
        !rules(&lint_source("x.rs", allowed)).contains(&"raw-instant"),
        "allow comment must suppress"
    );

    // The sanctioned pattern: a span, not a stopwatch.
    let clean = "let _span = rmprof::span!(rmprof::Stage::UdpTx);\nwork();\n";
    assert!(!rules(&lint_source("x.rs", clean)).contains(&"raw-instant"));

    // Comments, strings, and test modules stay quiet.
    let in_tests = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let _ = \
                    std::time::Instant::now(); }\n}\n";
    assert!(rules(&lint_source("x.rs", in_tests)).is_empty());
}

#[test]
fn panic_path_fires_and_is_suppressible() {
    for bad in [
        "let v = map.get(&k).unwrap();\n",
        "let v = map.get(&k).expect(\"present\");\n",
        "panic!(\"bad packet\");\n",
        "unreachable!();\n",
        "todo!()\n",
        "unimplemented!()\n",
    ] {
        assert!(
            rules(&lint_source("x.rs", bad)).contains(&"panic-path"),
            "expected panic-path on {bad:?}"
        );
    }

    let allowed =
        "let v = map.get(&k).unwrap(); // rmlint: allow(panic-path): key inserted above\n";
    assert!(!rules(&lint_source("x.rs", allowed)).contains(&"panic-path"));

    let clean = "let Some(v) = map.get(&k) else { return Err(WireError::Truncated) };\n";
    assert!(!rules(&lint_source("x.rs", clean)).contains(&"panic-path"));
}

#[test]
fn index_unguarded_fires_and_skips_non_index_brackets() {
    let bad = "let b = buf[0];\n";
    assert!(rules(&lint_source("x.rs", bad)).contains(&"index-unguarded"));

    let slicing = "let head = buf[..4].to_vec();\n";
    assert!(rules(&lint_source("x.rs", slicing)).contains(&"index-unguarded"));

    let chained = "let b = words()[i];\n";
    assert!(rules(&lint_source("x.rs", chained)).contains(&"index-unguarded"));

    // Attributes, array types/literals, and vec! are not index expressions.
    for clean in [
        "#[derive(Debug)]\nstruct S;\n",
        "let a: [u8; 4] = [0; 4];\n",
        "let v = vec![1, 2, 3];\n",
        "let b = buf.get(0);\n",
    ] {
        assert!(
            !rules(&lint_source("x.rs", clean)).contains(&"index-unguarded"),
            "false positive on {clean:?}"
        );
    }

    let allowed = "// rmlint: allow(index-unguarded): i < LEN by loop bound\nlet b = buf[i];\n";
    assert!(!rules(&lint_source("x.rs", allowed)).contains(&"index-unguarded"));
}

const FIXTURE_STATS: &str = "define_stats! {\n    data_sent: sum,\n    peak_buffer: max,\n}\n";
const FIXTURE_EVENTS: &str =
    "pub enum TraceEvent {\n    DataSent { seq: u32 },\n    Delivered { msg: u64 },\n}\n";

#[test]
fn doc_coverage_reports_each_missing_name() {
    let docs = "`data_sent` counts packets. `DataSent` marks a send.\n";
    let mut f = Vec::new();
    lint_doc_coverage(FIXTURE_STATS, FIXTURE_EVENTS, docs, &mut f);
    let msgs: Vec<&str> = f.iter().map(|x| x.message.as_str()).collect();
    assert_eq!(rules(&f), vec!["stats-doc", "trace-doc"], "{f:?}");
    assert!(msgs[0].contains("peak_buffer"), "{msgs:?}");
    assert!(msgs[1].contains("Delivered"), "{msgs:?}");
}

#[test]
fn doc_coverage_clean_when_all_names_present() {
    let docs = "| data_sent | ... | peak_buffer | ... DataSent ... Delivered\n";
    let mut f = Vec::new();
    lint_doc_coverage(FIXTURE_STATS, FIXTURE_EVENTS, docs, &mut f);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn config_validate_fires_on_unvalidated_field() {
    let src = "pub struct ProtocolConfig {\n\
               \x20   pub window: usize,\n\
               \x20   pub mystery_knob: u32,\n\
               }\n\
               impl ProtocolConfig {\n\
               \x20   pub fn validate(&self) -> Result<(), Error> {\n\
               \x20       if self.window == 0 { return Err(Error::Window); }\n\
               \x20       Ok(())\n\
               \x20   }\n\
               }\n";
    let mut f = Vec::new();
    lint_config_validate(src, &mut f);
    assert_eq!(rules(&f), vec!["config-validate"], "{f:?}");
    assert!(f[0].message.contains("mystery_knob"), "{f:?}");
}

#[test]
fn config_validate_accepts_allow_comment() {
    let src = "pub struct ProtocolConfig {\n\
               \x20   pub window: usize,\n\
               \x20   // rmlint: allow(config-validate): free-form label, any value is legal\n\
               \x20   pub mystery_knob: u32,\n\
               }\n\
               impl ProtocolConfig {\n\
               \x20   pub fn validate(&self) -> Result<(), Error> {\n\
               \x20       if self.window == 0 { return Err(Error::Window); }\n\
               \x20       Ok(())\n\
               \x20   }\n\
               }\n";
    let mut f = Vec::new();
    lint_config_validate(src, &mut f);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn stripper_preserves_line_structure() {
    let src = "let a = 1; /* multi\nline */ let b = \"x\\\"y\";\nlet c = r#\"raw \" str\"#;\n";
    let out = strip_comments_and_strings(src);
    assert_eq!(src.lines().count(), out.lines().count());
    assert!(!out.contains("multi"));
    assert!(!out.contains("raw"));
    assert!(out.contains("let a = 1;"));
    assert!(out.contains("let b ="));
}

#[test]
fn stripper_distinguishes_lifetimes_from_chars() {
    let src = "fn f<'a>(x: &'a [u8]) -> char { 'z' }\n";
    let out = strip_comments_and_strings(src);
    assert!(out.contains("'a"), "lifetimes must survive: {out:?}");
    assert!(!out.contains('z'), "char literal must be blanked: {out:?}");
}
