//! A minimal on-disk fake workspace that `rmlint` runs *clean* against:
//! every scope directory and pinned file exists, every enum/counter the
//! cross-crate rules audit is consistently declared, updated, and
//! asserted. Tests start from this known-clean tree and inject one
//! violation at a time.

use std::path::{Path, PathBuf};

/// Write `content` to `root/rel`, creating parent directories.
pub fn write(root: &Path, rel: &str, content: &str) {
    let path = root.join(rel);
    std::fs::create_dir_all(path.parent().expect("has parent")).expect("mkdir");
    std::fs::write(path, content).expect("write fixture file");
}

/// Create a fresh fake workspace under the OS temp dir, keyed by `tag`
/// (tests in one binary run in threads — tags keep them isolated).
pub fn create(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("rmlint-fixture-{}-{tag}", std::process::id()));
    if root.exists() {
        std::fs::remove_dir_all(&root).expect("clear stale fixture");
    }
    std::fs::create_dir_all(&root).expect("create fixture root");

    write(&root, "Cargo.toml", "[workspace]\n");

    // Deterministic + decode-path crate: the wire format.
    write(
        &root,
        "crates/rmwire/src/header.rs",
        "pub enum PacketType {\n    Data,\n    Ack,\n}\n",
    );
    for f in ["payload.rs", "checksum.rs", "seq.rs"] {
        write(&root, &format!("crates/rmwire/src/{f}"), "pub fn ok() {}\n");
    }

    // Core: packet dispatch, engines, stats, config, and one
    // span-instrumented hot function.
    write(
        &root,
        "crates/core/src/packet.rs",
        "pub enum Packet {\n    Data,\n    Ack,\n}\n\
         pub fn parse(t: PacketType) -> Packet {\n\
         \x20   match t {\n\
         \x20       PacketType::Data => Packet::Data,\n\
         \x20       PacketType::Ack => Packet::Ack,\n\
         \x20   }\n\
         }\n",
    );
    write(
        &root,
        "crates/core/src/receiver.rs",
        "pub fn dispatch(p: Packet) {\n\
         \x20   match p {\n\
         \x20       Packet::Data => on_data(),\n\
         \x20       Packet::Ack => on_ack(),\n\
         \x20   }\n\
         \x20   emit(TraceEvent::DataSent);\n\
         }\n\
         #[cfg(test)]\n\
         mod tests {\n\
         \x20   #[test]\n\
         \x20   fn events_fire() { let _ = TraceEvent::DataSent; }\n\
         }\n",
    );
    write(
        &root,
        "crates/core/src/sender.rs",
        "pub fn dispatch(p: Packet) {\n\
         \x20   match p {\n\
         \x20       Packet::Data => {}\n\
         \x20       Packet::Ack => {}\n\
         \x20   }\n\
         }\n",
    );
    write(
        &root,
        "crates/core/src/hot.rs",
        "pub fn encode(buf: &mut Vec<u8>) {\n\
         \x20   let _span = rmprof::span!(rmprof::Stage::WireEncode);\n\
         \x20   buf.push(1);\n\
         }\n",
    );
    write(
        &root,
        "crates/core/src/stats.rs",
        "define_stats! {\n\
         \x20   data_sent: sum,\n\
         }\n\
         pub fn bump(s: &mut Stats) { s.data_sent += 1; }\n\
         #[cfg(test)]\n\
         mod tests {\n\
         \x20   #[test]\n\
         \x20   fn counts() { assert!(Stats::default().data_sent == 0); }\n\
         }\n",
    );
    write(
        &root,
        "crates/core/src/config.rs",
        "pub struct ProtocolConfig {\n\
         \x20   pub window: usize,\n\
         }\n\
         impl ProtocolConfig {\n\
         \x20   pub fn validate(&self) -> Result<(), Error> {\n\
         \x20       if self.window == 0 { return Err(Error::Window); }\n\
         \x20       Ok(())\n\
         \x20   }\n\
         }\n",
    );

    // Tracing crate (deterministic scope; emission is checked elsewhere).
    write(
        &root,
        "crates/rmtrace/src/event.rs",
        "pub enum TraceEvent {\n    DataSent,\n}\n",
    );

    // Remaining scope dirs.
    write(&root, "crates/netsim/src/lib.rs", "pub fn ok() {}\n");
    write(&root, "crates/udprun/src/lib.rs", "pub fn ok() {}\n");
    write(&root, "crates/udprun/src/hub.rs", "pub fn ok() {}\n");
    write(&root, "crates/simrun/src/lib.rs", "pub fn ok() {}\n");

    // Fuzzer exercises every packet type through the encode_* helpers.
    write(
        &root,
        "crates/rmfuzz/src/lib.rs",
        "pub fn corpus() {\n    encode_data();\n    encode_ack();\n}\n",
    );

    write(
        &root,
        "docs/OBSERVABILITY.md",
        "| data_sent | packets sent |\n| DataSent | a send |\n",
    );

    root
}
