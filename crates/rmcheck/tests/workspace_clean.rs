//! Regression gate: the real workspace must stay rmlint-clean. Any new
//! wall-clock call in a deterministic crate, panic path in a decoder,
//! undocumented counter, or unvalidated config field fails this test —
//! the same signal CI's dedicated `rmlint` step gives, but local.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/rmcheck; the workspace root is two up.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/rmcheck has a workspace root two levels up")
        .to_path_buf()
}

#[test]
fn workspace_is_lint_clean() {
    let findings = rmcheck::lint::run_workspace(&workspace_root());
    assert!(
        findings.is_empty(),
        "rmlint found {} issue(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn lint_scopes_match_the_tree() {
    // The scope lists are hardcoded paths; if a file moves, the lint must
    // move with it. `run_workspace` reports missing files as
    // `lint-config` findings, which the clean test above would catch —
    // this test just pins the message shape so a rename is diagnosable.
    let root = workspace_root();
    for dir in rmcheck::lint::scope::DETERMINISTIC_CRATE_DIRS {
        assert!(root.join(dir).is_dir(), "scope dir `{dir}` vanished");
    }
    for file in rmcheck::lint::scope::DECODE_PATH_FILES {
        assert!(root.join(file).is_file(), "scope file `{file}` vanished");
    }
}
