//! The `hot-alloc` baseline ratchet, end to end against an on-disk
//! workspace: a mutation that adds a hot-path allocation must fail the
//! run; counts at or below the committed baseline pass; a decrease is
//! accepted and `--update-baseline` locks it in.

mod fake_ws;

use std::path::Path;
use std::process::Command;

use rmcheck::lint::run_workspace;

/// The span-instrumented hot function with one injected `.to_vec()` copy
/// — the mutation a sloppy refactor would make.
const MUTATED_HOT: &str = "pub fn encode(buf: &mut Vec<u8>, src: &[u8]) {\n\
     \x20   let _span = rmprof::span!(rmprof::Stage::WireEncode);\n\
     \x20   let staged = src.to_vec();\n\
     \x20   buf.push(staged.len() as u8);\n\
     }\n";

fn rules(findings: &[rmcheck::lint::Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

fn update_baseline(root: &Path) {
    let out = Command::new(env!("CARGO_BIN_EXE_rmlint"))
        .arg("--root")
        .arg(root)
        .arg("--update-baseline")
        .output()
        .expect("spawn rmlint");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn injected_hot_path_allocation_fails_the_run() {
    let root = fake_ws::create("ratchet-inject");
    // The pristine tree is clean with no baseline at all...
    assert_eq!(
        run_workspace(&root),
        vec![],
        "fixture tree must start clean"
    );

    // ...until a hot-path allocation lands without a baseline bump.
    fake_ws::write(&root, "crates/core/src/hot.rs", MUTATED_HOT);
    let findings = run_workspace(&root);
    assert!(rules(&findings).contains(&"hot-alloc"), "{findings:?}");
    assert!(
        rules(&findings).contains(&"hot-alloc-ratchet"),
        "{findings:?}"
    );
    let hit = findings.iter().find(|f| f.rule == "hot-alloc").unwrap();
    assert_eq!(hit.file, "crates/core/src/hot.rs");
    assert_eq!(hit.line, 3);
    assert!(hit.message.contains(".to_vec("), "{}", hit.message);

    // The same allocation outside any span-instrumented function is not
    // a hot-alloc finding: the rule keys on rmprof coverage, not on the
    // token alone.
    fake_ws::write(
        &root,
        "crates/core/src/hot.rs",
        "pub fn encode(buf: &mut Vec<u8>, src: &[u8]) {\n\
         \x20   let staged = src.to_vec();\n\
         \x20   buf.push(staged.len() as u8);\n\
         }\n",
    );
    assert_eq!(run_workspace(&root), vec![]);
}

#[test]
fn allow_comment_suppresses_a_justified_hot_alloc() {
    let root = fake_ws::create("ratchet-allow");
    fake_ws::write(
        &root,
        "crates/core/src/hot.rs",
        "pub fn encode(buf: &mut Vec<u8>, src: &[u8]) {\n\
         \x20   let _span = rmprof::span!(rmprof::Stage::WireEncode);\n\
         \x20   // rmlint: allow(hot-alloc): one-time staging, amortized per transfer\n\
         \x20   let staged = src.to_vec();\n\
         \x20   buf.push(staged.len() as u8);\n\
         }\n",
    );
    assert_eq!(run_workspace(&root), vec![]);
}

#[test]
fn baseline_grandfathers_exactly_the_committed_count() {
    let root = fake_ws::create("ratchet-grandfather");
    fake_ws::write(&root, "crates/core/src/hot.rs", MUTATED_HOT);
    fake_ws::write(
        &root,
        "rmlint.baseline",
        "hot-alloc crates/core/src/hot.rs 1\n",
    );
    assert_eq!(run_workspace(&root), vec![], "count == baseline must pass");

    // One more allocation in the same function: the count (2) now
    // exceeds the baseline (1) and every finding in the file surfaces.
    fake_ws::write(
        &root,
        "crates/core/src/hot.rs",
        "pub fn encode(buf: &mut Vec<u8>, src: &[u8]) {\n\
         \x20   let _span = rmprof::span!(rmprof::Stage::WireEncode);\n\
         \x20   let staged = src.to_vec();\n\
         \x20   let spare = staged.clone();\n\
         \x20   buf.push(spare.len() as u8);\n\
         }\n",
    );
    let findings = run_workspace(&root);
    assert_eq!(
        rules(&findings),
        vec!["hot-alloc-ratchet", "hot-alloc", "hot-alloc"],
        "{findings:?}"
    );
}

#[test]
fn baseline_decrease_is_accepted_and_update_locks_it_in() {
    let root = fake_ws::create("ratchet-shrink");
    fake_ws::write(&root, "crates/core/src/hot.rs", MUTATED_HOT);
    // A stale, generous baseline (as if an allocation was just removed):
    // the run is already clean, no baseline edit required to land the
    // improvement.
    fake_ws::write(
        &root,
        "rmlint.baseline",
        "hot-alloc crates/core/src/hot.rs 5\n",
    );
    assert_eq!(run_workspace(&root), vec![]);

    // `--update-baseline` rewrites the file to the true current counts,
    // ratcheting the ceiling down.
    update_baseline(&root);
    let rewritten = std::fs::read_to_string(root.join("rmlint.baseline")).unwrap();
    let counts = rmcheck::baseline::parse(&rewritten).expect("rewritten baseline parses");
    assert_eq!(
        counts.get("crates/core/src/hot.rs"),
        Some(&1),
        "{rewritten}"
    );
    assert_eq!(
        run_workspace(&root),
        vec![],
        "still clean after the rewrite"
    );
}

#[test]
fn unparseable_baseline_is_a_config_error() {
    let root = fake_ws::create("ratchet-bad-baseline");
    fake_ws::write(&root, "rmlint.baseline", "hot-alloc nonsense\n");
    let findings = run_workspace(&root);
    assert!(rules(&findings).contains(&"lint-config"), "{findings:?}");

    // And the binary maps it to the config-error exit code.
    let out = Command::new(env!("CARGO_BIN_EXE_rmlint"))
        .arg("--root")
        .arg(&root)
        .output()
        .expect("spawn rmlint");
    assert_eq!(out.status.code(), Some(2));
}
