//! End-to-end tests for the `rmlint` binary: output modes (`--json`,
//! `--github`) and the stable exit-code contract (0 clean / 1 findings /
//! 2 config error) that CI scripts depend on.

mod fake_ws;

use std::path::Path;
use std::process::{Command, Output};

fn rmlint(root: &Path, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rmlint"))
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("spawn rmlint")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("exit code")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn clean_workspace_exits_zero() {
    let root = fake_ws::create("cli-clean");
    let out = rmlint(&root, &[]);
    assert_eq!(code(&out), 0, "stdout: {}", stdout(&out));
    assert!(stdout(&out).contains("rmlint: clean"));
}

#[test]
fn findings_exit_one_with_text_report() {
    let root = fake_ws::create("cli-findings");
    fake_ws::write(
        &root,
        "crates/netsim/src/lib.rs",
        "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    let out = rmlint(&root, &[]);
    assert_eq!(code(&out), 1);
    assert!(
        stdout(&out).contains("crates/netsim/src/lib.rs:1: [wall-clock]"),
        "stdout: {}",
        stdout(&out)
    );
}

#[test]
fn json_mode_emits_machine_readable_findings() {
    let root = fake_ws::create("cli-json");
    fake_ws::write(
        &root,
        "crates/netsim/src/lib.rs",
        "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    let out = rmlint(&root, &["--json"]);
    assert_eq!(code(&out), 1);
    let s = stdout(&out);
    let s = s.trim();
    assert!(
        s.starts_with('[') && s.ends_with(']'),
        "not a JSON array: {s}"
    );
    assert!(s.contains("\"rule\":\"wall-clock\""), "{s}");
    assert!(s.contains("\"file\":\"crates/netsim/src/lib.rs\""), "{s}");
    assert!(s.contains("\"line\":1"), "{s}");

    // A clean tree serializes to an empty array.
    let clean = fake_ws::create("cli-json-clean");
    let out = rmlint(&clean, &["--json"]);
    assert_eq!(code(&out), 0);
    assert_eq!(stdout(&out).trim(), "[]");
}

#[test]
fn github_mode_emits_error_annotations() {
    let root = fake_ws::create("cli-github");
    fake_ws::write(
        &root,
        "crates/netsim/src/lib.rs",
        "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    let out = rmlint(&root, &["--github"]);
    assert_eq!(code(&out), 1);
    let s = stdout(&out);
    assert!(
        s.lines().any(|l| l
            .starts_with("::error file=crates/netsim/src/lib.rs,line=1,title=rmlint wall-clock::")),
        "no annotation line in: {s}"
    );
}

#[test]
fn missing_scope_files_exit_two() {
    // A bare [workspace] with none of the linted tree is a configuration
    // error, not "clean": the lint must never silently scan nothing.
    let root = fake_ws::create("cli-bare");
    for dir in ["crates", "docs"] {
        std::fs::remove_dir_all(root.join(dir)).expect("strip fixture");
    }
    let out = rmlint(&root, &[]);
    assert_eq!(code(&out), 2, "stdout: {}", stdout(&out));
    assert!(stdout(&out).contains("[lint-config]"));
}

#[test]
fn bad_arguments_exit_two() {
    let root = fake_ws::create("cli-args");
    let out = rmlint(&root, &["--frobnicate"]);
    assert_eq!(code(&out), 2);
    let out = Command::new(env!("CARGO_BIN_EXE_rmlint"))
        .args(["--root"]) // missing operand
        .output()
        .expect("spawn rmlint");
    assert_eq!(code(&out), 2);
}

#[test]
fn help_exits_zero() {
    let out = Command::new(env!("CARGO_BIN_EXE_rmlint"))
        .arg("--help")
        .output()
        .expect("spawn rmlint");
    assert_eq!(code(&out), 0);
    assert!(stdout(&out).contains("--update-baseline"));
}
