//! A minimal Rust lexer for `rmlint`'s source rules.
//!
//! `rmlint` v1 scanned stripped source line by line with `contains()`,
//! which had two structural weaknesses: a rule token split across
//! constructs it could not see (`Instant :: now`), and a test-module skip
//! that ran from the first `#[cfg(test)]` to end of file — any non-test
//! code after a test module was silently unscanned. This module replaces
//! both with a real token stream:
//!
//! - every token carries its **line**, **byte span**, and **brace depth**,
//! - comments and literals are tokenized (never confused with code),
//! - `#[cfg(test)]` / `#[test]` items are marked **brace-aware**: the test
//!   flag covers exactly the attributed item, so code after a test module
//!   is scanned again.
//!
//! The lexer is deliberately not a parser: it understands just enough
//! structure (items, matched braces, attributes) for the rules in
//! [`crate::lint`]. It is zero-dependency and never panics on arbitrary
//! input — worst case it mis-tokenizes, and the rules degrade to
//! not-firing rather than crashing.

/// Token category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including `_`).
    Ident,
    /// Punctuation; common two-character operators (`::`, `=>`, `+=`,
    /// `==`, ...) are fused into one token.
    Punct,
    /// String, byte-string, or char literal. `text` holds the literal's
    /// contents (quotes stripped) so rules can still grep inside strings
    /// when they mean to (e.g. counter names asserted via JSON fixtures).
    Str,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`).
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Category.
    pub kind: TokKind,
    /// The token's text (contents only, for [`TokKind::Str`]).
    pub text: String,
    /// 1-based source line of the token's first byte.
    pub line: usize,
    /// Byte offset of the token's first byte.
    pub start: usize,
    /// Byte offset one past the token's last byte.
    pub end: usize,
    /// Brace depth: the number of unclosed `{` before this token. An
    /// opening `{` and its matching `}` carry the same depth; the tokens
    /// between them carry `depth + 1`.
    pub depth: u32,
    /// True when the token lies inside a `#[cfg(test)]` / `#[test]` item
    /// (brace-aware, not to-end-of-file).
    pub in_test: bool,
}

/// Two-character operators fused into one `Punct` token, longest match
/// first at each position.
const FUSED: &[&str] = &[
    "::", "=>", "->", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=", "^=", "|=", "&=", "<<",
    ">>", "&&", "||", "..",
];

/// Lex `src` into tokens with line/span/depth, then mark test regions.
pub fn lex(src: &str) -> Vec<Token> {
    let mut tokens = raw_lex(src);
    mark_tests(&mut tokens);
    tokens
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

#[allow(clippy::too_many_lines)]
fn raw_lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut depth = 0u32;
    // Count newlines in b[from..to) into `line`.
    let bump_lines = |line: &mut usize, from: usize, to: usize| {
        *line += b[from..to].iter().filter(|&&c| c == b'\n').count();
    };
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start = i;
                let mut d = 1u32;
                i += 2;
                while i < b.len() && d > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        d += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        d -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                bump_lines(&mut line, start, i);
            }
            b'"' => {
                let (tok, next) = lex_string(b, i, line, depth);
                bump_lines(&mut line, i, next);
                i = next;
                out.push(tok);
            }
            b'r' | b'b' if starts_raw_or_byte_string(b, i) => {
                let (tok, next) = lex_raw_or_byte(b, i, line, depth);
                bump_lines(&mut line, i, next);
                i = next;
                out.push(tok);
            }
            b'\'' => {
                // Char literal or lifetime.
                if b.get(i + 1) == Some(&b'\\') {
                    // Escaped char literal '\x41' / '\n'.
                    let start = i;
                    i += 2;
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                    i = (i + 1).min(b.len());
                    out.push(tok(TokKind::Str, String::new(), line, start, i, depth));
                } else if i + 2 < b.len() && b[i + 2] == b'\'' && b[i + 1] != b'\'' {
                    // Plain char literal 'z'.
                    let text = (b[i + 1] as char).to_string();
                    out.push(tok(TokKind::Str, text, line, i, i + 3, depth));
                    i += 3;
                } else if b.get(i + 1).copied().is_some_and(is_ident_start) {
                    // Lifetime 'a / 'static.
                    let start = i;
                    i += 1;
                    while i < b.len() && is_ident_cont(b[i]) {
                        i += 1;
                    }
                    let text = String::from_utf8_lossy(&b[start..i]).into_owned();
                    out.push(tok(TokKind::Lifetime, text, line, start, i, depth));
                } else {
                    out.push(tok(TokKind::Punct, "'".to_string(), line, i, i + 1, depth));
                    i += 1;
                }
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident_cont(b[i]) {
                    i += 1;
                }
                let text = String::from_utf8_lossy(&b[start..i]).into_owned();
                out.push(tok(TokKind::Ident, text, line, start, i, depth));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (is_ident_cont(b[i])) {
                    i += 1;
                }
                let text = String::from_utf8_lossy(&b[start..i]).into_owned();
                out.push(tok(TokKind::Num, text, line, start, i, depth));
            }
            b'{' => {
                out.push(tok(TokKind::Punct, "{".to_string(), line, i, i + 1, depth));
                depth += 1;
                i += 1;
            }
            b'}' => {
                depth = depth.saturating_sub(1);
                out.push(tok(TokKind::Punct, "}".to_string(), line, i, i + 1, depth));
                i += 1;
            }
            _ => {
                // Punctuation, fusing the common two-character operators.
                let two = if i + 1 < b.len() { &src[i..i + 2] } else { "" };
                if FUSED.contains(&two) {
                    out.push(tok(TokKind::Punct, two.to_string(), line, i, i + 2, depth));
                    i += 2;
                } else {
                    let text = (c as char).to_string();
                    out.push(tok(TokKind::Punct, text, line, i, i + 1, depth));
                    i += 1;
                }
            }
        }
    }
    out
}

fn tok(kind: TokKind, text: String, line: usize, start: usize, end: usize, depth: u32) -> Token {
    Token {
        kind,
        text,
        line,
        start,
        end,
        depth,
        in_test: false,
    }
}

/// Does `b[i..]` start a raw string (`r"`, `r#"`), byte string (`b"`),
/// byte char (`b'`), or raw byte string (`br"`, `br#"`)?
fn starts_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        match b.get(j) {
            Some(b'"') | Some(b'\'') => return true,
            Some(b'r') => j += 1,
            _ => return false,
        }
    } else if b[j] == b'r' {
        j += 1;
    } else {
        return false;
    }
    // After `r` / `br`: hashes then a quote mean raw string.
    while b.get(j) == Some(&b'#') {
        j += 1;
    }
    b.get(j) == Some(&b'"')
}

/// Lex a plain `"..."` string starting at `i`. Returns the token and the
/// index one past the closing quote.
fn lex_string(b: &[u8], i: usize, line: usize, depth: u32) -> (Token, usize) {
    let start = i;
    let mut j = i + 1;
    let mut text = Vec::new();
    while j < b.len() && b[j] != b'"' {
        if b[j] == b'\\' {
            j += 1; // skip the escaped character
            if j < b.len() {
                text.push(b[j]);
                j += 1;
            }
        } else {
            text.push(b[j]);
            j += 1;
        }
    }
    j = (j + 1).min(b.len());
    let text = String::from_utf8_lossy(&text).into_owned();
    (tok(TokKind::Str, text, line, start, j, depth), j)
}

/// Lex `r"..."`, `r#"..."#`, `b"..."`, `b'x'`, `br#"..."#` starting at `i`.
fn lex_raw_or_byte(b: &[u8], i: usize, line: usize, depth: u32) -> (Token, usize) {
    let start = i;
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if b.get(j) == Some(&b'\'') {
        // Byte char b'x' / b'\n'.
        j += 1;
        if b.get(j) == Some(&b'\\') {
            j += 1;
        }
        while j < b.len() && b[j] != b'\'' {
            j += 1;
        }
        j = (j + 1).min(b.len());
        return (tok(TokKind::Str, String::new(), line, start, j, depth), j);
    }
    if b.get(j) == Some(&b'r') {
        j += 1;
    }
    let mut hashes = 0usize;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) != Some(&b'"') {
        // Plain byte string b"...".
        let (mut t, next) = lex_string(b, j.saturating_sub(1), line, depth);
        t.start = start;
        return (t, next);
    }
    j += 1;
    let content_start = j;
    let mut content_end = b.len();
    'raw: while j < b.len() {
        if b[j] == b'"' {
            let mut k = 0;
            while k < hashes && b.get(j + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                content_end = j;
                j += 1 + hashes;
                break 'raw;
            }
        }
        j += 1;
    }
    let text = String::from_utf8_lossy(&b[content_start..content_end.min(b.len())]).into_owned();
    (tok(TokKind::Str, text, line, start, j, depth), j)
}

/// Mark every token belonging to a `#[cfg(test)]` / `#[test]` item with
/// `in_test = true`. Brace-aware: the flag covers exactly the attributed
/// item (to its matching `}` or terminating `;`), not to end of file.
fn mark_tests(tokens: &mut [Token]) {
    let mut i = 0;
    while i < tokens.len() {
        if let Some(attr_end) = test_attr_end(tokens, i) {
            // Skip any further attributes between this one and the item.
            let mut j = attr_end + 1;
            while j < tokens.len()
                && tokens[j].text == "#"
                && tokens.get(j + 1).is_some_and(|t| t.text == "[")
            {
                j = match bracket_end(tokens, j + 1) {
                    Some(e) => e + 1,
                    None => tokens.len(),
                };
            }
            // The item: ends at the matching `}` of its first block, or at
            // a `;` that appears before any block opens (e.g. `use` items).
            let mut end = tokens.len().saturating_sub(1);
            let mut k = j;
            while k < tokens.len() {
                match tokens[k].text.as_str() {
                    ";" => {
                        end = k;
                        break;
                    }
                    "{" => {
                        end = brace_end(tokens, k).unwrap_or(tokens.len() - 1);
                        break;
                    }
                    _ => k += 1,
                }
            }
            let end = end.min(tokens.len() - 1);
            for t in &mut tokens[i..=end] {
                t.in_test = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
}

/// If tokens at `i` begin a test attribute (`#[test]`, `#[cfg(test)]`,
/// `#[cfg(all(test, ...))]` — but not `#[cfg(not(test))]`), return the
/// index of its closing `]`.
fn test_attr_end(tokens: &[Token], i: usize) -> Option<usize> {
    if tokens[i].text != "#" || tokens.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
        return None;
    }
    let end = bracket_end(tokens, i + 1)?;
    let idents: Vec<&str> = tokens[i + 2..end]
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    let is_test = match idents.first() {
        Some(&"test") => idents.len() == 1,
        Some(&"cfg") => idents.contains(&"test") && !idents.contains(&"not"),
        _ => false,
    };
    is_test.then_some(end)
}

/// Index of the `]` matching the `[` at `open` (same nesting level).
fn bracket_end(tokens: &[Token], open: usize) -> Option<usize> {
    let mut d = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "[" => d += 1,
            "]" => {
                d -= 1;
                if d == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Index of the `}` matching the `{` at `open` (they share a depth value).
pub fn brace_end(tokens: &[Token], open: usize) -> Option<usize> {
    let d = tokens[open].depth;
    tokens
        .iter()
        .enumerate()
        .skip(open + 1)
        .find(|(_, t)| t.text == "}" && t.depth == d)
        .map(|(k, _)| k)
}

/// A function item found in the token stream.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Token index of the body's opening `{`.
    pub body_open: usize,
    /// Token index of the body's closing `}`.
    pub body_close: usize,
}

/// Every function item with a body (trait-method declarations without
/// bodies are skipped). Nested functions are reported separately *and*
/// covered by their enclosing function's span.
pub fn fn_bodies(tokens: &[Token]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind == TokKind::Ident && tokens[i].text == "fn" {
            let name = match tokens.get(i + 1) {
                Some(t) if t.kind == TokKind::Ident => t.text.clone(),
                _ => {
                    i += 1;
                    continue;
                }
            };
            // Find the body `{` (or a `;` — no body) at the fn's depth.
            let mut k = i + 2;
            let mut body = None;
            while k < tokens.len() {
                match tokens[k].text.as_str() {
                    ";" if tokens[k].depth == tokens[i].depth => break,
                    "{" if tokens[k].depth == tokens[i].depth => {
                        body = Some(k);
                        break;
                    }
                    _ => k += 1,
                }
            }
            if let Some(open) = body {
                if let Some(close) = brace_end(tokens, open) {
                    out.push(FnSpan {
                        name,
                        body_open: open,
                        body_close: close,
                    });
                }
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}

/// Does the token sequence starting at `i` match `pat` textually?
pub fn seq_at(tokens: &[Token], i: usize, pat: &[&str]) -> bool {
    i + pat.len() <= tokens.len()
        && pat
            .iter()
            .enumerate()
            .all(|(k, p)| tokens[i + k].text == *p)
}

/// Variant names of `enum <name>` (or `pub enum <name>`).
pub fn enum_variants(tokens: &[Token], name: &str) -> Vec<String> {
    enum_variants_with_lines(tokens, name)
        .into_iter()
        .map(|(n, _)| n)
        .collect()
}

/// Variant names and 1-based declaration lines of `enum <name>`:
/// uppercase-led identifiers at the enum body's arm depth, each directly
/// after the body's `{`, a `,`, or an attribute's `]`.
pub fn enum_variants_with_lines(tokens: &[Token], name: &str) -> Vec<(String, usize)> {
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text == "enum" && tokens.get(i + 1).is_some_and(|t| t.text == name) {
            // Body opens at the next `{` at this depth.
            let mut k = i + 2;
            while k < tokens.len() && tokens[k].text != "{" {
                k += 1;
            }
            if k >= tokens.len() {
                return Vec::new();
            }
            let close = brace_end(tokens, k).unwrap_or(tokens.len() - 1);
            let arm_depth = tokens[k].depth + 1;
            let mut variants = Vec::new();
            for j in k + 1..close {
                let t = &tokens[j];
                if t.depth == arm_depth
                    && t.kind == TokKind::Ident
                    && t.text
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_uppercase())
                {
                    let prev = &tokens[j - 1].text;
                    if prev == "{" || prev == "," || prev == "]" {
                        variants.push((t.text.clone(), t.line));
                    }
                }
            }
            return variants;
        }
        i += 1;
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn basic_tokens_and_fused_puncts() {
        let t = texts("let x = a::b(c) += 1; // comment\nfoo=>bar");
        assert_eq!(
            t,
            vec![
                "let", "x", "=", "a", "::", "b", "(", "c", ")", "+=", "1", ";", "foo", "=>", "bar"
            ]
        );
    }

    #[test]
    fn strings_and_chars_are_literals_not_code() {
        let toks = lex("let s = \"Instant::now\"; let c = 'z'; let lt: &'a str = s;");
        assert!(toks
            .iter()
            .all(|t| t.kind != TokKind::Ident || t.text != "Instant"));
        let strs: Vec<&Token> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs[0].text, "Instant::now", "string contents preserved");
        assert_eq!(strs[1].text, "z");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
    }

    #[test]
    fn raw_strings_and_byte_strings() {
        let toks = lex("let a = r#\"raw \" contents\"#; let b = b\"bytes\"; let c = b'x';");
        let strs: Vec<&Token> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 3);
        assert_eq!(strs[0].text, "raw \" contents");
    }

    #[test]
    fn lines_and_depth_are_tracked() {
        let toks = lex("fn f() {\n    inner();\n}\nfn g() {}\n");
        let inner = toks.iter().find(|t| t.text == "inner").unwrap();
        assert_eq!(inner.line, 2);
        assert_eq!(inner.depth, 1);
        let g = toks.iter().find(|t| t.text == "g").unwrap();
        assert_eq!(g.line, 4);
        assert_eq!(g.depth, 0);
    }

    #[test]
    fn cfg_test_marking_is_brace_aware() {
        let src = "fn live() {}\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { helper(); }\n}\n\
                   fn also_live() { after(); }\n";
        let toks = lex(src);
        let helper = toks.iter().find(|t| t.text == "helper").unwrap();
        assert!(helper.in_test);
        let after = toks.iter().find(|t| t.text == "after").unwrap();
        assert!(!after.in_test, "code after a test module must be scanned");
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let toks = lex("#[cfg(not(test))]\nfn live() { work(); }\n");
        assert!(toks.iter().all(|t| !t.in_test));
    }

    #[test]
    fn test_attr_marks_single_fn_only() {
        let src = "#[test]\nfn t() { check(); }\nfn live() { work(); }\n";
        let toks = lex(src);
        assert!(toks.iter().find(|t| t.text == "check").unwrap().in_test);
        assert!(!toks.iter().find(|t| t.text == "work").unwrap().in_test);
    }

    #[test]
    fn fn_bodies_found_with_matching_braces() {
        let toks = lex("fn a() { x(); }\nimpl T { fn b(&self) -> u8 { if q { 1 } else { 2 } } }");
        let fns = fn_bodies(&toks);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
        for f in &fns {
            assert_eq!(toks[f.body_open].text, "{");
            assert_eq!(toks[f.body_close].text, "}");
            assert_eq!(toks[f.body_open].depth, toks[f.body_close].depth);
        }
    }

    #[test]
    fn enum_variants_extracted() {
        let src = "pub enum PacketType {\n    /// doc\n    Data,\n    Ack = 2,\n    #[allow(dead_code)]\n    Nak,\n}\n\
                   pub enum Other { X, Y }";
        let toks = lex(src);
        assert_eq!(
            enum_variants(&toks, "PacketType"),
            vec!["Data", "Ack", "Nak"]
        );
        assert_eq!(enum_variants(&toks, "Other"), vec!["X", "Y"]);
        assert!(enum_variants(&toks, "Missing").is_empty());
    }
}
