//! Correctness tooling for the reliable multicast workspace.
//!
//! Two instruments, both aimed at the class of bug the probabilistic test
//! suites (loopback fuzzing, chaos campaigns, simulator sweeps) can miss:
//!
//! - [`lint`] — a zero-dependency source-level lint (`rmlint` binary)
//!   enforcing repo-specific rules the compiler cannot: no wall-clock or
//!   OS randomness inside the deterministic crates, no panic-capable
//!   calls or unguarded indexing in wire-decode paths, every counter and
//!   trace event documented, every config field accounted for by
//!   `ProtocolConfig::validate`.
//! - [`explore`] — an exhaustive small-scope model checker (`rmcheck
//!   explore`) that drives the *real* [`rmcast::Sender`] /
//!   [`rmcast::Receiver`] engines through **every** interleaving of
//!   deliver / drop / duplicate / timer-fire for small configurations,
//!   asserting the invariants of [`rmcast::invariants`] plus
//!   exactly-once in-order delivery, and that every reachable state can
//!   still complete.
//!
//! See `docs/CORRECTNESS.md` for how the two fit the verification story.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baseline;
pub mod explore;
pub mod lex;
pub mod lint;
