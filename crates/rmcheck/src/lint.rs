//! `rmlint`: a zero-dependency source-level lint pass.
//!
//! The rules are repo-specific invariants the Rust compiler and clippy
//! cannot express:
//!
//! | rule | scope | what it forbids / requires |
//! |------|-------|----------------------------|
//! | `wall-clock` | deterministic crates (`rmwire`, `rmcast`, `netsim`, `rmtrace`) | `SystemTime`, `Instant::now`, `thread_rng`, `from_entropy`, `OsRng` — anything that would make a sim run irreproducible |
//! | `panic-path` | wire-decode and packet-handling files | `.unwrap()`, `.expect(`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` — network input must be rejectable, never a crash |
//! | `index-unguarded` | wire-decode and packet-handling files | `expr[...]` indexing/slicing, which panics out of range; use `get()` / `split_at` or justify with an allow comment |
//! | `raw-instant` | timed engine crates (`udprun`, `simrun`) | ad-hoc `Instant::now` timing; hot-path measurements go through `rmprof::span!` so they land in the shared registry — genuine wall-clock needs (epochs, deadlines) carry an allow comment |
//! | `stats-doc` | `crates/core/src/stats.rs` vs `docs/OBSERVABILITY.md` | every `Stats` counter must appear in the observability docs |
//! | `trace-doc` | `crates/rmtrace/src/event.rs` vs `docs/OBSERVABILITY.md` | every `TraceEvent` variant must appear in the observability docs |
//! | `config-validate` | `crates/core/src/config.rs` | every `ProtocolConfig` field must be referenced by `validate()` (or carry an allow comment stating why it is unconstrained) |
//!
//! Any finding can be suppressed with a justification comment on the same
//! line or the line above: `// rmlint: allow(<rule>): <reason>`.
//!
//! Scanning is token-oriented, not AST-based: comments and string
//! literals are blanked first (so a rule name inside a doc comment never
//! fires), and everything from the first `#[cfg(test)]` to the end of the
//! file is skipped — the workspace convention keeps test modules last, and
//! the rules deliberately do not apply to test code.

use std::fmt;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (e.g. `wall-clock`).
    pub rule: &'static str,
    /// File the finding is in, relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What was found.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Files each source-scanning rule applies to, relative to the workspace
/// root. The doc-coverage rules (`stats-doc`, `trace-doc`,
/// `config-validate`) have their scopes hardcoded in [`run_workspace`].
pub mod scope {
    /// Crates whose behavior must be a pure function of inputs + seed:
    /// the `wall-clock` rule scans every non-test line of their sources.
    pub const DETERMINISTIC_CRATE_DIRS: &[&str] = &[
        "crates/rmwire/src",
        "crates/core/src",
        "crates/netsim/src",
        "crates/rmtrace/src",
    ];

    /// Engine crates that run on real time (so `wall-clock` cannot apply)
    /// but where ad-hoc `Instant::now` timing belongs in `rmprof` spans:
    /// the `raw-instant` rule scans these. `rmprof`/`rmtrace` own the
    /// clocks and `rm-bench`'s whole job is timing, so they are exempt.
    pub const TIMED_ENGINE_DIRS: &[&str] = &["crates/udprun/src", "crates/simrun/src"];

    /// Wire-decode and packet-handling paths: parse hostile bytes, so the
    /// `panic-path` and `index-unguarded` rules apply.
    pub const DECODE_PATH_FILES: &[&str] = &[
        "crates/rmwire/src/header.rs",
        "crates/rmwire/src/payload.rs",
        "crates/rmwire/src/checksum.rs",
        "crates/rmwire/src/seq.rs",
        "crates/core/src/packet.rs",
        "crates/udprun/src/hub.rs",
    ];
}

/// Blank out comments, string literals and char literals, preserving the
/// line structure (every replaced byte becomes a space, newlines stay).
/// Lifetimes (`'a`) are left alone.
pub fn strip_comments_and_strings(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = vec![b' '; b.len()];
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'\n' => {
                out[i] = b'\n';
                i += 1;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                // Line comment: blank to end of line.
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Block comment, nested per Rust.
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            out[i] = b'\n';
                        }
                        i += 1;
                    }
                }
            }
            b'r' if i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'#') => {
                // Raw string r"..." / r#"..."#.
                let start = i;
                let mut j = i + 1;
                let mut hashes = 0;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == b'"' {
                    j += 1;
                    'raw: while j < b.len() {
                        if b[j] == b'"' {
                            let mut k = 0;
                            while k < hashes && j + 1 + k < b.len() && b[j + 1 + k] == b'#' {
                                k += 1;
                            }
                            if k == hashes {
                                j += 1 + hashes;
                                break 'raw;
                            }
                        }
                        if b[j] == b'\n' {
                            out[j] = b'\n';
                        }
                        j += 1;
                    }
                    i = j;
                } else {
                    // `r` was just an identifier character.
                    out[start] = b'r';
                    i = start + 1;
                }
            }
            b'"' => {
                i += 1;
                while i < b.len() && b[i] != b'"' {
                    if b[i] == b'\\' {
                        i += 1; // skip the escaped character
                    }
                    if i < b.len() {
                        if b[i] == b'\n' {
                            out[i] = b'\n';
                        }
                        i += 1;
                    }
                }
                i += 1; // closing quote
            }
            b'\'' => {
                // Char literal or lifetime. `'\x'`-style and `'a'` are
                // literals; `'a` followed by anything but a quote is a
                // lifetime and passes through.
                if i + 1 < b.len() && b[i + 1] == b'\\' {
                    i += 2;
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                } else if i + 2 < b.len() && b[i + 2] == b'\'' {
                    i += 3;
                } else {
                    out[i] = b'\'';
                    i += 1;
                }
            }
            c => {
                out[i] = c;
                i += 1;
            }
        }
    }
    String::from_utf8(out).unwrap_or_default()
}

/// Is a finding of `rule` on 0-based line `idx` suppressed by an
/// `rmlint: allow(<rule>)` comment on the same or the previous line of
/// the *raw* source?
fn allowed(raw_lines: &[&str], idx: usize, rule: &str) -> bool {
    let marker = format!("rmlint: allow({rule})");
    raw_lines.get(idx).is_some_and(|l| l.contains(&marker))
        || idx > 0 && raw_lines.get(idx - 1).is_some_and(|l| l.contains(&marker))
}

/// 0-based line of the first `#[cfg(test)]` (test modules are last by
/// workspace convention); lines from there on are not linted.
fn test_module_start(raw_lines: &[&str]) -> usize {
    raw_lines
        .iter()
        .position(|l| l.contains("#[cfg(test)]"))
        .unwrap_or(raw_lines.len())
}

/// Per-line token scan shared by `wall-clock` and `panic-path`.
fn scan_tokens(
    rule: &'static str,
    file: &str,
    src: &str,
    tokens: &[(&str, &str)],
    findings: &mut Vec<Finding>,
) {
    let raw_lines: Vec<&str> = src.lines().collect();
    let stripped = strip_comments_and_strings(src);
    let limit = test_module_start(&raw_lines);
    for (idx, line) in stripped.lines().enumerate().take(limit) {
        for (token, why) in tokens {
            if line.contains(token) && !allowed(&raw_lines, idx, rule) {
                findings.push(Finding {
                    rule,
                    file: file.to_string(),
                    line: idx + 1,
                    message: format!("`{token}` {why}"),
                });
            }
        }
    }
}

/// `wall-clock`: no wall-clock time or OS randomness in deterministic
/// crates — their behavior must be a pure function of inputs and seed,
/// or golden traces and the model checker are meaningless.
pub fn lint_wall_clock(file: &str, src: &str, findings: &mut Vec<Finding>) {
    scan_tokens(
        "wall-clock",
        file,
        src,
        &[
            (
                "SystemTime",
                "reads the wall clock in a deterministic crate",
            ),
            (
                "Instant::now",
                "reads the wall clock in a deterministic crate",
            ),
            ("thread_rng", "draws OS randomness in a deterministic crate"),
            (
                "from_entropy",
                "draws OS randomness in a deterministic crate",
            ),
            ("OsRng", "draws OS randomness in a deterministic crate"),
        ],
        findings,
    );
}

/// `raw-instant`: no ad-hoc `Instant::now` timing in engine crates that
/// already have `rmprof` coverage — a measurement that bypasses the span
/// registry is invisible to the stats endpoint, the profile artifact and
/// `rmreport --profile`. Genuine wall-clock uses (a cluster epoch, a
/// settle deadline) are fine with an allow comment saying so.
pub fn lint_raw_instant(file: &str, src: &str, findings: &mut Vec<Finding>) {
    scan_tokens(
        "raw-instant",
        file,
        src,
        &[(
            "Instant::now",
            "times outside the rmprof registry; use `rmprof::span!` (or justify \
             a genuine wall-clock need with an allow comment)",
        )],
        findings,
    );
}

/// `panic-path`: no panic-capable call in wire-decode / packet-handling
/// code — malformed network input must map to a typed error and a
/// counter (`Stats::malformed_rx`), never a crash.
pub fn lint_panic_path(file: &str, src: &str, findings: &mut Vec<Finding>) {
    scan_tokens(
        "panic-path",
        file,
        src,
        &[
            (".unwrap()", "can panic on network input"),
            (".expect(", "can panic on network input"),
            ("panic!", "panics in a decode path"),
            ("unreachable!", "panics in a decode path"),
            ("todo!", "panics in a decode path"),
            ("unimplemented!", "panics in a decode path"),
        ],
        findings,
    );
}

/// `index-unguarded`: `expr[...]` indexing or slicing in decode paths
/// panics when out of range. An index expression is recognized as `[`
/// immediately preceded by an identifier character, `)`, or `]` — which
/// excludes attributes (`#[...]`), array literals and macro brackets
/// (`vec![...]`).
pub fn lint_index_unguarded(file: &str, src: &str, findings: &mut Vec<Finding>) {
    let rule = "index-unguarded";
    let raw_lines: Vec<&str> = src.lines().collect();
    let stripped = strip_comments_and_strings(src);
    let limit = test_module_start(&raw_lines);
    for (idx, line) in stripped.lines().enumerate().take(limit) {
        let b = line.as_bytes();
        let is_index = b.windows(2).any(|w| {
            w[1] == b'[' && (w[0].is_ascii_alphanumeric() || matches!(w[0], b'_' | b')' | b']'))
        });
        if is_index && !allowed(&raw_lines, idx, rule) {
            findings.push(Finding {
                rule,
                file: file.to_string(),
                line: idx + 1,
                message: "indexing/slicing panics out of range; use `get()`/`split_at` \
                          or justify with an allow comment"
                    .to_string(),
            });
        }
    }
}

/// Names declared via `define_stats!` in `stats.rs`: lines of the form
/// `name: sum,` / `name: max,`.
fn stats_counter_names(stats_src: &str) -> Vec<String> {
    let stripped = strip_comments_and_strings(stats_src);
    let mut names = Vec::new();
    let mut in_macro = false;
    for line in stripped.lines() {
        let t = line.trim();
        if t.starts_with("define_stats!") {
            in_macro = true;
            continue;
        }
        if in_macro {
            if t.starts_with('}') {
                break;
            }
            if let Some((name, rest)) = t.split_once(':') {
                let name = name.trim();
                let kind = rest.trim().trim_end_matches(',');
                if (kind == "sum" || kind == "max")
                    && !name.is_empty()
                    && name.chars().all(|c| c.is_ascii_lowercase() || c == '_')
                {
                    names.push(name.to_string());
                }
            }
        }
    }
    names
}

/// Variant names of `pub enum TraceEvent` in `event.rs`.
fn trace_event_names(event_src: &str) -> Vec<String> {
    let stripped = strip_comments_and_strings(event_src);
    let mut names = Vec::new();
    let mut in_enum = false;
    let mut depth = 0i32;
    for line in stripped.lines() {
        let t = line.trim();
        if t.starts_with("pub enum TraceEvent") {
            in_enum = true;
        }
        if in_enum {
            if depth == 1 {
                let head: String = t
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                if head.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                    names.push(head);
                }
            }
            depth += t.matches('{').count() as i32 - t.matches('}').count() as i32;
            if depth == 0 && t.contains('}') {
                break;
            }
        }
    }
    names
}

/// `stats-doc` + `trace-doc`: every counter and trace event must appear
/// by name in `docs/OBSERVABILITY.md` — an undocumented signal is one
/// nobody watches.
pub fn lint_doc_coverage(
    stats_src: &str,
    event_src: &str,
    observability_md: &str,
    findings: &mut Vec<Finding>,
) {
    for name in stats_counter_names(stats_src) {
        if !observability_md.contains(&name) {
            findings.push(Finding {
                rule: "stats-doc",
                file: "crates/core/src/stats.rs".to_string(),
                line: 1,
                message: format!("counter `{name}` is not documented in docs/OBSERVABILITY.md"),
            });
        }
    }
    for name in trace_event_names(event_src) {
        if !observability_md.contains(&name) {
            findings.push(Finding {
                rule: "trace-doc",
                file: "crates/rmtrace/src/event.rs".to_string(),
                line: 1,
                message: format!("trace event `{name}` is not documented in docs/OBSERVABILITY.md"),
            });
        }
    }
}

/// `config-validate`: every `ProtocolConfig` field must be referenced in
/// the body of `validate()` (as `.field`), or carry an allow comment on
/// its declaration stating why no constraint applies. A tuning knob that
/// validation never looks at is a knob whose nonsense values reach the
/// engines.
pub fn lint_config_validate(config_src: &str, findings: &mut Vec<Finding>) {
    let raw_lines: Vec<&str> = config_src.lines().collect();
    let stripped = strip_comments_and_strings(config_src);
    let s_lines: Vec<&str> = stripped.lines().collect();

    // Field declarations of `pub struct ProtocolConfig`.
    let mut fields: Vec<(String, usize)> = Vec::new();
    let mut in_struct = false;
    for (idx, line) in s_lines.iter().enumerate() {
        let t = line.trim();
        if t.starts_with("pub struct ProtocolConfig") {
            in_struct = true;
            continue;
        }
        if in_struct {
            if t.starts_with('}') {
                break;
            }
            if let Some(rest) = t.strip_prefix("pub ") {
                if let Some((name, _ty)) = rest.split_once(':') {
                    let name = name.trim();
                    if name.chars().all(|c| c.is_ascii_lowercase() || c == '_') {
                        fields.push((name.to_string(), idx));
                    }
                }
            }
        }
    }

    // Body of `fn validate`, brace-balanced.
    let mut body = String::new();
    let mut in_fn = false;
    let mut depth = 0i32;
    for line in &s_lines {
        if line.trim_start().starts_with("pub fn validate") {
            in_fn = true;
        }
        if in_fn {
            body.push_str(line);
            body.push('\n');
            depth += line.matches('{').count() as i32 - line.matches('}').count() as i32;
            if depth == 0 && line.contains('}') {
                break;
            }
        }
    }

    for (name, idx) in fields {
        let referenced = body.contains(&format!(".{name}"));
        if !referenced && !allowed(&raw_lines, idx, "config-validate") {
            findings.push(Finding {
                rule: "config-validate",
                file: "crates/core/src/config.rs".to_string(),
                line: idx + 1,
                message: format!(
                    "field `{name}` is never referenced by ProtocolConfig::validate; \
                     constrain it or justify with an allow comment"
                ),
            });
        }
    }
}

/// Run the source-scanning rules against one in-memory file (fixture
/// tests use this; [`run_workspace`] feeds it real files).
pub fn lint_source(file: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    lint_wall_clock(file, src, &mut findings);
    lint_raw_instant(file, src, &mut findings);
    lint_panic_path(file, src, &mut findings);
    lint_index_unguarded(file, src, &mut findings);
    findings
}

fn rs_files_under(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            out.extend(rs_files_under(&p));
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    out.sort();
    out
}

fn rel(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Run every rule against the workspace rooted at `root`, returning all
/// findings sorted by file and line. Missing files are themselves
/// findings (a moved scope must move the lint config with it).
pub fn run_workspace(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    let read = |rel_path: &str, findings: &mut Vec<Finding>| -> Option<String> {
        match std::fs::read_to_string(root.join(rel_path)) {
            Ok(s) => Some(s),
            Err(e) => {
                findings.push(Finding {
                    rule: "lint-config",
                    file: rel_path.to_string(),
                    line: 0,
                    message: format!("cannot read a linted file: {e}"),
                });
                None
            }
        }
    };

    for dir in scope::DETERMINISTIC_CRATE_DIRS {
        let abs = root.join(dir);
        let files = rs_files_under(&abs);
        if files.is_empty() {
            findings.push(Finding {
                rule: "lint-config",
                file: dir.to_string(),
                line: 0,
                message: "deterministic-crate scope matches no files".to_string(),
            });
        }
        for f in files {
            if let Ok(src) = std::fs::read_to_string(&f) {
                lint_wall_clock(&rel(root, &f), &src, &mut findings);
            }
        }
    }

    for dir in scope::TIMED_ENGINE_DIRS {
        let abs = root.join(dir);
        let files = rs_files_under(&abs);
        if files.is_empty() {
            findings.push(Finding {
                rule: "lint-config",
                file: dir.to_string(),
                line: 0,
                message: "timed-engine scope matches no files".to_string(),
            });
        }
        for f in files {
            if let Ok(src) = std::fs::read_to_string(&f) {
                lint_raw_instant(&rel(root, &f), &src, &mut findings);
            }
        }
    }

    for file in scope::DECODE_PATH_FILES {
        if let Some(src) = read(file, &mut findings) {
            lint_panic_path(file, &src, &mut findings);
            lint_index_unguarded(file, &src, &mut findings);
        }
    }

    let stats = read("crates/core/src/stats.rs", &mut findings);
    let event = read("crates/rmtrace/src/event.rs", &mut findings);
    let obs = read("docs/OBSERVABILITY.md", &mut findings);
    if let (Some(stats), Some(event), Some(obs)) = (stats, event, obs) {
        lint_doc_coverage(&stats, &event, &obs, &mut findings);
    }

    if let Some(cfg) = read("crates/core/src/config.rs", &mut findings) {
        lint_config_validate(&cfg, &mut findings);
    }

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

/// Locate the workspace root from the current directory (walk up to the
/// directory containing a `Cargo.toml` with `[workspace]`).
pub fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(s) = std::fs::read_to_string(&manifest) {
            if s.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
