//! `rmlint`: a zero-dependency source-level lint pass.
//!
//! The rules are repo-specific invariants the Rust compiler and clippy
//! cannot express:
//!
//! | rule | scope | what it forbids / requires |
//! |------|-------|----------------------------|
//! | `wall-clock` | deterministic crates (`rmwire`, `rmcast`, `netsim`, `rmtrace`) | `SystemTime`, `Instant::now`, `thread_rng`, `from_entropy`, `OsRng` — anything that would make a sim run irreproducible |
//! | `panic-path` | wire-decode and packet-handling files | `.unwrap()`, `.expect(`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` — network input must be rejectable, never a crash |
//! | `index-unguarded` | wire-decode and packet-handling files | `expr[...]` indexing/slicing, which panics out of range; use `get()` / `split_at` or justify with an allow comment |
//! | `raw-instant` | timed engine crates (`udprun`, `simrun`) | ad-hoc `Instant::now` timing; hot-path measurements go through `rmprof::span!` so they land in the shared registry — genuine wall-clock needs (epochs, deadlines) carry an allow comment |
//! | `hot-alloc` | hot-path crates (`core`, `rmwire`, `netsim`, `udprun`) | allocation/copy tokens (`Vec::new`, `vec!`, `.clone()`, `format!`, `.collect`, map inserts, ...) inside functions that open an `rmprof::span!` — enforced through the `rmlint.baseline` ratchet (see [`crate::baseline`]) |
//! | `packet-exhaustive` | packet dispatch files + `rmfuzz` | every `PacketType` variant matched in the wire dispatch, every `Packet` variant handled by both engine dispatches, every `PacketType` exercised by the fuzzer corpus, and no `_ =>` wildcard arm in a packet match |
//! | `counter-drift` | `Stats` counters + `TraceEvent` variants vs the whole tree | every counter must be updated in non-test source and asserted in at least one test; every trace event must be emitted outside `rmtrace` and asserted in at least one test |
//! | `stats-doc` | `crates/core/src/stats.rs` vs `docs/OBSERVABILITY.md` | every `Stats` counter must appear in the observability docs |
//! | `trace-doc` | `crates/rmtrace/src/event.rs` vs `docs/OBSERVABILITY.md` | every `TraceEvent` variant must appear in the observability docs |
//! | `config-validate` | `crates/core/src/config.rs` | every `ProtocolConfig` field must be referenced by `validate()` (or carry an allow comment stating why it is unconstrained) |
//!
//! Any finding can be suppressed with a justification comment on the same
//! line or the line above: `// rmlint: allow(<rule>): <reason>`.
//!
//! Scanning runs on the token stream from [`crate::lex`]: comments and
//! string literals are distinct token kinds (a rule name inside a doc
//! comment never fires), rule patterns are token *sequences* rather than
//! substrings, and `#[cfg(test)]` / `#[test]` items are excluded
//! **brace-aware** — code after a test module is still scanned, unlike the
//! v1 behavior of skipping from the first `#[cfg(test)]` to end of file.

use std::collections::{BTreeSet, HashSet};
use std::fmt;
use std::path::{Path, PathBuf};

use crate::baseline;
use crate::lex::{self, TokKind, Token};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (e.g. `wall-clock`).
    pub rule: &'static str,
    /// File the finding is in, relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What was found.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Files each source-scanning rule applies to, relative to the workspace
/// root. The doc-coverage rules (`stats-doc`, `trace-doc`,
/// `config-validate`) have their scopes hardcoded in [`run_workspace`].
pub mod scope {
    /// Crates whose behavior must be a pure function of inputs + seed:
    /// the `wall-clock` rule scans every non-test line of their sources.
    pub const DETERMINISTIC_CRATE_DIRS: &[&str] = &[
        "crates/rmwire/src",
        "crates/core/src",
        "crates/netsim/src",
        "crates/rmtrace/src",
    ];

    /// Engine crates that run on real time (so `wall-clock` cannot apply)
    /// but where ad-hoc `Instant::now` timing belongs in `rmprof` spans:
    /// the `raw-instant` rule scans these. `rmprof`/`rmtrace` own the
    /// clocks and `rm-bench`'s whole job is timing, so they are exempt.
    pub const TIMED_ENGINE_DIRS: &[&str] = &["crates/udprun/src", "crates/simrun/src"];

    /// Wire-decode and packet-handling paths: parse hostile bytes, so the
    /// `panic-path` and `index-unguarded` rules apply.
    pub const DECODE_PATH_FILES: &[&str] = &[
        "crates/rmwire/src/header.rs",
        "crates/rmwire/src/payload.rs",
        "crates/rmwire/src/checksum.rs",
        "crates/rmwire/src/seq.rs",
        "crates/core/src/packet.rs",
        "crates/udprun/src/hub.rs",
    ];

    /// Crates holding the hot paths the paper measures (wire
    /// encode/decode/CRC, sender window, receiver assembly, FEC XOR,
    /// netsim dispatch, udprun tx/rx): the `hot-alloc` rule scans every
    /// span-instrumented function in their sources.
    pub const HOT_PATH_DIRS: &[&str] = &[
        "crates/core/src",
        "crates/rmwire/src",
        "crates/netsim/src",
        "crates/udprun/src",
    ];

    /// Files whose packet dispatches `packet-exhaustive` audits: the wire
    /// dispatch, both engine dispatches, and the fuzzer corpus.
    pub const PACKET_DISPATCH_FILES: &[&str] = &[
        "crates/rmwire/src/header.rs",
        "crates/core/src/packet.rs",
        "crates/core/src/receiver.rs",
        "crates/core/src/sender.rs",
        "crates/rmfuzz/src/lib.rs",
    ];
}

/// Blank out comments, string literals and char literals, preserving the
/// line structure (every replaced byte becomes a space, newlines stay).
/// Lifetimes (`'a`) are left alone. Retained for callers that want a
/// line-oriented view; the rules themselves now run on [`crate::lex`].
pub fn strip_comments_and_strings(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = vec![b' '; b.len()];
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'\n' => {
                out[i] = b'\n';
                i += 1;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                // Line comment: blank to end of line.
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Block comment, nested per Rust.
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            out[i] = b'\n';
                        }
                        i += 1;
                    }
                }
            }
            b'r' if i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'#') => {
                // Raw string r"..." / r#"..."#.
                let start = i;
                let mut j = i + 1;
                let mut hashes = 0;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == b'"' {
                    j += 1;
                    'raw: while j < b.len() {
                        if b[j] == b'"' {
                            let mut k = 0;
                            while k < hashes && j + 1 + k < b.len() && b[j + 1 + k] == b'#' {
                                k += 1;
                            }
                            if k == hashes {
                                j += 1 + hashes;
                                break 'raw;
                            }
                        }
                        if b[j] == b'\n' {
                            out[j] = b'\n';
                        }
                        j += 1;
                    }
                    i = j;
                } else {
                    // `r` was just an identifier character.
                    out[start] = b'r';
                    i = start + 1;
                }
            }
            b'"' => {
                i += 1;
                while i < b.len() && b[i] != b'"' {
                    if b[i] == b'\\' {
                        i += 1; // skip the escaped character
                    }
                    if i < b.len() {
                        if b[i] == b'\n' {
                            out[i] = b'\n';
                        }
                        i += 1;
                    }
                }
                i += 1; // closing quote
            }
            b'\'' => {
                // Char literal or lifetime. `'\x'`-style and `'a'` are
                // literals; `'a` followed by anything but a quote is a
                // lifetime and passes through.
                if i + 1 < b.len() && b[i + 1] == b'\\' {
                    i += 2;
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                } else if i + 2 < b.len() && b[i + 2] == b'\'' {
                    i += 3;
                } else {
                    out[i] = b'\'';
                    i += 1;
                }
            }
            c => {
                out[i] = c;
                i += 1;
            }
        }
    }
    String::from_utf8(out).unwrap_or_default()
}

/// Is a finding of `rule` on 0-based line `idx` suppressed by an
/// `rmlint: allow(<rule>)` comment on the same or the previous line of
/// the *raw* source?
fn allowed(raw_lines: &[&str], idx: usize, rule: &str) -> bool {
    let marker = format!("rmlint: allow({rule})");
    raw_lines.get(idx).is_some_and(|l| l.contains(&marker))
        || idx > 0 && raw_lines.get(idx - 1).is_some_and(|l| l.contains(&marker))
}

/// Token-sequence scan shared by `wall-clock`, `raw-instant` and
/// `panic-path`: flag every non-test occurrence of any pattern.
fn scan_seqs(
    rule: &'static str,
    file: &str,
    src: &str,
    pats: &[(&[&str], &str)],
    findings: &mut Vec<Finding>,
) {
    let raw_lines: Vec<&str> = src.lines().collect();
    let tokens = lex::lex(src);
    for i in 0..tokens.len() {
        if tokens[i].in_test {
            continue;
        }
        for (pat, why) in pats {
            if lex::seq_at(&tokens, i, pat) && !allowed(&raw_lines, tokens[i].line - 1, rule) {
                findings.push(Finding {
                    rule,
                    file: file.to_string(),
                    line: tokens[i].line,
                    message: format!("`{}` {why}", pat.concat()),
                });
            }
        }
    }
}

/// `wall-clock`: no wall-clock time or OS randomness in deterministic
/// crates — their behavior must be a pure function of inputs and seed,
/// or golden traces and the model checker are meaningless.
pub fn lint_wall_clock(file: &str, src: &str, findings: &mut Vec<Finding>) {
    scan_seqs(
        "wall-clock",
        file,
        src,
        &[
            (
                &["SystemTime"],
                "reads the wall clock in a deterministic crate",
            ),
            (
                &["Instant", "::", "now"],
                "reads the wall clock in a deterministic crate",
            ),
            (
                &["thread_rng"],
                "draws OS randomness in a deterministic crate",
            ),
            (
                &["from_entropy"],
                "draws OS randomness in a deterministic crate",
            ),
            (&["OsRng"], "draws OS randomness in a deterministic crate"),
        ],
        findings,
    );
}

/// `raw-instant`: no ad-hoc `Instant::now` timing in engine crates that
/// already have `rmprof` coverage — a measurement that bypasses the span
/// registry is invisible to the stats endpoint, the profile artifact and
/// `rmreport --profile`. Genuine wall-clock uses (a cluster epoch, a
/// settle deadline) are fine with an allow comment saying so.
pub fn lint_raw_instant(file: &str, src: &str, findings: &mut Vec<Finding>) {
    scan_seqs(
        "raw-instant",
        file,
        src,
        &[(
            &["Instant", "::", "now"],
            "times outside the rmprof registry; use `rmprof::span!` (or justify \
             a genuine wall-clock need with an allow comment)",
        )],
        findings,
    );
}

/// `panic-path`: no panic-capable call in wire-decode / packet-handling
/// code — malformed network input must map to a typed error and a
/// counter (`Stats::malformed_rx`), never a crash.
pub fn lint_panic_path(file: &str, src: &str, findings: &mut Vec<Finding>) {
    scan_seqs(
        "panic-path",
        file,
        src,
        &[
            (&[".", "unwrap", "(", ")"], "can panic on network input"),
            (&[".", "expect", "("], "can panic on network input"),
            (&["panic", "!"], "panics in a decode path"),
            (&["unreachable", "!"], "panics in a decode path"),
            (&["todo", "!"], "panics in a decode path"),
            (&["unimplemented", "!"], "panics in a decode path"),
        ],
        findings,
    );
}

/// `index-unguarded`: `expr[...]` indexing or slicing in decode paths
/// panics when out of range. An index expression is a `[` token directly
/// adjacent to a preceding identifier, literal, `)`, or `]` — which
/// excludes attributes (`#[...]`), array types/literals (`: [u8; 4]`)
/// and macro brackets (`vec![...]`).
pub fn lint_index_unguarded(file: &str, src: &str, findings: &mut Vec<Finding>) {
    let rule = "index-unguarded";
    let raw_lines: Vec<&str> = src.lines().collect();
    let tokens = lex::lex(src);
    for i in 1..tokens.len() {
        let t = &tokens[i];
        if t.in_test || t.text != "[" {
            continue;
        }
        let prev = &tokens[i - 1];
        let adjacent = prev.end == t.start;
        let indexable = matches!(prev.kind, TokKind::Ident | TokKind::Num)
            || prev.text == ")"
            || prev.text == "]";
        if adjacent && indexable && !allowed(&raw_lines, t.line - 1, rule) {
            findings.push(Finding {
                rule,
                file: file.to_string(),
                line: t.line,
                message: "indexing/slicing panics out of range; use `get()`/`split_at` \
                          or justify with an allow comment"
                    .to_string(),
            });
        }
    }
}

/// Allocation/copy token sequences the `hot-alloc` rule flags inside
/// span-instrumented functions.
pub const HOT_ALLOC_PATTERNS: &[&[&str]] = &[
    &["Vec", "::", "new"],
    &["Vec", "::", "with_capacity"],
    &["vec", "!"],
    &[".", "to_vec", "("],
    &[".", "clone", "("],
    &["Box", "::", "new"],
    &["format", "!"],
    &[".", "collect"],
    &["BTreeMap", "::", "new"],
    &["HashMap", "::", "new"],
    &[".", "insert", "("],
    &["Bytes", "::", "copy_from_slice"],
    &["BytesMut", "::", "with_capacity"],
];

/// `hot-alloc`: inside any function whose body opens an `rmprof::span!`
/// (the marker that this is one of the hot stages the paper measures),
/// flag allocation and copy tokens. Raw findings — [`run_workspace`]
/// passes them through the [`crate::baseline`] ratchet so pre-existing
/// allocations are grandfathered but new ones fail.
pub fn lint_hot_alloc(file: &str, src: &str, findings: &mut Vec<Finding>) {
    let rule = "hot-alloc";
    let raw_lines: Vec<&str> = src.lines().collect();
    let tokens = lex::lex(src);
    let mut flagged: BTreeSet<usize> = BTreeSet::new();
    for f in lex::fn_bodies(&tokens) {
        if tokens[f.body_open].in_test {
            continue;
        }
        let body = f.body_open..=f.body_close;
        let has_span = body
            .clone()
            .any(|i| lex::seq_at(&tokens, i, &["span", "!"]) && !tokens[i].in_test);
        if !has_span {
            continue;
        }
        for i in body {
            if tokens[i].in_test || flagged.contains(&i) {
                continue;
            }
            for pat in HOT_ALLOC_PATTERNS {
                if lex::seq_at(&tokens, i, pat) && !allowed(&raw_lines, tokens[i].line - 1, rule) {
                    flagged.insert(i);
                    findings.push(Finding {
                        rule,
                        file: file.to_string(),
                        line: tokens[i].line,
                        message: format!(
                            "allocation/copy `{}` inside span-instrumented hot fn `{}`",
                            pat.concat(),
                            f.name
                        ),
                    });
                    break;
                }
            }
        }
    }
}

/// Part of `packet-exhaustive`: flag `_ =>` wildcard arms in any `match`
/// that mentions `Packet::` / `PacketType::` — a wildcard there means a
/// future packet type gets silently swallowed instead of handled.
pub fn lint_wildcard_arm(file: &str, src: &str, findings: &mut Vec<Finding>) {
    let rule = "packet-exhaustive";
    let raw_lines: Vec<&str> = src.lines().collect();
    let tokens = lex::lex(src);
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind != TokKind::Ident || t.text != "match" || t.in_test {
            i += 1;
            continue;
        }
        // Body opens at the first `{` back at the match keyword's depth.
        let mut k = i + 1;
        while k < tokens.len() && !(tokens[k].text == "{" && tokens[k].depth == t.depth) {
            k += 1;
        }
        let Some(close) = (k < tokens.len())
            .then(|| lex::brace_end(&tokens, k))
            .flatten()
        else {
            break;
        };
        let is_packet_match = (k..close).any(|j| {
            matches!(tokens[j].text.as_str(), "Packet" | "PacketType")
                && tokens.get(j + 1).is_some_and(|n| n.text == "::")
        });
        if is_packet_match {
            let arm_depth = tokens[k].depth + 1;
            for j in k + 1..close {
                if tokens[j].text == "_"
                    && tokens[j].depth == arm_depth
                    && tokens.get(j + 1).is_some_and(|n| n.text == "=>")
                    && !allowed(&raw_lines, tokens[j].line - 1, rule)
                {
                    findings.push(Finding {
                        rule,
                        file: file.to_string(),
                        line: tokens[j].line,
                        message: "`_ =>` wildcard arm in a packet match would silently \
                                  swallow a future packet type; list every variant"
                            .to_string(),
                    });
                }
            }
        }
        i = k + 1;
    }
}

/// Does any non-test token position start `pat`?
fn mentions(tokens: &[Token], pat: &[&str]) -> bool {
    (0..tokens.len()).any(|i| !tokens[i].in_test && lex::seq_at(tokens, i, pat))
}

/// `packet-exhaustive` coverage half: every `PacketType` variant must be
/// matched in the wire dispatch (`packet.rs`) and exercised by the fuzzer
/// corpus, and every `Packet` variant must be handled by both engine
/// dispatches (`receiver.rs`, `sender.rs`). Missing enums are
/// `lint-config` findings — a renamed enum must move the lint with it.
pub fn lint_packet_exhaustive(
    header_src: &str,
    packet_src: &str,
    receiver_src: &str,
    sender_src: &str,
    fuzz_src: &str,
    findings: &mut Vec<Finding>,
) {
    let rule = "packet-exhaustive";
    let header_toks = lex::lex(header_src);
    let packet_toks = lex::lex(packet_src);
    let receiver_toks = lex::lex(receiver_src);
    let sender_toks = lex::lex(sender_src);
    let fuzz_toks = lex::lex(fuzz_src);

    let ptype = lex::enum_variants(&header_toks, "PacketType");
    if ptype.is_empty() {
        findings.push(Finding {
            rule: "lint-config",
            file: "crates/rmwire/src/header.rs".to_string(),
            line: 0,
            message: "enum PacketType not found; packet-exhaustive scope is stale".to_string(),
        });
    }
    let pvars = lex::enum_variants(&packet_toks, "Packet");
    if pvars.is_empty() {
        findings.push(Finding {
            rule: "lint-config",
            file: "crates/core/src/packet.rs".to_string(),
            line: 0,
            message: "enum Packet not found; packet-exhaustive scope is stale".to_string(),
        });
    }

    for v in &ptype {
        if !mentions(&packet_toks, &["PacketType", "::", v]) {
            findings.push(Finding {
                rule,
                file: "crates/core/src/packet.rs".to_string(),
                line: 1,
                message: format!("`PacketType::{v}` is never matched in the wire dispatch"),
            });
        }
        let encoder = format!("encode_{}", v.to_ascii_lowercase());
        let covered = mentions(&fuzz_toks, &["PacketType", "::", v])
            || mentions(&fuzz_toks, &[encoder.as_str()]);
        if !covered {
            findings.push(Finding {
                rule,
                file: "crates/rmfuzz/src/lib.rs".to_string(),
                line: 1,
                message: format!(
                    "`PacketType::{v}` is not exercised by the fuzzer (no \
                     `PacketType::{v}` or `{encoder}` in the corpus/mutator)"
                ),
            });
        }
    }
    for (file, toks) in [
        ("crates/core/src/receiver.rs", &receiver_toks),
        ("crates/core/src/sender.rs", &sender_toks),
    ] {
        for v in &pvars {
            if !mentions(toks, &["Packet", "::", v]) {
                findings.push(Finding {
                    rule,
                    file: file.to_string(),
                    line: 1,
                    message: format!("`Packet::{v}` is not handled in the engine dispatch"),
                });
            }
        }
    }
}

/// Counter names and 1-based declaration lines from the `define_stats!`
/// invocation: entries of the form `name: sum,` / `name: max,`.
fn stats_counters(tokens: &[Token]) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !lex::seq_at(tokens, i, &["define_stats", "!"]) {
            continue;
        }
        let mut k = i + 2;
        while k < tokens.len() && tokens[k].text != "{" {
            k += 1;
        }
        if k >= tokens.len() {
            break;
        }
        let close = lex::brace_end(tokens, k).unwrap_or(tokens.len() - 1);
        for j in k + 1..close.saturating_sub(2) {
            let name = &tokens[j];
            if name.kind == TokKind::Ident
                && tokens[j + 1].text == ":"
                && matches!(tokens[j + 2].text.as_str(), "sum" | "max")
                && tokens
                    .get(j + 3)
                    .is_some_and(|t| t.text == "," || t.text == "}")
            {
                out.push((name.text.clone(), name.line));
            }
        }
        break;
    }
    out
}

/// `counter-drift`: every `Stats` counter must be updated somewhere in
/// non-test source *and* asserted in at least one test; every
/// `TraceEvent` variant must be emitted in non-test source outside
/// `rmtrace` itself *and* asserted in at least one test. A counter
/// nobody bumps is dead weight; a counter no test reads can silently rot.
///
/// `sources` is every workspace `.rs` file as `(relative path, text)`;
/// files under a `tests/` directory count as test code in full.
pub fn lint_counter_drift(
    stats_src: &str,
    event_src: &str,
    sources: &[(String, String)],
    findings: &mut Vec<Finding>,
) {
    let rule = "counter-drift";
    let counters = stats_counters(&lex::lex(stats_src));
    let events = lex::enum_variants_with_lines(&lex::lex(event_src), "TraceEvent");
    if counters.is_empty() {
        findings.push(Finding {
            rule: "lint-config",
            file: "crates/core/src/stats.rs".to_string(),
            line: 0,
            message: "no define_stats! counters found; counter-drift scope is stale".to_string(),
        });
    }
    if events.is_empty() {
        findings.push(Finding {
            rule: "lint-config",
            file: "crates/rmtrace/src/event.rs".to_string(),
            line: 0,
            message: "enum TraceEvent not found; counter-drift scope is stale".to_string(),
        });
    }

    // One pass over every source file, harvesting the facts the checks
    // consume: which idents are assigned in non-test code, which
    // TraceEvent variants are constructed outside rmtrace, and which
    // idents / string contents appear in test code.
    let mut updated: HashSet<String> = HashSet::new();
    let mut emitted: HashSet<String> = HashSet::new();
    let mut test_idents: HashSet<String> = HashSet::new();
    let mut test_strs: Vec<String> = Vec::new();
    for (file, src) in sources {
        let test_file = file.starts_with("tests/") || file.contains("/tests/");
        let tokens = lex::lex(src);
        for i in 0..tokens.len() {
            let t = &tokens[i];
            let in_test = test_file || t.in_test;
            match t.kind {
                TokKind::Ident if in_test => {
                    test_idents.insert(t.text.clone());
                }
                TokKind::Ident => {
                    if tokens
                        .get(i + 1)
                        .is_some_and(|n| n.text == "+=" || n.text == "=")
                    {
                        updated.insert(t.text.clone());
                    }
                    if t.text == "TraceEvent"
                        && !file.starts_with("crates/rmtrace/")
                        && tokens.get(i + 1).is_some_and(|n| n.text == "::")
                    {
                        if let Some(v) = tokens.get(i + 2) {
                            if v.kind == TokKind::Ident {
                                emitted.insert(v.text.clone());
                            }
                        }
                    }
                }
                TokKind::Str if in_test => test_strs.push(t.text.clone()),
                _ => {}
            }
        }
    }
    let asserted =
        |name: &str| test_idents.contains(name) || test_strs.iter().any(|s| s.contains(name));

    let stats_lines: Vec<&str> = stats_src.lines().collect();
    for (name, line) in &counters {
        if allowed(&stats_lines, line - 1, rule) {
            continue;
        }
        if !updated.contains(name) {
            findings.push(Finding {
                rule,
                file: "crates/core/src/stats.rs".to_string(),
                line: *line,
                message: format!("counter `{name}` is never updated in non-test source"),
            });
        }
        if !asserted(name) {
            findings.push(Finding {
                rule,
                file: "crates/core/src/stats.rs".to_string(),
                line: *line,
                message: format!("counter `{name}` is never asserted in any test"),
            });
        }
    }
    let event_lines: Vec<&str> = event_src.lines().collect();
    for (name, line) in &events {
        if allowed(&event_lines, line - 1, rule) {
            continue;
        }
        if !emitted.contains(name) {
            findings.push(Finding {
                rule,
                file: "crates/rmtrace/src/event.rs".to_string(),
                line: *line,
                message: format!(
                    "trace event `{name}` is never emitted in non-test source outside rmtrace"
                ),
            });
        }
        if !asserted(name) {
            findings.push(Finding {
                rule,
                file: "crates/rmtrace/src/event.rs".to_string(),
                line: *line,
                message: format!("trace event `{name}` is never asserted in any test"),
            });
        }
    }
}

/// Names declared via `define_stats!` (doc-coverage view).
fn stats_counter_names(stats_src: &str) -> Vec<String> {
    stats_counters(&lex::lex(stats_src))
        .into_iter()
        .map(|(n, _)| n)
        .collect()
}

/// Variant names of `pub enum TraceEvent` (doc-coverage view).
fn trace_event_names(event_src: &str) -> Vec<String> {
    lex::enum_variants(&lex::lex(event_src), "TraceEvent")
}

/// `stats-doc` + `trace-doc`: every counter and trace event must appear
/// by name in `docs/OBSERVABILITY.md` — an undocumented signal is one
/// nobody watches.
pub fn lint_doc_coverage(
    stats_src: &str,
    event_src: &str,
    observability_md: &str,
    findings: &mut Vec<Finding>,
) {
    for name in stats_counter_names(stats_src) {
        if !observability_md.contains(&name) {
            findings.push(Finding {
                rule: "stats-doc",
                file: "crates/core/src/stats.rs".to_string(),
                line: 1,
                message: format!("counter `{name}` is not documented in docs/OBSERVABILITY.md"),
            });
        }
    }
    for name in trace_event_names(event_src) {
        if !observability_md.contains(&name) {
            findings.push(Finding {
                rule: "trace-doc",
                file: "crates/rmtrace/src/event.rs".to_string(),
                line: 1,
                message: format!("trace event `{name}` is not documented in docs/OBSERVABILITY.md"),
            });
        }
    }
}

/// `config-validate`: every `ProtocolConfig` field must be referenced in
/// the body of `validate()` (as `.field`), or carry an allow comment on
/// its declaration stating why no constraint applies. A tuning knob that
/// validation never looks at is a knob whose nonsense values reach the
/// engines.
pub fn lint_config_validate(config_src: &str, findings: &mut Vec<Finding>) {
    let raw_lines: Vec<&str> = config_src.lines().collect();
    let stripped = strip_comments_and_strings(config_src);
    let s_lines: Vec<&str> = stripped.lines().collect();

    // Field declarations of `pub struct ProtocolConfig`.
    let mut fields: Vec<(String, usize)> = Vec::new();
    let mut in_struct = false;
    for (idx, line) in s_lines.iter().enumerate() {
        let t = line.trim();
        if t.starts_with("pub struct ProtocolConfig") {
            in_struct = true;
            continue;
        }
        if in_struct {
            if t.starts_with('}') {
                break;
            }
            if let Some(rest) = t.strip_prefix("pub ") {
                if let Some((name, _ty)) = rest.split_once(':') {
                    let name = name.trim();
                    if name.chars().all(|c| c.is_ascii_lowercase() || c == '_') {
                        fields.push((name.to_string(), idx));
                    }
                }
            }
        }
    }

    // Body of `fn validate`, brace-balanced.
    let mut body = String::new();
    let mut in_fn = false;
    let mut depth = 0i32;
    for line in &s_lines {
        if line.trim_start().starts_with("pub fn validate") {
            in_fn = true;
        }
        if in_fn {
            body.push_str(line);
            body.push('\n');
            depth += line.matches('{').count() as i32 - line.matches('}').count() as i32;
            if depth == 0 && line.contains('}') {
                break;
            }
        }
    }

    for (name, idx) in fields {
        let referenced = body.contains(&format!(".{name}"));
        if !referenced && !allowed(&raw_lines, idx, "config-validate") {
            findings.push(Finding {
                rule: "config-validate",
                file: "crates/core/src/config.rs".to_string(),
                line: idx + 1,
                message: format!(
                    "field `{name}` is never referenced by ProtocolConfig::validate; \
                     constrain it or justify with an allow comment"
                ),
            });
        }
    }
}

/// Run the source-scanning rules against one in-memory file (fixture
/// tests use this; [`run_workspace`] feeds it real files).
pub fn lint_source(file: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    lint_wall_clock(file, src, &mut findings);
    lint_raw_instant(file, src, &mut findings);
    lint_panic_path(file, src, &mut findings);
    lint_index_unguarded(file, src, &mut findings);
    lint_hot_alloc(file, src, &mut findings);
    lint_wildcard_arm(file, src, &mut findings);
    findings
}

fn rs_files_under(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            out.extend(rs_files_under(&p));
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    out.sort();
    out
}

fn rel(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Every workspace `.rs` file the `counter-drift` rule scans: all crate
/// sources and integration tests plus the root umbrella crate — except
/// `rmcheck` itself, whose lint fixtures would otherwise count as "a test
/// asserting the counter".
fn counter_drift_sources(root: &Path) -> Vec<(String, String)> {
    let mut files: Vec<PathBuf> = Vec::new();
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            let p = entry.path();
            if !p.is_dir() || p.file_name().is_some_and(|n| n == "rmcheck") {
                continue;
            }
            for sub in ["src", "tests"] {
                files.extend(rs_files_under(&p.join(sub)));
            }
        }
    }
    for sub in ["src", "tests"] {
        files.extend(rs_files_under(&root.join(sub)));
    }
    files.sort();
    files
        .into_iter()
        .filter_map(|p| {
            std::fs::read_to_string(&p)
                .ok()
                .map(|src| (rel(root, &p), src))
        })
        .collect()
}

/// Run every rule against the workspace rooted at `root`, returning raw
/// findings — `hot-alloc` findings are **not** ratcheted against
/// `rmlint.baseline` (that's [`run_workspace`]'s job). `--update-baseline`
/// uses this view to compute the true current counts.
pub fn run_workspace_raw(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    let read = |rel_path: &str, findings: &mut Vec<Finding>| -> Option<String> {
        match std::fs::read_to_string(root.join(rel_path)) {
            Ok(s) => Some(s),
            Err(e) => {
                findings.push(Finding {
                    rule: "lint-config",
                    file: rel_path.to_string(),
                    line: 0,
                    message: format!("cannot read a linted file: {e}"),
                });
                None
            }
        }
    };

    for dir in scope::DETERMINISTIC_CRATE_DIRS {
        let abs = root.join(dir);
        let files = rs_files_under(&abs);
        if files.is_empty() {
            findings.push(Finding {
                rule: "lint-config",
                file: dir.to_string(),
                line: 0,
                message: "deterministic-crate scope matches no files".to_string(),
            });
        }
        for f in files {
            if let Ok(src) = std::fs::read_to_string(&f) {
                lint_wall_clock(&rel(root, &f), &src, &mut findings);
            }
        }
    }

    for dir in scope::TIMED_ENGINE_DIRS {
        let abs = root.join(dir);
        let files = rs_files_under(&abs);
        if files.is_empty() {
            findings.push(Finding {
                rule: "lint-config",
                file: dir.to_string(),
                line: 0,
                message: "timed-engine scope matches no files".to_string(),
            });
        }
        for f in files {
            if let Ok(src) = std::fs::read_to_string(&f) {
                lint_raw_instant(&rel(root, &f), &src, &mut findings);
            }
        }
    }

    for file in scope::DECODE_PATH_FILES {
        if let Some(src) = read(file, &mut findings) {
            lint_panic_path(file, &src, &mut findings);
            lint_index_unguarded(file, &src, &mut findings);
        }
    }

    for dir in scope::HOT_PATH_DIRS {
        for f in rs_files_under(&root.join(dir)) {
            if let Ok(src) = std::fs::read_to_string(&f) {
                lint_hot_alloc(&rel(root, &f), &src, &mut findings);
            }
        }
    }

    {
        let srcs: Vec<Option<String>> = scope::PACKET_DISPATCH_FILES
            .iter()
            .map(|f| read(f, &mut findings))
            .collect();
        if let [Some(header), Some(packet), Some(receiver), Some(sender), Some(fuzz)] = &srcs[..] {
            lint_packet_exhaustive(header, packet, receiver, sender, fuzz, &mut findings);
            for (file, src) in scope::PACKET_DISPATCH_FILES.iter().zip(&srcs) {
                if let Some(src) = src {
                    lint_wildcard_arm(file, src, &mut findings);
                }
            }
        }
    }

    let stats = read("crates/core/src/stats.rs", &mut findings);
    let event = read("crates/rmtrace/src/event.rs", &mut findings);
    let obs = read("docs/OBSERVABILITY.md", &mut findings);
    if let (Some(stats), Some(event), Some(obs)) = (&stats, &event, &obs) {
        lint_doc_coverage(stats, event, obs, &mut findings);
    }
    if let (Some(stats), Some(event)) = (&stats, &event) {
        let sources = counter_drift_sources(root);
        lint_counter_drift(stats, event, &sources, &mut findings);
    }

    if let Some(cfg) = read("crates/core/src/config.rs", &mut findings) {
        lint_config_validate(&cfg, &mut findings);
    }

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

/// Run every rule against the workspace rooted at `root` and apply the
/// `rmlint.baseline` ratchet, returning all surviving findings sorted by
/// file and line. Missing files are themselves findings (a moved scope
/// must move the lint config with it); an unparseable baseline is a
/// `lint-config` finding, and a *missing* baseline means nothing is
/// grandfathered.
pub fn run_workspace(root: &Path) -> Vec<Finding> {
    let mut findings = run_workspace_raw(root);
    let grandfathered = match std::fs::read_to_string(root.join("rmlint.baseline")) {
        Ok(text) => match baseline::parse(&text) {
            Ok(counts) => counts,
            Err(e) => {
                findings.push(Finding {
                    rule: "lint-config",
                    file: "rmlint.baseline".to_string(),
                    line: 0,
                    message: format!("unparseable baseline: {e}"),
                });
                Default::default()
            }
        },
        Err(_) => Default::default(),
    };
    let mut findings = baseline::apply(findings, &grandfathered);
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

/// Locate the workspace root from the current directory (walk up to the
/// directory containing a `Cargo.toml` with `[workspace]`).
pub fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(s) = std::fs::read_to_string(&manifest) {
            if s.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
