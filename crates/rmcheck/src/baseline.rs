//! The `rmlint.baseline` ratchet for the `hot-alloc` rule.
//!
//! `hot-alloc` flags allocation/copy tokens inside span-instrumented hot
//! functions. The codebase predates the rule, so existing findings are
//! *grandfathered*: a committed `rmlint.baseline` at the workspace root
//! records, per file, how many hot-path allocations are currently known.
//! The ratchet only turns one way:
//!
//! - a file's live count **at or below** its baseline entry → clean (the
//!   known findings are suppressed; a *decrease* is silently accepted and
//!   `rmlint --update-baseline` rewrites the file to lock it in),
//! - a file's live count **above** its baseline entry (or a file with no
//!   entry) → every `hot-alloc` finding in that file surfaces, plus one
//!   `hot-alloc-ratchet` summary finding, and the run fails.
//!
//! Format: one entry per line, `hot-alloc <file> <count>`, `#` comments
//! and blank lines ignored. An unparseable baseline is a `lint-config`
//! finding (exit code 2), never a silent pass.

use std::collections::BTreeMap;

use crate::lint::Finding;

/// Rule name the baseline applies to.
pub const RULE: &str = "hot-alloc";

/// Summary rule emitted when a file exceeds its grandfathered count.
pub const RATCHET_RULE: &str = "hot-alloc-ratchet";

/// Parse baseline text into `file → grandfathered count`.
///
/// Returns `Err` with a line-anchored message on any malformed entry.
pub fn parse(text: &str) -> Result<BTreeMap<String, usize>, String> {
    let mut counts = BTreeMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (rule, file, count) = (parts.next(), parts.next(), parts.next());
        let bad = |why: &str| format!("line {}: {why}: {raw:?}", idx + 1);
        match (rule, file, count, parts.next()) {
            (Some(RULE), Some(file), Some(count), None) => {
                let n: usize = count
                    .parse()
                    .map_err(|_| bad("count is not a non-negative integer"))?;
                if counts.insert(file.to_string(), n).is_some() {
                    return Err(bad("duplicate file entry"));
                }
            }
            (Some(RULE), _, _, _) => return Err(bad("expected `hot-alloc <file> <count>`")),
            _ => return Err(bad("unknown rule (only `hot-alloc` is baselined)")),
        }
    }
    Ok(counts)
}

/// Render a baseline file for `counts` (deterministic order, trailing
/// newline, header comment explaining the ratchet).
pub fn render(counts: &BTreeMap<String, usize>) -> String {
    let mut out = String::from(
        "# rmlint hot-alloc ratchet baseline.\n\
         # Grandfathered allocation/copy counts inside span-instrumented hot\n\
         # functions. CI fails if any file's count increases; decreases are\n\
         # locked in with `rmlint --update-baseline`. See docs/CORRECTNESS.md.\n",
    );
    for (file, n) in counts {
        out.push_str(&format!("{RULE} {file} {n}\n"));
    }
    out
}

/// Per-file `hot-alloc` finding counts (input to `--update-baseline`).
pub fn counts_of(findings: &[Finding]) -> BTreeMap<String, usize> {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for f in findings.iter().filter(|f| f.rule == RULE) {
        *counts.entry(f.file.clone()).or_insert(0) += 1;
    }
    counts
}

/// Apply the ratchet: suppress grandfathered `hot-alloc` findings, keep
/// everything else, and add a [`RATCHET_RULE`] summary finding for every
/// file whose live count exceeds its baseline entry.
pub fn apply(findings: Vec<Finding>, baseline: &BTreeMap<String, usize>) -> Vec<Finding> {
    let live = counts_of(&findings);
    let mut out: Vec<Finding> = Vec::new();
    for f in findings {
        if f.rule != RULE {
            out.push(f);
            continue;
        }
        let allowed = baseline.get(&f.file).copied().unwrap_or(0);
        if live.get(&f.file).copied().unwrap_or(0) > allowed {
            out.push(f);
        }
    }
    for (file, &n) in &live {
        let allowed = baseline.get(file).copied().unwrap_or(0);
        if n > allowed {
            out.push(Finding {
                rule: RATCHET_RULE,
                file: file.clone(),
                line: 0,
                message: format!(
                    "{n} hot-path allocation(s) exceed the grandfathered baseline of \
                     {allowed}; remove the new allocation, or justify it with an \
                     `rmlint: allow(hot-alloc)` comment, or (last resort) raise \
                     rmlint.baseline in the same commit"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: usize) -> Finding {
        Finding {
            rule: RULE,
            file: file.to_string(),
            line,
            message: "alloc".to_string(),
        }
    }

    #[test]
    fn parse_render_roundtrip() {
        let text = "# comment\n\nhot-alloc crates/core/src/packet.rs 3\nhot-alloc a.rs 0\n";
        let counts = parse(text).unwrap();
        assert_eq!(counts.get("crates/core/src/packet.rs"), Some(&3));
        assert_eq!(parse(&render(&counts)).unwrap(), counts);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse("hot-alloc only-two-fields\n").is_err());
        assert!(parse("hot-alloc f.rs not-a-number\n").is_err());
        assert!(parse("other-rule f.rs 1\n").is_err());
        assert!(parse("hot-alloc f.rs 1\nhot-alloc f.rs 2\n").is_err());
        assert!(parse("hot-alloc f.rs 1 extra\n").is_err());
    }

    #[test]
    fn ratchet_grandfathers_at_or_below_baseline() {
        let baseline = parse("hot-alloc a.rs 2\n").unwrap();
        // Exactly at baseline: suppressed.
        let out = apply(vec![finding("a.rs", 1), finding("a.rs", 9)], &baseline);
        assert!(out.is_empty(), "{out:?}");
        // Below baseline (a decrease): also clean.
        let out = apply(vec![finding("a.rs", 1)], &baseline);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn ratchet_fails_on_any_increase() {
        let baseline = parse("hot-alloc a.rs 1\n").unwrap();
        let out = apply(
            vec![finding("a.rs", 1), finding("a.rs", 9), finding("b.rs", 3)],
            &baseline,
        );
        // a.rs exceeded (2 > 1): both findings surface + ratchet summary.
        // b.rs has no entry (1 > 0): same.
        assert_eq!(out.iter().filter(|f| f.rule == RULE).count(), 3);
        assert_eq!(out.iter().filter(|f| f.rule == RATCHET_RULE).count(), 2);
    }

    #[test]
    fn non_hot_alloc_findings_pass_through() {
        let baseline = parse("hot-alloc a.rs 5\n").unwrap();
        let other = Finding {
            rule: "wall-clock",
            file: "a.rs".to_string(),
            line: 3,
            message: "x".to_string(),
        };
        let out = apply(vec![other.clone(), finding("a.rs", 1)], &baseline);
        assert_eq!(out, vec![other]);
    }
}
