//! The correctness-tool front end.
//!
//! ```text
//! rmcheck explore [--family ack|nak|ring|tree-flat|tree-binary|fec|all]
//!                 [--receivers N] [--window W] [--packets K]
//!                 [--messages M] [--dups D] [--max-states S]
//!                 [--no-handshake] [--no-liveness] [--aimd]
//! ```
//!
//! Exhaustively enumerates every deliver/drop/duplicate/timer-fire
//! interleaving of the scope and reports the verified state count, or the
//! first counterexample trail. Exits nonzero on any violation or on
//! truncation (an unexhausted scope proves nothing).

#![forbid(unsafe_code)]

use rmcast::{ProtocolKind, TreeShape};
use rmcheck::explore::{explore, ExploreConfig};
use std::process::ExitCode;

fn usage() {
    println!(
        "rmcheck explore [--family ack|nak|ring|tree-flat|tree-binary|fec|all] \
         [--receivers N] [--window W] [--packets K] [--messages M] [--dups D] \
         [--max-states S] [--no-handshake] [--no-liveness] [--aimd]"
    );
}

fn family_by_name(name: &str, receivers: u16) -> Option<Vec<ProtocolKind>> {
    Some(match name {
        "ack" => vec![ProtocolKind::Ack],
        "nak" => vec![ProtocolKind::nak_polling(2)],
        "ring" => vec![ProtocolKind::Ring],
        "tree-flat" => vec![ProtocolKind::Tree {
            shape: TreeShape::Flat {
                height: receivers as usize,
            },
        }],
        "tree-binary" => vec![ProtocolKind::Tree {
            shape: TreeShape::Binary,
        }],
        "fec" => vec![ExploreConfig::MODEL_FEC],
        "all" => ExploreConfig::all_families(receivers),
        _ => return None,
    })
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("explore") => {}
        Some("--help") | Some("-h") | None => {
            usage();
            return ExitCode::SUCCESS;
        }
        Some(other) => {
            eprintln!("rmcheck: unknown subcommand `{other}` (try --help)");
            return ExitCode::from(2);
        }
    }

    let mut family = "all".to_string();
    let mut scope = ExploreConfig::smoke(ProtocolKind::Ack);
    let parse = |v: Option<String>, what: &str| -> Result<u64, ExitCode> {
        v.and_then(|s| s.parse().ok()).ok_or_else(|| {
            eprintln!("rmcheck: --{what} needs a number");
            ExitCode::from(2)
        })
    };
    while let Some(a) = args.next() {
        let r = match a.as_str() {
            "--family" => {
                family = args.next().unwrap_or_default();
                Ok(0)
            }
            "--receivers" => parse(args.next(), "receivers").map(|v| {
                scope.receivers = v as u16;
                0
            }),
            "--window" => parse(args.next(), "window").map(|v| {
                scope.window = v as usize;
                0
            }),
            "--packets" => parse(args.next(), "packets").map(|v| {
                scope.packets = v as u32;
                0
            }),
            "--messages" => parse(args.next(), "messages").map(|v| {
                scope.messages = v;
                0
            }),
            "--dups" => parse(args.next(), "dups").map(|v| {
                scope.dups = v as u8;
                0
            }),
            "--max-states" => parse(args.next(), "max-states").map(|v| {
                scope.max_states = v as usize;
                0
            }),
            "--no-handshake" => {
                scope.handshake = false;
                Ok(0)
            }
            "--no-liveness" => {
                scope.check_liveness = false;
                Ok(0)
            }
            "--aimd" => {
                scope.aimd = true;
                Ok(0)
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("rmcheck: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        };
        if let Err(code) = r {
            return code;
        }
    }

    let Some(families) = family_by_name(&family, scope.receivers) else {
        eprintln!("rmcheck: unknown family `{family}`");
        return ExitCode::from(2);
    };

    let mut failed = false;
    for f in families {
        let report = explore(&ExploreConfig {
            family: f,
            ..scope.clone()
        });
        if report.verified() {
            println!(
                "{:<12} verified: {} states, {} transitions, 0 violations",
                report.family, report.states, report.transitions
            );
        } else {
            failed = true;
            if report.truncated {
                println!(
                    "{:<12} TRUNCATED after {} states, {} transitions \
                     (raise --max-states or shrink the scope)",
                    report.family, report.states, report.transitions
                );
            }
            for v in &report.violations {
                println!("{:<12} VIOLATION: {v}", report.family);
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
