//! Workspace lint runner: prints every finding and exits nonzero if any
//! rule fired (CI gates on it).
//!
//! ```text
//! rmlint [--root <dir>] [--json | --github] [--update-baseline]
//! ```
//!
//! Exit codes are stable for CI:
//! - `0` — clean (no findings after the `rmlint.baseline` ratchet),
//! - `1` — findings,
//! - `2` — configuration error (bad arguments, unreadable scope files,
//!   unparseable baseline).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use rmcheck::baseline;
use rmcheck::lint::Finding;

const USAGE: &str = "\
rmlint [--root <dir>] [--json | --github] [--update-baseline]
Source-level lint for the reliable multicast workspace;
rules and scopes are documented in docs/CORRECTNESS.md.

  --root <dir>        workspace root (default: walk up from cwd)
  --json              emit findings as a JSON array
  --github            emit findings as GitHub Actions annotations
  --update-baseline   rewrite rmlint.baseline to the current hot-alloc
                      counts (locks in decreases), then report
  -h, --help          show this help

exit codes: 0 clean, 1 findings, 2 config error
";

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Github,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn emit(findings: &[Finding], format: Format) {
    match format {
        Format::Text => {
            for f in findings {
                println!("{f}");
            }
            if findings.is_empty() {
                println!("rmlint: clean");
            } else {
                eprintln!("rmlint: {} finding(s)", findings.len());
            }
        }
        Format::Json => {
            let rows: Vec<String> = findings
                .iter()
                .map(|f| {
                    format!(
                        "  {{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
                        json_escape(f.rule),
                        json_escape(&f.file),
                        f.line,
                        json_escape(&f.message)
                    )
                })
                .collect();
            if rows.is_empty() {
                println!("[]");
            } else {
                println!("[\n{}\n]", rows.join(",\n"));
            }
        }
        Format::Github => {
            for f in findings {
                // Annotation lines are 1-based; file-level findings use 1.
                println!(
                    "::error file={},line={},title=rmlint {}::{}",
                    f.file,
                    f.line.max(1),
                    f.rule,
                    f.message
                );
            }
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut update_baseline = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("rmlint: --root requires a directory (try --help)");
                    return ExitCode::from(2);
                }
            },
            "--json" => format = Format::Json,
            "--github" => format = Format::Github,
            "--update-baseline" => update_baseline = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("rmlint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(rmcheck::lint::find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("rmlint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };

    if update_baseline {
        let raw = rmcheck::lint::run_workspace_raw(&root);
        let counts = baseline::counts_of(&raw);
        let path = root.join("rmlint.baseline");
        if let Err(e) = std::fs::write(&path, baseline::render(&counts)) {
            eprintln!("rmlint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "rmlint: wrote {} ({} file(s), {} grandfathered finding(s))",
            path.display(),
            counts.len(),
            counts.values().sum::<usize>()
        );
    }

    let findings = rmcheck::lint::run_workspace(&root);
    emit(&findings, format);
    if findings.iter().any(|f| f.rule == "lint-config") {
        ExitCode::from(2)
    } else if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
