//! Workspace lint runner: prints every finding and exits nonzero if any
//! rule fired (CI gates on it).
//!
//! ```text
//! rmlint [--root <workspace-root>]
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("rmlint [--root <workspace-root>]");
                println!("Source-level lint for the reliable multicast workspace;");
                println!("rules and scopes are documented in docs/CORRECTNESS.md.");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("rmlint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(rmcheck::lint::find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("rmlint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };
    let findings = rmcheck::lint::run_workspace(&root);
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("rmlint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("rmlint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
