//! `rmcheck explore`: an exhaustive small-scope model checker over the
//! *real* protocol engines.
//!
//! The explorer builds one [`rmcast::Sender`] and `N` [`rmcast::Receiver`]s
//! (no mocks — the exact code the simulator and the UDP backend run),
//! queues a message, and then enumerates **every** interleaving of the
//! four adversarial network actions over the in-flight datagram set:
//!
//! - **deliver** a datagram to its destination,
//! - **drop** it,
//! - **duplicate** it (bounded by a duplication budget),
//! - **fire** any armed retransmission/NAK timer.
//!
//! Multicast transmits are expanded into one independent in-flight copy
//! per destination, so per-receiver loss — the scenario that separates the
//! four protocol families — is part of the enumerated space.
//!
//! After every action the explorer asserts the safety properties:
//!
//! - every invariant of [`rmcast::invariants`] (window structure, release
//!   rules including the ring `X − N` rule, tree ack-aggregation
//!   monotonicity, reassembly discipline) via the engines' `audit()`,
//! - exactly-once, in-order delivery of the correct bytes at every
//!   receiver,
//! - no spurious failure/eviction events under the paper's
//!   retry-forever liveness model.
//!
//! And, optionally, the liveness property: from *every* reachable state a
//! fair schedule (deliver everything, fire the earliest timer when quiet)
//! reaches completion — i.e. the adversary can delay but never wedge the
//! protocol.
//!
//! States are deduplicated by a 128-bit digest of the protocol-logical
//! state ([`rmcast::Sender::hash_protocol_state`], which deliberately
//! excludes clocks, suppression streaks and counters). That abstraction is
//! sound here because the model configuration zeroes `retx_suppress` and
//! `nak_suppress`: no behavior depends on *when* a timer fires, only that
//! it fires. The exploration is therefore a time-abstract superset of the
//! real schedules, and exhaustive for the configured scope.

use bytes::Bytes;
use rmcast::{AppEvent, Dest, Endpoint, ProtocolConfig, ProtocolKind, Receiver, Sender, TreeShape};
use rmwire::{Duration, GroupSpec, Time};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::Hasher;

/// Scope of one exhaustive exploration.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Protocol family under check.
    pub family: ProtocolKind,
    /// Receiver count (keep ≤ 3; the space explodes quickly).
    pub receivers: u16,
    /// Sender window in packets (keep ≤ 4). Ring configurations are
    /// raised to `receivers + 1` automatically — the ring release rule
    /// requires `window > N`.
    pub window: usize,
    /// Packets per message (keep ≤ 6).
    pub packets: u32,
    /// Messages queued on the sender.
    pub messages: u64,
    /// Run the buffer-allocation handshake before data.
    pub handshake: bool,
    /// How many duplication actions the adversary may take in one
    /// schedule (0 disables the duplicate action).
    pub dups: u8,
    /// Abort (with `truncated = true`) after visiting this many states.
    pub max_states: usize,
    /// Check the liveness property from every visited state (costly:
    /// one run-to-completion per state).
    pub check_liveness: bool,
    /// Run the engines with AIMD window adaptation on: every timer fire
    /// shrinks the adaptive cap multiplicatively, progress regrows it, and
    /// the cap is part of the explored state (it shapes future sends).
    /// Only the AIMD mechanism is enabled — feedback pacing, duplicate
    /// collapse and quarantine are *clocked* and would break the
    /// time-abstract digest this explorer relies on.
    pub aimd: bool,
}

/// Payload bytes per packet in model configurations (tiny on purpose —
/// content still matters: delivery checks compare bytes).
const MODEL_PACKET_SIZE: usize = 4;

/// Fair-schedule step bound for the liveness check; hitting it means the
/// protocol made no progress for an implausibly long clean schedule.
const LIVENESS_STEP_BOUND: usize = 20_000;

impl ExploreConfig {
    /// The fec family at model scope: tightest legal knobs so coded
    /// repair, proactive parity and the replay gate all engage inside a
    /// two-packet message.
    pub const MODEL_FEC: ProtocolKind = ProtocolKind::Fec {
        poll_interval: 2,
        parity_every: 2,
        max_coded: 2,
    };

    /// The CI smoke scope for `family`: 2 receivers, window 2 (3 for
    /// ring), a 1-packet message, handshake on, one duplicate. ~50–170k
    /// states per family; seconds in release, a couple of minutes for
    /// all five families under `debug_assertions`.
    ///
    /// One packet never fills window 2, so flow-control stalls are out
    /// of this scope — [`ExploreConfig::soak`] (and the dedicated
    /// `--window 1` CI step) cover them. The state space is exponential
    /// in the distinct-datagram universe, and two-packet scopes with the
    /// handshake on run to millions of states.
    pub fn smoke(family: ProtocolKind) -> ExploreConfig {
        ExploreConfig {
            family,
            receivers: 2,
            window: 2,
            packets: 1,
            messages: 1,
            handshake: true,
            dups: 1,
            max_states: 2_000_000,
            check_liveness: true,
            aimd: false,
        }
    }

    /// A deeper local/nightly scope: two packets (go-back-N and window
    /// machinery engage), handshake off to keep the datagram universe
    /// manageable. Millions of states; minutes per family in release.
    pub fn soak(family: ProtocolKind) -> ExploreConfig {
        ExploreConfig {
            family,
            receivers: 2,
            window: 2,
            packets: 2,
            messages: 1,
            handshake: false,
            dups: 1,
            max_states: 8_000_000,
            check_liveness: true,
            aimd: false,
        }
    }

    /// The [`ProtocolConfig`] the engines run under: suppression windows
    /// zeroed (the digest's time abstraction relies on it), the paper's
    /// retry-forever liveness, membership off.
    pub fn protocol_config(&self) -> ProtocolConfig {
        let window = match self.family {
            ProtocolKind::Ring => self.window.max(self.receivers as usize + 1),
            _ => self.window,
        };
        let mut cfg = ProtocolConfig::new(self.family, MODEL_PACKET_SIZE, window);
        cfg.retx_suppress = Duration::ZERO;
        cfg.nak_suppress = Duration::ZERO;
        // The fec family requires the allocation handshake (receivers
        // must preallocate to hold decode material); the flag only
        // applies to the other families.
        cfg.handshake = self.handshake || matches!(self.family, ProtocolKind::Fec { .. });
        if self.aimd {
            // AIMD alone is a pure function of delivered *events*
            // (timeouts shrink, acked progress regrows), so the
            // time-abstract digest stays sound. The ring floor must clear
            // the group size or the rotating release rule deadlocks.
            cfg.overload.aimd = true;
            cfg.overload.aimd_floor = match self.family {
                ProtocolKind::Ring => self.receivers as usize + 1,
                _ => 1,
            };
            cfg.overload.aimd_ceiling = window;
        }
        cfg
    }

    /// The four families at this scope (`ack`, `nak`, `ring`,
    /// `tree-flat`), plus `tree-binary`: the set the acceptance criteria
    /// quantify over.
    pub fn all_families(receivers: u16) -> Vec<ProtocolKind> {
        vec![
            ProtocolKind::Ack,
            ProtocolKind::nak_polling(2),
            ProtocolKind::Ring,
            ProtocolKind::Tree {
                shape: TreeShape::Flat {
                    height: receivers as usize,
                },
            },
            ProtocolKind::Tree {
                shape: TreeShape::Binary,
            },
            ExploreConfig::MODEL_FEC,
        ]
    }
}

/// Result of one exploration.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Family name (`ProtocolKind::name`).
    pub family: &'static str,
    /// Distinct protocol states visited.
    pub states: usize,
    /// Transitions taken (actions applied, including ones that led to
    /// already-visited states).
    pub transitions: usize,
    /// `true` when `max_states` stopped the search before exhaustion.
    pub truncated: bool,
    /// Safety/liveness violations found (empty = the scope is verified).
    pub violations: Vec<String>,
}

impl ExploreReport {
    /// Did the scope verify completely (exhausted, no violations)?
    pub fn verified(&self) -> bool {
        !self.truncated && self.violations.is_empty()
    }
}

/// Destination of one in-flight datagram copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Target {
    Sender,
    Receiver(usize),
}

/// One datagram copy the adversary can deliver, drop, or duplicate.
#[derive(Debug, Clone)]
struct Flight {
    to: Target,
    payload: Bytes,
}

/// One branch of the explored multiverse: the engines plus the network
/// and delivery bookkeeping.
#[derive(Clone)]
struct World {
    now: Time,
    sender: Sender,
    receivers: Vec<Receiver>,
    inflight: Vec<Flight>,
    /// Next message id each receiver must deliver (in-order check).
    delivered: Vec<u64>,
    /// Messages the sender reported complete.
    sent: u64,
    /// Remaining duplicate actions.
    dup_budget: u8,
}

/// The expected payload of message `msg_id` (checked on delivery).
fn model_payload(msg_id: u64, packets: u32) -> Bytes {
    let len = packets as usize * MODEL_PACKET_SIZE;
    Bytes::from(
        (0..len)
            .map(|j| (msg_id as u8).wrapping_mul(31).wrapping_add(j as u8))
            .collect::<Vec<u8>>(),
    )
}

impl World {
    fn initial(scope: &ExploreConfig) -> Result<World, String> {
        let cfg = scope.protocol_config();
        let group = GroupSpec::new(scope.receivers);
        let mut sender = Sender::new(cfg, group);
        let receivers: Vec<Receiver> = group
            .receivers()
            .map(|r| Receiver::new(cfg, group, r, r.0 as u64))
            .collect();
        for m in 0..scope.messages {
            sender.send_message(Time::ZERO, model_payload(m, scope.packets));
        }
        let mut w = World {
            now: Time::ZERO,
            sender,
            receivers,
            inflight: Vec::new(),
            delivered: vec![0; scope.receivers as usize],
            sent: 0,
            dup_budget: scope.dups,
        };
        w.settle(scope)?;
        Ok(w)
    }

    /// Drain transmits (expanding multicast per destination) and events,
    /// then audit every engine. Called after every action.
    ///
    /// The in-flight collection has **set** semantics: a datagram
    /// byte-identical to one already in flight to the same destination is
    /// collapsed into it. Identical copies are interchangeable (the
    /// engines are deterministic functions of the delivered bytes), and
    /// the effect of delivering a second identical copy is exactly the
    /// budget-bounded *duplicate* action — so the reduction loses no
    /// distinct engine state while keeping the space finite even under
    /// zero-suppression retransmission storms.
    fn settle(&mut self, scope: &ExploreConfig) -> Result<(), String> {
        while let Some(t) = self.sender.poll_transmit() {
            self.expand(None, t.dest, t.payload);
        }
        for i in 0..self.receivers.len() {
            while let Some(t) = self.receivers[i].poll_transmit() {
                self.expand(Some(i), t.dest, t.payload);
            }
        }
        let mut seen: HashSet<(u8, usize, Bytes)> = HashSet::new();
        self.inflight.retain(|f| {
            let key = match f.to {
                Target::Sender => (0u8, 0usize, f.payload.clone()),
                Target::Receiver(i) => (1, i, f.payload.clone()),
            };
            seen.insert(key)
        });
        while let Some(e) = self.sender.poll_event() {
            match e {
                AppEvent::MessageSent { .. } => self.sent += 1,
                other => return Err(format!("unexpected sender event {other:?}")),
            }
        }
        for i in 0..self.receivers.len() {
            while let Some(e) = self.receivers[i].poll_event() {
                match e {
                    AppEvent::MessageDelivered { msg_id, data } => {
                        let expect = self.delivered[i];
                        if msg_id != expect {
                            return Err(format!(
                                "receiver {i} delivered message {msg_id} but must deliver \
                                 {expect} next (exactly-once in-order violated)"
                            ));
                        }
                        let want = model_payload(msg_id, scope.packets);
                        if data != want {
                            return Err(format!(
                                "receiver {i} delivered corrupted bytes for message {msg_id}"
                            ));
                        }
                        self.delivered[i] += 1;
                    }
                    other => return Err(format!("unexpected receiver {i} event {other:?}")),
                }
            }
        }
        if let Err(v) = self.sender.audit() {
            return Err(format!("sender: {}", rmcast::invariants::render(&v)));
        }
        for (i, r) in self.receivers.iter().enumerate() {
            if let Err(v) = r.audit() {
                return Err(format!("receiver {i}: {}", rmcast::invariants::render(&v)));
            }
        }
        Ok(())
    }

    /// Turn one engine transmit into independent per-destination copies
    /// (multicast loss is per-receiver on real IP multicast; origin never
    /// hears itself).
    fn expand(&mut self, origin: Option<usize>, dest: Dest, payload: Bytes) {
        match dest {
            Dest::Sender => self.inflight.push(Flight {
                to: Target::Sender,
                payload,
            }),
            Dest::Rank(rank) => {
                let idx = rank.receiver_index();
                if origin != Some(idx) {
                    self.inflight.push(Flight {
                        to: Target::Receiver(idx),
                        payload,
                    });
                }
            }
            Dest::Receivers => {
                for i in 0..self.receivers.len() {
                    if origin != Some(i) {
                        self.inflight.push(Flight {
                            to: Target::Receiver(i),
                            payload: payload.clone(),
                        });
                    }
                }
            }
        }
    }

    fn deliver(&mut self, idx: usize, scope: &ExploreConfig) -> Result<(), String> {
        // `remove`, not `swap_remove`: the fair-schedule liveness check
        // delivers index 0 and relies on genuine FIFO order.
        let f = self.inflight.remove(idx);
        let now = self.now;
        match f.to {
            Target::Sender => self.sender.handle_datagram(now, &f.payload),
            Target::Receiver(i) => self.receivers[i].handle_datagram(now, &f.payload),
        }
        self.settle(scope)
    }

    fn drop_flight(&mut self, idx: usize) {
        self.inflight.remove(idx);
    }

    /// The duplication fault: deliver a copy of flight `idx` *without*
    /// consuming it — observably identical to the datagram arriving twice
    /// back-to-back.
    fn duplicate(&mut self, idx: usize, scope: &ExploreConfig) -> Result<(), String> {
        let f = self.inflight[idx].clone();
        self.dup_budget -= 1;
        let now = self.now;
        match f.to {
            Target::Sender => self.sender.handle_datagram(now, &f.payload),
            Target::Receiver(i) => self.receivers[i].handle_datagram(now, &f.payload),
        }
        self.settle(scope)
    }

    /// Timer endpoints with an armed deadline: `None` = sender.
    fn armed_timers(&self) -> Vec<(Option<usize>, Time)> {
        let mut v = Vec::new();
        if let Some(t) = self.sender.poll_timeout() {
            v.push((None, t));
        }
        for (i, r) in self.receivers.iter().enumerate() {
            if let Some(t) = r.poll_timeout() {
                v.push((Some(i), t));
            }
        }
        v
    }

    fn fire(&mut self, who: Option<usize>, at: Time, scope: &ExploreConfig) -> Result<(), String> {
        self.now = self.now.max(at);
        let now = self.now;
        match who {
            None => self.sender.handle_timeout(now),
            Some(i) => self.receivers[i].handle_timeout(now),
        }
        self.settle(scope)
    }

    /// Everything done: all messages sent and delivered everywhere, no
    /// datagrams in flight, every engine idle.
    fn complete(&self, scope: &ExploreConfig) -> bool {
        self.sent == scope.messages
            && self.delivered.iter().all(|&d| d == scope.messages)
            && self.inflight.is_empty()
            && self.sender.is_idle()
            && self.receivers.iter().all(|r| r.is_idle())
    }

    /// 128-bit digest of the protocol-logical state (two independently
    /// salted 64-bit SipHash digests; see the module docs for why time
    /// is excluded).
    fn digest(&self) -> (u64, u64) {
        let mut flights: Vec<(u8, usize, &[u8])> = self
            .inflight
            .iter()
            .map(|f| match f.to {
                Target::Sender => (0u8, 0usize, f.payload.as_ref()),
                Target::Receiver(i) => (1, i, f.payload.as_ref()),
            })
            .collect();
        flights.sort();
        let mut out = [0u64; 2];
        for (salt, slot) in [
            (0x9e37_79b9_7f4a_7c15u64, 0usize),
            (0x85eb_ca6b_27d4_eb4fu64, 1),
        ] {
            let mut h = DefaultHasher::new();
            h.write_u64(salt);
            self.sender.hash_protocol_state(&mut h);
            for r in &self.receivers {
                r.hash_protocol_state(&mut h);
            }
            h.write_usize(flights.len());
            for (kind, idx, payload) in &flights {
                h.write_u8(*kind);
                h.write_usize(*idx);
                h.write(payload);
            }
            h.write_u8(self.dup_budget);
            h.write_u64(self.sent);
            for d in &self.delivered {
                h.write_u64(*d);
            }
            out[slot] = h.finish();
        }
        (out[0], out[1])
    }

    /// Liveness: run the fair schedule (deliver everything FIFO; when the
    /// network is empty, fire the earliest timer) and require completion
    /// within the step bound.
    ///
    /// `live_ok` memoizes success across the whole search: every state on
    /// a completing fair schedule trivially completes under its own fair
    /// schedule (the suffix), so all intermediate digests are recorded —
    /// and a walk that reaches an already-proven state stops early. This
    /// turns the per-state liveness check from a multiplier on the search
    /// into an amortized constant.
    fn completes_under_fair_schedule(
        &self,
        self_digest: (u64, u64),
        scope: &ExploreConfig,
        live_ok: &mut HashSet<(u64, u64)>,
    ) -> Result<(), String> {
        if live_ok.contains(&self_digest) {
            return Ok(());
        }
        let mut walked = vec![self_digest];
        let mut w = self.clone();
        for _ in 0..LIVENESS_STEP_BOUND {
            if w.complete(scope) {
                live_ok.extend(walked);
                return Ok(());
            }
            if !w.inflight.is_empty() {
                w.deliver(0, scope)
                    .map_err(|e| format!("during the fair schedule: {e}"))?;
            } else {
                let Some(&(who, at)) = w.armed_timers().iter().min_by_key(|&&(_, t)| t) else {
                    return Err(format!(
                        "wedged: network empty, no timer armed, yet incomplete \
                         (sent {}/{}, delivered {:?})",
                        w.sent, scope.messages, w.delivered
                    ));
                };
                w.fire(who, at, scope)
                    .map_err(|e| format!("during the fair schedule: {e}"))?;
            }
            let d = w.digest();
            if live_ok.contains(&d) {
                live_ok.extend(walked);
                return Ok(());
            }
            walked.push(d);
        }
        Err("fair schedule did not complete within the step bound".to_string())
    }
}

/// Exhaustively explore `scope`, returning the report. Breadth-first over
/// the action graph with 128-bit state-digest deduplication.
pub fn explore(scope: &ExploreConfig) -> ExploreReport {
    let family = scope.family.name();
    let mut report = ExploreReport {
        family,
        states: 0,
        transitions: 0,
        truncated: false,
        violations: Vec::new(),
    };

    let initial = match World::initial(scope) {
        Ok(w) => w,
        Err(e) => {
            report.violations.push(format!("initial state: {e}"));
            return report;
        }
    };

    // Counterexample trails are reconstructed from a parent map (digest →
    // (parent digest, action label)) instead of being carried in every
    // `World` — the search clones worlds on every transition, and a
    // per-world trail would make that clone O(depth).
    type Digest = (u64, u64);
    type Parents = HashMap<Digest, (Digest, String)>;
    let mut parents: Parents = HashMap::new();
    let trail_to = |parents: &Parents, mut d: Digest| -> String {
        let mut labels: Vec<&str> = Vec::new();
        while let Some((p, label)) = parents.get(&d) {
            labels.push(label);
            d = *p;
        }
        labels.reverse();
        labels.join(" → ")
    };

    let initial_digest = initial.digest();
    let mut visited: HashSet<(u64, u64)> = HashSet::new();
    let mut live_ok: HashSet<(u64, u64)> = HashSet::new();
    let mut queue: VecDeque<(World, (u64, u64))> = VecDeque::new();
    visited.insert(initial_digest);
    queue.push_back((initial, initial_digest));

    while let Some((w, digest)) = queue.pop_front() {
        report.states += 1;
        if report.states > scope.max_states {
            report.truncated = true;
            break;
        }
        if scope.check_liveness {
            if let Err(e) = w.completes_under_fair_schedule(digest, scope, &mut live_ok) {
                report.violations.push(format!(
                    "liveness after [{}]: {e}",
                    trail_to(&parents, digest)
                ));
                break;
            }
        }
        if w.complete(scope) {
            continue; // terminal: nothing to expand
        }

        // Successors: every action on every in-flight copy + every timer.
        let mut successors: Vec<(String, Result<World, String>)> = Vec::new();
        for i in 0..w.inflight.len() {
            let label = |verb: &str| {
                let f = &w.inflight[i];
                let to = match f.to {
                    Target::Sender => "sender".to_string(),
                    Target::Receiver(r) => format!("r{r}"),
                };
                format!("{verb}→{to}#{}", f.payload.len())
            };
            let mut next = w.clone();
            let r = next.deliver(i, scope).map(|()| next);
            successors.push((label("deliver"), r));

            let mut next = w.clone();
            next.drop_flight(i);
            successors.push((label("drop"), Ok(next)));

            if w.dup_budget > 0 {
                let mut next = w.clone();
                let r = next.duplicate(i, scope).map(|()| next);
                successors.push((label("dup"), r));
            }
        }
        for (who, at) in w.armed_timers() {
            let label = match who {
                None => "fire@sender".to_string(),
                Some(i) => format!("fire@r{i}"),
            };
            let mut next = w.clone();
            let r = next.fire(who, at, scope).map(|()| next);
            successors.push((label, r));
        }

        for (label, next) in successors {
            report.transitions += 1;
            match next {
                Err(e) => {
                    report.violations.push(format!(
                        "after [{} → {label}]: {e}",
                        trail_to(&parents, digest)
                    ));
                }
                Ok(next) => {
                    let nd = next.digest();
                    if visited.insert(nd) {
                        parents.insert(nd, (digest, label));
                        queue.push_back((next, nd));
                    }
                }
            }
        }
        if !report.violations.is_empty() {
            break; // first counterexample is enough
        }
    }
    report
}

/// Explore every family of [`ExploreConfig::all_families`] at the given
/// scope template (the `family` field of `template` is replaced).
pub fn explore_all(template: &ExploreConfig) -> Vec<ExploreReport> {
    ExploreConfig::all_families(template.receivers)
        .into_iter()
        .map(|family| {
            explore(&ExploreConfig {
                family,
                ..template.clone()
            })
        })
        .collect()
}
