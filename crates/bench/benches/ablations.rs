//! Ablation bench groups: the design-choice checks DESIGN.md calls out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rm_bench::{bench_scenario, headline, run_once};
use rmcast::{ProtocolConfig, ProtocolKind, WindowDiscipline};
use simrun::scenario::{Protocol, TopologyKind};

/// Go-Back-N vs selective repeat, clean and lossy.
fn gbn_vs_sr(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_gbn_vs_sr");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for (name, discipline, loss) in [
        ("gbn/clean", WindowDiscipline::GoBackN, 0.0),
        ("sr/clean", WindowDiscipline::SelectiveRepeat, 0.0),
        ("gbn/loss1e-3", WindowDiscipline::GoBackN, 1e-3),
        ("sr/loss1e-3", WindowDiscipline::SelectiveRepeat, 1e-3),
    ] {
        let mut cfg = ProtocolConfig::new(ProtocolKind::Ack, 8_000, 16);
        cfg.discipline = discipline;
        let mut sc = bench_scenario(Protocol::Rm(cfg), 8, 200_000);
        sc.sim.faults.frame_loss = loss;
        headline(&format!("ablate_gbn_vs_sr/{name}"), &run_once(&sc));
        g.bench_with_input(BenchmarkId::from_parameter(name), &sc, |b, sc| {
            b.iter(|| sc.run(1))
        });
    }
    g.finish();
}

/// Switched fabric vs the shared CSMA/CD bus.
fn shared_vs_switched(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_shared_vs_switched");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for (name, topo, kind) in [
        ("switch/ack", TopologyKind::SingleSwitch, ProtocolKind::Ack),
        ("bus/ack", TopologyKind::SharedBus, ProtocolKind::Ack),
        (
            "switch/tree6",
            TopologyKind::SingleSwitch,
            ProtocolKind::flat_tree(6),
        ),
        (
            "bus/tree6",
            TopologyKind::SharedBus,
            ProtocolKind::flat_tree(6),
        ),
    ] {
        let window = if matches!(kind, ProtocolKind::Ack) {
            4
        } else {
            20
        };
        let cfg = ProtocolConfig::new(kind, 8_000, window);
        let mut sc = bench_scenario(Protocol::Rm(cfg), 30, 100_000);
        sc.topology = topo;
        headline(&format!("ablate_shared_vs_switched/{name}"), &run_once(&sc));
        g.bench_with_input(BenchmarkId::from_parameter(name), &sc, |b, sc| {
            b.iter(|| sc.run(1))
        });
    }
    g.finish();
}

/// Retransmission suppression on/off under loss.
fn suppression(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_suppression");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for (name, suppress_us) in [("off", 1u64), ("paper-8ms", 8_000)] {
        let mut cfg = ProtocolConfig::new(ProtocolKind::Ack, 8_000, 4);
        cfg.retx_suppress = rmwire::Duration::from_micros(suppress_us);
        let mut sc = bench_scenario(Protocol::Rm(cfg), 30, 100_000);
        sc.sim.faults.frame_loss = 1e-3;
        headline(&format!("ablate_suppression/{name}"), &run_once(&sc));
        g.bench_with_input(BenchmarkId::from_parameter(name), &sc, |b, sc| {
            b.iter(|| sc.run(1))
        });
    }
    g.finish();
}

/// The two NAK suppression schemes under loss.
fn nak_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_nak_variants");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for (name, receiver_multicast) in [("sender-side", false), ("receiver-multicast", true)] {
        let cfg = ProtocolConfig::new(
            ProtocolKind::NakPolling {
                poll_interval: 16,
                receiver_multicast_nak: receiver_multicast,
            },
            8_000,
            20,
        );
        let mut sc = bench_scenario(Protocol::Rm(cfg), 30, 100_000);
        sc.sim.faults.frame_loss = 1e-3;
        headline(&format!("ablate_nak_variants/{name}"), &run_once(&sc));
        g.bench_with_input(BenchmarkId::from_parameter(name), &sc, |b, sc| {
            b.iter(|| sc.run(1))
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    gbn_vs_sr,
    shared_vs_switched,
    suppression,
    nak_variants,
    mtu,
    slow_receiver,
    pipeline_handshake
);
criterion_main!(ablations);

/// Jumbo frames vs standard MTU.
fn mtu(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_mtu");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for (name, mtu) in [("mtu1500", 1_500usize), ("mtu9000", 9_000)] {
        let cfg = ProtocolConfig::new(ProtocolKind::nak_polling(16), 8_000, 20);
        let mut sc = bench_scenario(Protocol::Rm(cfg), 30, 200_000);
        sc.sim.link.mtu = mtu;
        headline(&format!("ablate_mtu/{name}"), &run_once(&sc));
        g.bench_with_input(BenchmarkId::from_parameter(name), &sc, |b, sc| {
            b.iter(|| sc.run(1))
        });
    }
    g.finish();
}

/// One heterogeneously slow receiver.
fn slow_receiver(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_slow_receiver");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for (name, factor) in [("homogeneous", 1.0f64), ("one-8x-slower", 8.0)] {
        let cfg = ProtocolConfig::new(ProtocolKind::nak_polling(16), 8_000, 20);
        let mut sc = bench_scenario(Protocol::Rm(cfg), 30, 200_000);
        sc.slow_receiver_factor = factor;
        headline(&format!("ablate_slow_receiver/{name}"), &run_once(&sc));
        g.bench_with_input(BenchmarkId::from_parameter(name), &sc, |b, sc| {
            b.iter(|| sc.run(1))
        });
    }
    g.finish();
}

/// Pipelined allocation handshake over a message stream.
fn pipeline_handshake(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_pipeline_handshake");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for (name, pipeline) in [("serial", false), ("pipelined", true)] {
        let mut cfg = ProtocolConfig::new(ProtocolKind::nak_polling(16), 8_000, 20);
        cfg.pipeline_handshake = pipeline;
        let mut sc = bench_scenario(Protocol::Rm(cfg), 30, 65_536);
        sc.n_messages = 10;
        headline(&format!("ablate_pipeline_handshake/{name}"), &run_once(&sc));
        g.bench_with_input(BenchmarkId::from_parameter(name), &sc, |b, sc| {
            b.iter(|| sc.run(1))
        });
    }
    g.finish();
}
