//! One bench group per paper figure: each measures the cost of
//! regenerating a representative point of that figure through the
//! calibrated simulator, and prints the headline simulated measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rm_bench::{bench_scenario, headline, run_once};
use rmcast::{ProtocolConfig, ProtocolKind};
use simrun::scenario::Protocol;

fn rm(cfg: ProtocolConfig) -> Protocol {
    Protocol::Rm(cfg)
}

fn ack(ps: usize, w: usize) -> Protocol {
    rm(ProtocolConfig::new(ProtocolKind::Ack, ps, w))
}

fn nak(ps: usize, w: usize, poll: usize) -> Protocol {
    rm(ProtocolConfig::new(ProtocolKind::nak_polling(poll), ps, w))
}

fn ring(ps: usize, w: usize) -> Protocol {
    rm(ProtocolConfig::new(ProtocolKind::Ring, ps, w))
}

fn tree(ps: usize, w: usize, h: usize) -> Protocol {
    rm(ProtocolConfig::new(ProtocolKind::flat_tree(h), ps, w))
}

fn bench_points(c: &mut Criterion, group: &str, points: Vec<(String, Protocol, u16, usize)>) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(2));
    for (name, protocol, n, msg) in points {
        let sc = bench_scenario(protocol, n, msg);
        headline(&format!("{group}/{name}"), &run_once(&sc));
        g.bench_with_input(BenchmarkId::from_parameter(&name), &sc, |b, sc| {
            b.iter(|| sc.run(1))
        });
    }
    g.finish();
}

/// Figure 8: TCP vs ACK multicast at 1 / 15 / 30 receivers.
fn fig08(c: &mut Criterion) {
    let mut points = Vec::new();
    for n in [1u16, 15, 30] {
        points.push((
            format!("tcp/n{n}"),
            Protocol::SerialUnicast {
                segment_size: 1448,
                window: 22,
            },
            n,
            426_502,
        ));
        points.push((format!("ack/n{n}"), ack(50_000, 2), n, 426_502));
    }
    bench_points(c, "fig08", points);
}

/// Figure 9: raw UDP vs ACK vs ACK-no-copy at 32 KB.
fn fig09(c: &mut Criterion) {
    let mut nocopy = ProtocolConfig::new(ProtocolKind::Ack, 50_000, 2);
    nocopy.charge_copy = false;
    bench_points(
        c,
        "fig09",
        vec![
            (
                "udp/32k".into(),
                Protocol::RawUdp {
                    packet_size: 50_000,
                },
                30,
                32_000,
            ),
            ("ack/32k".into(), ack(50_000, 2), 30, 32_000),
            ("ack-nocopy/32k".into(), rm(nocopy), 30, 32_000),
        ],
    );
}

/// Figure 10: ACK window sweep endpoints at two packet sizes.
fn fig10(c: &mut Criterion) {
    bench_points(
        c,
        "fig10",
        vec![
            ("ps500/w1".into(), ack(500, 1), 30, 100_000),
            ("ps500/w2".into(), ack(500, 2), 30, 100_000),
            ("ps50000/w2".into(), ack(50_000, 2), 30, 100_000),
        ],
    );
}

/// Figure 11: ACK scalability, small vs large message.
fn fig11(c: &mut Criterion) {
    bench_points(
        c,
        "fig11",
        vec![
            ("1B/n30".into(), ack(50_000, 2), 30, 1),
            ("4KB/n30".into(), ack(50_000, 2), 30, 4_096),
            ("500KB/n30".into(), ack(50_000, 2), 30, 500_000),
        ],
    );
}

/// Figure 12: NAK poll-interval extremes.
fn fig12(c: &mut Criterion) {
    bench_points(
        c,
        "fig12",
        vec![
            ("poll1".into(), nak(5_000, 20, 1), 30, 100_000),
            ("poll16".into(), nak(5_000, 20, 16), 30, 100_000),
            ("poll20".into(), nak(5_000, 20, 20), 30, 100_000),
        ],
    );
}

/// Figure 13: NAK buffer-size extremes.
fn fig13(c: &mut Criterion) {
    bench_points(
        c,
        "fig13",
        vec![
            ("buf50k/ps8000".into(), nak(8_000, 6, 5), 30, 100_000),
            ("buf400k/ps8000".into(), nak(8_000, 50, 41), 30, 100_000),
        ],
    );
}

/// Figure 14: NAK scalability.
fn fig14(c: &mut Criterion) {
    bench_points(
        c,
        "fig14",
        vec![
            ("n1".into(), nak(8_000, 25, 21), 1, 100_000),
            ("n30".into(), nak(8_000, 25, 21), 30, 100_000),
        ],
    );
}

/// Figure 15: ring packet-size extremes.
fn fig15(c: &mut Criterion) {
    bench_points(
        c,
        "fig15",
        vec![
            ("ps8000".into(), ring(8_000, 35), 30, 200_000),
            ("ps50000".into(), ring(50_000, 35), 30, 200_000),
        ],
    );
}

/// Figure 16: ring window extremes.
fn fig16(c: &mut Criterion) {
    bench_points(
        c,
        "fig16",
        vec![
            ("w40".into(), ring(8_000, 40), 30, 200_000),
            ("w100".into(), ring(8_000, 100), 30, 200_000),
        ],
    );
}

/// Figure 17: ring scalability.
fn fig17(c: &mut Criterion) {
    bench_points(
        c,
        "fig17",
        vec![
            ("n1".into(), ring(8_000, 50), 1, 200_000),
            ("n30".into(), ring(8_000, 50), 30, 200_000),
        ],
    );
}

/// Figure 18: tree-height sweep endpoints.
fn fig18(c: &mut Criterion) {
    bench_points(
        c,
        "fig18",
        vec![
            ("h1".into(), tree(8_000, 20, 1), 30, 100_000),
            ("h6".into(), tree(8_000, 20, 6), 30, 100_000),
            ("h30".into(), tree(8_000, 20, 30), 30, 100_000),
        ],
    );
}

/// Figure 19: tree window extremes at two heights.
fn fig19(c: &mut Criterion) {
    bench_points(
        c,
        "fig19",
        vec![
            ("h2/w2".into(), tree(8_000, 2, 2), 30, 100_000),
            ("h30/w2".into(), tree(8_000, 2, 30), 30, 100_000),
            ("h30/w20".into(), tree(8_000, 20, 30), 30, 100_000),
        ],
    );
}

/// Figure 20: tree small messages.
fn fig20(c: &mut Criterion) {
    bench_points(
        c,
        "fig20",
        vec![
            ("1B/h1".into(), tree(8_000, 20, 1), 30, 1),
            ("1B/h15".into(), tree(8_000, 20, 15), 30, 1),
            ("1B/h30".into(), tree(8_000, 20, 30), 30, 1),
        ],
    );
}

/// Figure 21: tree H=6 window x packet extremes.
fn fig21(c: &mut Criterion) {
    bench_points(
        c,
        "fig21",
        vec![
            ("ps1300/w10".into(), tree(1_300, 10, 6), 30, 100_000),
            ("ps8000/w10".into(), tree(8_000, 10, 6), 30, 100_000),
            ("ps50000/w10".into(), tree(50_000, 10, 6), 30, 100_000),
        ],
    );
}

criterion_group!(
    figures, fig08, fig09, fig10, fig11, fig12, fig13, fig14, fig15, fig16, fig17, fig18, fig19,
    fig20, fig21
);
criterion_main!(figures);
